#!/usr/bin/env bash
# Bench smoke gate: run the tiny `repro bench-replay --smoke`
# configuration and re-validate the JSON it writes with
# `repro bench-check`, so a regression that breaks the replay bench or
# produces a malformed report fails CI in seconds. The smoke output
# goes under target/ so it never clobbers the committed full-size
# BENCH_trace_replay.json at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Always build: the workspace-root `cargo build` does not cover the
# bench package (the root package does not depend on it), so checking
# for an existing binary here could silently smoke-test a stale one.
cargo build --release --offline -p bench
REPRO=target/release/repro

OUT=target/BENCH_trace_replay_smoke.json
"$REPRO" bench-replay --smoke --out "$OUT"
"$REPRO" bench-check "$OUT"

# Telemetry cost gate: the instrumented streaming path must stay
# within 2 % of the uninstrumented one. The estimator (see `repro
# bench-overhead`) interleaves off/on run pairs and gates on the
# smaller of the median pair ratio and the best-time ratio; on top of
# that, up to three attempts are allowed, because shared-host timer
# noise at the 2 % scale is larger than the true telemetry cost — a
# genuine per-access regression (an extra scan, an unconditional
# allocation) shifts every pair of every attempt and still fails.
overhead_ok=0
for _attempt in 1 2 3; do
    if "$REPRO" bench-overhead --config stream_16x12500 --iters 40 --tol 0.02; then
        overhead_ok=1
        break
    fi
done
[[ "$overhead_ok" == 1 ]]

# Replay-inversion gate: the windowed parallel path must be at least
# 95 % of the streaming path's throughput on the acceptance config.
# Three attempts for the same shared-host timer-noise reason as above;
# a genuine inversion (parallel structurally losing to streaming, the
# regression this PR fixed) fails all three.
gate_ok=0
for _attempt in 1 2 3; do
    if "$REPRO" bench-gate --config stream_64x50000 --tol 0.05; then
        gate_ok=1
        break
    fi
done
[[ "$gate_ok" == 1 ]]

# Sweep-reuse gate: the classify-once / replay-many engine must beat
# regenerate-per-point by >= 1.5x on the bundled smoke sweep, and its
# plumbing must stay within 2 % of the direct path when the artifact
# cache is disabled (SWEEP_REUSE=0). Both arms are asserted pointwise
# bit-identical inside the verb — reports and migration move digests —
# so this can only fail on speed, never by timing a diverged engine.
# Same three-attempt timer-noise policy as above; a genuine regression
# (classification sneaking back into the per-point loop) fails all
# three.
sweep_ok=0
for _attempt in 1 2 3; do
    if "$REPRO" bench-sweep --smoke --iters 6 --min-speedup 1.5 --tol 0.02; then
        sweep_ok=1
        break
    fi
done
[[ "$sweep_ok" == 1 ]]

# Advisor-service gate: the batch query engine (canonicalize + dedup +
# result cache + worker pool) must beat the naive loop-per-query path
# by >= 5x on the bundled repeat-heavy smoke batch, and its
# single-query plumbing (measured against a zero-capacity cache, so no
# hit can mask it) must stay within 2 %. Both arms are asserted
# pointwise bit-identical inside the verb, so this can only fail on
# speed, never by timing a diverged engine. Same three-attempt
# timer-noise policy as above; a genuine regression (dedup or caching
# silently disabled) fails all three.
advisor_ok=0
for _attempt in 1 2 3; do
    if "$REPRO" bench-advisor --smoke --iters 4 --min-speedup 5 --tol 0.02; then
        advisor_ok=1
        break
    fi
done
[[ "$advisor_ok" == 1 ]]

# Migration-off cost gate: carrying the (disabled) migration scheduler
# hook in the replay hot path must cost nothing — a `Migrated` spec
# with period 0 builds no scheduler and must replay bit-identically to
# AllDdr (the verb asserts that) and within 2 % of its throughput.
# Same two-estimator gate and three-attempt noise policy as above.
migrate_ok=0
for _attempt in 1 2 3; do
    if "$REPRO" migrate-overhead --config stream_16x12500 --iters 40 --tol 0.02; then
        migrate_ok=1
        break
    fi
done
[[ "$migrate_ok" == 1 ]]

# Time-series sampling cost gate: the disabled sampler must cost the
# replay hot paths nothing (one Option branch per access), and the
# verb asserts every off/on pair replays bit-identically — sampling is
# observation, never simulation. The acceptance bound is <= 2 % on
# stream_64x50000; CI gates the same bound on the quicker
# stream_16x12500 with the usual two-estimator, three-attempt policy.
sampling_ok=0
for _attempt in 1 2 3; do
    if "$REPRO" sampling-overhead --config stream_16x12500 --iters 40 --tol 0.02; then
        sampling_ok=1
        break
    fi
done
[[ "$sampling_ok" == 1 ]]

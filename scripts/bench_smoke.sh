#!/usr/bin/env bash
# Bench smoke gate: run the tiny `repro bench-replay --smoke`
# configuration and re-validate the JSON it writes with
# `repro bench-check`, so a regression that breaks the replay bench or
# produces a malformed report fails CI in seconds. The smoke output
# goes under target/ so it never clobbers the committed full-size
# BENCH_trace_replay.json at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

REPRO=target/release/repro
if [[ ! -x "$REPRO" ]]; then
    cargo build --release --offline -p bench
fi

OUT=target/BENCH_trace_replay_smoke.json
"$REPRO" bench-replay --smoke --out "$OUT"
"$REPRO" bench-check "$OUT"

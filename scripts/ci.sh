#!/usr/bin/env bash
# Tier-1 CI gate: the whole workspace must build, test, and stay
# formatted with ZERO network access — every dependency is in-tree.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline

# The test suite runs twice: once pinned to a single trace-replay
# worker and once at eight, so the sequential-equivalence contract of
# the sharded parallel engine is exercised at both extremes on every
# commit (see tests/parallel_equivalence.rs).
TRACESIM_THREADS=1 cargo test -q --offline
TRACESIM_THREADS=8 cargo test -q --offline

# The equivalence suite again with the concurrent timing engine forced
# on and forced off, under a watchdog: a bug in the engine's gang
# barrier or spin-waits would present as a hang, and the timeout turns
# that into a CI failure in minutes instead of a stuck job.
TRACESIM_THREADS=4 TRACESIM_TIMING=concurrent timeout 900 \
    cargo test -q --offline -p knl-hybrid-memory --test parallel_equivalence
TRACESIM_THREADS=4 TRACESIM_TIMING=sequential timeout 900 \
    cargo test -q --offline -p knl-hybrid-memory --test parallel_equivalence

# The classify-once / replay-many contract under the same forced-mode
# watchdog: one classified artifact replayed against every placement
# (including active migration, where the move digest is compared) must
# stay bit-identical to fresh per-setup streaming replays
# (tests/classified_equivalence.rs).
TRACESIM_THREADS=4 TRACESIM_TIMING=concurrent timeout 900 \
    cargo test -q --offline -p knl-hybrid-memory --test classified_equivalence
TRACESIM_THREADS=4 TRACESIM_TIMING=sequential timeout 900 \
    cargo test -q --offline -p knl-hybrid-memory --test classified_equivalence

# Migration gates, under the same watchdog. The equivalence runs above
# already prove the scheduler remaps at identical trace offsets on
# every engine (tests/parallel_equivalence.rs `migration_*`); here the
# golden T-sweep table is pinned byte-for-byte, and the full-scale
# sweep must still show the migration crossover — a T where the
# migrated replay beats every static placement that fits the MCDRAM
# budget (`repro migrate` exits nonzero when the crossover disappears).
timeout 900 cargo test -q --offline -p knl-hybrid-memory --test migration_golden
timeout 900 target/release/repro migrate

# Tiny replay-bench run + JSON validation (see scripts/bench_smoke.sh).
scripts/bench_smoke.sh

# Telemetry profile smoke: produce a Chrome-trace profile + metrics
# dump + in-replay time-series export from a tiny streaming replay and
# re-validate all three files the bench-check way (spans for every
# replay phase, >= 5 metric series, monotonic timestamps,
# schema-tagged metrics JSON, timeseries/v1 window chain), then render
# the text dashboard from them (repro report exits nonzero on a
# malformed input).
target/release/repro profile stream_8x2000 \
    --out target/profile_smoke.jsonl --metrics target/metrics_smoke.json \
    --timeseries target/timeseries_smoke.jsonl
target/release/repro profile-check target/profile_smoke.jsonl \
    --metrics target/metrics_smoke.json \
    --timeseries target/timeseries_smoke.jsonl
target/release/repro report target/profile_smoke.jsonl \
    --timeseries target/timeseries_smoke.jsonl > target/report_smoke.txt
grep -q "== timeseries" target/report_smoke.txt

# Advisor-service smoke: answer the bundled query batch twice through
# one service — the verb asserts the rounds bit-identical and exits
# nonzero if the warm round served no cache hits — and write the
# advice documents (each validated against advisor_advice/v1) under
# target/.
target/release/repro advise-batch --bundled smoke --rounds 2 \
    --out target/advise_smoke.jsonl

# Serve-loop smoke: drive the long-running advisor service with the
# bundled 200-query batch under a watchdog (a deadlocked worker pool
# or a loop that never drains presents as a hang, and the timeout
# turns that into a failure). The transcript is validated for causal
# ids, one span per response, and matching drain totals; the run
# repeats at 1 and 8 workers and the two time-series exports must be
# byte-identical — the sampler ticks on query order, never on thread
# schedule.
target/release/repro queries --bundled full --out target/serve_queries.jsonl
timeout 900 target/release/repro serve --threads 1 \
    --timeseries target/serve_ts_w1.jsonl \
    < target/serve_queries.jsonl > target/serve_out_w1.jsonl
timeout 900 target/release/repro serve --threads 8 \
    --timeseries target/serve_ts_w8.jsonl \
    < target/serve_queries.jsonl > target/serve_out_w8.jsonl
target/release/repro serve-check target/serve_out_w1.jsonl \
    --queries 200 --timeseries target/serve_ts_w1.jsonl
target/release/repro serve-check target/serve_out_w8.jsonl \
    --queries 200 --timeseries target/serve_ts_w8.jsonl
cmp target/serve_ts_w1.jsonl target/serve_ts_w8.jsonl

# Bench-history regression sentinel over the committed report: the
# history section must validate, and the newest entry must not sit
# more than 10 % below the trailing median on any tracked metric
# (streaming Macc/s per config, sweep-reuse and advisor speedups).
# Deterministic — it reads the committed file, it never re-times.
target/release/repro bench-history BENCH_trace_replay.json --check

cargo fmt --check

echo "ci: ok"

#!/usr/bin/env bash
# Tier-1 CI gate: the whole workspace must build, test, and stay
# formatted with ZERO network access — every dependency is in-tree.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline

# The test suite runs twice: once pinned to a single trace-replay
# worker and once at eight, so the sequential-equivalence contract of
# the sharded parallel engine is exercised at both extremes on every
# commit (see tests/parallel_equivalence.rs).
TRACESIM_THREADS=1 cargo test -q --offline
TRACESIM_THREADS=8 cargo test -q --offline

# Tiny replay-bench run + JSON validation (see scripts/bench_smoke.sh).
scripts/bench_smoke.sh

cargo fmt --check

echo "ci: ok"

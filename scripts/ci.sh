#!/usr/bin/env bash
# Tier-1 CI gate: the whole workspace must build, test, and stay
# formatted with ZERO network access — every dependency is in-tree.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check

echo "ci: ok"

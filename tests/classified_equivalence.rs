//! Differential suite for the classify-once / replay-many engine: a
//! [`ClassifiedTrace`](knl::ClassifiedTrace) artifact built once per
//! hierarchy config and replayed via `run_classified` must be
//! **bit-identical** to a fresh per-setup streaming replay — reports,
//! per-shard totals, device and mesh statistics, and (under a
//! `Migrated` placement) the scheduler's move-sequence digest — across
//! every workload generator, every paper memory setup, a 1/2/4/8
//! worker ladder, and both forced timing modes. The same contract is
//! pinned for batched mesh pricing (`set_mesh_batching`): batching
//! detaches hop/contention sums from the per-access loop and must
//! change nothing observable. This is what makes the sweep engine's
//! speedup trustworthy: "classified == regenerated, only faster".

use hybridmem::TraceSpec;
use knl::tracesim::{TimingMode, TracePlacement, TraceSim, TraceSimReport};
use knl::{ClassifiedTrace, MachineConfig, MemSetup};
use memkind_sim::MigrationSpec;
use simfabric::{par, ByteSize};
use workloads::tracegen::{classify_streaming, replay_streaming, HotColdSource, TraceKind};

const CORES: u32 = 8;
const PER_CORE: u64 = 400;
const SEED: u64 = 0xC1A5;
const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn msc() -> ByteSize {
    ByteSize::mib(4)
}

/// Period/budget small enough that the 3200-access trace crosses many
/// rebalance boundaries (mirrors the parallel-equivalence suite).
const MIGRATE_SPEC: MigrationSpec = MigrationSpec::new(256, 16);

/// The timing setups a flat artifact must serve: every placement,
/// including an actively-migrating one. Cache mode replays its own
/// artifact under the one placement it supports.
fn placements(setup: MemSetup) -> Vec<TracePlacement> {
    match setup {
        MemSetup::CacheMode => vec![TracePlacement::AllDdr],
        _ => vec![
            TracePlacement::AllDdr,
            TracePlacement::AllHbm,
            TracePlacement::SplitAt(16 << 20),
            TracePlacement::Migrated(MIGRATE_SPEC),
        ],
    }
}

fn artifact(kind: TraceKind, cfg: &MachineConfig) -> ClassifiedTrace {
    let mut source = kind.source(CORES, PER_CORE, SEED);
    classify_streaming(
        cfg,
        CORES,
        msc(),
        &kind.spec(CORES, PER_CORE, SEED),
        source.as_mut(),
    )
}

fn assert_sims_match(got: &TraceSim, want: &TraceSim, ctx: &str) {
    assert_eq!(
        got.per_core_totals(),
        want.per_core_totals(),
        "per-shard totals diverged: {ctx}"
    );
    assert_eq!(
        got.ddr_stats(),
        want.ddr_stats(),
        "DDR stats diverged: {ctx}"
    );
    assert_eq!(
        got.hbm_stats(),
        want.hbm_stats(),
        "HBM stats diverged: {ctx}"
    );
    assert_eq!(
        got.mesh_stats(),
        want.mesh_stats(),
        "mesh stats diverged: {ctx}"
    );
    assert_eq!(
        got.migration_stats(),
        want.migration_stats(),
        "migration stats (incl. move digest) diverged: {ctx}"
    );
}

/// Replay `kind` under `setup`: one classified artifact against every
/// placement × worker count × forced timing mode, checked against a
/// fresh streaming replay of the same placement.
fn check(kind: TraceKind, setup: MemSetup) {
    let cfg = MachineConfig::knl7210(setup, 64);
    let ct = artifact(kind, &cfg);
    // Generators emit *approximately* PER_CORE accesses per core.
    assert!(
        ct.accesses() > 0,
        "{kind:?} classified to an empty artifact"
    );
    for placement in placements(setup) {
        let mut seq = TraceSim::new(&cfg, CORES, placement, msc());
        let expect: TraceSimReport = {
            let mut source = kind.source(CORES, PER_CORE, SEED);
            replay_streaming(&mut seq, source.as_mut())
        };
        for workers in WORKERS {
            for mode in [TimingMode::Sequential, TimingMode::Concurrent] {
                let mut sim = TraceSim::new(&cfg, CORES, placement, msc());
                sim.set_timing_mode(Some(mode));
                let got = par::with_threads(workers, || sim.run_classified(&ct));
                let ctx = format!(
                    "{kind:?} under {setup:?} at {placement:?} workers={workers} mode={mode:?}"
                );
                assert_eq!(got, expect, "report diverged: {ctx}");
                assert_sims_match(&sim, &seq, &ctx);
            }
        }
    }
}

#[test]
fn stream_classified_equals_streaming() {
    for setup in MemSetup::PAPER_SETUPS {
        check(TraceKind::Stream, setup);
    }
}

#[test]
fn gups_classified_equals_streaming() {
    for setup in MemSetup::PAPER_SETUPS {
        check(TraceKind::Gups, setup);
    }
}

#[test]
fn chase_classified_equals_streaming() {
    for setup in MemSetup::PAPER_SETUPS {
        check(TraceKind::Chase, setup);
    }
}

#[test]
fn xsbench_classified_equals_streaming() {
    for setup in MemSetup::PAPER_SETUPS {
        check(TraceKind::XsBench, setup);
    }
}

#[test]
fn bfs_classified_equals_streaming() {
    for setup in MemSetup::PAPER_SETUPS {
        check(TraceKind::Bfs, setup);
    }
}

/// The phased hot/cold workload behind the migration `T`-sweep: the
/// one trace where the scheduler promotes and demotes whole waves of
/// pages every period, so a remap landing one access early or late on
/// the classified path shows up in the move digest.
#[test]
fn hot_cold_migration_digest_matches_streaming() {
    let (phases, per_core) = (3u32, 160u64);
    let (hot, cold) = (64u64 << 10, 4u64 << 20);
    let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    let mk = || HotColdSource::new(CORES, phases, per_core, hot, cold, SEED);
    let ct = {
        let mut source = mk();
        classify_streaming(&cfg, CORES, msc(), "hotcold:equiv", &mut source)
    };
    let placement = TracePlacement::Migrated(MIGRATE_SPEC);
    let mut seq = TraceSim::new(&cfg, CORES, placement, msc());
    let expect = {
        let mut source = mk();
        replay_streaming(&mut seq, &mut source)
    };
    let stats = seq.migration_stats().expect("scheduler active");
    assert!(
        stats.promoted_pages > 0 && stats.demoted_pages > 0,
        "hot/cold trace must drive promotions and demotions, got {stats:?}"
    );
    for workers in WORKERS {
        for mode in [TimingMode::Sequential, TimingMode::Concurrent] {
            let mut sim = TraceSim::new(&cfg, CORES, placement, msc());
            sim.set_timing_mode(Some(mode));
            let got = par::with_threads(workers, || sim.run_classified(&ct));
            let ctx = format!("hotcold workers={workers} mode={mode:?}");
            assert_eq!(got, expect, "report diverged: {ctx}");
            assert_sims_match(&sim, &seq, &ctx);
        }
    }
}

/// Batched mesh pricing must be invisible: for every generator and
/// paper setup, a replay with per-access mesh pricing
/// (`set_mesh_batching(false)`) and a batched replay — on both the
/// streaming and the classified engines — land on identical reports
/// and mesh statistics.
#[test]
fn mesh_batching_is_bit_identical() {
    for kind in TraceKind::ALL {
        for setup in MemSetup::PAPER_SETUPS {
            let cfg = MachineConfig::knl7210(setup, 64);
            let mut unbatched = TraceSim::new(&cfg, CORES, TracePlacement::AllDdr, msc());
            unbatched.set_mesh_batching(false);
            let expect = {
                let mut source = kind.source(CORES, PER_CORE, SEED);
                replay_streaming(&mut unbatched, source.as_mut())
            };
            let mut batched = TraceSim::new(&cfg, CORES, TracePlacement::AllDdr, msc());
            batched.set_mesh_batching(true);
            let got = {
                let mut source = kind.source(CORES, PER_CORE, SEED);
                replay_streaming(&mut batched, source.as_mut())
            };
            let ctx = format!("{kind:?} under {setup:?}");
            assert_eq!(got, expect, "batched mesh report diverged: {ctx}");
            assert_sims_match(&batched, &unbatched, &ctx);

            let ct = artifact(kind, &cfg);
            let mut classified = TraceSim::new(&cfg, CORES, TracePlacement::AllDdr, msc());
            classified.set_mesh_batching(true);
            let got = classified.run_classified(&ct);
            assert_eq!(got, expect, "classified batched report diverged: {ctx}");
            assert_sims_match(&classified, &unbatched, &ctx);
        }
    }
}

/// End-to-end through the sweep engine: `replay_point` must produce
/// the same reports with reuse on (artifact via the global cache) and
/// off (regenerate per point) — the switch the bench harness prices.
#[test]
fn sweep_engine_modes_agree_end_to_end() {
    let spec = TraceSpec::from_kind(TraceKind::Gups, CORES, PER_CORE, SEED ^ 0xE2E);
    let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    for placement in placements(MemSetup::DramOnly) {
        let (reuse_sim, reuse_report) = hybridmem::replay_point(&spec, &cfg, placement, msc());
        let mut fresh = TraceSim::new(&cfg, CORES, placement, msc());
        let fresh_report = {
            let mut source = spec.source();
            replay_streaming(&mut fresh, source.as_mut())
        };
        let ctx = format!("sweep engine at {placement:?}");
        assert_eq!(reuse_report, fresh_report, "report diverged: {ctx}");
        assert_sims_match(&reuse_sim, &fresh, &ctx);
    }
}

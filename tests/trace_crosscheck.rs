//! Cross-check the workload trace generators against the line-accurate
//! trace simulator: the paper's qualitative per-workload findings must
//! emerge from the exact substrate models, not just the calibrated
//! analytic ones.

use knl::tracesim::{TracePlacement, TraceSim};
use knl::{MachineConfig, MemSetup};
use simfabric::ByteSize;
use workloads::tracegen;

fn sim(setup: MemSetup, cores: u32, placement: TracePlacement) -> TraceSim {
    TraceSim::new(
        &MachineConfig::knl7210(setup, 64),
        cores,
        placement,
        ByteSize::mib(4),
    )
}

#[test]
fn stream_trace_prefers_hbm_at_scale() {
    let trace = tracegen::stream_trace(64, 600, 1);
    let d = sim(MemSetup::DramOnly, 64, TracePlacement::AllDdr).run(&trace);
    let h = sim(MemSetup::HbmOnly, 64, TracePlacement::AllHbm).run(&trace);
    assert!(
        h.bandwidth_gbs > 2.0 * d.bandwidth_gbs,
        "hbm {:.1} vs ddr {:.1}",
        h.bandwidth_gbs,
        d.bandwidth_gbs
    );
}

#[test]
fn gups_trace_prefers_ddr_latency() {
    // Few cores: latency-bound random updates. HBM's higher device
    // latency shows up directly in the average access latency.
    let trace = tracegen::gups_trace(4, ByteSize::mib(512).as_u64(), 2_000, 11);
    let d = sim(MemSetup::DramOnly, 4, TracePlacement::AllDdr).run(&trace);
    let h = sim(MemSetup::HbmOnly, 4, TracePlacement::AllHbm).run(&trace);
    assert!(
        h.avg_latency >= d.avg_latency,
        "hbm latency {} should not beat ddr {}",
        h.avg_latency,
        d.avg_latency
    );
}

#[test]
fn chase_trace_shows_the_fig3_gap() {
    let trace = tracegen::chase_trace(ByteSize::mib(256).as_u64(), 3_000, 5);
    let d = sim(MemSetup::DramOnly, 1, TracePlacement::AllDdr).run(&trace);
    let h = sim(MemSetup::HbmOnly, 1, TracePlacement::AllHbm).run(&trace);
    let gap = (h.avg_latency.as_ns() - d.avg_latency.as_ns()) / d.avg_latency.as_ns();
    // The device-level gap (bank timing difference) must be visible;
    // the full ~18% includes loaded-latency effects the bank model
    // only partially captures.
    assert!(
        gap > 0.02,
        "chase gap {gap:.3} (ddr {}, hbm {})",
        d.avg_latency,
        h.avg_latency
    );
}

#[test]
fn xsbench_trace_dependent_chains_dominate() {
    let trace = tracegen::xsbench_trace(8, ByteSize::mib(512).as_u64(), 100, 6, 2);
    let d = sim(MemSetup::DramOnly, 8, TracePlacement::AllDdr).run(&trace);
    // Dependent chains: average latency far above the streaming case.
    let stream = tracegen::stream_trace(8, 600, 1);
    let s = sim(MemSetup::DramOnly, 8, TracePlacement::AllDdr).run(&stream);
    assert!(
        d.avg_latency > s.avg_latency,
        "chains {} should exceed stream latency {}",
        d.avg_latency,
        s.avg_latency
    );
}

#[test]
fn bfs_trace_mixed_pattern_lands_between() {
    let bfs = tracegen::bfs_trace(8, ByteSize::mib(256).as_u64(), 800, 3);
    let d = sim(MemSetup::DramOnly, 8, TracePlacement::AllDdr).run(&bfs);
    assert!(d.accesses == bfs.len() as u64);
    assert!(d.bandwidth_gbs > 0.0);
    // Row-buffer behaviour sits between pure stream and pure random:
    // check via the DDR bank stats.
    let mut pure_stream_sim = sim(MemSetup::DramOnly, 8, TracePlacement::AllDdr);
    pure_stream_sim.run(&tracegen::stream_trace(8, 800, 1));
    let stream_hits = pure_stream_sim.ddr_stats().hit_rate();
    let mut pure_rand_sim = sim(MemSetup::DramOnly, 8, TracePlacement::AllDdr);
    pure_rand_sim.run(&tracegen::gups_trace(
        8,
        ByteSize::mib(256).as_u64(),
        800,
        3,
    ));
    let rand_hits = pure_rand_sim.ddr_stats().hit_rate();
    let mut bfs_sim = sim(MemSetup::DramOnly, 8, TracePlacement::AllDdr);
    bfs_sim.run(&bfs);
    let bfs_hits = bfs_sim.ddr_stats().hit_rate();
    assert!(
        bfs_hits > rand_hits && bfs_hits < stream_hits,
        "row-hit rates: stream {stream_hits:.2} > bfs {bfs_hits:.2} > random {rand_hits:.2} expected"
    );
}

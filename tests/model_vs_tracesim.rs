//! Cross-validation between the two execution paths: the analytic
//! machine model and the line-accurate trace simulator must agree on
//! the paper's qualitative orderings, and roughly on magnitudes where
//! both are meaningful.

use knl::tracesim::{TraceAccess, TracePlacement, TraceSim};
use knl::{Machine, MachineConfig, MemSetup, StreamOp};
use simfabric::ByteSize;

fn stream_trace(cores: u32, lines_per_core: u64) -> Vec<TraceAccess> {
    const BURST: u64 = 16;
    let base = |c: u32| (c as u64 * 23_456_789) & !63;
    let mut t = Vec::new();
    let mut i = 0;
    while i < lines_per_core {
        for c in 0..cores {
            for j in i..(i + BURST).min(lines_per_core) {
                t.push(TraceAccess::read(c, base(c) + j * 64));
            }
        }
        i += BURST;
    }
    t
}

fn chase_trace(steps: u64) -> Vec<TraceAccess> {
    // Dependent chase with a page-crossing stride (no cache reuse).
    (0..steps)
        .map(|i| TraceAccess::chase(0, (i * (4 * 1024 * 1024 + 4096 + 64)) % (1 << 31)))
        .collect()
}

#[test]
fn both_paths_agree_streams_prefer_hbm() {
    // Trace path.
    let trace = stream_trace(64, 800);
    let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    let mut sim_ddr = TraceSim::new(&cfg, 64, TracePlacement::AllDdr, ByteSize::mib(1));
    let mut sim_hbm = TraceSim::new(&cfg, 64, TracePlacement::AllHbm, ByteSize::mib(1));
    let trace_ratio = sim_hbm.run(&trace).bandwidth_gbs / sim_ddr.run(&trace).bandwidth_gbs;

    // Analytic path.
    let model_bw = |setup| {
        let mut m = Machine::knl7210(setup, 64).unwrap();
        let r = m.alloc("x", ByteSize::gib(4)).unwrap();
        let ops = [StreamOp::read_all(&r)];
        let d = m.price_stream(&ops);
        r.size().as_u64() as f64 / 1e9 / d.as_secs()
    };
    let model_ratio = model_bw(MemSetup::HbmOnly) / model_bw(MemSetup::DramOnly);

    assert!(trace_ratio > 2.0, "trace HBM/DDR ratio {trace_ratio}");
    assert!(model_ratio > 4.0, "model HBM/DDR ratio {model_ratio}");
    // Both paths agree on the winner and on "several times faster".
    assert!(
        (trace_ratio - model_ratio).abs() / model_ratio < 0.6,
        "paths diverge: trace {trace_ratio:.2} vs model {model_ratio:.2}"
    );
}

#[test]
fn both_paths_agree_chases_prefer_dram() {
    let trace = chase_trace(2_000);
    let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    let mut sim_ddr = TraceSim::new(&cfg, 1, TracePlacement::AllDdr, ByteSize::mib(1));
    let mut sim_hbm = TraceSim::new(&cfg, 1, TracePlacement::AllHbm, ByteSize::mib(1));
    let ddr_lat = sim_ddr.run(&trace).avg_latency;
    let hbm_lat = sim_hbm.run(&trace).avg_latency;
    assert!(
        hbm_lat > ddr_lat,
        "trace path: HBM chase {hbm_lat} should exceed DDR {ddr_lat}"
    );

    // Analytic path agrees via the Fig. 3 model.
    let tlb = cachesim::tlb::TlbConfig::knl_4k();
    let d = knl::dual_random_read_latency(&memdev::ddr4_knl(), ByteSize::mib(256), &tlb);
    let h = knl::dual_random_read_latency(&memdev::mcdram_knl(), ByteSize::mib(256), &tlb);
    assert!(h > d);
}

#[test]
fn trace_cache_mode_ordering_matches_model_at_overflow() {
    // A working set at 2x the (scaled) MCDRAM cache, streamed twice:
    // cache mode must not beat plain DDR (the Fig. 2 tail).
    let lines = 2 * ByteSize::mib(2).as_u64() / 64;
    let mut trace = Vec::new();
    for _pass in 0..2 {
        for i in 0..lines {
            trace.push(TraceAccess::read(0, i * 64));
        }
    }
    let ddr_cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    let cache_cfg = MachineConfig::knl7210(MemSetup::CacheMode, 64);
    let mut plain = TraceSim::new(&ddr_cfg, 1, TracePlacement::AllDdr, ByteSize::mib(2));
    let mut cached = TraceSim::new(&cache_cfg, 1, TracePlacement::AllDdr, ByteSize::mib(2));
    let plain_t = plain.run(&trace).makespan;
    let cached_t = cached.run(&trace).makespan;
    assert!(
        cached_t >= plain_t,
        "cyclic overflow through the MCDRAM cache should not be faster: {cached_t} vs {plain_t}"
    );
}

#[test]
fn trace_cache_mode_serves_fitting_sets_from_mcdram() {
    // A 4-MB set through an 8-MB cache, four passes: after the first
    // pass the MCDRAM cache fields (almost) all of the traffic. A
    // *single* core is latency-bound, so the makespan stays close to
    // the plain-DDR run (MCDRAM's latency is ~18% higher) — exactly
    // the paper's one-thread-per-core observation; the bandwidth-side
    // benefit at full thread counts is covered by the analytic path
    // (machine::tests::cache_mode_tracks_fig2_shape).
    let lines = ByteSize::mib(4).as_u64() / 64;
    let mut trace = Vec::new();
    for _pass in 0..4 {
        for i in 0..lines {
            trace.push(TraceAccess::read(0, i * 64));
        }
    }
    let ddr_cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    let cache_cfg = MachineConfig::knl7210(MemSetup::CacheMode, 64);
    let mut plain = TraceSim::new(&ddr_cfg, 1, TracePlacement::AllDdr, ByteSize::mib(8));
    let mut cached = TraceSim::new(&cache_cfg, 1, TracePlacement::AllDdr, ByteSize::mib(8));
    let plain_r = plain.run(&trace);
    let cached_r = cached.run(&trace);
    // ≥ 3 of 4 passes' worth of lines served by the MCDRAM cache.
    assert!(
        cached_r.mcdram_cache_hits > 2 * lines,
        "too few MSC hits: {cached_r:?}"
    );
    // Overhead bounded: the first pass pays the full in-MCDRAM tag
    // probe before every DDR fetch (McCalpin measured cache-mode miss
    // latency near the *sum* of both devices' latencies) and warm
    // passes run at MCDRAM's higher latency, so a single latency-bound
    // core sees up to ~1.6x the plain-DDR time — never more.
    let ratio = cached_r.makespan.as_secs() / plain_r.makespan.as_secs();
    assert!(
        (0.8..1.6).contains(&ratio),
        "cache-mode single-core overhead out of range: {ratio}"
    );
}

//! Sequential-equivalence differential suite for the sharded parallel
//! and streaming trace engines: for every workload trace generator,
//! every paper memory setup, and a 1/2/4/8 worker-thread ladder, both
//! `run_parallel` (over the materialized trace) and `run_streaming`
//! (fed chunk-by-chunk from the generator's `TraceSource`) must
//! produce reports and device statistics **bit-identical** to the
//! sequential reference `run`. This is the correctness contract that
//! makes the parallel/streaming speedup trustworthy: "parallel ==
//! sequential, only faster".

use knl::tracesim::{TimingMode, TraceAccess, TracePlacement, TraceSim, TraceSimReport};
use knl::{MachineConfig, MemSetup};
use memkind_sim::MigrationSpec;
use simfabric::{par, ByteSize};
use workloads::tracegen::{replay_streaming, HotColdSource, TraceKind, TraceSource};

const CORES: u32 = 8;
const PER_CORE: u64 = 400;
const SEED: u64 = 0xD1FF;
const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn placement(setup: MemSetup) -> TracePlacement {
    match setup {
        MemSetup::HbmOnly => TracePlacement::AllHbm,
        _ => TracePlacement::AllDdr,
    }
}

fn fresh(setup: MemSetup) -> TraceSim {
    TraceSim::new(
        &MachineConfig::knl7210(setup, 64),
        CORES,
        placement(setup),
        ByteSize::mib(4),
    )
}

/// Replay `kind` under `setup` sequentially and at every worker count;
/// assert everything observable is identical.
fn check(kind: TraceKind, setup: MemSetup) {
    let trace = kind.generate(CORES, PER_CORE, SEED);
    assert!(!trace.is_empty(), "{kind:?} generated an empty trace");
    let mut seq = fresh(setup);
    let expect: TraceSimReport = seq.run(&trace);
    for workers in WORKERS {
        let mut par_sim = fresh(setup);
        let got = par::with_threads(workers, || par_sim.run_parallel(&trace));
        let ctx = format!("{kind:?} under {setup:?} at {workers} workers");
        assert_eq!(got, expect, "report diverged: {ctx}");
        assert_eq!(
            par_sim.per_core_totals(),
            seq.per_core_totals(),
            "per-shard totals diverged: {ctx}"
        );
        assert_eq!(
            par_sim.ddr_stats(),
            seq.ddr_stats(),
            "DDR bank stats diverged: {ctx}"
        );
        assert_eq!(
            par_sim.hbm_stats(),
            seq.hbm_stats(),
            "MCDRAM bank stats diverged: {ctx}"
        );
        assert_eq!(
            par_sim.mesh_stats(),
            seq.mesh_stats(),
            "mesh stats diverged: {ctx}"
        );

        let mut stream_sim = fresh(setup);
        let got = par::with_threads(workers, || {
            let mut source = kind.source(CORES, PER_CORE, SEED);
            replay_streaming(&mut stream_sim, source.as_mut())
        });
        let ctx = format!("streaming {kind:?} under {setup:?} at {workers} workers");
        assert_eq!(got, expect, "report diverged: {ctx}");
        assert_eq!(
            stream_sim.per_core_totals(),
            seq.per_core_totals(),
            "per-shard totals diverged: {ctx}"
        );
        assert_eq!(
            stream_sim.ddr_stats(),
            seq.ddr_stats(),
            "DDR bank stats diverged: {ctx}"
        );
        assert_eq!(
            stream_sim.hbm_stats(),
            seq.hbm_stats(),
            "MCDRAM bank stats diverged: {ctx}"
        );
        assert_eq!(
            stream_sim.mesh_stats(),
            seq.mesh_stats(),
            "mesh stats diverged: {ctx}"
        );
    }
}

#[test]
fn stream_parallel_equals_sequential() {
    for setup in MemSetup::PAPER_SETUPS {
        check(TraceKind::Stream, setup);
    }
}

#[test]
fn gups_parallel_equals_sequential() {
    for setup in MemSetup::PAPER_SETUPS {
        check(TraceKind::Gups, setup);
    }
}

#[test]
fn chase_parallel_equals_sequential() {
    for setup in MemSetup::PAPER_SETUPS {
        check(TraceKind::Chase, setup);
    }
}

#[test]
fn xsbench_parallel_equals_sequential() {
    for setup in MemSetup::PAPER_SETUPS {
        check(TraceKind::XsBench, setup);
    }
}

#[test]
fn bfs_parallel_equals_sequential() {
    for setup in MemSetup::PAPER_SETUPS {
        check(TraceKind::Bfs, setup);
    }
}

#[test]
fn split_placement_parallel_equals_sequential() {
    // The SplitAt placement exercises both devices in one run.
    let trace = TraceKind::Bfs.generate(CORES, PER_CORE, SEED ^ 0x5917);
    let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    let mk = || {
        TraceSim::new(
            &cfg,
            CORES,
            TracePlacement::SplitAt(16 << 20),
            ByteSize::mib(4),
        )
    };
    let mut seq = mk();
    let expect = seq.run(&trace);
    assert!(expect.memory_accesses > 0);
    for workers in WORKERS {
        let mut par_sim = mk();
        let got = par::with_threads(workers, || par_sim.run_parallel(&trace));
        assert_eq!(got, expect, "split placement at {workers} workers");
        assert_eq!(par_sim.ddr_stats(), seq.ddr_stats());
        assert_eq!(par_sim.hbm_stats(), seq.hbm_stats());

        let mut stream_sim = mk();
        let got = par::with_threads(workers, || {
            let mut source = TraceKind::Bfs.source(CORES, PER_CORE, SEED ^ 0x5917);
            replay_streaming(&mut stream_sim, source.as_mut())
        });
        assert_eq!(
            got, expect,
            "streaming split placement at {workers} workers"
        );
        assert_eq!(stream_sim.ddr_stats(), seq.ddr_stats());
        assert_eq!(stream_sim.hbm_stats(), seq.hbm_stats());
    }
}

/// The device/shard portion of a metrics registry — everything except
/// the `pipeline.*` stall counters and `replay.peak_buffer_bytes`,
/// which measure wall-clock scheduling and are legitimately different
/// between the sequential, sharded, and streaming paths.
fn deterministic_metrics(sim: &TraceSim) -> Vec<(String, simfabric::telemetry::MetricValue)> {
    sim.metrics_registry()
        .iter()
        .filter(|(name, _)| !name.starts_with("pipeline.") && !name.starts_with("replay."))
        .map(|(name, value)| (name.to_string(), value.clone()))
        .collect()
}

/// Fold the per-shard registries the way a distributed collector
/// would: order-independent merge over core IDs.
fn merged_shards(sim: &TraceSim) -> simfabric::MetricsRegistry {
    let mut merged = simfabric::MetricsRegistry::new();
    for core in 0..CORES as usize {
        merged.merge(&sim.shard_metrics(core));
    }
    merged
}

/// Telemetry must be (1) invisible to replay results and (2) a
/// commutative-merge view: the fold of per-shard registries and the
/// full device registry both land on the sequential values no matter
/// which engine ran or at what worker count.
#[test]
fn telemetry_registries_merge_to_sequential_values() {
    let setup = MemSetup::CacheMode;
    for kind in TraceKind::ALL {
        let trace = kind.generate(CORES, PER_CORE, SEED);
        let mut plain = fresh(setup);
        let expect = plain.run(&trace);

        let mut seq = fresh(setup);
        seq.enable_telemetry();
        assert_eq!(
            seq.run(&trace),
            expect,
            "telemetry changed {kind:?} results"
        );
        let expect_shards = merged_shards(&seq);
        let expect_metrics = deterministic_metrics(&seq);

        for workers in WORKERS {
            let ctx = format!("{kind:?} at {workers} workers");
            let mut par_sim = fresh(setup);
            par_sim.enable_telemetry();
            let got = par::with_threads(workers, || par_sim.run_parallel(&trace));
            assert_eq!(got, expect, "parallel report diverged: {ctx}");
            assert_eq!(
                merged_shards(&par_sim),
                expect_shards,
                "parallel shard registries diverged: {ctx}"
            );
            assert_eq!(
                deterministic_metrics(&par_sim),
                expect_metrics,
                "parallel device metrics diverged: {ctx}"
            );

            let mut stream_sim = fresh(setup);
            stream_sim.enable_telemetry();
            let got = par::with_threads(workers, || {
                let mut source = kind.source(CORES, PER_CORE, SEED);
                replay_streaming(&mut stream_sim, source.as_mut())
            });
            assert_eq!(got, expect, "streaming report diverged: {ctx}");
            assert_eq!(
                merged_shards(&stream_sim),
                expect_shards,
                "streaming shard registries diverged: {ctx}"
            );
            assert_eq!(
                deterministic_metrics(&stream_sim),
                expect_metrics,
                "streaming device metrics diverged: {ctx}"
            );
        }
    }
}

/// A hand-built adversarial trace for the concurrent timing engine.
/// Every core rotates through the four interaction patterns the
/// ownership-partitioned sequencer has to get exactly right:
///
/// - **shared hot lines**: all cores hammer the same eight lines, so
///   the same banks and rows serialize across owners and per-core
///   MSHRs fill with overlapping in-flight lines;
/// - **single-channel hammer**: a stride equal to one full channel
///   round piles every access of the burst onto one DRAM lane;
/// - **dependent chase**: per-core pointer chases that block the core
///   on each completion (the blocked/overtake flush path);
/// - **write bursts**: densely-strided writes that keep the MSHR file
///   at capacity (the probe/stall flush path).
///
/// Repeated same-line accesses within a core also exercise
/// secondary-miss merges against still-deferred primaries.
fn contention_trace(cores: u32, per_core: u64) -> Vec<TraceAccess> {
    let mut trace = Vec::new();
    // DDR has 6 channels and MCDRAM 8; a 64-line stride is a whole
    // number of rounds of both, so each burst stays on one channel.
    let channel_round = 64 * 64u64;
    for i in 0..per_core {
        for core in 0..cores {
            let private = 1u64 << 28 | u64::from(core) << 22;
            match i % 4 {
                0 => trace.push(TraceAccess::read(core, (i % 8) * 64)),
                1 => trace.push(TraceAccess::read(core, (1 << 26) + (i / 4) * channel_round)),
                2 => trace.push(TraceAccess::chase(core, private + (i * 4096) % (1 << 22))),
                _ => trace.push(TraceAccess::write(core, private + (i / 4) * 64)),
            }
        }
    }
    trace
}

/// Satellite stress test: the adversarial contention trace must stay
/// bit-identical to the sequential oracle across worker counts, forced
/// timing modes, paper setups, and a replay window small enough to
/// force many refills mid-contention.
#[test]
fn contention_stress_parallel_equals_sequential() {
    let trace = contention_trace(CORES, PER_CORE);
    for setup in [MemSetup::DramOnly, MemSetup::HbmOnly, MemSetup::CacheMode] {
        let mut seq = fresh(setup);
        let expect = seq.run(&trace);
        assert!(
            expect.memory_accesses > 0,
            "contention trace must reach memory under {setup:?}"
        );
        for workers in WORKERS {
            for mode in [TimingMode::Sequential, TimingMode::Concurrent] {
                let mut sim = fresh(setup);
                sim.set_timing_mode(Some(mode));
                sim.set_replay_window(512);
                let got = par::with_threads(workers, || sim.run_parallel(&trace));
                let ctx = format!("contention {setup:?} workers={workers} mode={mode:?}");
                assert_eq!(got, expect, "report diverged: {ctx}");
                assert_eq!(
                    sim.per_core_totals(),
                    seq.per_core_totals(),
                    "per-shard totals diverged: {ctx}"
                );
                assert_eq!(
                    sim.ddr_stats(),
                    seq.ddr_stats(),
                    "DDR stats diverged: {ctx}"
                );
                assert_eq!(
                    sim.hbm_stats(),
                    seq.hbm_stats(),
                    "HBM stats diverged: {ctx}"
                );
                assert_eq!(
                    sim.mesh_stats(),
                    seq.mesh_stats(),
                    "mesh stats diverged: {ctx}"
                );
            }
        }
    }
}

/// The same adversarial trace with telemetry enabled: order-sensitive
/// recorders (MSHR occupancy, DRAM queue-wait histograms) must land on
/// the sequential values even though the engine has to flush around
/// them.
#[test]
fn contention_stress_telemetry_matches_sequential() {
    let trace = contention_trace(CORES, PER_CORE / 2);
    let setup = MemSetup::CacheMode;
    let mut plain = fresh(setup);
    let expect = plain.run(&trace);
    let mut seq = fresh(setup);
    seq.enable_telemetry();
    assert_eq!(seq.run(&trace), expect, "telemetry changed results");
    let expect_metrics = deterministic_metrics(&seq);
    for workers in WORKERS {
        for mode in [TimingMode::Sequential, TimingMode::Concurrent] {
            let mut sim = fresh(setup);
            sim.enable_telemetry();
            sim.set_timing_mode(Some(mode));
            sim.set_replay_window(512);
            let got = par::with_threads(workers, || sim.run_parallel(&trace));
            let ctx = format!("contention telemetry workers={workers} mode={mode:?}");
            assert_eq!(got, expect, "report diverged: {ctx}");
            assert_eq!(
                deterministic_metrics(&sim),
                expect_metrics,
                "device metrics diverged: {ctx}"
            );
        }
    }
}

/// Period/budget for the migration equivalence runs: small enough that
/// a 3200-access trace crosses many rebalance boundaries, so remap
/// events interleave densely with the accesses every engine replays.
const MIGRATE_SPEC: MigrationSpec = MigrationSpec::new(256, 16);

fn fresh_migrated() -> TraceSim {
    TraceSim::new(
        &MachineConfig::knl7210(MemSetup::DramOnly, 64),
        CORES,
        TracePlacement::Migrated(MIGRATE_SPEC),
        ByteSize::mib(4),
    )
}

/// Replay `trace` under active migration sequentially, sharded (both
/// forced timing modes, with a small window so remaps straddle window
/// refills), and streaming; everything observable — including the
/// scheduler's move-sequence digest — must be bit-identical. A remap
/// landing one access early or late on any engine changes the routing
/// of that access and shows up in the digest and device stats.
fn check_migration(
    label: &str,
    trace: &[TraceAccess],
    mut source: impl FnMut() -> Box<dyn TraceSource + Send>,
) {
    let mut seq = fresh_migrated();
    let expect = seq.run(trace);
    let expect_stats = seq
        .migration_stats()
        .expect("Migrated placement must build a scheduler");
    assert!(
        expect_stats.rebalances > 0,
        "{label}: trace too short to cross a rebalance boundary"
    );
    for workers in WORKERS {
        for mode in [TimingMode::Sequential, TimingMode::Concurrent] {
            let mut sim = fresh_migrated();
            sim.set_timing_mode(Some(mode));
            sim.set_replay_window(512);
            let got = par::with_threads(workers, || sim.run_parallel(trace));
            let ctx = format!("migrated {label} workers={workers} mode={mode:?}");
            assert_eq!(got, expect, "report diverged: {ctx}");
            assert_eq!(
                sim.migration_stats().as_ref(),
                Some(&expect_stats),
                "migration stats diverged: {ctx}"
            );
            assert_eq!(
                sim.per_core_totals(),
                seq.per_core_totals(),
                "per-shard totals diverged: {ctx}"
            );
            assert_eq!(
                sim.ddr_stats(),
                seq.ddr_stats(),
                "DDR stats diverged: {ctx}"
            );
            assert_eq!(
                sim.hbm_stats(),
                seq.hbm_stats(),
                "HBM stats diverged: {ctx}"
            );
            assert_eq!(
                sim.mesh_stats(),
                seq.mesh_stats(),
                "mesh stats diverged: {ctx}"
            );
        }

        let mut stream_sim = fresh_migrated();
        let got = par::with_threads(workers, || {
            let mut src = source();
            replay_streaming(&mut stream_sim, src.as_mut())
        });
        let ctx = format!("migrated streaming {label} workers={workers}");
        assert_eq!(got, expect, "report diverged: {ctx}");
        assert_eq!(
            stream_sim.migration_stats().as_ref(),
            Some(&expect_stats),
            "migration stats diverged: {ctx}"
        );
        assert_eq!(
            stream_sim.ddr_stats(),
            seq.ddr_stats(),
            "DDR stats diverged: {ctx}"
        );
        assert_eq!(
            stream_sim.hbm_stats(),
            seq.hbm_stats(),
            "HBM stats diverged: {ctx}"
        );
    }
}

/// Migration equivalence across the five paper generators: remaps must
/// land at the same trace offset no matter how the replay is sharded.
#[test]
fn migration_parallel_equals_sequential() {
    for kind in TraceKind::ALL {
        let trace = kind.generate(CORES, PER_CORE, SEED);
        check_migration(&format!("{kind:?}"), &trace, || {
            kind.source(CORES, PER_CORE, SEED)
        });
    }
}

/// Same contract on the phased hot/cold workload the `T`-sweep uses —
/// the one trace where the scheduler actually promotes and demotes
/// whole waves of pages every period.
#[test]
fn migration_hot_cold_parallel_equals_sequential() {
    let (phases, per_core) = (3, 160);
    let (hot, cold) = (64 << 10, 4 << 20);
    let mk = || -> Box<dyn TraceSource + Send> {
        Box::new(HotColdSource::new(CORES, phases, per_core, hot, cold, SEED))
    };
    let trace = {
        let mut src = mk();
        let mut out = Vec::new();
        while let Some(a) = src.next_access() {
            out.push(a);
        }
        out
    };
    let mut seq = fresh_migrated();
    seq.run(&trace);
    let stats = seq.migration_stats().unwrap();
    assert!(
        stats.promoted_pages > 0 && stats.demoted_pages > 0,
        "hot/cold trace must drive promotions and demotions, got {stats:?}"
    );
    check_migration("HotCold", &trace, mk);
}

/// Tentpole contract for in-replay time-series sampling: enabling the
/// sampler must leave replay results bit-identical, and the sampled
/// windows themselves must be bit-identical across the sequential,
/// sharded (both forced timing modes), and streaming engines at every
/// worker count — the sampling clock is merge-order simulated
/// progress, not wall time, so the exported JSONL matches byte for
/// byte. Covers all five paper generators.
#[test]
fn timeseries_sampling_invisible_and_identical_across_engines() {
    // Co-prime with the generators' burst lengths so boundaries land
    // on every access class, not just burst edges.
    const INTERVAL: u64 = 257;
    const CAPACITY: usize = 64;
    let setup = MemSetup::CacheMode;
    for kind in TraceKind::ALL {
        let trace = kind.generate(CORES, PER_CORE, SEED);
        let mut plain = fresh(setup);
        let expect = plain.run(&trace);

        let mut seq = fresh(setup);
        seq.enable_timeseries(INTERVAL, CAPACITY);
        assert_eq!(seq.run(&trace), expect, "sampling changed {kind:?} results");
        let rec = seq.timeseries().expect("sampling enabled");
        assert!(
            rec.windows().count() > 1,
            "{kind:?}: trace too short to close multiple windows"
        );
        let expect_jsonl = rec.to_jsonl();

        for workers in WORKERS {
            for mode in [TimingMode::Sequential, TimingMode::Concurrent] {
                let mut sim = fresh(setup);
                sim.enable_timeseries(INTERVAL, CAPACITY);
                sim.set_timing_mode(Some(mode));
                sim.set_replay_window(512);
                let got = par::with_threads(workers, || sim.run_parallel(&trace));
                let ctx = format!("{kind:?} workers={workers} mode={mode:?}");
                assert_eq!(got, expect, "sampled report diverged: {ctx}");
                assert_eq!(
                    sim.timeseries().expect("sampling enabled").to_jsonl(),
                    expect_jsonl,
                    "sampled windows diverged: {ctx}"
                );
            }

            let mut stream_sim = fresh(setup);
            stream_sim.enable_timeseries(INTERVAL, CAPACITY);
            let got = par::with_threads(workers, || {
                let mut source = kind.source(CORES, PER_CORE, SEED);
                replay_streaming(&mut stream_sim, source.as_mut())
            });
            let ctx = format!("streaming {kind:?} workers={workers}");
            assert_eq!(got, expect, "sampled report diverged: {ctx}");
            assert_eq!(
                stream_sim
                    .timeseries()
                    .expect("sampling enabled")
                    .to_jsonl(),
                expect_jsonl,
                "sampled windows diverged: {ctx}"
            );
        }
    }
}

/// The migration series under a deliberately tiny ring: the resident
/// and move counts sampled mid-wave, plus the ring-drop count, must be
/// identical on every engine — and the hot/cold workload guarantees
/// the series actually moves (promotion and demotion waves).
#[test]
fn timeseries_migration_series_identical_across_engines() {
    const INTERVAL: u64 = 131;
    const CAPACITY: usize = 4; // force ring eviction
    let (phases, per_core) = (3, 160);
    let (hot, cold) = (64 << 10, 4 << 20);
    let mk_src = || -> Box<dyn TraceSource + Send> {
        Box::new(HotColdSource::new(CORES, phases, per_core, hot, cold, SEED))
    };
    let trace = {
        let mut src = mk_src();
        let mut out = Vec::new();
        while let Some(a) = src.next_access() {
            out.push(a);
        }
        out
    };
    let mut plain = fresh_migrated();
    let expect = plain.run(&trace);

    let mut seq = fresh_migrated();
    seq.enable_timeseries(INTERVAL, CAPACITY);
    assert_eq!(seq.run(&trace), expect, "sampling changed migrated results");
    let rec = seq.timeseries().expect("sampling enabled");
    assert!(rec.dropped() > 0, "ring must overflow at capacity 4");
    let resident = rec
        .series_names()
        .iter()
        .position(|&n| n == "migrate.resident_pages")
        .expect("resident series registered");
    assert!(
        rec.windows().any(|w| w.values[resident] > 0.0),
        "resident-page series never moved"
    );
    let expect_jsonl = rec.to_jsonl();

    for workers in WORKERS {
        for mode in [TimingMode::Sequential, TimingMode::Concurrent] {
            let mut sim = fresh_migrated();
            sim.enable_timeseries(INTERVAL, CAPACITY);
            sim.set_timing_mode(Some(mode));
            sim.set_replay_window(512);
            let got = par::with_threads(workers, || sim.run_parallel(&trace));
            let ctx = format!("migrated sampling workers={workers} mode={mode:?}");
            assert_eq!(got, expect, "report diverged: {ctx}");
            assert_eq!(
                sim.timeseries().expect("sampling enabled").to_jsonl(),
                expect_jsonl,
                "sampled windows diverged: {ctx}"
            );
        }

        let mut stream_sim = fresh_migrated();
        stream_sim.enable_timeseries(INTERVAL, CAPACITY);
        let got = par::with_threads(workers, || {
            let mut src = mk_src();
            replay_streaming(&mut stream_sim, src.as_mut())
        });
        let ctx = format!("migrated streaming sampling workers={workers}");
        assert_eq!(got, expect, "report diverged: {ctx}");
        assert_eq!(
            stream_sim
                .timeseries()
                .expect("sampling enabled")
                .to_jsonl(),
            expect_jsonl,
            "sampled windows diverged: {ctx}"
        );
    }
}

#[test]
fn figure_sweep_json_identical_across_worker_counts() {
    // The figure pipeline (`repro export`) must serialize byte-identical
    // JSON no matter how many workers evaluate the sweeps.
    let capture = || {
        let series = hybridmem::SizeSweep::paper(hybridmem::AppSpec::Stream, vec![2.0, 24.0]).run();
        let fig = hybridmem::FigureData {
            id: "fig-eq".into(),
            title: "worker-count determinism".into(),
            x_label: "Size (GB)".into(),
            y_label: "GB/s".into(),
            series,
            text: String::new(),
        };
        hybridmem::Archive::capture("equivalence check", vec![fig]).to_json()
    };
    let one = par::with_threads(1, capture);
    let eight = par::with_threads(8, capture);
    assert_eq!(one.as_bytes(), eight.as_bytes());
}

//! Golden-file tests for the telemetry exporters.
//!
//! The Chrome `trace_event` exporter promises a *stable wire format*:
//! fixed field order per event, one JSON object per line, timestamps
//! sorted non-decreasing. Tools outside this repo (Perfetto,
//! about:tracing, ad-hoc jq pipelines) parse these files, so format
//! drift is a breaking change even when every value is still correct.
//! These tests pin both exporters byte-for-byte against goldens in
//! `tests/golden/`; regenerate them with
//! `BLESS_GOLDEN=1 cargo test --test telemetry_golden` after an
//! intentional format change, and review the diff.

use knl::tracesim::{TracePlacement, TraceSim};
use knl::{MachineConfig, MemSetup};
use simfabric::telemetry::{chrome_trace_jsonl, MetricsRegistry, SpanLog, SpanRecord};
use simfabric::{par, ByteSize, TimeSeriesRecorder};
use workloads::tracegen::{replay_streaming, TraceKind};

/// Compare `got` against the golden file at `tests/golden/<name>`,
/// or rewrite the golden when `BLESS_GOLDEN=1`.
fn assert_golden(name: &str, got: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, got).expect("bless golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run with BLESS_GOLDEN=1 to create)"));
    assert_eq!(
        got, want,
        "{name} drifted from its golden; if intentional, re-bless with BLESS_GOLDEN=1"
    );
}

/// A hand-built span log + registry covering every exporter feature:
/// multiple threads, out-of-order appends (the exporter must sort),
/// span args, and all three metric kinds.
fn sample() -> (SpanLog, MetricsRegistry) {
    let mut log = SpanLog::new();
    log.push(SpanRecord {
        name: "classify".into(),
        cat: "replay",
        ts_us: 120.5,
        dur_us: 40.25,
        tid: 0,
        args: vec![("accesses", 4096.0)],
    });
    // Appended out of order: the producer thread logs generation spans
    // after the consumer has already logged classification.
    log.push(SpanRecord {
        name: "generate".into(),
        cat: "replay",
        ts_us: 100.0,
        dur_us: 15.0,
        tid: 1,
        args: vec![("accesses", 4096.0)],
    });
    log.push(SpanRecord {
        name: "merge".into(),
        cat: "replay",
        ts_us: 161.0,
        dur_us: 80.5,
        tid: 0,
        args: vec![],
    });
    log.push(SpanRecord {
        name: "finish".into(),
        cat: "replay",
        ts_us: 242.0,
        dur_us: 1.5,
        tid: 0,
        args: vec![("accesses", 4096.0), ("sim_us", 1234.5)],
    });
    let mut reg = MetricsRegistry::new();
    reg.counter("cache.l1_hits", 3500);
    reg.counter("cache.memory_misses", 96);
    reg.gauge("pipeline.queue_high_water", 2.0);
    for wait in [0, 0, 100, 900, 6400] {
        reg.record("dram.ddr.queue_wait_ps", wait);
    }
    (log, reg)
}

#[test]
fn chrome_trace_exporter_matches_golden() {
    let (log, reg) = sample();
    assert_golden("chrome_trace.jsonl", &chrome_trace_jsonl(&log, &reg));
}

#[test]
fn metrics_dump_matches_golden() {
    let (_, reg) = sample();
    let doc = hybridmem::metrics_to_json(&reg);
    hybridmem::check_metrics(&doc).expect("golden dump validates");
    assert_golden("metrics.json", &doc.to_pretty());
}

/// A hand-built time-series recorder covering every exporter feature:
/// a counter and a gauge, full windows, a partial trailing window,
/// and a ring eviction (capacity 3 over 4 windows → dropped = 1).
fn sample_timeseries() -> TimeSeriesRecorder {
    let mut rec = TimeSeriesRecorder::new(4, 3);
    let lines = rec.register_counter("dev.lines");
    let inflight = rec.register_gauge("mshr.inflight");
    for i in 0..14u64 {
        rec.add(lines, 3.0);
        rec.set(inflight, (i % 5) as f64);
        if rec.tick() {
            rec.close_window();
        }
    }
    rec.finish();
    rec
}

#[test]
fn timeseries_jsonl_exporter_matches_golden() {
    let rec = sample_timeseries();
    let text = rec.to_jsonl();
    let summary = hybridmem::check_timeseries(&text).expect("golden document validates");
    assert_eq!(summary.windows, 3, "ring keeps the newest 3 windows");
    assert_eq!(summary.dropped, 1);
    assert_golden("timeseries.jsonl", &text);
}

#[test]
fn timeseries_chrome_counter_exporter_matches_golden() {
    assert_golden(
        "timeseries_chrome.jsonl",
        &sample_timeseries().chrome_counter_trace(),
    );
}

/// End-to-end golden: the full in-replay sampling pipeline on a tiny
/// cache-mode trace, pinned byte-for-byte. Any engine change that
/// moves a sampled value re-blesses this file *visibly* — the
/// equivalence suites already prove all engines and worker counts
/// agree, so one golden pins them all.
#[test]
fn replay_timeseries_export_matches_golden() {
    let mut sim = TraceSim::new(
        &MachineConfig::knl7210(MemSetup::CacheMode, 64),
        4,
        TracePlacement::AllDdr,
        ByteSize::mib(4),
    );
    sim.enable_timeseries(250, 16);
    let report = par::with_threads(2, || {
        let mut source = TraceKind::Stream.source(4, 500, 0xD1FF);
        replay_streaming(&mut sim, source.as_mut())
    });
    assert!(report.accesses > 0);
    let text = sim.timeseries().expect("timeseries on").to_jsonl();
    hybridmem::check_timeseries(&text).expect("replay export validates");
    assert_golden("timeseries_replay.jsonl", &text);
}

/// End-to-end: a real (tiny) streaming profile passes both structural
/// checkers, covers every replay phase, and exports enough device
/// metric series to be useful in Perfetto.
#[test]
fn real_profile_validates_end_to_end() {
    let mut sim = TraceSim::new(
        &MachineConfig::knl7210(MemSetup::CacheMode, 64),
        4,
        TracePlacement::AllDdr,
        ByteSize::mib(4),
    );
    sim.enable_telemetry();
    let report = par::with_threads(2, || {
        let mut source = TraceKind::Stream.source(4, 500, 0xD1FF);
        replay_streaming(&mut sim, source.as_mut())
    });
    assert!(report.accesses > 0);
    let registry = sim.metrics_registry();
    let text = chrome_trace_jsonl(sim.telemetry_spans().expect("telemetry on"), &registry);
    let trace = hybridmem::check_chrome_trace(&text).expect("profile validates");
    for phase in ["generate", "classify", "merge", "finish"] {
        assert!(
            trace.span_names.iter().any(|n| n == phase),
            "missing {phase:?} in {:?}",
            trace.span_names
        );
    }
    assert!(
        trace.counter_series >= 5,
        "expected >= 5 device series, got {}",
        trace.counter_series
    );
    let metrics = hybridmem::metrics_to_json(&registry);
    let summary = hybridmem::check_metrics(&metrics).expect("metrics validate");
    assert!(summary.total() >= 5);
}

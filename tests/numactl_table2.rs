//! Table II end to end: the numactl front end, the policy engine and
//! the machine configurations must agree on what the OS shows in each
//! memory mode.

use knl::MemSetup;
use knl_hybrid_memory::prelude::*;
use numamem::numactl::{parse_numactl, table2_panel, NumactlCommand};
use numamem::{MemPolicy, NumaSystem};

#[test]
fn table2_panels_match_paper_exactly() {
    assert_eq!(
        table2_panel(&MemSetup::DramOnly.topology()),
        "Distances: 0 (96 GB) 1 (16 GB)\n0 10 31\n1 31 10\n"
    );
    assert_eq!(
        table2_panel(&MemSetup::CacheMode.topology()),
        "Distances: 0 (96 GB)\n0 10\n"
    );
}

#[test]
fn paper_invocations_drive_the_policy_engine() {
    // §III-C: "The DRAM configuration ... numactl --membind=0", etc.
    let topo = MemSetup::DramOnly.topology();
    let mut system = NumaSystem::new(topo.clone());

    let cmd = parse_numactl(&["--membind=0"], &topo).unwrap();
    let NumactlCommand::Policy(policy) = cmd else {
        panic!("expected a policy")
    };
    let alloc = system.allocate(ByteSize::gib(30), &policy).unwrap();
    assert_eq!(alloc.fraction_on(0), 1.0);

    let cmd = parse_numactl(&["--membind=1"], &topo).unwrap();
    let NumactlCommand::Policy(policy) = cmd else {
        panic!("expected a policy")
    };
    // 30 GB cannot bind to the 16-GB node: the exact failure that
    // makes the paper's HBM bars disappear.
    assert!(system.allocate(ByteSize::gib(30), &policy).is_err());
    let ok = system.allocate(ByteSize::gib(10), &policy).unwrap();
    assert_eq!(ok.fraction_on(1), 1.0);
}

#[test]
fn machine_alloc_mirrors_numactl_membind() {
    // Machine::alloc under each setup must place exactly where the
    // paper's numactl invocation would.
    let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
    let r = dram.alloc("x", ByteSize::gib(20)).unwrap();
    assert_eq!(r.hbm_fraction, 0.0);

    let mut hbm = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
    let r = hbm.alloc("x", ByteSize::gib(10)).unwrap();
    assert_eq!(r.hbm_fraction, 1.0);
    assert!(hbm.alloc("y", ByteSize::gib(10)).is_err());

    // Cache mode has one node; allocation succeeds, no HBM fraction.
    let mut cache = Machine::knl7210(MemSetup::CacheMode, 64).unwrap();
    let r = cache.alloc("x", ByteSize::gib(20)).unwrap();
    assert_eq!(r.hbm_fraction, 0.0);
}

#[test]
fn cache_mode_hides_hbw_from_memkind() {
    // hbw_malloc must fail in cache mode — MCDRAM is invisible.
    let heap = memkind_sim::MemkindHeap::new(MemSetup::CacheMode.topology());
    assert!(!heap.check_available(Kind::Hbw));
    assert!(heap.hbw_malloc(ByteSize::kib(4)).is_err());
    let heap = memkind_sim::MemkindHeap::new(MemSetup::DramOnly.topology());
    assert!(heap.check_available(Kind::Hbw));
}

#[test]
fn interleave_policy_spreads_as_numactl_would() {
    let topo = MemSetup::DramOnly.topology();
    let mut system = NumaSystem::new(topo.clone());
    let cmd = parse_numactl(&["--interleave=all"], &topo).unwrap();
    let NumactlCommand::Policy(policy) = cmd else {
        panic!("expected a policy")
    };
    assert_eq!(policy, MemPolicy::Interleave(vec![0, 1]));
    let alloc = system.allocate(ByteSize::gib(4), &policy).unwrap();
    assert!((alloc.fraction_on(0) - 0.5).abs() < 0.01);
    assert!((alloc.fraction_on(1) - 0.5).abs() < 0.01);
}

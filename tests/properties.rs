//! Cross-crate property tests on the invariants the simulator's
//! correctness rests on, driven by seeded random cases from the
//! in-tree PRNG (deterministic across runs).

use cachesim::cache::{AccessKind, Cache, CacheConfig};
use cachesim::replacement::ReplacementPolicy;
use knl::tracesim::{TracePlacement, TraceSim};
use knl::MachineConfig;
use knl_hybrid_memory::prelude::*;
use memkind_sim::migrate::{MigrationCost, MigrationSpec, PageScheduler};
use memkind_sim::{Arena, MemkindHeap};
use numamem::system::PAGE_BYTES;
use numamem::{MemPolicy, NumaSystem, NumaTopology};
use simfabric::prng::Rng;
use simfabric::SimTime;
use workloads::graph500::Graph;
use workloads::tinymembench::ChaseBuffer;

/// The arena never double-allocates: live extents are disjoint,
/// and live + free bytes always equals the span.
#[test]
fn arena_conservation() {
    let mut rng = Rng::seed_from_u64(0x1007_0001);
    for case in 0..64 {
        let len = rng.gen_range(1usize..60);
        let ops: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.gen_range(0u64..64), rng.gen()))
            .collect();
        let mut arena = Arena::new(0, 256 * PAGE_BYTES);
        let mut live: Vec<u64> = Vec::new();
        for (size_pages, free_instead) in ops {
            if free_instead && !live.is_empty() {
                let addr = live.swap_remove((size_pages as usize) % live.len());
                arena.free(addr);
            } else if let Some(addr) = arena.alloc(size_pages * PAGE_BYTES) {
                assert_eq!(addr % PAGE_BYTES, 0, "case {case}");
                assert!(!live.contains(&addr), "case {case}");
                live.push(addr);
            }
            assert_eq!(
                arena.live_bytes() + arena.free_bytes(),
                256 * PAGE_BYTES,
                "case {case}"
            );
            assert_eq!(arena.live_count(), live.len(), "case {case}");
        }
    }
}

/// NUMA allocation conservation: free pages decrease by exactly the
/// pages allocated, and freeing restores them.
#[test]
fn numa_system_conservation() {
    let mut rng = Rng::seed_from_u64(0x1007_0002);
    for case in 0..64 {
        let len = rng.gen_range(1usize..20);
        let sizes: Vec<u64> = (0..len).map(|_| rng.gen_range(1u64..4096)).collect();
        let mut sys = NumaSystem::new(NumaTopology::knl_flat());
        let total_before = sys.free_on(0).as_u64() + sys.free_on(1).as_u64();
        let mut allocs = Vec::new();
        for (i, kib) in sizes.iter().enumerate() {
            let policy = match i % 3 {
                0 => MemPolicy::Default,
                1 => MemPolicy::Preferred(1),
                _ => MemPolicy::Interleave(vec![0, 1]),
            };
            if let Ok(a) = sys.allocate(ByteSize::kib(*kib), &policy) {
                allocs.push(a);
            }
        }
        let held: u64 = allocs.iter().map(|a| a.pages() * PAGE_BYTES).sum();
        assert_eq!(
            sys.free_on(0).as_u64() + sys.free_on(1).as_u64(),
            total_before - held,
            "case {case}"
        );
        for a in &allocs {
            sys.free(a);
        }
        assert_eq!(
            sys.free_on(0).as_u64() + sys.free_on(1).as_u64(),
            total_before,
            "case {case}"
        );
    }
}

/// Cache inclusion-of-reference: immediately after any access, a
/// probe of the same address hits (for allocate-on-miss configs),
/// and occupancy never exceeds capacity.
#[test]
fn cache_probe_after_access() {
    let mut rng = Rng::seed_from_u64(0x1007_0003);
    for case in 0..64 {
        let len = rng.gen_range(1usize..200);
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..(1 << 20))).collect();
        let policy = [
            ReplacementPolicy::Lru,
            ReplacementPolicy::PseudoLru,
            ReplacementPolicy::Fifo,
        ][rng.gen_range(0usize..3)];
        let mut cache = Cache::new(CacheConfig {
            capacity: ByteSize::kib(4),
            line_bytes: 64,
            ways: 4,
            replacement: policy,
            write_allocate: true,
        });
        for &a in &addrs {
            cache.access(a, AccessKind::Read);
            assert!(
                cache.probe(a),
                "case {case}: line absent right after access"
            );
            assert!(cache.occupancy() <= 64, "case {case}");
        }
        let s = cache.stats();
        assert_eq!(s.accesses(), addrs.len() as u64, "case {case}");
    }
}

/// The heap's address→node map is consistent with the reported
/// placement fractions.
#[test]
fn heap_node_of_matches_fractions() {
    let mut rng = Rng::seed_from_u64(0x1007_0004);
    for case in 0..64 {
        let len = rng.gen_range(1usize..12);
        let sizes_kib: Vec<u64> = (0..len).map(|_| rng.gen_range(4u64..512)).collect();
        let heap = MemkindHeap::new(NumaTopology::knl_flat());
        for (i, kib) in sizes_kib.iter().enumerate() {
            let kind = [Kind::Default, Kind::Hbw, Kind::Interleave][i % 3];
            let block = heap.malloc(kind, ByteSize::kib(*kib)).unwrap();
            let pages = block.size.pages(PAGE_BYTES).max(1);
            let mut on_hbm = 0u64;
            for p in 0..pages {
                if heap.node_of(block.addr + p * PAGE_BYTES) == Some(1) {
                    on_hbm += 1;
                }
            }
            let frac = on_hbm as f64 / pages as f64;
            assert!(
                (frac - heap.fraction_on(&block, 1)).abs() < 1e-9,
                "case {case}"
            );
        }
    }
}

/// Sattolo chase buffers are always a single full cycle.
#[test]
fn chase_buffer_single_cycle() {
    let mut rng = Rng::seed_from_u64(0x1007_0005);
    for case in 0..64 {
        let n = rng.gen_range(2usize..512);
        let seed: u64 = rng.gen();
        let c = ChaseBuffer::new(n, seed);
        assert!(c.is_single_cycle(), "case {case}: n={n} seed={seed}");
    }
}

/// BFS parent trees always validate, for arbitrary edge lists.
#[test]
fn bfs_always_validates() {
    let mut rng = Rng::seed_from_u64(0x1007_0006);
    for case in 0..64 {
        let len = rng.gen_range(0usize..200);
        let edges: Vec<(u32, u32)> = (0..len)
            .map(|_| (rng.gen_range(0u32..64), rng.gen_range(0u32..64)))
            .collect();
        let root = rng.gen_range(0u32..64);
        let g = Graph::from_edges(64, &edges);
        let parents = g.bfs(root);
        assert!(g.validate_bfs(root, &parents).is_ok(), "case {case}");
        // Reached set is closed: every neighbour of a reached vertex
        // is reached.
        for v in 0..64u32 {
            if parents[v as usize] >= 0 {
                for &w in g.neighbors_of(v) {
                    assert!(parents[w as usize] >= 0, "case {case}: frontier leaked {w}");
                }
            }
        }
    }
}

/// Page-migration tier accounting: under arbitrary seeded access
/// streams, random periods and random budgets, the scheduler never
/// holds more pages resident in MCDRAM than the budget, and every page
/// sits in exactly one tier — the resident count always equals
/// promotions minus demotions, and bytes moved price every crossing.
#[test]
fn migration_occupancy_within_budget() {
    let mut rng = Rng::seed_from_u64(0x1007_0008);
    let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    let cost = MigrationCost::from_devices(&cfg.ddr, &cfg.mcdram);
    for case in 0..64 {
        let period = rng.gen_range(1u64..64);
        let budget = rng.gen_range(1u32..16);
        let pages = rng.gen_range(1u64..48);
        let len = rng.gen_range(1usize..800);
        let mut s = PageScheduler::new(MigrationSpec::new(period, budget), cost)
            .expect("enabled spec must build");
        let mut mem_ticks = 0u64;
        for i in 0..len {
            let page = rng.gen_range(0u64..pages);
            let memory_level = rng.gen_bool(0.8);
            mem_ticks += u64::from(memory_level);
            s.tick(
                page * memkind_sim::PAGE_BYTES,
                memory_level,
                SimTime::from_ps(i as u64 * 100),
            );
            let stats = s.stats();
            let ctx = format!("case {case} tick {i} (T={period} budget={budget})");
            assert!(s.resident_pages() <= u64::from(budget), "{ctx}");
            assert!(stats.peak_resident_pages <= u64::from(budget), "{ctx}");
            assert_eq!(
                s.resident_pages(),
                stats.promoted_pages - stats.demoted_pages,
                "tier accounting leaked a page: {ctx}"
            );
            assert_eq!(
                stats.bytes_moved,
                (stats.promoted_pages + stats.demoted_pages) * memkind_sim::PAGE_BYTES,
                "{ctx}"
            );
        }
        let stats = s.stats();
        assert_eq!(
            stats.sampled_accesses, mem_ticks,
            "case {case}: sampled accesses lost"
        );
        assert_eq!(
            stats.rebalances,
            len as u64 / period,
            "case {case}: rebalance cadence drifted"
        );
    }
}

/// Degenerate migration specs are exactly the static all-DDR
/// placement: a zero period or zero budget builds no scheduler at all,
/// and a period longer than the whole trace never reaches a rebalance
/// point — all three must replay bit-identically to `AllDdr`.
#[test]
fn migration_degenerates_to_static_placement() {
    let mut rng = Rng::seed_from_u64(0x1007_0009);
    let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    for case in 0..8 {
        let cores = rng.gen_range(1u32..5);
        let per_core = rng.gen_range(50u64..200);
        let trace =
            workloads::tracegen::hot_cold_trace(cores, 2, per_core, 64 << 10, 1 << 20, rng.gen());
        let mk =
            |placement: TracePlacement| TraceSim::new(&cfg, cores, placement, ByteSize::mib(4));
        let mut base = mk(TracePlacement::AllDdr);
        let expect = base.run(&trace);
        // Period or budget of zero: no scheduler is even built.
        for spec in [MigrationSpec::new(0, 8), MigrationSpec::new(1, 0)] {
            let mut sim = mk(TracePlacement::Migrated(spec));
            assert_eq!(sim.run(&trace), expect, "case {case} {spec:?}");
            assert!(
                sim.migration_stats().is_none(),
                "case {case}: disabled {spec:?} built a scheduler"
            );
            assert_eq!(sim.ddr_stats(), base.ddr_stats(), "case {case} {spec:?}");
        }
        // A period strictly longer than the trace ticks but never
        // rebalances. (A period *equal* to the trace length fires one
        // rebalance on the final tick, so `+ 1` is the exact edge.)
        let spec = MigrationSpec::new(trace.len() as u64 + 1, 8);
        let mut sim = mk(TracePlacement::Migrated(spec));
        assert_eq!(sim.run(&trace), expect, "case {case}: infinite period");
        let stats = sim.migration_stats().expect("scheduler must exist");
        assert_eq!(stats.rebalances, 0, "case {case}");
        assert_eq!(stats.promoted_pages, 0, "case {case}");
        assert_eq!(sim.ddr_stats(), base.ddr_stats(), "case {case}");
        assert_eq!(sim.hbm_stats(), base.hbm_stats(), "case {case}");
    }
}

/// Migration rearranges *where* accesses land, never how many there
/// are: replay under an aggressive scheduler conserves the access
/// count, the memory-access count, and the per-device row totals sum.
#[test]
fn migration_conserves_accesses() {
    let mut rng = Rng::seed_from_u64(0x1007_000A);
    let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    for case in 0..8 {
        let cores = rng.gen_range(1u32..5);
        let per_core = rng.gen_range(50u64..200);
        let trace =
            workloads::tracegen::hot_cold_trace(cores, 2, per_core, 64 << 10, 1 << 20, rng.gen());
        let period = rng.gen_range(16u64..128);
        let budget = rng.gen_range(1u32..32);
        let mk =
            |placement: TracePlacement| TraceSim::new(&cfg, cores, placement, ByteSize::mib(4));
        let mut base = mk(TracePlacement::AllDdr);
        let expect = base.run(&trace);
        let mut sim = mk(TracePlacement::Migrated(MigrationSpec::new(period, budget)));
        let got = sim.run(&trace);
        let ctx = format!("case {case} (T={period} budget={budget})");
        assert_eq!(got.accesses, expect.accesses, "{ctx}");
        assert_eq!(got.memory_accesses, expect.memory_accesses, "{ctx}");
        let rows = |sim: &TraceSim| sim.ddr_stats().total() + sim.hbm_stats().total();
        assert_eq!(rows(&sim), rows(&base), "device row totals leaked: {ctx}");
        let stats = sim.migration_stats().unwrap();
        assert_eq!(
            stats.sampled_accesses, got.memory_accesses,
            "{ctx}: scheduler must sample each memory access exactly once"
        );
        assert!(
            stats.hbm_routed <= stats.sampled_accesses,
            "{ctx}: routed more accesses than were sampled"
        );
    }
}

/// Machine pricing is deterministic and monotone in bytes.
#[test]
fn stream_pricing_monotone() {
    let mut rng = Rng::seed_from_u64(0x1007_0007);
    for case in 0..64 {
        let gib = rng.gen_range(1u64..12);
        let extra = rng.gen_range(1u64..4);
        let mut m = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let small = m.alloc("s", ByteSize::gib(gib)).unwrap();
        let large = m.alloc("l", ByteSize::gib(gib + extra)).unwrap();
        let t_small = m.price_stream(&[knl::StreamOp::read_all(&small)]);
        let t_large = m.price_stream(&[knl::StreamOp::read_all(&large)]);
        assert!(t_large > t_small, "case {case}");
        // Deterministic.
        assert_eq!(
            t_small,
            m.price_stream(&[knl::StreamOp::read_all(&small)]),
            "case {case}"
        );
    }
}

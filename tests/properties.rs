//! Cross-crate property-based tests (proptest) on the invariants the
//! simulator's correctness rests on.

use cachesim::cache::{AccessKind, Cache, CacheConfig};
use cachesim::replacement::ReplacementPolicy;
use knl_hybrid_memory::prelude::*;
use memkind_sim::{Arena, MemkindHeap};
use numamem::system::PAGE_BYTES;
use numamem::{MemPolicy, NumaSystem, NumaTopology};
use proptest::prelude::*;
use workloads::graph500::Graph;
use workloads::tinymembench::ChaseBuffer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The arena never double-allocates: live extents are disjoint,
    /// and live + free bytes always equals the span.
    #[test]
    fn arena_conservation(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..60)) {
        let mut arena = Arena::new(0, 256 * PAGE_BYTES);
        let mut live: Vec<u64> = Vec::new();
        for (size_pages, free_instead) in ops {
            if free_instead && !live.is_empty() {
                let addr = live.swap_remove((size_pages as usize) % live.len());
                arena.free(addr);
            } else if let Some(addr) = arena.alloc(size_pages * PAGE_BYTES) {
                prop_assert_eq!(addr % PAGE_BYTES, 0);
                prop_assert!(!live.contains(&addr));
                live.push(addr);
            }
            prop_assert_eq!(arena.live_bytes() + arena.free_bytes(), 256 * PAGE_BYTES);
            prop_assert_eq!(arena.live_count(), live.len());
        }
    }

    /// NUMA allocation conservation: free pages decrease by exactly the
    /// pages allocated, and freeing restores them.
    #[test]
    fn numa_system_conservation(sizes in proptest::collection::vec(1u64..4096, 1..20)) {
        let mut sys = NumaSystem::new(NumaTopology::knl_flat());
        let total_before = sys.free_on(0).as_u64() + sys.free_on(1).as_u64();
        let mut allocs = Vec::new();
        for (i, kib) in sizes.iter().enumerate() {
            let policy = match i % 3 {
                0 => MemPolicy::Default,
                1 => MemPolicy::Preferred(1),
                _ => MemPolicy::Interleave(vec![0, 1]),
            };
            if let Ok(a) = sys.allocate(ByteSize::kib(*kib), &policy) {
                allocs.push(a);
            }
        }
        let held: u64 = allocs.iter().map(|a| a.pages() * PAGE_BYTES).sum();
        prop_assert_eq!(
            sys.free_on(0).as_u64() + sys.free_on(1).as_u64(),
            total_before - held
        );
        for a in &allocs {
            sys.free(a);
        }
        prop_assert_eq!(sys.free_on(0).as_u64() + sys.free_on(1).as_u64(), total_before);
    }

    /// Cache inclusion-of-reference: immediately after any access, a
    /// probe of the same address hits (for allocate-on-miss configs),
    /// and occupancy never exceeds capacity.
    #[test]
    fn cache_probe_after_access(
        addrs in proptest::collection::vec(0u64..(1 << 20), 1..200),
        policy_idx in 0usize..3,
    ) {
        let policy = [ReplacementPolicy::Lru, ReplacementPolicy::PseudoLru, ReplacementPolicy::Fifo][policy_idx];
        let mut cache = Cache::new(CacheConfig {
            capacity: ByteSize::kib(4),
            line_bytes: 64,
            ways: 4,
            replacement: policy,
            write_allocate: true,
        });
        for &a in &addrs {
            cache.access(a, AccessKind::Read);
            prop_assert!(cache.probe(a), "line absent right after access");
            prop_assert!(cache.occupancy() <= 64);
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
    }

    /// The heap's address→node map is consistent with the reported
    /// placement fractions.
    #[test]
    fn heap_node_of_matches_fractions(sizes_kib in proptest::collection::vec(4u64..512, 1..12)) {
        let heap = MemkindHeap::new(NumaTopology::knl_flat());
        for (i, kib) in sizes_kib.iter().enumerate() {
            let kind = [Kind::Default, Kind::Hbw, Kind::Interleave][i % 3];
            let block = heap.malloc(kind, ByteSize::kib(*kib)).unwrap();
            let pages = block.size.pages(PAGE_BYTES).max(1);
            let mut on_hbm = 0u64;
            for p in 0..pages {
                if heap.node_of(block.addr + p * PAGE_BYTES) == Some(1) {
                    on_hbm += 1;
                }
            }
            let frac = on_hbm as f64 / pages as f64;
            prop_assert!((frac - heap.fraction_on(&block, 1)).abs() < 1e-9);
        }
    }

    /// Sattolo chase buffers are always a single full cycle.
    #[test]
    fn chase_buffer_single_cycle(n in 2usize..512, seed in any::<u64>()) {
        let c = ChaseBuffer::new(n, seed);
        prop_assert!(c.is_single_cycle());
    }

    /// BFS parent trees always validate, for arbitrary edge lists.
    #[test]
    fn bfs_always_validates(
        edges in proptest::collection::vec((0u32..64, 0u32..64), 0..200),
        root in 0u32..64,
    ) {
        let g = Graph::from_edges(64, &edges);
        let parents = g.bfs(root);
        prop_assert!(g.validate_bfs(root, &parents).is_ok());
        // Reached set is closed: no unreached vertex adjacent to... the
        // converse: every neighbour of a reached vertex is reached.
        for v in 0..64u32 {
            if parents[v as usize] >= 0 {
                for &w in g.neighbors_of(v) {
                    prop_assert!(parents[w as usize] >= 0, "frontier leaked {w}");
                }
            }
        }
    }

    /// Machine pricing is deterministic and monotone in bytes.
    #[test]
    fn stream_pricing_monotone(gib in 1u64..12, extra in 1u64..4) {
        let mut m = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let small = m.alloc("s", ByteSize::gib(gib)).unwrap();
        let large = m.alloc("l", ByteSize::gib(gib + extra)).unwrap();
        let t_small = m.price_stream(&[knl::StreamOp::read_all(&small)]);
        let t_large = m.price_stream(&[knl::StreamOp::read_all(&large)]);
        prop_assert!(t_large > t_small);
        // Deterministic.
        prop_assert_eq!(t_small, m.price_stream(&[knl::StreamOp::read_all(&small)]));
    }
}

//! Cross-crate property tests on the invariants the simulator's
//! correctness rests on, driven by seeded random cases from the
//! in-tree PRNG (deterministic across runs).

use cachesim::cache::{AccessKind, Cache, CacheConfig};
use cachesim::replacement::ReplacementPolicy;
use knl_hybrid_memory::prelude::*;
use memkind_sim::{Arena, MemkindHeap};
use numamem::system::PAGE_BYTES;
use numamem::{MemPolicy, NumaSystem, NumaTopology};
use simfabric::prng::Rng;
use workloads::graph500::Graph;
use workloads::tinymembench::ChaseBuffer;

/// The arena never double-allocates: live extents are disjoint,
/// and live + free bytes always equals the span.
#[test]
fn arena_conservation() {
    let mut rng = Rng::seed_from_u64(0x1007_0001);
    for case in 0..64 {
        let len = rng.gen_range(1usize..60);
        let ops: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.gen_range(0u64..64), rng.gen()))
            .collect();
        let mut arena = Arena::new(0, 256 * PAGE_BYTES);
        let mut live: Vec<u64> = Vec::new();
        for (size_pages, free_instead) in ops {
            if free_instead && !live.is_empty() {
                let addr = live.swap_remove((size_pages as usize) % live.len());
                arena.free(addr);
            } else if let Some(addr) = arena.alloc(size_pages * PAGE_BYTES) {
                assert_eq!(addr % PAGE_BYTES, 0, "case {case}");
                assert!(!live.contains(&addr), "case {case}");
                live.push(addr);
            }
            assert_eq!(
                arena.live_bytes() + arena.free_bytes(),
                256 * PAGE_BYTES,
                "case {case}"
            );
            assert_eq!(arena.live_count(), live.len(), "case {case}");
        }
    }
}

/// NUMA allocation conservation: free pages decrease by exactly the
/// pages allocated, and freeing restores them.
#[test]
fn numa_system_conservation() {
    let mut rng = Rng::seed_from_u64(0x1007_0002);
    for case in 0..64 {
        let len = rng.gen_range(1usize..20);
        let sizes: Vec<u64> = (0..len).map(|_| rng.gen_range(1u64..4096)).collect();
        let mut sys = NumaSystem::new(NumaTopology::knl_flat());
        let total_before = sys.free_on(0).as_u64() + sys.free_on(1).as_u64();
        let mut allocs = Vec::new();
        for (i, kib) in sizes.iter().enumerate() {
            let policy = match i % 3 {
                0 => MemPolicy::Default,
                1 => MemPolicy::Preferred(1),
                _ => MemPolicy::Interleave(vec![0, 1]),
            };
            if let Ok(a) = sys.allocate(ByteSize::kib(*kib), &policy) {
                allocs.push(a);
            }
        }
        let held: u64 = allocs.iter().map(|a| a.pages() * PAGE_BYTES).sum();
        assert_eq!(
            sys.free_on(0).as_u64() + sys.free_on(1).as_u64(),
            total_before - held,
            "case {case}"
        );
        for a in &allocs {
            sys.free(a);
        }
        assert_eq!(
            sys.free_on(0).as_u64() + sys.free_on(1).as_u64(),
            total_before,
            "case {case}"
        );
    }
}

/// Cache inclusion-of-reference: immediately after any access, a
/// probe of the same address hits (for allocate-on-miss configs),
/// and occupancy never exceeds capacity.
#[test]
fn cache_probe_after_access() {
    let mut rng = Rng::seed_from_u64(0x1007_0003);
    for case in 0..64 {
        let len = rng.gen_range(1usize..200);
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..(1 << 20))).collect();
        let policy = [
            ReplacementPolicy::Lru,
            ReplacementPolicy::PseudoLru,
            ReplacementPolicy::Fifo,
        ][rng.gen_range(0usize..3)];
        let mut cache = Cache::new(CacheConfig {
            capacity: ByteSize::kib(4),
            line_bytes: 64,
            ways: 4,
            replacement: policy,
            write_allocate: true,
        });
        for &a in &addrs {
            cache.access(a, AccessKind::Read);
            assert!(
                cache.probe(a),
                "case {case}: line absent right after access"
            );
            assert!(cache.occupancy() <= 64, "case {case}");
        }
        let s = cache.stats();
        assert_eq!(s.accesses(), addrs.len() as u64, "case {case}");
    }
}

/// The heap's address→node map is consistent with the reported
/// placement fractions.
#[test]
fn heap_node_of_matches_fractions() {
    let mut rng = Rng::seed_from_u64(0x1007_0004);
    for case in 0..64 {
        let len = rng.gen_range(1usize..12);
        let sizes_kib: Vec<u64> = (0..len).map(|_| rng.gen_range(4u64..512)).collect();
        let heap = MemkindHeap::new(NumaTopology::knl_flat());
        for (i, kib) in sizes_kib.iter().enumerate() {
            let kind = [Kind::Default, Kind::Hbw, Kind::Interleave][i % 3];
            let block = heap.malloc(kind, ByteSize::kib(*kib)).unwrap();
            let pages = block.size.pages(PAGE_BYTES).max(1);
            let mut on_hbm = 0u64;
            for p in 0..pages {
                if heap.node_of(block.addr + p * PAGE_BYTES) == Some(1) {
                    on_hbm += 1;
                }
            }
            let frac = on_hbm as f64 / pages as f64;
            assert!(
                (frac - heap.fraction_on(&block, 1)).abs() < 1e-9,
                "case {case}"
            );
        }
    }
}

/// Sattolo chase buffers are always a single full cycle.
#[test]
fn chase_buffer_single_cycle() {
    let mut rng = Rng::seed_from_u64(0x1007_0005);
    for case in 0..64 {
        let n = rng.gen_range(2usize..512);
        let seed: u64 = rng.gen();
        let c = ChaseBuffer::new(n, seed);
        assert!(c.is_single_cycle(), "case {case}: n={n} seed={seed}");
    }
}

/// BFS parent trees always validate, for arbitrary edge lists.
#[test]
fn bfs_always_validates() {
    let mut rng = Rng::seed_from_u64(0x1007_0006);
    for case in 0..64 {
        let len = rng.gen_range(0usize..200);
        let edges: Vec<(u32, u32)> = (0..len)
            .map(|_| (rng.gen_range(0u32..64), rng.gen_range(0u32..64)))
            .collect();
        let root = rng.gen_range(0u32..64);
        let g = Graph::from_edges(64, &edges);
        let parents = g.bfs(root);
        assert!(g.validate_bfs(root, &parents).is_ok(), "case {case}");
        // Reached set is closed: every neighbour of a reached vertex
        // is reached.
        for v in 0..64u32 {
            if parents[v as usize] >= 0 {
                for &w in g.neighbors_of(v) {
                    assert!(parents[w as usize] >= 0, "case {case}: frontier leaked {w}");
                }
            }
        }
    }
}

/// Machine pricing is deterministic and monotone in bytes.
#[test]
fn stream_pricing_monotone() {
    let mut rng = Rng::seed_from_u64(0x1007_0007);
    for case in 0..64 {
        let gib = rng.gen_range(1u64..12);
        let extra = rng.gen_range(1u64..4);
        let mut m = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let small = m.alloc("s", ByteSize::gib(gib)).unwrap();
        let large = m.alloc("l", ByteSize::gib(gib + extra)).unwrap();
        let t_small = m.price_stream(&[knl::StreamOp::read_all(&small)]);
        let t_large = m.price_stream(&[knl::StreamOp::read_all(&large)]);
        assert!(t_large > t_small, "case {case}");
        // Deterministic.
        assert_eq!(
            t_small,
            m.price_stream(&[knl::StreamOp::read_all(&small)]),
            "case {case}"
        );
    }
}

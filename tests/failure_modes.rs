//! Failure injection: every layer must fail loudly and precisely when
//! driven outside its envelope — the paper's missing-bars cases and
//! the configuration mistakes a user would actually make.

use knl::{Machine, MachineConfig, MachineError, MemSetup};
use knl_hybrid_memory::prelude::*;
use memkind_sim::{HeapError, MemkindHeap};
use numamem::numactl::parse_numactl;
use numamem::{NumaSystem, NumaTopology, PolicyError};

#[test]
fn every_oversized_workload_fails_cleanly_on_hbm() {
    // Each application at its Table-I maximum must return the
    // allocation error (not panic, not a wrong number) under an
    // HBM-only bind.
    for (app, gb) in [
        (AppSpec::Dgemm, 24.0),
        (AppSpec::MiniFe, 30.0),
        (AppSpec::Gups, 32.0),
        (AppSpec::Graph500, 35.0),
        (AppSpec::XsBench, 90.0),
    ] {
        let workload = app.build(ByteSize::gib_f(gb));
        let mut machine = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
        match workload.run_model(&mut machine) {
            Err(MachineError::Alloc(_)) => {}
            other => panic!(
                "{} at {gb} GB on HBM: expected Alloc error, got {other:?}",
                app.name()
            ),
        }
        // The failed allocation must not leak HBM pages.
        assert_eq!(
            machine.heap().free_on(1),
            ByteSize::gib(16),
            "{} leaked HBM pages",
            app.name()
        );
    }
}

#[test]
fn xsbench_90gb_also_fails_on_interleave_but_runs_on_dram() {
    // 90 GB interleaved across 96+16 GB works; across HBM alone never.
    let xs = AppSpec::XsBench.build(ByteSize::gib(90));
    let mut inter = Machine::knl7210(MemSetup::Interleaved, 64).unwrap();
    assert!(xs.run_model(&mut inter).is_ok());
    let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
    assert!(xs.run_model(&mut dram).is_ok());
    // 110 GB fits nowhere.
    let too_big = AppSpec::XsBench.build(ByteSize::gib(110));
    let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
    assert!(matches!(
        too_big.run_model(&mut dram),
        Err(MachineError::Alloc(_))
    ));
}

#[test]
fn invalid_machine_configs_are_rejected_not_misrun() {
    for threads in [0u32, 257, 1000] {
        let cfg = MachineConfig::knl7210(MemSetup::DramOnly, threads);
        assert!(Machine::new(cfg).is_err(), "threads={threads} accepted");
    }
    let mut cfg = MachineConfig::knl7210(MemSetup::Hybrid, 64);
    cfg.hybrid_cache_fraction = 1.5;
    assert!(Machine::new(cfg).is_err());
    let mut cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    cfg.ddr.sustained_bw_gbs = -1.0;
    assert!(Machine::new(cfg).is_err());
}

#[test]
fn numactl_rejections_match_real_tool_semantics() {
    let topo = NumaTopology::knl_flat();
    // Unknown flags, malformed node lists, missing values.
    for bad in [
        vec!["--turbo"],
        vec!["--membind="],
        vec!["--membind", ""],
        vec!["--preferred=0,1"],
        vec!["--interleave=5-2"],
    ] {
        assert!(parse_numactl(&bad, &topo).is_err(), "accepted {bad:?}");
    }
    // Binding to a node that exists in the *other* mode's topology.
    let cache_topo = NumaTopology::knl_cache();
    let cmd = parse_numactl(&["--membind=1"], &cache_topo).unwrap();
    let numamem::numactl::NumactlCommand::Policy(policy) = cmd else {
        panic!()
    };
    let mut sys = NumaSystem::new(cache_topo);
    assert!(matches!(
        sys.allocate(ByteSize::kib(4), &policy),
        Err(PolicyError::UnknownNode(1))
    ));
}

#[test]
fn heap_misuse_is_diagnosed() {
    let heap = MemkindHeap::new(NumaTopology::knl_flat());
    let block = heap.malloc(Kind::Default, ByteSize::mib(1)).unwrap();
    heap.free(&block).unwrap();
    // Double free.
    assert_eq!(heap.free(&block), Err(HeapError::InvalidFree(block.addr)));
    // Migrating a dead block.
    assert!(heap.migrate(&block, 1).is_err());
    // Kind unavailable in cache mode.
    let cache_heap = MemkindHeap::new(NumaTopology::knl_cache());
    assert_eq!(
        cache_heap.malloc(Kind::HbwInterleave, ByteSize::kib(4)),
        Err(HeapError::KindUnavailable(Kind::HbwInterleave))
    );
}

#[test]
fn dgemm_256_threads_fails_like_the_paper() {
    // Fig. 6a footnote: DGEMM with 256 threads "can not complete
    // successfully" — the model surfaces that as an explicit error.
    let d = AppSpec::Dgemm.build(ByteSize::gib(6));
    let mut m = Machine::knl7210(MemSetup::DramOnly, 256).unwrap();
    match d.run_model(&mut m) {
        Err(MachineError::Invalid(msg)) => {
            assert!(msg.contains("256"), "message: {msg}")
        }
        other => panic!("expected Invalid error, got {other:?}"),
    }
}

#[test]
fn zero_work_is_priced_as_zero_not_nan() {
    let mut m = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
    let r = m.alloc("x", ByteSize::mib(1)).unwrap();
    let d = m.price_stream(&[]);
    assert!(d.is_zero());
    let d = m.price_random(&knl::RandomOp::probes(&r, 0));
    assert!(d.is_zero());
    assert!(m.elapsed().is_zero());
}

#[test]
fn hybrid_extremes_degenerate_sensibly() {
    // fraction = 0: all-flat, equivalent to the flat topology.
    let cfg = MachineConfig::knl7210_hybrid(0.0, 64);
    assert_eq!(cfg.allocatable_mcdram(), ByteSize::gib(16));
    assert_eq!(cfg.mcdram_cache_capacity(), ByteSize::ZERO);
    let mut m = Machine::new(cfg).unwrap();
    let r = m.alloc("x", ByteSize::gib(8)).unwrap();
    assert_eq!(r.hbm_fraction, 1.0); // HBW_PREFERRED fills the flat part
                                     // fraction = 1: hbw_malloc-style allocation has nowhere to go...
    let cfg = MachineConfig::knl7210_hybrid(1.0, 64);
    assert_eq!(cfg.allocatable_mcdram(), ByteSize::ZERO);
    let mut m = Machine::new(cfg).unwrap();
    // ...but HBW_PREFERRED falls back to DDR rather than failing.
    let r = m.alloc("x", ByteSize::gib(8)).unwrap();
    assert_eq!(r.hbm_fraction, 0.0);
}

//! Golden-file test for the migration `T`-sweep.
//!
//! The rendered sweep table is a deterministic function of the golden
//! [`MigrationSweepConfig`]: every makespan, page-move count and
//! energy figure in it is pinned byte-for-byte. Any change to the
//! scheduler's sampling, selection, cost model or engine threading
//! that shifts even one remap by one access shows up here as a diff.
//! Regenerate with `BLESS_GOLDEN=1 cargo test --test migration_golden`
//! after an intentional model change, and review the diff.

use hybridmem::{render_migration_sweep, run_migration_sweep, MigrationSweepConfig};

/// Compare `got` against the golden file at `tests/golden/<name>`,
/// or rewrite the golden when `BLESS_GOLDEN=1`.
fn assert_golden(name: &str, got: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, got).expect("bless golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run with BLESS_GOLDEN=1 to create)"));
    assert_eq!(
        got, want,
        "{name} drifted from its golden; if intentional, re-bless with BLESS_GOLDEN=1"
    );
}

#[test]
fn golden_migration_sweep_is_byte_stable() {
    let sweep = run_migration_sweep(&MigrationSweepConfig::golden());
    assert_golden("migration_sweep.txt", &render_migration_sweep(&sweep));
}

//! End-to-end contract of the advisor query service through the
//! public facade: batches answer bit-identically regardless of worker
//! width, cache capacity, or how queries are phrased within their
//! canonicalization buckets — and concurrent batch calls into one
//! service agree with a serial reference.
//!
//! Runs under both `TRACESIM_THREADS` pins of `scripts/ci.sh`, so the
//! pool-over-pool case (service workers over replay workers) is
//! exercised on every commit.

use knl_hybrid_memory::hybridmem::{answer, canonicalize, AdvisorQuery, AdvisorService};
use knl_hybrid_memory::simfabric::ByteSize;
use knl_hybrid_memory::workloads::tracegen::TraceKind;
use std::sync::Arc;

fn batch() -> Vec<AdvisorQuery> {
    let mut queries = Vec::new();
    for (i, kind) in [TraceKind::Stream, TraceKind::Gups].into_iter().enumerate() {
        for pages in [8u64, 16] {
            for jitter in [0u64, 1000, 4095] {
                queries.push(AdvisorQuery {
                    kind,
                    cores: 2,
                    accesses_per_core: 150,
                    seed: 0xA5 + i as u64,
                    budget: ByteSize::bytes((pages - 1) * 4096 + 4096 - jitter),
                    threads: 1 + (jitter % 64) as u32,
                    migrate_period: 0,
                });
            }
        }
    }
    queries
}

#[test]
fn service_answers_are_invariant_to_workers_and_capacity() {
    let queries = batch();
    let reference: Vec<_> = queries.iter().map(|q| answer(&canonicalize(q))).collect();
    for (workers, cap) in [(1, 0), (1, 16 << 20), (4, 16 << 20), (8, 1 << 10)] {
        let service = AdvisorService::new(cap, workers);
        let (answers, stats) = service.advise_batch(&queries);
        assert_eq!(stats.queries, queries.len());
        assert_eq!(stats.distinct, 4, "jitter must fold into 4 buckets");
        for (i, (got, want)) in answers.iter().zip(&reference).enumerate() {
            assert_eq!(
                **got, *want,
                "workers={workers} cap={cap}: query {i} diverged"
            );
        }
    }
}

#[test]
fn concurrent_batches_share_one_service_and_agree() {
    let queries = Arc::new(batch());
    let service = Arc::new(AdvisorService::new(16 << 20, 2));
    let reference: Vec<_> = queries.iter().map(|q| answer(&canonicalize(q))).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let service = Arc::clone(&service);
                let queries = Arc::clone(&queries);
                scope.spawn(move || service.advise_batch(&queries).0)
            })
            .collect();
        for handle in handles {
            let answers = handle.join().expect("batch thread panicked");
            for (got, want) in answers.iter().zip(&reference) {
                assert_eq!(**got, *want, "concurrent batch diverged");
            }
        }
    });
    // Three batches probe 4 distinct keys each — exactly 12 lookups —
    // and every miss lands exactly one insert (two racing batches may
    // both compute a key, bit-identically; the cache replaces, never
    // duplicates). Nothing fits in "evicted" at this size.
    let stats = service.cache().stats();
    assert_eq!(stats.hits + stats.misses, 12);
    assert_eq!(stats.inserts, stats.misses);
    assert_eq!(stats.evictions, 0);
    // With the races over, a fresh batch is pure cache.
    let (_, warm) = service.advise_batch(&queries);
    assert_eq!(warm.cache_hits, 4);
    assert_eq!(warm.computed, 0);
}

//! End-to-end shape validation: every finding the paper reports must
//! be preserved by the reproduction. This is the workspace's primary
//! acceptance test; EXPERIMENTS.md records its output.

use hybridmem::validate::{
    render_checks, validate_all, validate_fig2, validate_fig3, validate_fig4, validate_fig5,
    validate_fig6,
};

#[test]
fn fig2_stream_shapes_hold() {
    let checks = validate_fig2();
    assert!(
        checks.iter().all(|c| c.pass),
        "\n{}",
        render_checks(&checks)
    );
}

#[test]
fn fig3_latency_shapes_hold() {
    let checks = validate_fig3();
    assert!(
        checks.iter().all(|c| c.pass),
        "\n{}",
        render_checks(&checks)
    );
}

#[test]
fn fig4_application_shapes_hold() {
    let checks = validate_fig4();
    assert!(
        checks.iter().all(|c| c.pass),
        "\n{}",
        render_checks(&checks)
    );
}

#[test]
fn fig5_thread_bandwidth_shapes_hold() {
    let checks = validate_fig5();
    assert!(
        checks.iter().all(|c| c.pass),
        "\n{}",
        render_checks(&checks)
    );
}

#[test]
fn fig6_thread_application_shapes_hold() {
    let checks = validate_fig6();
    assert!(
        checks.iter().all(|c| c.pass),
        "\n{}",
        render_checks(&checks)
    );
}

#[test]
fn full_suite_has_expected_coverage() {
    let checks = validate_all();
    // Every figure is covered by at least one check.
    for fig in [
        "fig2", "fig3", "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig5", "fig6a", "fig6b",
        "fig6c", "fig6d",
    ] {
        assert!(
            checks.iter().any(|c| c.figure == fig),
            "no shape check covers {fig}"
        );
    }
    assert!(checks.len() >= 20, "only {} checks", checks.len());
}

//! Native-kernel benches: the real Rust implementations of the
//! paper's workloads at laptop scale (wall-clock, not simulated).

use bench::harness::{BenchmarkId, Criterion, Throughput};
use bench::{criterion_group, criterion_main};
use workloads::dgemm::matmul_blocked;
use workloads::graph500::{Graph, Kronecker};
use workloads::gups::GupsTable;
use workloads::minife::{assemble_27pt, cg_solve};
use workloads::stream::StreamArrays;
use workloads::xsbench::XsData;

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_stream");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let n = 1 << 20; // 24 MB across the three arrays
    let mut arrays = StreamArrays::new(n);
    group.throughput(Throughput::Bytes(3 * 8 * n as u64));
    group.bench_function("triad_1M", |b| b.iter(|| arrays.triad(3.0)));
    group.finish();
}

fn bench_dgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_dgemm");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for n in [128usize, 256] {
        let a = vec![1.5; n * n];
        let bm = vec![0.5; n * n];
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |b, &n| {
            b.iter(|| {
                let mut cm = vec![0.0; n * n];
                matmul_blocked(&a, &bm, &mut cm, n);
                bench::harness::black_box(cm[0])
            })
        });
    }
    group.finish();
}

fn bench_minife(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_minife");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let a = assemble_27pt(16);
    let n = a.rows();
    let b_rhs = vec![1.0; n];
    group.bench_function("cg_16cubed", |bch| {
        bch.iter(|| {
            let mut x = vec![0.0; n];
            bench::harness::black_box(cg_solve(&a, &b_rhs, &mut x, 1e-6, 50))
        })
    });
    group.finish();
}

fn bench_gups(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_gups");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let mut t = GupsTable::new(1 << 16);
    group.throughput(Throughput::Elements(1 << 18));
    group.bench_function("updates_256k", |b| {
        b.iter(|| bench::harness::black_box(t.run_updates(1 << 18, 42)))
    });
    group.finish();
}

fn bench_graph500(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_graph500");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let gen = Kronecker::new(12, 42);
    let g = Graph::from_edges(gen.vertices() as usize, &gen.generate());
    let root = (0..g.num_vertices() as u32)
        .find(|&v| !g.neighbors_of(v).is_empty())
        .unwrap();
    group.bench_function("bfs_scale12", |b| {
        b.iter(|| bench::harness::black_box(g.bfs(root)))
    });
    group.finish();
}

fn bench_xsbench(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_xsbench");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let data = XsData::build(32, 500, 7);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("lookups_10k", |b| {
        b.iter(|| bench::harness::black_box(data.run_lookups(10_000, 3)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stream,
    bench_dgemm,
    bench_minife,
    bench_gups,
    bench_graph500,
    bench_xsbench
);
criterion_main!(benches);

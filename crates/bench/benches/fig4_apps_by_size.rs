//! Fig. 4 bench: all five applications swept over problem size in the
//! three memory configurations (panels a–e).

use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use hybridmem::{AppSpec, SizeSweep, TraceSweep};
use knl::MemSetup;
use workloads::tracegen::TraceKind;

fn bench_fig4(c: &mut Criterion) {
    let panels: [(&str, AppSpec, &[f64]); 5] = [
        ("fig4a_dgemm", AppSpec::Dgemm, &[0.1, 6.0, 24.0]),
        ("fig4b_minife", AppSpec::MiniFe, &[0.9, 7.2, 28.8]),
        ("fig4c_gups", AppSpec::Gups, &[1.0, 8.0, 32.0]),
        ("fig4d_graph500", AppSpec::Graph500, &[1.1, 8.8, 35.0]),
        ("fig4e_xsbench", AppSpec::XsBench, &[5.6, 22.5, 90.0]),
    ];
    for (name, app, sizes) in panels {
        let mut group = c.benchmark_group(name);
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(800));
        group.bench_with_input(BenchmarkId::new("sweep", "paper_sizes"), &app, |b, &app| {
            b.iter(|| {
                let sweep = SizeSweep::paper(app, sizes.to_vec());
                bench::harness::black_box(sweep.run())
            })
        });
        group.finish();
    }
    // Trace-level counterpart: the fig-4 apps with trace generators,
    // replayed through the sharded parallel engine.
    let mut group = c.benchmark_group("fig4_trace_replay");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for kind in [TraceKind::Gups, TraceKind::XsBench, TraceKind::Bfs] {
        group.bench_with_input(
            BenchmarkId::new("run_parallel", kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let sweep = TraceSweep {
                        kinds: vec![kind],
                        cores: 16,
                        accesses_per_core: 1_000,
                        seed: 0xF14,
                        setups: vec![MemSetup::DramOnly, MemSetup::HbmOnly],
                    };
                    bench::harness::black_box(sweep.run())
                })
            },
        );
    }
    group.finish();
    for fig in [
        hybridmem::figures::fig4a(),
        hybridmem::figures::fig4b(),
        hybridmem::figures::fig4c(),
        hybridmem::figures::fig4d(),
        hybridmem::figures::fig4e(),
    ] {
        println!("{}", hybridmem::report::render_figure(&fig));
    }
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);

//! Fig. 3 bench: dual random read latency model over the block-size
//! sweep, plus the native pointer-chase kernel at cache-resident
//! scale as a sanity anchor.

use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use workloads::tinymembench::{fig3_block_sizes, ChaseBuffer};

fn bench_fig3_model(c: &mut Criterion) {
    let tlb = cachesim::tlb::TlbConfig::knl_4k();
    let ddr = memdev::ddr4_knl();
    let hbm = memdev::mcdram_knl();
    let mut group = c.benchmark_group("fig3_latency_model");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for block in fig3_block_sizes() {
        group.bench_with_input(
            BenchmarkId::new("dual_read_model", block.to_string()),
            &block,
            |b, &blk| {
                b.iter(|| {
                    let d = knl::dual_random_read_latency(&ddr, blk, &tlb);
                    let h = knl::dual_random_read_latency(&hbm, blk, &tlb);
                    bench::harness::black_box((d, h))
                })
            },
        );
    }
    group.finish();
    println!(
        "{}",
        hybridmem::report::render_figure(&hybridmem::figures::fig3())
    );
}

fn bench_native_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_native_chase");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for slots in [4_096usize, 65_536] {
        let buf = ChaseBuffer::new(slots, 42);
        group.bench_with_input(BenchmarkId::new("dual_chase", slots), &slots, |b, _| {
            b.iter(|| bench::harness::black_box(buf.dual_chase(0, 1, 10_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3_model, bench_native_chase);
criterion_main!(benches);

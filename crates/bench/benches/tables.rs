//! Table I and Table II regeneration, plus the §IV-A latency point
//! values.

use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use numamem::numactl::{hardware_report, table2_panel};
use numamem::NumaTopology;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    group.bench_function("table1_render", |b| {
        b.iter(|| bench::harness::black_box(workloads::catalog::render_table1()))
    });
    group.bench_function("table2_render", |b| {
        b.iter(|| {
            let flat = table2_panel(&NumaTopology::knl_flat());
            let cache = table2_panel(&NumaTopology::knl_cache());
            bench::harness::black_box((flat, cache))
        })
    });
    group.bench_function("numactl_hardware", |b| {
        b.iter(|| bench::harness::black_box(hardware_report(&NumaTopology::knl_flat())))
    });
    group.finish();

    println!(
        "{}",
        hybridmem::report::render_figure(&hybridmem::figures::table1())
    );
    println!(
        "{}",
        hybridmem::report::render_figure(&hybridmem::figures::table2())
    );
    let ddr = memdev::ddr4_knl();
    let hbm = memdev::mcdram_knl();
    println!(
        "latency: DRAM {:.1} ns, HBM {:.1} ns (paper: 130.4 / 154.0)",
        ddr.idle_latency.as_ns(),
        hbm.idle_latency.as_ns()
    );
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);

//! Ablation benches for the design choices DESIGN.md calls out:
//! hybrid-mode partition ratio, huge pages, cluster mode, MCDRAM-cache
//! associativity (direct-mapped vs 8-way via the exact cache model),
//! and the trace-vs-analytic cross-check.

use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use knl::access::RandomOp;
use knl::{Machine, MachineConfig, MemSetup};
use mesh::{ClusterMode, MeshModel};
use simfabric::ByteSize;
use workloads::stream::StreamBench;

/// Hybrid mode: sweep the MCDRAM cache fraction for a 20-GB STREAM
/// (the configuration the paper describes but does not evaluate).
fn bench_hybrid_fraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hybrid_fraction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for pct in [0u32, 25, 50, 75, 100] {
        group.bench_with_input(BenchmarkId::new("stream20GB", pct), &pct, |b, &pct| {
            b.iter(|| {
                let cfg = MachineConfig::knl7210_hybrid(pct as f64 / 100.0, 64);
                let mut m = Machine::new(cfg).unwrap();
                let bench = StreamBench::new(ByteSize::gib(20));
                bench::harness::black_box(bench.triad_bandwidth(&mut m).ok())
            })
        });
    }
    group.finish();
    // Print the sweep values.
    println!("hybrid-mode MCDRAM cache fraction vs STREAM(20GB) GB/s:");
    for pct in [0u32, 25, 50, 75, 100] {
        let cfg = MachineConfig::knl7210_hybrid(pct as f64 / 100.0, 64);
        let mut m = Machine::new(cfg).unwrap();
        match StreamBench::new(ByteSize::gib(20)).triad_bandwidth(&mut m) {
            Ok(bw) => println!("  {pct:>3}% cache: {bw:.1} GB/s"),
            Err(_) => println!("  {pct:>3}% cache: does not fit"),
        }
    }
}

/// Huge pages: 2-MB pages shrink the TLB overhead that drives the
/// Fig. 3 tail.
fn bench_huge_pages(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_huge_pages");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for huge in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("gups8GB", if huge { "2M" } else { "4K" }),
            &huge,
            |b, &huge| {
                b.iter(|| {
                    let mut cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
                    cfg.huge_pages = huge;
                    let mut m = Machine::new(cfg).unwrap();
                    let t = m.alloc("t", ByteSize::gib(8)).unwrap();
                    bench::harness::black_box(m.random_rate(&RandomOp::updates(&t, 1_000)))
                })
            },
        );
    }
    group.finish();
}

/// Cluster modes: average CHA→memory-port distance.
fn bench_cluster_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cluster_modes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for mode in [
        ClusterMode::AllToAll,
        ClusterMode::Quadrant,
        ClusterMode::Hemisphere,
        ClusterMode::Snc4,
    ] {
        group.bench_with_input(
            BenchmarkId::new("avg_mem_latency", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let m = MeshModel::knl(mode);
                    bench::harness::black_box(m.avg_memory_latency(true))
                })
            },
        );
    }
    group.finish();
    println!("cluster-mode average memory-path latency (MCDRAM):");
    for mode in [
        ClusterMode::AllToAll,
        ClusterMode::Quadrant,
        ClusterMode::Hemisphere,
    ] {
        let m = MeshModel::knl(mode);
        println!("  {mode:?}: {}", m.avg_memory_latency(true));
    }
}

/// MCDRAM cache associativity: exact direct-mapped cache vs an 8-way
/// set-associative alternative on a cyclic overflow sweep.
fn bench_msc_associativity(c: &mut Criterion) {
    use cachesim::cache::{AccessKind, Cache, CacheConfig};
    use cachesim::mcdram_cache::MemorySideCache;
    use cachesim::replacement::ReplacementPolicy;
    let mut group = c.benchmark_group("ablation_msc_associativity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let capacity = ByteSize::mib(1);
    let footprint = 2 * capacity.as_u64(); // 2x overflow
    group.bench_function("direct_mapped", |b| {
        b.iter(|| {
            let mut msc = MemorySideCache::new(capacity, 64);
            for _ in 0..2 {
                for a in (0..footprint).step_by(64) {
                    msc.access(a, false);
                }
            }
            bench::harness::black_box(msc.hit_rate())
        })
    });
    group.bench_function("eight_way_lru", |b| {
        b.iter(|| {
            let mut c8 = Cache::new(CacheConfig {
                capacity,
                line_bytes: 64,
                ways: 8,
                replacement: ReplacementPolicy::Lru,
                write_allocate: true,
            });
            for _ in 0..2 {
                for a in (0..footprint).step_by(64) {
                    c8.access(a, AccessKind::Read);
                }
            }
            bench::harness::black_box(c8.stats().hit_rate())
        })
    });
    group.finish();
    // Report the hit rates (the design insight: direct mapping gets 0%
    // on cyclic overflow — the Fig. 2 cliff; LRU gets 0% too, but
    // random replacement would not).
    let mut msc = MemorySideCache::new(capacity, 64);
    for _ in 0..2 {
        for a in (0..footprint).step_by(64) {
            msc.access(a, false);
        }
    }
    println!(
        "2x-overflow cyclic sweep hit rates: direct-mapped {:.3}",
        msc.hit_rate()
    );
}

/// Prefetcher: coverage on streaming vs random traces — the mechanism
/// behind §IV-B's "prefetcher ... can increase the number of memory
/// requests" and the calibrated per-core stream MLP.
fn bench_prefetcher(c: &mut Criterion) {
    use cachesim::prefetch::{Prefetcher, PrefetcherConfig};
    let mut group = c.benchmark_group("ablation_prefetcher");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let stream = workloads::tracegen::stream_trace(1, 4_000, 1);
    let random = workloads::tracegen::gups_trace(1, 1 << 28, 4_000, 5);
    for (name, trace) in [("stream", &stream), ("random", &random)] {
        group.bench_with_input(BenchmarkId::new("coverage", name), &trace, |b, trace| {
            b.iter(|| {
                let mut pf = Prefetcher::knl();
                for a in trace.iter() {
                    pf.observe(a.addr);
                }
                bench::harness::black_box(pf.coverage())
            })
        });
    }
    group.finish();
    for (name, trace) in [("stream", &stream), ("random", &random)] {
        let mut on = Prefetcher::knl();
        let mut off = Prefetcher::new(PrefetcherConfig::off());
        for a in trace.iter() {
            on.observe(a.addr);
            off.observe(a.addr);
        }
        println!(
            "prefetcher coverage on {name}: {:.1}% (disabled: {:.1}%)",
            on.coverage() * 100.0,
            off.coverage() * 100.0
        );
    }
}

criterion_group!(
    benches,
    bench_hybrid_fraction,
    bench_huge_pages,
    bench_cluster_modes,
    bench_msc_associativity,
    bench_prefetcher
);
criterion_main!(benches);

//! Fig. 5 bench: STREAM bandwidth under 1–4 hardware threads per core
//! on DRAM and HBM.

use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use knl::tracesim::{TracePlacement, TraceSim};
use knl::{Machine, MachineConfig, MemSetup};
use simfabric::{par, ByteSize};
use workloads::stream::StreamBench;
use workloads::tracegen::TraceKind;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_stream_threads");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let bench = StreamBench::new(ByteSize::gib(6));
    for setup in [MemSetup::DramOnly, MemSetup::HbmOnly] {
        for ht in 1..=4u32 {
            group.bench_with_input(
                BenchmarkId::new(setup.label(), format!("ht{ht}")),
                &ht,
                |b, &ht| {
                    b.iter(|| {
                        let mut m = Machine::knl7210(setup, 64 * ht).unwrap();
                        bench::harness::black_box(bench.triad_bandwidth(&mut m).unwrap())
                    })
                },
            );
        }
    }
    group.finish();
    // Trace-level counterpart: the STREAM trace replayed on the
    // sharded parallel engine at a 1/2/4/8 worker ladder (the replay
    // is bit-identical at every rung; only wall-clock changes).
    let mut group = c.benchmark_group("fig5_trace_replay_workers");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let trace = TraceKind::Stream.generate(16, 2_000, 0xF15);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("run_parallel", format!("workers{workers}")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
                    let mut sim = TraceSim::new(&cfg, 16, TracePlacement::AllDdr, ByteSize::mib(8));
                    par::with_threads(workers, || {
                        bench::harness::black_box(sim.run_parallel(&trace))
                    })
                })
            },
        );
    }
    group.finish();
    println!(
        "{}",
        hybridmem::report::render_figure(&hybridmem::figures::fig5())
    );
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);

//! Fig. 5 bench: STREAM bandwidth under 1–4 hardware threads per core
//! on DRAM and HBM.

use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use knl::{Machine, MemSetup};
use simfabric::ByteSize;
use workloads::stream::StreamBench;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_stream_threads");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let bench = StreamBench::new(ByteSize::gib(6));
    for setup in [MemSetup::DramOnly, MemSetup::HbmOnly] {
        for ht in 1..=4u32 {
            group.bench_with_input(
                BenchmarkId::new(setup.label(), format!("ht{ht}")),
                &ht,
                |b, &ht| {
                    b.iter(|| {
                        let mut m = Machine::knl7210(setup, 64 * ht).unwrap();
                        bench::harness::black_box(bench.triad_bandwidth(&mut m).unwrap())
                    })
                },
            );
        }
    }
    group.finish();
    println!(
        "{}",
        hybridmem::report::render_figure(&hybridmem::figures::fig5())
    );
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);

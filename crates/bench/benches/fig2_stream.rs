//! Fig. 2 bench: STREAM triad bandwidth under the three memory
//! configurations. Each Criterion target prices one figure point; the
//! printed throughput (model-GB/s) regenerates the figure's series.

use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use knl::{Machine, MemSetup};
use simfabric::ByteSize;
use workloads::stream::StreamBench;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_stream_triad");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for setup in MemSetup::PAPER_SETUPS {
        for gb in [4.0, 8.0, 11.4, 22.8, 44.0] {
            let bench = StreamBench::new(ByteSize::gib_f(gb));
            group.bench_with_input(
                BenchmarkId::new(setup.label(), format!("{gb}GB")),
                &gb,
                |b, _| {
                    b.iter(|| {
                        let mut m = Machine::knl7210(setup, 64).unwrap();
                        let bw = bench.triad_bandwidth(&mut m).ok();
                        bench::harness::black_box(bw)
                    })
                },
            );
        }
    }
    group.finish();

    // Print the figure series alongside the wall-clock results so the
    // bench run leaves the reproduced data in its log.
    let fig = hybridmem::figures::fig2();
    println!("{}", hybridmem::report::render_figure(&fig));
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);

//! Fig. 6 bench: thread-count sweeps for DGEMM, MiniFE, Graph500 and
//! XSBench (panels a–d).

use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use hybridmem::{AppSpec, ThreadSweep, TraceSweep};
use knl::MemSetup;
use simfabric::par;
use workloads::tracegen::TraceKind;

fn bench_fig6(c: &mut Criterion) {
    let panels: [(&str, AppSpec, f64); 4] = [
        ("fig6a_dgemm", AppSpec::Dgemm, 6.0),
        ("fig6b_minife", AppSpec::MiniFe, 7.2),
        ("fig6c_graph500", AppSpec::Graph500, 8.8),
        ("fig6d_xsbench", AppSpec::XsBench, 5.6),
    ];
    for (name, app, size) in panels {
        let mut group = c.benchmark_group(name);
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(800));
        group.bench_with_input(BenchmarkId::new("sweep", "64-256"), &app, |b, &app| {
            b.iter(|| {
                let sweep = ThreadSweep::paper(app, size);
                bench::harness::black_box(sweep.run())
            })
        });
        group.finish();
    }
    // Trace-level counterpart: per-app trace replay at 1 and 8 replay
    // workers (identical output, different wall-clock).
    let mut group = c.benchmark_group("fig6_trace_replay_workers");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for kind in [TraceKind::Gups, TraceKind::XsBench, TraceKind::Bfs] {
        for workers in [1usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("workers{workers}")),
                &workers,
                |b, &workers| {
                    b.iter(|| {
                        let sweep = TraceSweep {
                            kinds: vec![kind],
                            cores: 16,
                            accesses_per_core: 1_000,
                            seed: 0xF16,
                            setups: vec![MemSetup::DramOnly],
                        };
                        par::with_threads(workers, || bench::harness::black_box(sweep.run()))
                    })
                },
            );
        }
    }
    group.finish();
    for fig in [
        hybridmem::figures::fig6a(),
        hybridmem::figures::fig6b(),
        hybridmem::figures::fig6c(),
        hybridmem::figures::fig6d(),
    ] {
        println!("{}", hybridmem::report::render_figure(&fig));
    }
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);

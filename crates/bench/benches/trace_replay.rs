//! Trace-replay engine bench: accesses/second through the sequential,
//! sharded-parallel, and streaming replay paths, plus the peak bytes
//! of trace each path buffers. Uses small configurations so a bench
//! run stays in seconds; `repro bench-replay` times the full-size
//! configurations and records them in `BENCH_trace_replay.json`.

use bench::harness::{BenchmarkId, Criterion, Throughput};
use bench::replay::{ReplayConfig, BENCH_SEED};
use bench::{criterion_group, criterion_main};
use workloads::tracegen::{replay_streaming, TraceKind};

fn bench_configs() -> Vec<ReplayConfig> {
    vec![
        ReplayConfig {
            kind: TraceKind::Stream,
            cores: 16,
            accesses_per_core: 4_000,
        },
        ReplayConfig {
            kind: TraceKind::Gups,
            cores: 16,
            accesses_per_core: 2_000,
        },
    ]
}

fn bench_replay_paths(c: &mut Criterion) {
    for cfg in bench_configs() {
        let trace = cfg
            .kind
            .generate(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
        let make_sim = |cfg: &ReplayConfig| {
            knl::tracesim::TraceSim::new(
                &knl::MachineConfig::knl7210(knl::MemSetup::DramOnly, 64),
                cfg.cores,
                knl::tracesim::TracePlacement::AllDdr,
                simfabric::ByteSize::mib(8),
            )
        };
        let mut group = c.benchmark_group("trace_replay");
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(200));
        group.measurement_time(std::time::Duration::from_millis(600));
        group.throughput(Throughput::Elements(trace.len() as u64));

        let mut peaks: Vec<(&str, u64)> = Vec::new();
        group.bench_with_input(
            BenchmarkId::new("sequential", cfg.label()),
            &trace,
            |b, trace| {
                let mut peak = 0;
                b.iter(|| {
                    let mut sim = make_sim(&cfg);
                    let r = sim.run(trace);
                    peak = sim.last_peak_trace_buffer_bytes() as u64;
                    bench::harness::black_box(r)
                });
                peaks.push(("sequential", peak));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", cfg.label()),
            &trace,
            |b, trace| {
                let mut peak = 0;
                b.iter(|| {
                    let mut sim = make_sim(&cfg);
                    let r = sim.run_parallel(trace);
                    peak = sim.last_peak_trace_buffer_bytes() as u64;
                    bench::harness::black_box(r)
                });
                peaks.push(("parallel", peak));
            },
        );
        // Streaming regenerates the trace inside the timed region —
        // overlapping generation with replay is what it is for.
        group.bench_with_input(
            BenchmarkId::new("streaming", cfg.label()),
            &trace,
            |b, _| {
                let mut peak = 0;
                b.iter(|| {
                    let mut sim = make_sim(&cfg);
                    let mut source = cfg
                        .kind
                        .source(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
                    let r = replay_streaming(&mut sim, source.as_mut());
                    peak = sim.last_peak_trace_buffer_bytes() as u64;
                    bench::harness::black_box(r)
                });
                peaks.push(("streaming", peak));
            },
        );
        group.finish();
        for (path, peak) in peaks {
            println!(
                "trace_replay/{}/{:<22} peak trace buffer: {:>12} bytes",
                path,
                cfg.label(),
                peak
            );
        }
    }
}

criterion_group!(benches, bench_replay_paths);
criterion_main!(benches);

//! The long-running advisor service loop behind `repro serve`: a
//! JSON-lines request/response protocol over any `BufRead`/`Write`
//! pair (stdin/stdout in the binary, in-memory buffers in tests).
//!
//! One query per input line (the [`AdvisorQuery::from_json`] format
//! `repro advise-batch` also reads); one response line per query,
//! carrying a **causal id** (the 1-based input line ordinal), the
//! canonical key, whether the result cache answered, the
//! recommendation, and a per-query wall-clock span broken into the
//! service's phases (canonicalize → advise → respond). Every
//! `flush_every` queries the loop emits a `flush` event line with the
//! `advisor.cache.*` counters; on EOF it drains cleanly with a single
//! final `drain` event summarizing the session.
//!
//! Alongside the wall-clock spans the loop samples a deterministic
//! [`TimeSeriesRecorder`] once per query — cache hit/compute
//! counters and entry/byte gauges whose evolution depends only on the
//! input stream (queries are answered strictly in line order, one at
//! a time), so the exported `timeseries/v1` document is byte-identical
//! at any `--threads` setting. CI serves the bundled 200-query batch
//! at 1 and 8 workers and byte-compares the two exports.

use hybridmem::json::Json;
use hybridmem::{advice_to_json, canonicalize, AdvisorQuery, AdvisorService};
use simfabric::TimeSeriesRecorder;
use std::io::{BufRead, Write};
use std::time::Instant;

/// Tuning for one [`serve_loop`] session.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker-pool width of the underlying [`AdvisorService`].
    pub workers: usize,
    /// Emit a `flush` event line after every this many queries
    /// (0 disables periodic flushes; the EOF drain always runs).
    pub flush_every: u64,
    /// Queries per time-series window.
    pub ts_interval: u64,
    /// Time-series ring capacity (windows retained).
    pub ts_capacity: usize,
    /// Attach the full `advisor_advice/v1` document to every
    /// response instead of just the recommendation.
    pub full_advice: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: simfabric::par::num_threads(),
            flush_every: 50,
            ts_interval: 50,
            ts_capacity: 256,
            full_advice: false,
        }
    }
}

/// What one [`serve_loop`] session did, plus the deterministic
/// time-series export.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Query lines answered (including error responses).
    pub queries: u64,
    /// Malformed lines answered with an error response.
    pub errors: u64,
    /// Queries the result cache answered.
    pub hits: u64,
    /// Queries that computed fresh advice.
    pub computed: u64,
    /// The session's `timeseries/v1` JSONL export.
    pub timeseries_jsonl: String,
}

fn span_json(id: u64, canon_us: f64, advise_us: f64, respond_us: f64) -> Json {
    Json::obj([
        ("id", Json::Num(id as f64)),
        ("canonicalize_us", Json::Num(canon_us)),
        ("advise_us", Json::Num(advise_us)),
        ("respond_us", Json::Num(respond_us)),
        ("total_us", Json::Num(canon_us + advise_us + respond_us)),
    ])
}

/// Run the service loop until `input` reaches EOF. Every input line
/// produces exactly one response line (errors included, so ids stay
/// causal); event lines (`flush`, `drain`) interleave but never
/// replace a response. Returns the session summary after the final
/// drain has been written and flushed.
pub fn serve_loop(
    input: impl BufRead,
    mut output: impl Write,
    opts: &ServeOptions,
) -> Result<ServeSummary, String> {
    let service = AdvisorService::new(hybridmem::ResultCache::capacity_from_env(), opts.workers);
    let mut rec = TimeSeriesRecorder::new(opts.ts_interval.max(1), opts.ts_capacity.max(1));
    let ts_queries = rec.register_counter("serve.queries");
    let ts_hits = rec.register_counter("serve.cache_hits");
    let ts_computed = rec.register_counter("serve.computed");
    let ts_errors = rec.register_counter("serve.errors");
    let ts_entries = rec.register_gauge("advisor.cache.entries");
    let ts_bytes = rec.register_gauge("advisor.cache.bytes");
    let mut summary = ServeSummary {
        queries: 0,
        errors: 0,
        hits: 0,
        computed: 0,
        timeseries_jsonl: String::new(),
    };
    // Flush per line: a client driving the loop interactively must
    // see each response as soon as its query is answered.
    let write_line = |line: &str, output: &mut dyn Write| -> Result<(), String> {
        output
            .write_all(line.as_bytes())
            .and_then(|()| output.write_all(b"\n"))
            .and_then(|()| output.flush())
            .map_err(|e| format!("write response: {e}"))
    };
    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| format!("read query line {}: {e}", lineno + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        summary.queries += 1;
        let id = summary.queries;
        rec.add(ts_queries, 1.0);
        let t0 = Instant::now();
        let parsed =
            hybridmem::json::parse(line.trim()).and_then(|doc| AdvisorQuery::from_json(&doc));
        let response = match parsed {
            Err(e) => {
                summary.errors += 1;
                rec.add(ts_errors, 1.0);
                Json::obj([("id", Json::Num(id as f64)), ("error", Json::Str(e))])
            }
            Ok(query) => {
                let key = canonicalize(&query);
                let canon_us = t0.elapsed().as_secs_f64() * 1e6;
                let t1 = Instant::now();
                let (answers, stats) = service.advise_batch(std::slice::from_ref(&query));
                let advise_us = t1.elapsed().as_secs_f64() * 1e6;
                let advice = &answers[0];
                let hit = stats.cache_hits > 0;
                if hit {
                    summary.hits += 1;
                    rec.add(ts_hits, 1.0);
                } else {
                    summary.computed += 1;
                    rec.add(ts_computed, 1.0);
                }
                let t2 = Instant::now();
                let mut fields = vec![
                    ("id", Json::Num(id as f64)),
                    ("canonical", Json::Str(key.canonical())),
                    ("cache", Json::Str(if hit { "hit" } else { "miss" }.into())),
                    ("recommended", Json::Str(advice.recommended().label.clone())),
                    ("speedup_vs_ddr", Json::Num(advice.speedup_vs_ddr)),
                ];
                if opts.full_advice {
                    fields.push(("advice", advice_to_json(&key, advice)));
                }
                let respond_us = t2.elapsed().as_secs_f64() * 1e6;
                fields.push(("span", span_json(id, canon_us, advise_us, respond_us)));
                Json::obj(fields)
            }
        };
        write_line(&response.to_compact(), &mut output)?;
        // The deterministic sample: cache shape after this query.
        let cache = service.cache();
        rec.set(ts_entries, cache.len() as f64);
        rec.set(ts_bytes, cache.bytes() as f64);
        if rec.tick() {
            rec.close_window();
        }
        if opts.flush_every > 0 && id.is_multiple_of(opts.flush_every) {
            let stats = cache.stats();
            let flush = Json::obj([
                ("event", Json::Str("flush".into())),
                ("after", Json::Num(id as f64)),
                (
                    "cache",
                    Json::obj([
                        ("hits", Json::Num(stats.hits as f64)),
                        ("misses", Json::Num(stats.misses as f64)),
                        ("inserts", Json::Num(stats.inserts as f64)),
                        ("entries", Json::Num(cache.len() as f64)),
                        ("bytes", Json::Num(cache.bytes() as f64)),
                    ]),
                ),
                ("windows", Json::Num(rec.windows().count() as f64)),
            ]);
            write_line(&flush.to_compact(), &mut output)?;
        }
    }
    rec.finish();
    summary.timeseries_jsonl = rec.to_jsonl();
    let drain = Json::obj([
        ("event", Json::Str("drain".into())),
        ("queries", Json::Num(summary.queries as f64)),
        ("errors", Json::Num(summary.errors as f64)),
        ("cache_hits", Json::Num(summary.hits as f64)),
        ("computed", Json::Num(summary.computed as f64)),
        ("windows", Json::Num(rec.windows().count() as f64)),
        ("dropped", Json::Num(rec.dropped() as f64)),
    ]);
    write_line(&drain.to_compact(), &mut output)?;
    output.flush().map_err(|e| format!("flush output: {e}"))?;
    Ok(summary)
}

/// What [`check_serve_output`] found in a valid serve transcript.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeCheck {
    /// Response lines (one per query, errors included).
    pub responses: u64,
    /// Responses answered from the cache.
    pub hits: u64,
    /// Error responses.
    pub errors: u64,
    /// `flush` event lines.
    pub flushes: u64,
}

/// Validate a serve transcript: every non-event line is a response
/// with a causal id (1, 2, 3, … in order) and — unless it is an error
/// response — a span whose phase times are non-negative and sum to
/// `total_us`; exactly one `drain` event closes the transcript, its
/// totals matching the responses counted. `expect_queries`, when
/// `Some`, additionally pins the response count (the CI smoke knows
/// its batch size).
pub fn check_serve_output(text: &str, expect_queries: Option<u64>) -> Result<ServeCheck, String> {
    let mut check = ServeCheck::default();
    let mut drained: Option<(u64, u64, u64)> = None; // (queries, hits, errors)
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if drained.is_some() {
            return Err(format!("line {lineno}: content after the drain event"));
        }
        let doc = hybridmem::json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if let Some(event) = doc.get("event").and_then(Json::as_str) {
            match event {
                "flush" => {
                    doc.num_field("after")
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    doc.get("cache")
                        .ok_or_else(|| format!("line {lineno}: flush without cache"))?;
                    check.flushes += 1;
                }
                "drain" => {
                    let q = doc
                        .num_field("queries")
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    let h = doc
                        .num_field("cache_hits")
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    let e = doc
                        .num_field("errors")
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    drained = Some((q as u64, h as u64, e as u64));
                }
                other => return Err(format!("line {lineno}: unknown event {other:?}")),
            }
            continue;
        }
        let id = doc
            .num_field("id")
            .map_err(|e| format!("line {lineno}: {e}"))? as u64;
        check.responses += 1;
        if id != check.responses {
            return Err(format!(
                "line {lineno}: id {id} breaks the causal order (expected {})",
                check.responses
            ));
        }
        if doc.get("error").is_some() {
            check.errors += 1;
            continue;
        }
        doc.str_field("canonical")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        doc.str_field("recommended")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        match doc
            .str_field("cache")
            .map_err(|e| format!("line {lineno}: {e}"))?
            .as_str()
        {
            "hit" => check.hits += 1,
            "miss" => {}
            other => return Err(format!("line {lineno}: bad cache field {other:?}")),
        }
        let span = doc
            .get("span")
            .ok_or_else(|| format!("line {lineno}: response without span"))?;
        let mut sum = 0.0;
        for phase in ["canonicalize_us", "advise_us", "respond_us"] {
            let v = span
                .num_field(phase)
                .map_err(|e| format!("line {lineno}: span: {e}"))?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("line {lineno}: span phase {phase} is {v}"));
            }
            sum += v;
        }
        let total = span
            .num_field("total_us")
            .map_err(|e| format!("line {lineno}: span: {e}"))?;
        if (total - sum).abs() > 1e-6 * sum.max(1.0) {
            return Err(format!(
                "line {lineno}: span total {total} != phase sum {sum}"
            ));
        }
    }
    let (q, h, e) = drained.ok_or("missing drain event (the loop did not finish cleanly)")?;
    if q != check.responses || h != check.hits || e != check.errors {
        return Err(format!(
            "drain totals ({q} queries, {h} hits, {e} errors) disagree with the transcript \
             ({} responses, {} hits, {} errors)",
            check.responses, check.hits, check.errors
        ));
    }
    if let Some(want) = expect_queries {
        if check.responses != want {
            return Err(format!("{} responses, expected {want}", check.responses));
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ServeOptions {
        ServeOptions {
            workers: 2,
            flush_every: 2,
            ts_interval: 2,
            ts_capacity: 8,
            full_advice: false,
        }
    }

    fn tiny_batch() -> String {
        // Three queries, the third repeating the first's canonical key.
        [
            "{\"workload\": \"stream_2x200\", \"budget_kib\": 64}",
            "{\"workload\": \"gups_2x200\", \"budget_kib\": 64}",
            "{\"workload\": \"stream_2x200\", \"budget_kib\": 64}",
        ]
        .join("\n")
    }

    #[test]
    fn serve_answers_flushes_and_drains() {
        let mut out = Vec::new();
        let summary = serve_loop(tiny_batch().as_bytes(), &mut out, &tiny_opts()).expect("serves");
        assert_eq!(summary.queries, 3);
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.hits, 1, "third query repeats the first");
        assert_eq!(summary.computed, 2);
        let text = String::from_utf8(out).expect("utf8");
        let check = check_serve_output(&text, Some(3)).expect("valid transcript");
        assert_eq!(check.responses, 3);
        assert_eq!(check.hits, 1);
        assert_eq!(check.flushes, 1, "flush after query 2");
        let ts = hybridmem::check_timeseries(&summary.timeseries_jsonl).expect("valid timeseries");
        assert_eq!(ts.ticks, 3);
        assert_eq!(ts.windows, 2, "one full window + the drain tail");
    }

    #[test]
    fn serve_timeseries_identical_across_worker_counts() {
        let run = |workers: usize| {
            let opts = ServeOptions {
                workers,
                ..tiny_opts()
            };
            let mut out = Vec::new();
            serve_loop(tiny_batch().as_bytes(), &mut out, &opts)
                .expect("serves")
                .timeseries_jsonl
        };
        assert_eq!(run(1), run(4), "sampled windows must not depend on workers");
    }

    #[test]
    fn malformed_lines_get_error_responses_and_causal_ids() {
        let input = "{\"workload\": \"stream_2x200\"}\nnot json\n{\"workload\": \"bogus\"}\n";
        let mut out = Vec::new();
        let summary = serve_loop(input.as_bytes(), &mut out, &tiny_opts()).expect("serves");
        assert_eq!(summary.queries, 3);
        assert_eq!(summary.errors, 2);
        let text = String::from_utf8(out).expect("utf8");
        let check = check_serve_output(&text, Some(3)).expect("valid transcript");
        assert_eq!(check.errors, 2);
    }

    #[test]
    fn checker_rejects_broken_transcripts() {
        // No drain.
        assert!(check_serve_output("{\"id\":1,\"error\":\"x\"}\n", None)
            .unwrap_err()
            .contains("missing drain"));
        // Causal-order break.
        let bad = "{\"id\":2,\"error\":\"x\"}\n\
                   {\"event\":\"drain\",\"queries\":1,\"errors\":1,\"cache_hits\":0,\"computed\":0}\n";
        assert!(check_serve_output(bad, None)
            .unwrap_err()
            .contains("causal"));
        // Drain totals disagreeing with the transcript.
        let lying = "{\"id\":1,\"error\":\"x\"}\n\
                     {\"event\":\"drain\",\"queries\":5,\"errors\":1,\"cache_hits\":0,\"computed\":0}\n";
        assert!(check_serve_output(lying, None)
            .unwrap_err()
            .contains("disagree"));
    }
}

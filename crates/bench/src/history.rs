//! Bench history and the regression sentinel behind
//! `repro bench-history`.
//!
//! A `bench_trace_replay/v1` report records one run. This module
//! grows it a `history` section — a bounded, append-only log of past
//! runs, each entry carrying a host fingerprint, the git revision,
//! the worker-thread count, and the tracked throughput metrics — so
//! the report file itself remembers how fast it used to be. The
//! **sentinel** compares the newest entry against the trailing median
//! of the older ones and fails (CI-fatally) when any tracked metric
//! regressed by more than the tolerance, while staying quiet on the
//! noisy single-run jitter a mean-of-two would amplify.
//!
//! Tracked metrics: every config's streaming throughput
//! (`{label}.streaming_macc_per_s` — the paper-facing replay rate),
//! the sweep engine's classify-once speedup (`sweep_reuse.speedup`),
//! and the advisor batch engine's speedup (`advisor.speedup`).

use hybridmem::json::Json;
use std::collections::BTreeMap;
use std::process::Command;

/// Entries the history section retains; the oldest fall off first.
pub const HISTORY_CAP: usize = 50;

/// Default regression tolerance: latest below `(1 - 0.10) ×` the
/// trailing median fails the sentinel.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// `os-arch-Ncpu`, e.g. `linux-x86_64-64cpu` — coarse on purpose: it
/// flags "this history mixes machines" without trying to fingerprint
/// hardware the container hides anyway.
pub fn host_fingerprint() -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{}-{}-{}cpu",
        std::env::consts::OS,
        std::env::consts::ARCH,
        cpus
    )
}

/// The short git revision of the working tree, or `"unknown"` when
/// git (or the repo) is unavailable — history stays appendable from
/// an exported tarball.
pub fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Pull the tracked metrics out of a `bench_trace_replay/v1` report:
/// each config's streaming Macc/s plus the two engine speedups (the
/// sweep/advisor sections are required by
/// [`crate::replay::check_report`], so a report missing them is an
/// error here too).
pub fn tracked_metrics(report: &Json) -> Result<BTreeMap<String, f64>, String> {
    let mut metrics = BTreeMap::new();
    for cfg in report.arr_field("configs")? {
        let label = cfg.str_field("label")?;
        let streaming = cfg
            .arr_field("paths")?
            .iter()
            .find(|p| p.get("path").and_then(Json::as_str) == Some("streaming"))
            .ok_or_else(|| format!("{label}: no streaming path to track"))?
            .num_field("macc_per_s")?;
        metrics.insert(format!("{label}.streaming_macc_per_s"), streaming);
    }
    let sweep = report
        .get("sweep_reuse")
        .ok_or("missing sweep_reuse section")?;
    metrics.insert(
        "sweep_reuse.speedup".to_string(),
        sweep.num_field("speedup_reuse_vs_regen")?,
    );
    let advisor = report
        .get("advisor_service")
        .ok_or("missing advisor_service section")?;
    metrics.insert(
        "advisor.speedup".to_string(),
        advisor.num_field("speedup_engine_vs_naive")?,
    );
    Ok(metrics)
}

/// Build one history entry from a report's own numbers, stamped with
/// the caller's clock (seconds since the Unix epoch).
pub fn entry_from_report(report: &Json, timestamp_s: u64) -> Result<Json, String> {
    let metrics = tracked_metrics(report)?;
    Ok(Json::obj([
        ("timestamp_s", Json::Num(timestamp_s as f64)),
        ("host", Json::Str(host_fingerprint())),
        ("git_rev", Json::Str(git_rev())),
        (
            "worker_threads",
            Json::Num(report.num_field("worker_threads")?),
        ),
        (
            "metrics",
            Json::Obj(
                metrics
                    .into_iter()
                    .map(|(k, v)| (k, Json::Num(v)))
                    .collect(),
            ),
        ),
    ]))
}

/// Seconds since the Unix epoch (0 if the clock is before it, which
/// only a broken container clock produces).
pub fn unix_now_s() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Grow a freshly generated report a history section: carry forward
/// the entries of `prior` (typically the previous report at the same
/// output path), then append an entry derived from `report`'s own
/// numbers. The cap applies after the append.
pub fn with_appended_run(
    report: &Json,
    prior: Option<&Json>,
    timestamp_s: u64,
) -> Result<Json, String> {
    let entry = entry_from_report(report, timestamp_s)?;
    let mut base = report.clone();
    if let Some(p) = prior {
        let carried = entries(p);
        if !carried.is_empty() {
            if let Json::Obj(map) = &mut base {
                map.insert(
                    "history".to_string(),
                    Json::obj([
                        ("cap", Json::Num(HISTORY_CAP as f64)),
                        ("entries", Json::Arr(carried)),
                    ]),
                );
            }
        }
    }
    Ok(append_entry(&base, entry))
}

/// The history entries carried by a report (empty when the section is
/// absent — a pre-history report is a valid zero-entry history).
pub fn entries(report: &Json) -> Vec<Json> {
    report
        .get("history")
        .and_then(|h| h.get("entries"))
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .unwrap_or_default()
}

/// Append `entry` to `report`'s history section, carrying forward the
/// existing entries and dropping the oldest past [`HISTORY_CAP`].
/// Returns the report with the updated section.
pub fn append_entry(report: &Json, entry: Json) -> Json {
    let mut all = entries(report);
    all.push(entry);
    let drop = all.len().saturating_sub(HISTORY_CAP);
    let kept: Vec<Json> = all.into_iter().skip(drop).collect();
    let section = Json::obj([
        ("cap", Json::Num(HISTORY_CAP as f64)),
        ("entries", Json::Arr(kept)),
    ]);
    match report {
        Json::Obj(map) => {
            let mut map = map.clone();
            map.insert("history".to_string(), section);
            Json::Obj(map)
        }
        other => other.clone(),
    }
}

/// Validate a report's history section, if present: a bounded entry
/// list, every entry carrying timestamp, host, git revision, worker
/// count and a non-empty metrics object of positive finite numbers.
/// Returns the entry count (0 when the section is absent).
pub fn check_history_section(report: &Json) -> Result<usize, String> {
    let Some(section) = report.get("history") else {
        return Ok(0);
    };
    let list = section.arr_field("entries")?;
    if list.len() > HISTORY_CAP {
        return Err(format!(
            "{} history entries exceed the cap of {HISTORY_CAP}",
            list.len()
        ));
    }
    for (i, entry) in list.iter().enumerate() {
        let at = |e: String| format!("history entry {i}: {e}");
        entry.num_field("timestamp_s").map_err(&at)?;
        entry.str_field("host").map_err(&at)?;
        entry.str_field("git_rev").map_err(&at)?;
        entry.num_field("worker_threads").map_err(&at)?;
        let metrics = entry
            .get("metrics")
            .ok_or_else(|| format!("history entry {i}: missing metrics object"))?;
        let Json::Obj(map) = metrics else {
            return Err(format!("history entry {i}: metrics is not an object"));
        };
        if map.is_empty() {
            return Err(format!("history entry {i}: empty metrics object"));
        }
        for (name, v) in map {
            let v = v
                .as_f64()
                .ok_or_else(|| format!("history entry {i}: non-numeric metric {name:?}"))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("history entry {i}: metric {name:?} is {v}"));
            }
        }
    }
    Ok(list.len())
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    let n = values.len();
    if n.is_multiple_of(2) {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    } else {
        values[n / 2]
    }
}

/// One metric's sentinel comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SentinelRow {
    /// Metric name.
    pub metric: String,
    /// The newest entry's value.
    pub latest: f64,
    /// Trailing median over the older entries that carry the metric.
    pub median: f64,
    /// Whether `latest < median × (1 - tolerance)`.
    pub regressed: bool,
}

/// What the sentinel concluded.
#[derive(Debug, Clone, PartialEq)]
pub struct SentinelVerdict {
    /// Entries inspected.
    pub entries: usize,
    /// Per-metric comparisons (empty below two entries).
    pub rows: Vec<SentinelRow>,
}

impl SentinelVerdict {
    /// Metrics that regressed beyond tolerance.
    pub fn regressions(&self) -> Vec<&SentinelRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// Human-readable table of the comparisons.
    pub fn render(&self) -> String {
        if self.rows.is_empty() {
            return format!(
                "bench-history sentinel: {} entr{} — nothing to compare yet\n",
                self.entries,
                if self.entries == 1 { "y" } else { "ies" }
            );
        }
        let mut out = format!(
            "bench-history sentinel over {} entries (latest vs trailing median):\n",
            self.entries
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<40} latest {:>10.3}  median {:>10.3}  {}\n",
                r.metric,
                r.latest,
                r.median,
                if r.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        out
    }
}

/// Compare the newest history entry against the trailing median of
/// the older ones, metric by metric. Below two entries there is
/// nothing to compare and the verdict is trivially clean; a metric
/// the older entries never recorded is skipped (histories may grow
/// configs over time). `tolerance` is the allowed fractional drop.
pub fn sentinel(report: &Json, tolerance: f64) -> Result<SentinelVerdict, String> {
    check_history_section(report)?;
    let all = entries(report);
    let Some((latest, prior)) = all.split_last() else {
        return Ok(SentinelVerdict {
            entries: 0,
            rows: Vec::new(),
        });
    };
    if prior.is_empty() {
        return Ok(SentinelVerdict {
            entries: 1,
            rows: Vec::new(),
        });
    }
    let latest_metrics = latest
        .get("metrics")
        .ok_or("latest entry lost its metrics")?;
    let Json::Obj(latest_map) = latest_metrics else {
        return Err("latest entry's metrics is not an object".to_string());
    };
    let mut rows = Vec::new();
    for (name, v) in latest_map {
        let latest_v = v.as_f64().ok_or_else(|| format!("non-numeric {name:?}"))?;
        let trailing: Vec<f64> = prior
            .iter()
            .filter_map(|e| e.get("metrics")?.get(name)?.as_f64())
            .collect();
        if trailing.is_empty() {
            continue;
        }
        let med = median(trailing);
        rows.push(SentinelRow {
            metric: name.clone(),
            latest: latest_v,
            median: med,
            regressed: latest_v < med * (1.0 - tolerance),
        });
    }
    Ok(SentinelVerdict {
        entries: all.len(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ts: u64, stream: f64, sweep: f64) -> Json {
        Json::obj([
            ("timestamp_s", Json::Num(ts as f64)),
            ("host", Json::Str("test-host-8cpu".into())),
            ("git_rev", Json::Str("abc1234".into())),
            ("worker_threads", Json::Num(8.0)),
            (
                "metrics",
                Json::obj([
                    ("stream_8x2000.streaming_macc_per_s", Json::Num(stream)),
                    ("sweep_reuse.speedup", Json::Num(sweep)),
                ]),
            ),
        ])
    }

    fn report_with(entries: Vec<Json>) -> Json {
        Json::obj([
            ("schema", Json::Str("bench_trace_replay/v1".into())),
            (
                "history",
                Json::obj([
                    ("cap", Json::Num(HISTORY_CAP as f64)),
                    ("entries", Json::Arr(entries)),
                ]),
            ),
        ])
    }

    #[test]
    fn append_carries_forward_and_caps() {
        let mut report = Json::obj([("schema", Json::Str("bench_trace_replay/v1".into()))]);
        for i in 0..(HISTORY_CAP + 5) {
            report = append_entry(&report, entry(i as u64, 10.0, 5.0));
        }
        let kept = entries(&report);
        assert_eq!(kept.len(), HISTORY_CAP);
        // The oldest five fell off; timestamps start at 5.
        assert_eq!(kept[0].num_field("timestamp_s").unwrap(), 5.0);
        assert_eq!(check_history_section(&report).unwrap(), HISTORY_CAP);
    }

    #[test]
    fn sentinel_passes_below_two_entries_and_on_steady_metrics() {
        let empty = Json::obj([("schema", Json::Str("bench_trace_replay/v1".into()))]);
        assert!(sentinel(&empty, DEFAULT_TOLERANCE).unwrap().rows.is_empty());
        let one = report_with(vec![entry(1, 10.0, 5.0)]);
        assert!(sentinel(&one, DEFAULT_TOLERANCE).unwrap().rows.is_empty());
        // Jitter within tolerance: median of {10, 11, 9} = 10; latest
        // 9.2 > 10 × 0.9.
        let steady = report_with(vec![
            entry(1, 10.0, 5.0),
            entry(2, 11.0, 5.2),
            entry(3, 9.0, 4.9),
            entry(4, 9.2, 5.1),
        ]);
        let verdict = sentinel(&steady, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(verdict.entries, 4);
        assert!(verdict.regressions().is_empty(), "{}", verdict.render());
    }

    #[test]
    fn sentinel_flags_a_real_regression() {
        let regressed = report_with(vec![
            entry(1, 10.0, 5.0),
            entry(2, 10.4, 5.1),
            entry(3, 9.8, 5.0),
            entry(4, 8.0, 5.0), // 8.0 < 10.0 × 0.9
        ]);
        let verdict = sentinel(&regressed, DEFAULT_TOLERANCE).unwrap();
        let bad = verdict.regressions();
        assert_eq!(bad.len(), 1, "{}", verdict.render());
        assert_eq!(bad[0].metric, "stream_8x2000.streaming_macc_per_s");
        assert_eq!(bad[0].median, 10.0, "median of {{10.0, 10.4, 9.8}}");
        // A looser tolerance clears it.
        assert!(sentinel(&regressed, 0.25).unwrap().regressions().is_empty());
    }

    #[test]
    fn sentinel_skips_metrics_the_history_never_saw() {
        let mut newer = entry(2, 10.0, 5.0);
        if let Json::Obj(map) = &mut newer {
            if let Some(Json::Obj(metrics)) = map.get_mut("metrics") {
                metrics.insert("brand_new.metric".into(), Json::Num(1.0));
            }
        }
        let report = report_with(vec![entry(1, 10.0, 5.0), newer]);
        let verdict = sentinel(&report, DEFAULT_TOLERANCE).unwrap();
        assert!(verdict.rows.iter().all(|r| r.metric != "brand_new.metric"));
        assert_eq!(verdict.rows.len(), 2);
    }

    #[test]
    fn checker_rejects_malformed_sections() {
        let no_metrics = report_with(vec![Json::obj([
            ("timestamp_s", Json::Num(1.0)),
            ("host", Json::Str("h".into())),
            ("git_rev", Json::Str("r".into())),
            ("worker_threads", Json::Num(1.0)),
        ])]);
        assert!(check_history_section(&no_metrics)
            .unwrap_err()
            .contains("missing metrics"));
        let bad_value = report_with(vec![entry(1, -3.0, 5.0)]);
        assert!(check_history_section(&bad_value)
            .unwrap_err()
            .contains("-3"));
        let over_cap = report_with(
            (0..HISTORY_CAP + 1)
                .map(|i| entry(i as u64, 1.0, 1.0))
                .collect(),
        );
        assert!(check_history_section(&over_cap)
            .unwrap_err()
            .contains("cap"));
    }

    fn mini_report() -> Json {
        Json::obj([
            ("schema", Json::Str("bench_trace_replay/v1".into())),
            ("worker_threads", Json::Num(2.0)),
            (
                "configs",
                Json::Arr(vec![Json::obj([
                    ("label", Json::Str("stream_8x2000".into())),
                    (
                        "paths",
                        Json::Arr(vec![Json::obj([
                            ("path", Json::Str("streaming".into())),
                            ("macc_per_s", Json::Num(12.5)),
                        ])]),
                    ),
                ])]),
            ),
            (
                "sweep_reuse",
                Json::obj([("speedup_reuse_vs_regen", Json::Num(3.0))]),
            ),
            (
                "advisor_service",
                Json::obj([("speedup_engine_vs_naive", Json::Num(6.0))]),
            ),
        ])
    }

    #[test]
    fn appended_run_tracks_the_reports_own_numbers() {
        let fresh = with_appended_run(&mini_report(), None, 100).unwrap();
        assert_eq!(check_history_section(&fresh).unwrap(), 1);
        let metrics = tracked_metrics(&mini_report()).unwrap();
        assert_eq!(metrics["stream_8x2000.streaming_macc_per_s"], 12.5);
        assert_eq!(metrics["sweep_reuse.speedup"], 3.0);
        assert_eq!(metrics["advisor.speedup"], 6.0);
        // A regenerated report carries the prior file's entries
        // forward before appending its own.
        let second = with_appended_run(&mini_report(), Some(&fresh), 200).unwrap();
        let kept = entries(&second);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].num_field("timestamp_s").unwrap(), 100.0);
        assert_eq!(kept[1].num_field("timestamp_s").unwrap(), 200.0);
        let verdict = sentinel(&second, DEFAULT_TOLERANCE).unwrap();
        assert!(verdict.regressions().is_empty(), "{}", verdict.render());
    }

    #[test]
    fn fingerprint_and_rev_are_nonempty() {
        let host = host_fingerprint();
        assert!(host.contains("cpu"), "{host}");
        assert!(!git_rev().is_empty());
    }
}

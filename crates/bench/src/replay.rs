//! Trace-replay throughput benchmark: times the sequential,
//! sharded-parallel, and streaming replay paths over the bundled trace
//! generators and reports accesses/second plus peak trace-buffer
//! bytes.
//!
//! This backs both the `trace_replay` bench group and the
//! `repro bench-replay` subcommand, which writes
//! `BENCH_trace_replay.json` so the replay-performance trajectory is
//! tracked in-tree from PR to PR. The three paths are bit-identical by
//! contract (`tests/parallel_equivalence.rs`); [`run_config`] asserts
//! report equality as a cheap guard, so a benchmark run can never
//! silently time a diverged engine.

use hybridmem::json::Json;
use knl::tracesim::{worker_threads, TracePlacement, TraceSim};
use knl::{MachineConfig, MemSetup};
use simfabric::ByteSize;
use std::time::Instant;
use workloads::tracegen::{replay_streaming, TraceKind};

/// Seed shared by every replay-bench configuration.
pub const BENCH_SEED: u64 = 0xBE9C;

/// One benchmark point: a trace generator at a core count and length.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Trace generator.
    pub kind: TraceKind,
    /// Simulated core count.
    pub cores: u32,
    /// Approximate accesses per core.
    pub accesses_per_core: u64,
}

impl ReplayConfig {
    /// Stable identifier, e.g. `stream_64x50000`.
    pub fn label(&self) -> String {
        format!(
            "{}_{}x{}",
            self.kind.name().to_lowercase(),
            self.cores,
            self.accesses_per_core
        )
    }

    fn sim(&self) -> TraceSim {
        TraceSim::new(
            &MachineConfig::knl7210(MemSetup::DramOnly, 64),
            self.cores,
            TracePlacement::AllDdr,
            ByteSize::mib(8),
        )
    }
}

/// The bundled benchmark configurations, largest first. The leading
/// entry (STREAM, 64 cores, 50 k accesses/core — 3.2 M accesses) is
/// the acceptance config the ≥ 1.5× streaming-throughput bar is
/// measured on.
pub fn standard_configs() -> Vec<ReplayConfig> {
    use TraceKind::*;
    vec![
        ReplayConfig {
            kind: Stream,
            cores: 64,
            accesses_per_core: 50_000,
        },
        ReplayConfig {
            kind: Gups,
            cores: 64,
            accesses_per_core: 25_000,
        },
        ReplayConfig {
            kind: XsBench,
            cores: 64,
            accesses_per_core: 25_000,
        },
        ReplayConfig {
            kind: Bfs,
            cores: 64,
            accesses_per_core: 25_000,
        },
        // Chase is single-core by construction: the streaming merge
        // must buffer the whole classified trace (documented worst
        // case), so keep it modest.
        ReplayConfig {
            kind: Chase,
            cores: 8,
            accesses_per_core: 25_000,
        },
    ]
}

/// Tiny configurations for the CI smoke run (seconds, not minutes).
pub fn smoke_configs() -> Vec<ReplayConfig> {
    use TraceKind::*;
    vec![
        ReplayConfig {
            kind: Stream,
            cores: 8,
            accesses_per_core: 2_000,
        },
        ReplayConfig {
            kind: Gups,
            cores: 8,
            accesses_per_core: 1_000,
        },
    ]
}

/// One timed path of a configuration.
#[derive(Debug, Clone)]
pub struct PathMeasurement {
    /// `"sequential"`, `"parallel"`, or `"streaming"`.
    pub path: &'static str,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Millions of accesses replayed per second.
    pub macc_per_s: f64,
    /// Peak bytes of trace buffered inside the replay pipeline.
    pub peak_buffer_bytes: u64,
}

/// All three paths of one configuration.
#[derive(Debug, Clone)]
pub struct ReplayMeasurement {
    /// The configuration measured.
    pub config: ReplayConfig,
    /// Total accesses in the trace.
    pub accesses: u64,
    /// Sequential / parallel / streaming, in that order.
    pub paths: Vec<PathMeasurement>,
}

impl ReplayMeasurement {
    /// Streaming throughput over sequential throughput.
    pub fn streaming_speedup(&self) -> f64 {
        let get = |name| {
            self.paths
                .iter()
                .find(|p| p.path == name)
                .map(|p| p.macc_per_s)
                .unwrap_or(0.0)
        };
        let seq = get("sequential");
        if seq > 0.0 {
            get("streaming") / seq
        } else {
            0.0
        }
    }
}

/// Time all three replay paths for one configuration.
///
/// The sequential and parallel paths are timed replay-only (the trace
/// is materialized outside the timer — the pre-streaming pipeline's
/// best case); the streaming path is timed end-to-end *including*
/// generation, since overlapping generation with replay is the point.
pub fn run_config(cfg: &ReplayConfig) -> ReplayMeasurement {
    let trace = cfg
        .kind
        .generate(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
    let n = trace.len() as u64;
    let mut paths = Vec::new();

    let mut seq = cfg.sim();
    let t0 = Instant::now();
    let seq_report = seq.run(&trace);
    paths.push(measure("sequential", t0.elapsed().as_secs_f64(), n, &seq));

    let mut par_sim = cfg.sim();
    let t0 = Instant::now();
    let par_report = par_sim.run_parallel(&trace);
    paths.push(measure("parallel", t0.elapsed().as_secs_f64(), n, &par_sim));

    drop(trace);
    let mut stream_sim = cfg.sim();
    let t0 = Instant::now();
    let mut source = cfg
        .kind
        .source(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
    let stream_report = replay_streaming(&mut stream_sim, source.as_mut());
    paths.push(measure(
        "streaming",
        t0.elapsed().as_secs_f64(),
        n,
        &stream_sim,
    ));

    assert_eq!(par_report, seq_report, "parallel diverged from sequential");
    assert_eq!(
        stream_report, seq_report,
        "streaming diverged from sequential"
    );
    ReplayMeasurement {
        config: *cfg,
        accesses: n,
        paths,
    }
}

fn measure(path: &'static str, seconds: f64, accesses: u64, sim: &TraceSim) -> PathMeasurement {
    PathMeasurement {
        path,
        seconds,
        macc_per_s: accesses as f64 / seconds / 1e6,
        peak_buffer_bytes: sim.last_peak_trace_buffer_bytes() as u64,
    }
}

/// Run a set of configurations and render the `bench_trace_replay/v1`
/// report.
pub fn bench_report(configs: &[ReplayConfig]) -> Json {
    let rows: Vec<Json> = configs
        .iter()
        .map(|cfg| {
            let m = run_config(cfg);
            let paths: Vec<Json> = m
                .paths
                .iter()
                .map(|p| {
                    Json::obj([
                        ("path", Json::Str(p.path.to_string())),
                        ("seconds", Json::Num(p.seconds)),
                        ("macc_per_s", Json::Num(p.macc_per_s)),
                        ("peak_buffer_bytes", Json::Num(p.peak_buffer_bytes as f64)),
                    ])
                })
                .collect();
            Json::obj([
                ("label", Json::Str(m.config.label())),
                ("kind", Json::Str(m.config.kind.name().to_string())),
                ("cores", Json::Num(m.config.cores as f64)),
                ("accesses", Json::Num(m.accesses as f64)),
                ("paths", Json::Arr(paths)),
                (
                    "streaming_speedup_vs_sequential",
                    Json::Num(m.streaming_speedup()),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::Str("bench_trace_replay/v1".to_string())),
        ("worker_threads", Json::Num(worker_threads() as f64)),
        ("configs", Json::Arr(rows)),
    ])
}

/// Validate a `bench_trace_replay/v1` report (the CI smoke gate):
/// schema tag, non-empty config list, and every config carrying all
/// three paths with positive throughput.
pub fn check_report(report: &Json) -> Result<(), String> {
    let schema = report.str_field("schema")?;
    if schema != "bench_trace_replay/v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    report.num_field("worker_threads")?;
    let configs = report.arr_field("configs")?;
    if configs.is_empty() {
        return Err("empty configs array".to_string());
    }
    for cfg in configs {
        let label = cfg.str_field("label")?;
        cfg.str_field("kind")?;
        cfg.num_field("cores")?;
        cfg.num_field("streaming_speedup_vs_sequential")?;
        let accesses = cfg.num_field("accesses")?;
        if accesses <= 0.0 {
            return Err(format!("{label}: non-positive access count"));
        }
        let paths = cfg.arr_field("paths")?;
        let mut seen = Vec::new();
        for p in paths {
            let name = p.str_field("path")?;
            let rate = p.num_field("macc_per_s")?;
            p.num_field("seconds")?;
            p.num_field("peak_buffer_bytes")?;
            if rate <= 0.0 || !rate.is_finite() {
                return Err(format!("{label}/{name}: non-positive throughput {rate}"));
            }
            seen.push(name);
        }
        for want in ["sequential", "parallel", "streaming"] {
            if !seen.iter().any(|s| s == want) {
                return Err(format!("{label}: missing path {want:?}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(standard_configs()[0].label(), "stream_64x50000");
        assert_eq!(smoke_configs()[0].label(), "stream_8x2000");
    }

    #[test]
    fn smoke_report_round_trips_and_validates() {
        let report = simfabric::par::with_threads(2, || {
            bench_report(&[ReplayConfig {
                kind: TraceKind::Stream,
                cores: 4,
                accesses_per_core: 500,
            }])
        });
        check_report(&report).expect("fresh report validates");
        let parsed = hybridmem::json::parse(&report.to_pretty()).expect("parses");
        check_report(&parsed).expect("parsed report validates");
    }

    #[test]
    fn check_report_rejects_malformed_inputs() {
        let bad = hybridmem::json::parse("{\"schema\": \"nope\"}").unwrap();
        assert!(check_report(&bad).is_err());
        let no_configs = Json::obj([
            ("schema", Json::Str("bench_trace_replay/v1".to_string())),
            ("worker_threads", Json::Num(1.0)),
            ("configs", Json::Arr(vec![])),
        ]);
        assert!(check_report(&no_configs).is_err());
        let missing_path = Json::obj([
            ("schema", Json::Str("bench_trace_replay/v1".to_string())),
            ("worker_threads", Json::Num(1.0)),
            (
                "configs",
                Json::Arr(vec![Json::obj([
                    ("label", Json::Str("x".into())),
                    ("kind", Json::Str("STREAM".into())),
                    ("cores", Json::Num(4.0)),
                    ("accesses", Json::Num(100.0)),
                    ("streaming_speedup_vs_sequential", Json::Num(1.0)),
                    ("paths", Json::Arr(vec![])),
                ])]),
            ),
        ]);
        assert!(check_report(&missing_path).is_err());
    }
}

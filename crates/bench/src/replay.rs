//! Trace-replay throughput benchmark: times the sequential,
//! sharded-parallel, and streaming replay paths over the bundled trace
//! generators and reports accesses/second plus peak trace-buffer
//! bytes.
//!
//! This backs both the `trace_replay` bench group and the
//! `repro bench-replay` subcommand, which writes
//! `BENCH_trace_replay.json` so the replay-performance trajectory is
//! tracked in-tree from PR to PR. The three paths are bit-identical by
//! contract (`tests/parallel_equivalence.rs`); [`run_config`] asserts
//! report equality as a cheap guard, so a benchmark run can never
//! silently time a diverged engine.

use hybridmem::json::Json;
use knl::tracesim::{worker_threads, TracePlacement, TraceSim};
use knl::{MachineConfig, MemSetup};
use simfabric::ByteSize;
use std::time::Instant;
use workloads::tracegen::{replay_streaming, TraceKind};

/// Seed shared by every replay-bench configuration.
pub const BENCH_SEED: u64 = 0xBE9C;

/// One benchmark point: a trace generator at a core count and length.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Trace generator.
    pub kind: TraceKind,
    /// Simulated core count.
    pub cores: u32,
    /// Approximate accesses per core.
    pub accesses_per_core: u64,
}

impl ReplayConfig {
    /// Stable identifier, e.g. `stream_64x50000`.
    pub fn label(&self) -> String {
        format!(
            "{}_{}x{}",
            self.kind.name().to_lowercase(),
            self.cores,
            self.accesses_per_core
        )
    }

    /// Parse a [`label`](Self::label)-format identifier back into a
    /// configuration (`repro profile stream_64x50000`). Kind names
    /// match case-insensitively; errors describe the expected shape.
    pub fn parse_label(label: &str) -> Result<ReplayConfig, String> {
        let shape = || format!("bad config label {label:?} (expected <kind>_<cores>x<per_core>)");
        let (kind_s, rest) = label.rsplit_once('_').ok_or_else(shape)?;
        let kind = TraceKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(kind_s))
            .ok_or_else(|| {
                let known: Vec<String> = TraceKind::ALL
                    .iter()
                    .map(|k| k.name().to_lowercase())
                    .collect();
                format!("unknown trace kind {kind_s:?}; known: {}", known.join(", "))
            })?;
        let (cores_s, per_s) = rest.split_once('x').ok_or_else(shape)?;
        let cores: u32 = cores_s.parse().map_err(|_| shape())?;
        let accesses_per_core: u64 = per_s.parse().map_err(|_| shape())?;
        if cores == 0 || accesses_per_core == 0 {
            return Err(shape());
        }
        Ok(ReplayConfig {
            kind,
            cores,
            accesses_per_core,
        })
    }

    fn sim(&self) -> TraceSim {
        TraceSim::new(
            &MachineConfig::knl7210(MemSetup::DramOnly, 64),
            self.cores,
            TracePlacement::AllDdr,
            ByteSize::mib(8),
        )
    }
}

/// The bundled benchmark configurations, largest first. The leading
/// entry (STREAM, 64 cores, 50 k accesses/core — 3.2 M accesses) is
/// the acceptance config the ≥ 1.5× streaming-throughput bar is
/// measured on.
pub fn standard_configs() -> Vec<ReplayConfig> {
    use TraceKind::*;
    vec![
        ReplayConfig {
            kind: Stream,
            cores: 64,
            accesses_per_core: 50_000,
        },
        ReplayConfig {
            kind: Gups,
            cores: 64,
            accesses_per_core: 25_000,
        },
        ReplayConfig {
            kind: XsBench,
            cores: 64,
            accesses_per_core: 25_000,
        },
        ReplayConfig {
            kind: Bfs,
            cores: 64,
            accesses_per_core: 25_000,
        },
        // Chase is single-core by construction: the streaming merge
        // must buffer the whole classified trace (documented worst
        // case), so keep it modest.
        ReplayConfig {
            kind: Chase,
            cores: 8,
            accesses_per_core: 25_000,
        },
    ]
}

/// Tiny configurations for the CI smoke run (seconds, not minutes).
pub fn smoke_configs() -> Vec<ReplayConfig> {
    use TraceKind::*;
    vec![
        ReplayConfig {
            kind: Stream,
            cores: 8,
            accesses_per_core: 2_000,
        },
        ReplayConfig {
            kind: Gups,
            cores: 8,
            accesses_per_core: 1_000,
        },
    ]
}

/// One timed path of a configuration.
#[derive(Debug, Clone)]
pub struct PathMeasurement {
    /// `"sequential"`, `"parallel"`, or `"streaming"`.
    pub path: &'static str,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Millions of accesses replayed per second.
    pub macc_per_s: f64,
    /// Peak bytes of trace buffered inside the replay pipeline.
    pub peak_buffer_bytes: u64,
}

/// All three paths of one configuration.
#[derive(Debug, Clone)]
pub struct ReplayMeasurement {
    /// The configuration measured.
    pub config: ReplayConfig,
    /// Total accesses in the trace.
    pub accesses: u64,
    /// Sequential / parallel / streaming, in that order.
    pub paths: Vec<PathMeasurement>,
}

impl ReplayMeasurement {
    /// Streaming throughput over sequential throughput.
    pub fn streaming_speedup(&self) -> f64 {
        let get = |name| {
            self.paths
                .iter()
                .find(|p| p.path == name)
                .map(|p| p.macc_per_s)
                .unwrap_or(0.0)
        };
        let seq = get("sequential");
        if seq > 0.0 {
            get("streaming") / seq
        } else {
            0.0
        }
    }
}

/// Time all three replay paths for one configuration.
///
/// The sequential and parallel paths are timed replay-only (the trace
/// is materialized outside the timer — the pre-streaming pipeline's
/// best case); the streaming path is timed end-to-end *including*
/// generation, since overlapping generation with replay is the point.
pub fn run_config(cfg: &ReplayConfig) -> ReplayMeasurement {
    let trace = cfg
        .kind
        .generate(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
    let n = trace.len() as u64;
    let mut paths = Vec::new();

    let mut seq = cfg.sim();
    let t0 = Instant::now();
    let seq_report = seq.run(&trace);
    paths.push(measure("sequential", t0.elapsed().as_secs_f64(), n, &seq));

    let mut par_sim = cfg.sim();
    let t0 = Instant::now();
    let par_report = par_sim.run_parallel(&trace);
    paths.push(measure("parallel", t0.elapsed().as_secs_f64(), n, &par_sim));

    drop(trace);
    let mut stream_sim = cfg.sim();
    let t0 = Instant::now();
    let mut source = cfg
        .kind
        .source(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
    let stream_report = replay_streaming(&mut stream_sim, source.as_mut());
    paths.push(measure(
        "streaming",
        t0.elapsed().as_secs_f64(),
        n,
        &stream_sim,
    ));

    assert_eq!(par_report, seq_report, "parallel diverged from sequential");
    assert_eq!(
        stream_report, seq_report,
        "streaming diverged from sequential"
    );
    ReplayMeasurement {
        config: *cfg,
        accesses: n,
        paths,
    }
}

fn measure(path: &'static str, seconds: f64, accesses: u64, sim: &TraceSim) -> PathMeasurement {
    PathMeasurement {
        path,
        seconds,
        macc_per_s: accesses as f64 / seconds / 1e6,
        peak_buffer_bytes: sim.last_peak_trace_buffer_bytes() as u64,
    }
}

/// Run a set of configurations and render the `bench_trace_replay/v1`
/// report.
pub fn bench_report(configs: &[ReplayConfig]) -> Json {
    let rows: Vec<Json> = configs
        .iter()
        .map(|cfg| {
            let m = run_config(cfg);
            let paths: Vec<Json> = m
                .paths
                .iter()
                .map(|p| {
                    Json::obj([
                        ("path", Json::Str(p.path.to_string())),
                        ("seconds", Json::Num(p.seconds)),
                        ("macc_per_s", Json::Num(p.macc_per_s)),
                        ("peak_buffer_bytes", Json::Num(p.peak_buffer_bytes as f64)),
                    ])
                })
                .collect();
            Json::obj([
                ("label", Json::Str(m.config.label())),
                ("kind", Json::Str(m.config.kind.name().to_string())),
                ("cores", Json::Num(m.config.cores as f64)),
                ("accesses", Json::Num(m.accesses as f64)),
                ("paths", Json::Arr(paths)),
                (
                    "streaming_speedup_vs_sequential",
                    Json::Num(m.streaming_speedup()),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::Str("bench_trace_replay/v1".to_string())),
        ("worker_threads", Json::Num(worker_threads() as f64)),
        ("configs", Json::Arr(rows)),
    ])
}

/// Validate a `bench_trace_replay/v1` report (the CI smoke gate):
/// schema tag, non-empty config list, every config carrying all
/// three paths with positive throughput, and a well-formed
/// `sweep_reuse` section (the classify-once engine's speedup record)
/// and a well-formed `advisor_service` section (the batch query
/// engine's) — both required, so a regenerated report can never
/// silently drop them.
pub fn check_report(report: &Json) -> Result<(), String> {
    let schema = report.str_field("schema")?;
    if schema != "bench_trace_replay/v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    report.num_field("worker_threads")?;
    let configs = report.arr_field("configs")?;
    if configs.is_empty() {
        return Err("empty configs array".to_string());
    }
    for cfg in configs {
        let label = cfg.str_field("label")?;
        cfg.str_field("kind")?;
        cfg.num_field("cores")?;
        cfg.num_field("streaming_speedup_vs_sequential")?;
        let accesses = cfg.num_field("accesses")?;
        if accesses <= 0.0 {
            return Err(format!("{label}: non-positive access count"));
        }
        let paths = cfg.arr_field("paths")?;
        let mut seen = Vec::new();
        for p in paths {
            let name = p.str_field("path")?;
            let rate = p.num_field("macc_per_s")?;
            p.num_field("seconds")?;
            p.num_field("peak_buffer_bytes")?;
            if rate <= 0.0 || !rate.is_finite() {
                return Err(format!("{label}/{name}: non-positive throughput {rate}"));
            }
            seen.push(name);
        }
        for want in ["sequential", "parallel", "streaming"] {
            if !seen.iter().any(|s| s == want) {
                return Err(format!("{label}: missing path {want:?}"));
            }
        }
    }
    let sweep = report
        .get("sweep_reuse")
        .ok_or("missing sweep_reuse section (regenerate with repro bench-replay)")?;
    crate::sweep::check_sweep_section(sweep)?;
    let advisor = report
        .get("advisor_service")
        .ok_or("missing advisor_service section (regenerate with repro bench-replay)")?;
    crate::advisor::check_advisor_section(advisor)?;
    // The history section is optional (fresh reports have none), but
    // when present it must be well-formed.
    crate::history::check_history_section(report)?;
    Ok(())
}

/// Compare the parallel and streaming throughput of a measurement:
/// `Ok((parallel, streaming))` in Macc/s when parallel is at least
/// `(1 - tolerance) ×` streaming, `Err` with a diagnostic otherwise.
/// Split from [`gate_parallel_vs_streaming`] so the decision logic is
/// testable without a timed run.
pub fn compare_parallel_vs_streaming(
    m: &ReplayMeasurement,
    tolerance: f64,
) -> Result<(f64, f64), String> {
    let get = |name: &str| {
        m.paths
            .iter()
            .find(|p| p.path == name)
            .map(|p| p.macc_per_s)
            .ok_or_else(|| format!("{}: missing path {name:?}", m.config.label()))
    };
    let parallel = get("parallel")?;
    let streaming = get("streaming")?;
    if parallel >= streaming * (1.0 - tolerance) {
        Ok((parallel, streaming))
    } else {
        Err(format!(
            "{}: parallel replay ({parallel:.3} Macc/s) slower than streaming \
             ({streaming:.3} Macc/s) beyond the {:.0}% tolerance",
            m.config.label(),
            tolerance * 100.0,
        ))
    }
}

/// The replay-inversion performance gate: time `cfg` and require the
/// windowed parallel path to be at least `(1 - tolerance) ×` the
/// streaming path's throughput. On the acceptance config
/// (`stream_64x50000`) this is the regression guard for the
/// parallel-replay inversion fix — parallel used to lose to streaming
/// on the very traces it was built for.
pub fn gate_parallel_vs_streaming(
    cfg: &ReplayConfig,
    tolerance: f64,
) -> Result<(f64, f64), String> {
    compare_parallel_vs_streaming(&run_config(cfg), tolerance)
}

/// Output of a telemetry-enabled streaming profile run.
#[derive(Debug, Clone)]
pub struct ProfileRun {
    /// Accesses replayed.
    pub accesses: u64,
    /// Wall-clock seconds (including trace generation, as the
    /// streaming path is always timed).
    pub seconds: f64,
    /// Chrome `trace_event` JSONL (spans + metric counter series).
    pub chrome_jsonl: String,
    /// The registry as a `telemetry_metrics/v1` document.
    pub metrics: Json,
    /// The in-replay sampler's `timeseries/v1` JSONL export.
    pub timeseries_jsonl: String,
}

/// The sampling interval [`profile_config`] uses for `cfg`: about 64
/// windows over the whole trace, floored so tiny smoke configs still
/// sample. Derived from the config alone, so the export is
/// reproducible from the label.
pub fn profile_timeseries_interval(cfg: &ReplayConfig) -> u64 {
    (cfg.cores as u64 * cfg.accesses_per_core / 64).max(1)
}

/// Windows the profile sampler retains (more than
/// [`profile_timeseries_interval`] produces, so profiles never drop).
pub const PROFILE_TIMESERIES_CAPACITY: usize = 128;

/// Profile one configuration's streaming replay with telemetry on,
/// producing both exporter outputs. Telemetry never changes replay
/// results, so the run is the same replay `bench_report` times — just
/// observed.
pub fn profile_config(cfg: &ReplayConfig) -> ProfileRun {
    let mut sim = cfg.sim();
    sim.enable_telemetry();
    sim.enable_timeseries(
        profile_timeseries_interval(cfg),
        PROFILE_TIMESERIES_CAPACITY,
    );
    let mut source = cfg
        .kind
        .source(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
    let t0 = Instant::now();
    let report = replay_streaming(&mut sim, source.as_mut());
    let seconds = t0.elapsed().as_secs_f64();
    let registry = sim.metrics_registry();
    let chrome_jsonl = simfabric::telemetry::chrome_trace_jsonl(
        sim.telemetry_spans().expect("telemetry enabled"),
        &registry,
    );
    let timeseries_jsonl = sim.timeseries().expect("timeseries enabled").to_jsonl();
    ProfileRun {
        accesses: report.accesses,
        seconds,
        chrome_jsonl,
        metrics: hybridmem::metrics_to_json(&registry),
        timeseries_jsonl,
    }
}

/// Telemetry-enabled streaming pass over `configs`, merging each
/// config's registry under its label prefix — the `--metrics`
/// companion to [`bench_report`], run separately so the timed paths
/// stay unobserved.
pub fn collect_metrics(configs: &[ReplayConfig]) -> Json {
    let mut merged = simfabric::MetricsRegistry::new();
    for cfg in configs {
        let mut sim = cfg.sim();
        sim.enable_telemetry();
        let mut source = cfg
            .kind
            .source(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
        let _ = replay_streaming(&mut sim, source.as_mut());
        merged.merge_prefixed(&format!("{}.", cfg.label()), &sim.metrics_registry());
    }
    hybridmem::metrics_to_json(&merged)
}

/// Paired wall-time measurements of the telemetry-off and
/// telemetry-on streaming paths of one configuration.
#[derive(Debug, Clone)]
pub struct OverheadMeasurement {
    /// Best telemetry-off wall time (seconds).
    pub off_secs: f64,
    /// Best telemetry-on wall time (seconds).
    pub on_secs: f64,
    /// on/off ratio of each adjacent off/on pair, in run order.
    pub pair_ratios: Vec<f64>,
}

impl OverheadMeasurement {
    /// Estimated on/off wall-time ratio (1.0 = telemetry is free):
    /// the **median of per-pair ratios**. Each pair runs back-to-back
    /// and so shares the machine's momentary state (frequency step,
    /// cache residency, co-tenant load); cross-run estimators like
    /// min-of-N compare an off run against an on run from *different*
    /// states and report that difference as overhead. Within a pair
    /// the *second* run is measurably slower on a drifting host
    /// whatever it measures, so [`measure_overhead`] alternates which
    /// side goes first and the bias cancels across the median.
    pub fn ratio(&self) -> f64 {
        let mut sorted = self.pair_ratios.clone();
        if sorted.is_empty() {
            return 1.0;
        }
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        }
    }
}

/// Measure telemetry overhead on `cfg`'s streaming path: `iters`
/// back-to-back off/on run pairs (order alternating pair to pair),
/// yielding the per-pair ratios behind
/// [`OverheadMeasurement::ratio`]. Prefer an even `iters` so both
/// orderings contribute equally.
pub fn measure_overhead(cfg: &ReplayConfig, iters: usize) -> OverheadMeasurement {
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut pair_ratios = Vec::new();
    for i in 0..iters.max(1) {
        let mut pair = [0.0f64; 2];
        let order = if i % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for telemetry in order {
            let mut sim = cfg.sim();
            if telemetry {
                sim.enable_telemetry();
            }
            let mut source = cfg
                .kind
                .source(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
            let t0 = Instant::now();
            let _ = replay_streaming(&mut sim, source.as_mut());
            pair[telemetry as usize] = t0.elapsed().as_secs_f64();
        }
        off = off.min(pair[0]);
        on = on.min(pair[1]);
        if pair[0] > 0.0 {
            pair_ratios.push(pair[1] / pair[0]);
        }
    }
    OverheadMeasurement {
        off_secs: off,
        on_secs: on,
        pair_ratios,
    }
}

/// Measure the cost the migration plumbing adds to a *static* replay:
/// `iters` back-to-back pairs of an all-DDR run against a
/// `Migrated { period: 0 }` run — a disabled spec, so no scheduler is
/// built and routing must cost exactly one extra `Option` branch.
/// Alternates pair order like [`measure_overhead`] and additionally
/// asserts the two runs produce bit-identical reports (a disabled
/// scheduler degenerates to the static placement).
pub fn measure_migration_overhead(cfg: &ReplayConfig, iters: usize) -> OverheadMeasurement {
    let mcfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    let disabled = TracePlacement::Migrated(memkind_sim::MigrationSpec::new(0, 0));
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut pair_ratios = Vec::new();
    for i in 0..iters.max(1) {
        let mut pair = [0.0f64; 2];
        let mut reports = [None, None];
        let order = if i % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for migrated in order {
            let placement = if migrated {
                disabled
            } else {
                TracePlacement::AllDdr
            };
            let mut sim = TraceSim::new(&mcfg, cfg.cores, placement, ByteSize::mib(8));
            let mut source = cfg
                .kind
                .source(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
            let t0 = Instant::now();
            let report = replay_streaming(&mut sim, source.as_mut());
            pair[migrated as usize] = t0.elapsed().as_secs_f64();
            assert!(
                sim.migration_stats().is_none(),
                "a period-0 spec must not build a scheduler"
            );
            reports[migrated as usize] = Some(report);
        }
        assert_eq!(
            reports[0], reports[1],
            "disabled migration must replay bit-identically to AllDdr"
        );
        off = off.min(pair[0]);
        on = on.min(pair[1]);
        if pair[0] > 0.0 {
            pair_ratios.push(pair[1] / pair[0]);
        }
    }
    OverheadMeasurement {
        off_secs: off,
        on_secs: on,
        pair_ratios,
    }
}

/// Measure what the time-series sampler costs a streaming replay:
/// `iters` back-to-back sampling-off/sampling-on pairs (order
/// alternating, per-pair ratios, exactly the
/// [`measure_overhead`] protocol), additionally asserting the two
/// runs of every pair produce bit-identical replay reports — sampling
/// is observation, never simulation.
pub fn measure_sampling_overhead(cfg: &ReplayConfig, iters: usize) -> OverheadMeasurement {
    let interval = profile_timeseries_interval(cfg);
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut pair_ratios = Vec::new();
    for i in 0..iters.max(1) {
        let mut pair = [0.0f64; 2];
        let mut reports = [None, None];
        let order = if i % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for sampling in order {
            let mut sim = cfg.sim();
            if sampling {
                sim.enable_timeseries(interval, PROFILE_TIMESERIES_CAPACITY);
            }
            let mut source = cfg
                .kind
                .source(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
            let t0 = Instant::now();
            let report = replay_streaming(&mut sim, source.as_mut());
            pair[sampling as usize] = t0.elapsed().as_secs_f64();
            reports[sampling as usize] = Some(report);
        }
        assert_eq!(
            reports[0], reports[1],
            "sampling must replay bit-identically to unsampled"
        );
        off = off.min(pair[0]);
        on = on.min(pair[1]);
        if pair[0] > 0.0 {
            pair_ratios.push(pair[1] / pair[0]);
        }
    }
    OverheadMeasurement {
        off_secs: off,
        on_secs: on,
        pair_ratios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(standard_configs()[0].label(), "stream_64x50000");
        assert_eq!(smoke_configs()[0].label(), "stream_8x2000");
    }

    #[test]
    fn smoke_report_round_trips_and_validates() {
        let sweep_cfg = crate::sweep::SweepBenchConfig {
            kind: TraceKind::Stream,
            cores: 2,
            accesses_per_core: 200,
            periods: vec![100],
            budget_pages: 16,
        };
        let advisor_cfg = crate::advisor::AdvisorBenchConfig {
            queries: 8,
            kinds: vec![TraceKind::Stream],
            budgets_pages: vec![8, 16],
            cores: 2,
            accesses_per_core: 150,
        };
        let report = simfabric::par::with_threads(2, || {
            crate::advisor::bench_report_with_service(
                &[ReplayConfig {
                    kind: TraceKind::Stream,
                    cores: 4,
                    accesses_per_core: 500,
                }],
                &sweep_cfg,
                &advisor_cfg,
                1,
            )
        });
        check_report(&report).expect("fresh report validates");
        let parsed = hybridmem::json::parse(&report.to_pretty()).expect("parses");
        check_report(&parsed).expect("parsed report validates");
        // A report with the sweep section but no advisor section is
        // rejected too.
        let sweep_only = crate::sweep::bench_report_with_sweep(
            &[ReplayConfig {
                kind: TraceKind::Stream,
                cores: 2,
                accesses_per_core: 200,
            }],
            &sweep_cfg,
            1,
        );
        assert!(check_report(&sweep_only)
            .unwrap_err()
            .contains("missing advisor_service"));
        // A report without the sweep section is rejected outright.
        let bare = bench_report(&[ReplayConfig {
            kind: TraceKind::Stream,
            cores: 2,
            accesses_per_core: 200,
        }]);
        assert!(check_report(&bare)
            .unwrap_err()
            .contains("missing sweep_reuse"));
    }

    #[test]
    fn check_report_rejects_malformed_inputs() {
        let bad = hybridmem::json::parse("{\"schema\": \"nope\"}").unwrap();
        assert!(check_report(&bad).is_err());
        let no_configs = Json::obj([
            ("schema", Json::Str("bench_trace_replay/v1".to_string())),
            ("worker_threads", Json::Num(1.0)),
            ("configs", Json::Arr(vec![])),
        ]);
        assert!(check_report(&no_configs).is_err());
        let missing_path = Json::obj([
            ("schema", Json::Str("bench_trace_replay/v1".to_string())),
            ("worker_threads", Json::Num(1.0)),
            (
                "configs",
                Json::Arr(vec![Json::obj([
                    ("label", Json::Str("x".into())),
                    ("kind", Json::Str("STREAM".into())),
                    ("cores", Json::Num(4.0)),
                    ("accesses", Json::Num(100.0)),
                    ("streaming_speedup_vs_sequential", Json::Num(1.0)),
                    ("paths", Json::Arr(vec![])),
                ])]),
            ),
        ]);
        assert!(check_report(&missing_path).is_err());
    }

    #[test]
    fn config_labels_parse_back() {
        for cfg in standard_configs().iter().chain(&smoke_configs()) {
            let parsed = ReplayConfig::parse_label(&cfg.label()).expect("round-trips");
            assert_eq!(parsed.label(), cfg.label());
            assert_eq!(parsed.cores, cfg.cores);
            assert_eq!(parsed.accesses_per_core, cfg.accesses_per_core);
        }
        assert!(ReplayConfig::parse_label("stream").is_err());
        assert!(ReplayConfig::parse_label("stream_64").is_err());
        assert!(ReplayConfig::parse_label("warp_8x100").is_err());
        assert!(ReplayConfig::parse_label("stream_0x100").is_err());
        assert!(ReplayConfig::parse_label("stream_8x0").is_err());
        // Kind names match case-insensitively.
        assert_eq!(
            ReplayConfig::parse_label("XSBench_4x10").unwrap().label(),
            "xsbench_4x10"
        );
    }

    #[test]
    fn profile_run_passes_both_checkers() {
        let cfg = ReplayConfig {
            kind: TraceKind::Stream,
            cores: 4,
            accesses_per_core: 500,
        };
        let run = simfabric::par::with_threads(2, || profile_config(&cfg));
        assert!(run.accesses > 0 && run.seconds > 0.0);
        let trace = hybridmem::check_chrome_trace(&run.chrome_jsonl).expect("valid trace");
        for phase in ["generate", "classify", "merge", "finish"] {
            assert!(
                trace.span_names.iter().any(|n| n == phase),
                "missing span {phase:?} in {:?}",
                trace.span_names
            );
        }
        assert!(trace.counter_series >= 5, "{}", trace.counter_series);
        let metrics = hybridmem::check_metrics(&run.metrics).expect("valid metrics");
        assert!(metrics.total() >= 5);
        let ts = hybridmem::check_timeseries(&run.timeseries_jsonl).expect("valid timeseries");
        assert_eq!(ts.interval, profile_timeseries_interval(&cfg));
        assert!(ts.windows > 1, "{} windows", ts.windows);
        assert!(
            ts.series.iter().any(|s| s == "dram.ddr.lines"),
            "{:?}",
            ts.series
        );
    }

    #[test]
    fn sampling_overhead_pairs_are_bit_identical() {
        let cfg = ReplayConfig {
            kind: TraceKind::Gups,
            cores: 2,
            accesses_per_core: 400,
        };
        let m = simfabric::par::with_threads(2, || measure_sampling_overhead(&cfg, 2));
        assert_eq!(m.pair_ratios.len(), 2);
        assert!(m.ratio().is_finite() && m.ratio() > 0.0);
    }

    #[test]
    fn collected_metrics_validate_and_carry_label_prefixes() {
        let configs = [
            ReplayConfig {
                kind: TraceKind::Stream,
                cores: 2,
                accesses_per_core: 300,
            },
            ReplayConfig {
                kind: TraceKind::Gups,
                cores: 2,
                accesses_per_core: 300,
            },
        ];
        let doc = simfabric::par::with_threads(2, || collect_metrics(&configs));
        hybridmem::check_metrics(&doc).expect("valid metrics");
        let metrics = match doc.get("metrics") {
            Some(Json::Obj(m)) => m,
            _ => panic!("metrics object"),
        };
        for cfg in &configs {
            let key = format!("{}.shard.accesses", cfg.label());
            assert!(metrics.contains_key(&key), "missing {key}");
        }
    }

    #[test]
    fn parallel_vs_streaming_gate_logic() {
        let cfg = ReplayConfig {
            kind: TraceKind::Stream,
            cores: 4,
            accesses_per_core: 100,
        };
        let mk = |parallel: f64, streaming: f64| ReplayMeasurement {
            config: cfg,
            accesses: 400,
            paths: vec![
                PathMeasurement {
                    path: "sequential",
                    seconds: 1.0,
                    macc_per_s: 1.0,
                    peak_buffer_bytes: 0,
                },
                PathMeasurement {
                    path: "parallel",
                    seconds: 1.0,
                    macc_per_s: parallel,
                    peak_buffer_bytes: 0,
                },
                PathMeasurement {
                    path: "streaming",
                    seconds: 1.0,
                    macc_per_s: streaming,
                    peak_buffer_bytes: 0,
                },
            ],
        };
        assert_eq!(
            compare_parallel_vs_streaming(&mk(2.0, 1.0), 0.0),
            Ok((2.0, 1.0))
        );
        // Within tolerance: 0.95 vs 1.0 at 10%.
        assert!(compare_parallel_vs_streaming(&mk(0.95, 1.0), 0.10).is_ok());
        // Beyond tolerance.
        let err = compare_parallel_vs_streaming(&mk(0.5, 1.0), 0.10).unwrap_err();
        assert!(err.contains("slower than streaming"), "{err}");
        // Missing path is an error, not a pass.
        let mut missing = mk(1.0, 1.0);
        missing.paths.retain(|p| p.path != "parallel");
        assert!(compare_parallel_vs_streaming(&missing, 0.0).is_err());
    }

    #[test]
    fn overhead_measurement_produces_finite_ratio() {
        let cfg = ReplayConfig {
            kind: TraceKind::Stream,
            cores: 2,
            accesses_per_core: 200,
        };
        let m = simfabric::par::with_threads(2, || measure_overhead(&cfg, 2));
        assert!(m.off_secs.is_finite() && m.on_secs.is_finite());
        assert_eq!(m.pair_ratios.len(), 2);
        assert!(m.ratio() > 0.0 && m.ratio().is_finite());
        // Median of per-pair ratios, odd and even counts.
        let odd = OverheadMeasurement {
            off_secs: 1.0,
            on_secs: 1.0,
            pair_ratios: vec![5.0, 1.0, 1.02],
        };
        assert_eq!(odd.ratio(), 1.02);
        let even = OverheadMeasurement {
            off_secs: 1.0,
            on_secs: 1.0,
            pair_ratios: vec![1.04, 1.0, 9.0, 1.02],
        };
        assert!((even.ratio() - 1.03).abs() < 1e-12);
        let empty = OverheadMeasurement {
            off_secs: 1.0,
            on_secs: 1.0,
            pair_ratios: vec![],
        };
        assert_eq!(empty.ratio(), 1.0);
    }
}

//! Benchmark harness crate: see `benches/` for the benches (one per
//! paper table/figure plus native-kernel and ablation benches),
//! `src/harness.rs` for the in-tree fixed-iteration harness they run
//! on, and `src/bin/repro.rs` for the binary that regenerates every
//! table and figure as text/CSV.

pub mod advisor;
pub mod harness;
pub mod history;
pub mod replay;
pub mod serve;
pub mod sweep;

/// Define a bench group function that runs each target against a
/// default-configured [`harness::Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the named bench groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

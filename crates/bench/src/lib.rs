//! Benchmark harness crate: see `benches/` for the Criterion benches
//! (one per paper table/figure plus native-kernel and ablation
//! benches) and `src/bin/repro.rs` for the binary that regenerates
//! every table and figure as text/CSV.

//! Advisor-service benchmark: prices the batch query engine
//! ([`AdvisorService`]) against the naive loop it replaced.
//!
//! The naive arm answers a batch the way callers did before the
//! service existed — one [`answer`] per query, no dedup, no result
//! cache. The engine arm runs the same batch through a **fresh cold**
//! [`AdvisorService`] (within-batch dedup and result caching only; no
//! prior run's warmth flatters it). Both arms are asserted pointwise
//! bit-identical, so the measured speedup can never come from a
//! diverged engine. A second, untimed warm round on the same service
//! records the cross-batch hit rate the report publishes.
//!
//! The bundled batch is repeat-heavy on purpose — hundreds of queries
//! over a dozen distinct configurations, with budgets and thread
//! counts jittered inside their canonicalization buckets — because
//! that is the workload the service exists for (placement advice at
//! volume repeats the same few configurations with cosmetic
//! variation).
//!
//! Backs `repro bench-advisor` (the CI speedup + single-query
//! overhead gate) and the `advisor_service` section of
//! `BENCH_trace_replay.json`.

use crate::replay::{OverheadMeasurement, BENCH_SEED};
use hybridmem::json::Json;
use hybridmem::service::RESULT_CACHE_DEFAULT_BYTES;
use hybridmem::{answer, canonicalize, AdvisorQuery, AdvisorService};
use memkind_sim::migrate::PAGE_BYTES;
use simfabric::{ByteSize, Rng};
use std::sync::Arc;
use std::time::Instant;
use workloads::tracegen::TraceKind;

/// One advisor-bench scenario: how many queries to draw over which
/// distinct configuration pool.
#[derive(Debug, Clone)]
pub struct AdvisorBenchConfig {
    /// Queries in the batch.
    pub queries: usize,
    /// Trace kinds in the configuration pool.
    pub kinds: Vec<TraceKind>,
    /// Fast-tier budget buckets (pages) in the pool — the pool is the
    /// cross product of kinds and buckets.
    pub budgets_pages: Vec<u64>,
    /// Simulated core count of every pooled trace.
    pub cores: u32,
    /// Accesses per core of every pooled trace.
    pub accesses_per_core: u64,
}

impl AdvisorBenchConfig {
    /// Stable identifier, e.g. `advisor_200q_12c`.
    pub fn label(&self) -> String {
        format!("advisor_{}q_{}c", self.queries, self.pool_size())
    }

    /// Distinct configurations in the pool.
    pub fn pool_size(&self) -> usize {
        self.kinds.len() * self.budgets_pages.len()
    }

    /// The batch: `queries` draws from the pool, weighted toward its
    /// head (repeat-heavy, like real advice traffic), each draw's
    /// budget and thread count jittered *within* its canonicalization
    /// bucket so the batch also exercises key folding. Deterministic
    /// in [`BENCH_SEED`].
    pub fn batch(&self) -> Vec<AdvisorQuery> {
        let pool: Vec<(TraceKind, u64)> = self
            .kinds
            .iter()
            .flat_map(|&k| self.budgets_pages.iter().map(move |&p| (k, p)))
            .collect();
        let n = pool.len() as u64;
        // Linearly decaying weights: entry i drawn with weight n - i.
        let total: u64 = (1..=n).sum();
        let mut rng = Rng::seed_from_u64(BENCH_SEED ^ 0xAD5E);
        (0..self.queries)
            .map(|_| {
                let mut r = rng.next_below(total);
                let mut idx = 0usize;
                while r >= n - idx as u64 {
                    r -= n - idx as u64;
                    idx += 1;
                }
                let (kind, pages) = pool[idx];
                AdvisorQuery {
                    kind,
                    cores: self.cores,
                    accesses_per_core: self.accesses_per_core,
                    seed: BENCH_SEED,
                    // Any byte count in ((pages-1)·4096, pages·4096]
                    // canonicalizes to the same bucket.
                    budget: ByteSize::bytes(
                        (pages - 1) * PAGE_BYTES + 1 + rng.next_below(PAGE_BYTES),
                    ),
                    // Any request in 1..=64 folds to one SMT level.
                    threads: 1 + rng.next_below(64) as u32,
                    migrate_period: 0,
                }
            })
            .collect()
    }
}

/// The bundled 200-query scenario for `repro bench-replay` /
/// `repro bench-advisor`: 12 distinct configurations (3 kinds × 4
/// budget buckets) behind 200 repeat-heavy queries.
pub fn standard_advisor_config() -> AdvisorBenchConfig {
    AdvisorBenchConfig {
        queries: 200,
        kinds: vec![TraceKind::Stream, TraceKind::Gups, TraceKind::XsBench],
        budgets_pages: vec![16, 32, 64, 128],
        cores: 8,
        accesses_per_core: 1_500,
    }
}

/// Tiny scenario for the CI smoke gate (seconds, not minutes): 60
/// queries over 6 distinct configurations.
pub fn smoke_advisor_config() -> AdvisorBenchConfig {
    AdvisorBenchConfig {
        queries: 60,
        kinds: vec![TraceKind::Stream, TraceKind::XsBench],
        budgets_pages: vec![16, 32, 64],
        cores: 4,
        accesses_per_core: 600,
    }
}

/// Paired wall-time comparison of the naive loop and the batch
/// engine, plus the warm-round cache statistics.
#[derive(Debug, Clone)]
pub struct AdvisorMeasurement {
    /// The scenario measured.
    pub config: AdvisorBenchConfig,
    /// Distinct canonical keys the batch folded into.
    pub distinct: usize,
    /// Best naive-arm wall time (seconds).
    pub naive_secs: f64,
    /// Best engine-arm (cold service) wall time (seconds).
    pub engine_secs: f64,
    /// naive/engine ratio of each adjacent pair, in run order.
    pub pair_ratios: Vec<f64>,
    /// Result-cache hits of an untimed warm re-run of the batch on
    /// the last cold service (distinct keys served without compute).
    pub warm_hits: usize,
    /// Distinct keys the warm round computed (0 unless the cache
    /// evicted).
    pub warm_computed: usize,
}

impl AdvisorMeasurement {
    /// Estimated speedup of the engine over the naive loop: the
    /// median of per-pair ratios (same estimator and drift rationale
    /// as [`OverheadMeasurement::ratio`]).
    pub fn speedup(&self) -> f64 {
        let mut sorted = self.pair_ratios.clone();
        if sorted.is_empty() {
            return 1.0;
        }
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        }
    }

    /// Ratio of best times — the second estimator of the
    /// two-estimator gate.
    pub fn best_speedup(&self) -> f64 {
        if self.engine_secs > 0.0 {
            self.naive_secs / self.engine_secs
        } else {
            1.0
        }
    }

    /// Warm-round hit rate over distinct keys (1.0 = every repeat
    /// batch is pure cache).
    pub fn warm_hit_rate(&self) -> f64 {
        if self.distinct > 0 {
            self.warm_hits as f64 / self.distinct as f64
        } else {
            0.0
        }
    }
}

/// Time `iters` back-to-back naive/engine batch pairs (order
/// alternating pair to pair), asserting the arms pointwise
/// bit-identical every pair. The engine arm constructs a fresh
/// service inside the timed region — construction cost is part of
/// the price. Prefer an even `iters` so both orderings contribute
/// equally.
pub fn measure_advisor(cfg: &AdvisorBenchConfig, iters: usize) -> AdvisorMeasurement {
    let batch = cfg.batch();
    let mut naive_best = f64::INFINITY;
    let mut engine_best = f64::INFINITY;
    let mut pair_ratios = Vec::new();
    let mut distinct = 0;
    let mut warm_hits = 0;
    let mut warm_computed = 0;
    for i in 0..iters.max(1) {
        let mut secs = [0.0f64; 2]; // [naive, engine]
        let mut naive_out = Vec::new();
        let mut engine_out = Vec::new();
        let order = if i % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for engine in order {
            let t0 = Instant::now();
            if engine {
                let service =
                    AdvisorService::new(RESULT_CACHE_DEFAULT_BYTES, simfabric::par::num_threads());
                let (answers, stats) = service.advise_batch(&batch);
                secs[1] = t0.elapsed().as_secs_f64();
                distinct = stats.distinct;
                engine_out = answers;
                // Untimed warm round: same batch, same service — the
                // cross-batch behavior the report publishes.
                let (warm, warm_stats) = service.advise_batch(&batch);
                warm_hits = warm_stats.cache_hits;
                warm_computed = warm_stats.computed;
                for (cold, warm) in engine_out.iter().zip(&warm) {
                    assert_eq!(**cold, **warm, "warm round diverged from cold");
                }
            } else {
                naive_out = batch
                    .iter()
                    .map(|q| Arc::new(answer(&canonicalize(q))))
                    .collect();
                secs[0] = t0.elapsed().as_secs_f64();
            }
        }
        assert_eq!(naive_out.len(), engine_out.len());
        for (i, (n, e)) in naive_out.iter().zip(&engine_out).enumerate() {
            assert_eq!(**n, **e, "engine diverged from naive loop at query {i}");
        }
        naive_best = naive_best.min(secs[0]);
        engine_best = engine_best.min(secs[1]);
        if secs[1] > 0.0 {
            pair_ratios.push(secs[0] / secs[1]);
        }
    }
    AdvisorMeasurement {
        config: cfg.clone(),
        distinct,
        naive_secs: naive_best,
        engine_secs: engine_best,
        pair_ratios,
        warm_hits,
        warm_computed,
    }
}

/// Measure what the service *plumbing* costs on the path that cannot
/// amortize it: `iters` pairs of a direct [`answer`] call against a
/// single-query [`AdvisorService::advise`] on a zero-capacity service
/// (retention off, so every call takes the full canonicalize → probe
/// → compute → distribute path). The pair prices canonicalization,
/// the cache probe and the batch scaffolding, nothing else.
pub fn measure_single_query_overhead(
    cfg: &AdvisorBenchConfig,
    iters: usize,
) -> OverheadMeasurement {
    let query = &cfg.batch()[0];
    let key = canonicalize(query);
    let service = AdvisorService::new(0, 1);
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut pair_ratios = Vec::new();
    for i in 0..iters.max(1) {
        let mut pair = [0.0f64; 2]; // [direct, service]
        let order = if i % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for routed in order {
            let t0 = Instant::now();
            let advice = if routed {
                (*service.advise(query)).clone()
            } else {
                answer(&key)
            };
            pair[routed as usize] = t0.elapsed().as_secs_f64();
            assert_eq!(advice.trace, key.spec().label().to_string());
        }
        off = off.min(pair[0]);
        on = on.min(pair[1]);
        if pair[0] > 0.0 {
            pair_ratios.push(pair[1] / pair[0]);
        }
    }
    OverheadMeasurement {
        off_secs: off,
        on_secs: on,
        pair_ratios,
    }
}

/// Render a measurement as the `advisor_service` section of the
/// `bench_trace_replay/v1` report.
pub fn advisor_report_section(m: &AdvisorMeasurement) -> Json {
    Json::obj([
        ("label", Json::Str(m.config.label())),
        ("queries", Json::Num(m.config.queries as f64)),
        ("distinct", Json::Num(m.distinct as f64)),
        ("naive_secs", Json::Num(m.naive_secs)),
        ("engine_secs", Json::Num(m.engine_secs)),
        ("speedup_engine_vs_naive", Json::Num(m.speedup())),
        ("best_speedup", Json::Num(m.best_speedup())),
        ("warm_hit_rate", Json::Num(m.warm_hit_rate())),
        ("warm_computed", Json::Num(m.warm_computed as f64)),
        (
            "pair_ratios",
            Json::Arr(m.pair_ratios.iter().map(|&r| Json::Num(r)).collect()),
        ),
    ])
}

/// Validate an `advisor_service` section (called from
/// [`check_report`](crate::replay::check_report)).
pub fn check_advisor_section(section: &Json) -> Result<(), String> {
    let label = section.str_field("label")?;
    let queries = section.num_field("queries")?;
    let distinct = section.num_field("distinct")?;
    if distinct < 1.0 || queries < distinct {
        return Err(format!(
            "{label}: {queries} queries over {distinct} distinct keys (need queries >= distinct >= 1)"
        ));
    }
    for field in [
        "naive_secs",
        "engine_secs",
        "speedup_engine_vs_naive",
        "best_speedup",
    ] {
        let v = section.num_field(field)?;
        if v <= 0.0 || !v.is_finite() {
            return Err(format!("{label}: non-positive {field} {v}"));
        }
    }
    let warm = section.num_field("warm_hit_rate")?;
    if !(0.0..=1.0).contains(&warm) {
        return Err(format!("{label}: warm_hit_rate {warm} outside [0, 1]"));
    }
    section.num_field("warm_computed")?;
    if section.arr_field("pair_ratios")?.is_empty() {
        return Err(format!("{label}: empty pair_ratios"));
    }
    Ok(())
}

/// [`bench_report_with_sweep`](crate::sweep::bench_report_with_sweep)
/// plus the `advisor_service` section — what `repro bench-replay`
/// writes.
pub fn bench_report_with_service(
    configs: &[crate::replay::ReplayConfig],
    sweep_cfg: &crate::sweep::SweepBenchConfig,
    advisor_cfg: &AdvisorBenchConfig,
    iters: usize,
) -> Json {
    let mut report = crate::sweep::bench_report_with_sweep(configs, sweep_cfg, iters);
    let m = measure_advisor(advisor_cfg, iters);
    if let Json::Obj(map) = &mut report {
        map.insert("advisor_service".to_string(), advisor_report_section(&m));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro() -> AdvisorBenchConfig {
        AdvisorBenchConfig {
            queries: 12,
            kinds: vec![TraceKind::Stream],
            budgets_pages: vec![8, 16],
            cores: 2,
            accesses_per_core: 150,
        }
    }

    #[test]
    fn batches_are_deterministic_and_repeat_heavy() {
        let cfg = micro();
        let a = cfg.batch();
        let b = cfg.batch();
        assert_eq!(a, b, "batches must be deterministic");
        assert_eq!(a.len(), 12);
        let distinct: std::collections::HashSet<_> =
            a.iter().map(hybridmem::canonicalize).collect();
        assert!(
            distinct.len() <= cfg.pool_size(),
            "jitter must stay inside canonicalization buckets"
        );
        assert!(distinct.len() < a.len(), "batch must contain repeats");
        assert_eq!(cfg.label(), "advisor_12q_2c");
    }

    #[test]
    fn arms_are_bit_identical_and_measured() {
        let m = measure_advisor(&micro(), 2);
        assert!(m.distinct >= 1 && m.distinct <= 2);
        assert!(m.naive_secs > 0.0 && m.engine_secs > 0.0);
        assert_eq!(m.pair_ratios.len(), 2);
        assert!(m.speedup() > 0.0);
        assert_eq!(m.warm_hits, m.distinct, "warm round must be pure cache");
        assert_eq!(m.warm_computed, 0);
        assert!((m.warm_hit_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn advisor_section_round_trips_and_validates() {
        let m = measure_advisor(&micro(), 1);
        let section = advisor_report_section(&m);
        check_advisor_section(&section).expect("fresh section validates");
        let parsed = hybridmem::json::parse(&section.to_pretty()).expect("parse");
        check_advisor_section(&parsed).expect("parsed section validates");
        assert!(check_advisor_section(&Json::obj([])).is_err());
    }

    #[test]
    fn single_query_overhead_compares_identical_work() {
        let m = measure_single_query_overhead(&micro(), 2);
        assert!(m.off_secs > 0.0 && m.on_secs > 0.0);
        assert_eq!(m.pair_ratios.len(), 2);
        // Identical compute either way: the plumbing ratio is near 1.
        // Generous bound — a correctness test, not a timing gate.
        assert!(m.ratio() < 1.5, "plumbing ratio {}", m.ratio());
    }
}

//! Sweep-reuse benchmark: prices the classify-once / replay-many
//! engine against the regenerate-per-point sweep it replaced.
//!
//! A "sweep" here is the shape every multi-setup experiment in the
//! repo takes: one deterministic trace replayed against N timing
//! setups — flat placements, cache mode, migration periods. The
//! regenerate arm re-runs the generator and the private-cache models
//! for every point (the pre-engine behavior); the reuse arm classifies
//! once per hierarchy config (flat + cache = twice) and replays each
//! point from the [`ClassifiedTrace`] artifact. Both arms are asserted
//! pointwise bit-identical — reports *and* migration move digests — so
//! the measured speedup can never come from a diverged engine.
//!
//! Artifacts are built locally inside the timed region, **not**
//! through the warm global [`ClassifyCache`](knl::ClassifyCache): the
//! bench prices an end-to-end cold sweep, and timing a prior run's
//! cached work would flatter the reuse arm.
//!
//! Backs `repro sweep-reuse` (report), `repro bench-sweep` (the CI
//! speedup + overhead gate) and the `sweep_reuse` section of
//! `BENCH_trace_replay.json`.

use crate::replay::{OverheadMeasurement, BENCH_SEED};
use hybridmem::json::Json;
use hybridmem::TraceSpec;
use knl::tracesim::{TracePlacement, TraceSim, TraceSimReport};
use knl::{classify_signature, ClassifiedTrace, MachineConfig, MemSetup};
use memkind_sim::migrate::{MigrationStats, PAGE_BYTES};
use memkind_sim::MigrationSpec;
use simfabric::ByteSize;
use std::collections::HashMap;
use std::time::Instant;
use workloads::tracegen::{classify_streaming, replay_streaming, TraceKind};

/// One sweep-bench scenario: a trace crossed with the standard sweep
/// points (three flat statics, cache mode, one migrated point per
/// period).
#[derive(Debug, Clone)]
pub struct SweepBenchConfig {
    /// Trace generator.
    pub kind: TraceKind,
    /// Simulated core count.
    pub cores: u32,
    /// Approximate accesses per core.
    pub accesses_per_core: u64,
    /// Migration rebalance periods (accesses), one `Migrated` point
    /// each.
    pub periods: Vec<u64>,
    /// Fast-tier budget in pages: sizes the split boundary, the
    /// memory-side cache, and the migration budget.
    pub budget_pages: u32,
}

impl SweepBenchConfig {
    /// Stable identifier, e.g. `sweep_stream_32x20000`.
    pub fn label(&self) -> String {
        format!(
            "sweep_{}_{}x{}",
            self.kind.name().to_lowercase(),
            self.cores,
            self.accesses_per_core
        )
    }

    fn budget_bytes(&self) -> u64 {
        self.budget_pages as u64 * PAGE_BYTES
    }

    fn spec(&self) -> TraceSpec {
        TraceSpec::from_kind(self.kind, self.cores, self.accesses_per_core, BENCH_SEED)
    }

    /// The sweep points, fixed order: DDR, split, HBM, cache, then one
    /// migrated point per period.
    fn points(&self) -> Vec<SweepPoint> {
        let budget = self.budget_bytes();
        let msc = ByteSize::mib(8);
        let mut points = vec![
            SweepPoint {
                label: "ddr".to_string(),
                setup: MemSetup::DramOnly,
                placement: TracePlacement::AllDdr,
                msc,
            },
            SweepPoint {
                label: format!("split@{}KiB", budget >> 10),
                setup: MemSetup::DramOnly,
                placement: TracePlacement::SplitAt(budget),
                msc,
            },
            SweepPoint {
                label: "hbm".to_string(),
                setup: MemSetup::DramOnly,
                placement: TracePlacement::AllHbm,
                msc,
            },
            SweepPoint {
                label: format!("cache({}KiB)", budget >> 10),
                setup: MemSetup::CacheMode,
                placement: TracePlacement::AllDdr,
                msc: ByteSize::bytes(budget),
            },
        ];
        for &period in &self.periods {
            points.push(SweepPoint {
                label: format!("migrated_T{period}"),
                setup: MemSetup::DramOnly,
                placement: TracePlacement::Migrated(MigrationSpec::new(period, self.budget_pages)),
                msc,
            });
        }
        points
    }
}

/// One timing setup of a sweep.
#[derive(Debug, Clone)]
struct SweepPoint {
    label: String,
    setup: MemSetup,
    placement: TracePlacement,
    msc: ByteSize,
}

/// What one point produced — everything the equivalence assert
/// compares.
#[derive(Debug, Clone, PartialEq)]
struct PointOutcome {
    label: String,
    report: TraceSimReport,
    migration: Option<MigrationStats>,
}

fn run_point(
    cfg: &MachineConfig,
    cores: u32,
    point: &SweepPoint,
    ct: &ClassifiedTrace,
) -> PointOutcome {
    let mut sim = TraceSim::new(cfg, cores, point.placement, point.msc);
    let report = sim.run_classified(ct);
    PointOutcome {
        label: point.label.clone(),
        report,
        migration: sim.migration_stats(),
    }
}

/// The reuse arm: classify once per hierarchy config (keyed by the
/// classify signature, so all flat points share one artifact), then
/// replay every point from the artifacts. Classification happens
/// inside the caller's timer — this is a cold sweep, not a warm-cache
/// replay.
fn run_reuse(cfg: &SweepBenchConfig) -> Vec<PointOutcome> {
    let trace_spec = cfg.kind.spec(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
    let mut artifacts: HashMap<String, ClassifiedTrace> = HashMap::new();
    cfg.points()
        .iter()
        .map(|point| {
            let mcfg = MachineConfig::knl7210(point.setup, 64);
            let sig = classify_signature(&mcfg, point.msc);
            if !artifacts.contains_key(&sig) {
                let mut source = cfg
                    .kind
                    .source(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
                let ct =
                    classify_streaming(&mcfg, cfg.cores, point.msc, &trace_spec, source.as_mut());
                artifacts.insert(sig.clone(), ct);
            }
            run_point(&mcfg, cfg.cores, point, &artifacts[&sig])
        })
        .collect()
}

/// The regenerate arm: the pre-engine sweep — a fresh generator run
/// and a full streaming (classify + time) replay per point.
fn run_regen(cfg: &SweepBenchConfig) -> Vec<PointOutcome> {
    cfg.points()
        .iter()
        .map(|point| {
            let mcfg = MachineConfig::knl7210(point.setup, 64);
            let mut sim = TraceSim::new(&mcfg, cfg.cores, point.placement, point.msc);
            let mut source = cfg
                .kind
                .source(cfg.cores, cfg.accesses_per_core, BENCH_SEED);
            let report = replay_streaming(&mut sim, source.as_mut());
            PointOutcome {
                label: point.label.clone(),
                report,
                migration: sim.migration_stats(),
            }
        })
        .collect()
}

fn assert_outcomes_match(reuse: &[PointOutcome], regen: &[PointOutcome]) {
    assert_eq!(reuse.len(), regen.len(), "sweep arms disagree on points");
    for (a, b) in reuse.iter().zip(regen) {
        assert_eq!(
            a, b,
            "classified replay diverged from regeneration at point {:?}",
            a.label
        );
    }
}

/// Paired wall-time comparison of the two sweep arms.
#[derive(Debug, Clone)]
pub struct SweepMeasurement {
    /// The scenario measured.
    pub config: SweepBenchConfig,
    /// Accesses replayed per point (every point replays the full
    /// trace).
    pub accesses: u64,
    /// Sweep points per arm.
    pub points: usize,
    /// Best reuse-arm wall time (seconds).
    pub reuse_secs: f64,
    /// Best regenerate-arm wall time (seconds).
    pub regen_secs: f64,
    /// regen/reuse ratio of each adjacent pair, in run order.
    pub pair_ratios: Vec<f64>,
}

impl SweepMeasurement {
    /// Estimated speedup of reuse over regeneration: the median of
    /// per-pair ratios (same estimator and same drift rationale as
    /// [`OverheadMeasurement::ratio`]).
    pub fn speedup(&self) -> f64 {
        let mut sorted = self.pair_ratios.clone();
        if sorted.is_empty() {
            return 1.0;
        }
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        }
    }

    /// Ratio of best times — the second estimator of the two-estimator
    /// gate (immune to pairing bias, inflatable by one lucky regen
    /// run; a genuine speedup inflates both, so gates take the
    /// larger-is-better minimum... here the *smaller* of the two).
    pub fn best_speedup(&self) -> f64 {
        if self.reuse_secs > 0.0 {
            self.regen_secs / self.reuse_secs
        } else {
            1.0
        }
    }
}

/// Time `iters` back-to-back regen/reuse sweep pairs (order
/// alternating pair to pair, as in
/// [`measure_overhead`](crate::replay::measure_overhead)), asserting
/// the arms pointwise bit-identical every pair. Prefer an even
/// `iters` so both orderings contribute equally.
pub fn measure_sweep(cfg: &SweepBenchConfig, iters: usize) -> SweepMeasurement {
    let mut reuse_best = f64::INFINITY;
    let mut regen_best = f64::INFINITY;
    let mut pair_ratios = Vec::new();
    let mut accesses = 0;
    let points = cfg.points().len();
    for i in 0..iters.max(1) {
        let mut secs = [0.0f64; 2]; // [regen, reuse]
        let mut outcomes: [Option<Vec<PointOutcome>>; 2] = [None, None];
        let order = if i % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for reuse in order {
            let t0 = Instant::now();
            let out = if reuse {
                run_reuse(cfg)
            } else {
                run_regen(cfg)
            };
            secs[reuse as usize] = t0.elapsed().as_secs_f64();
            outcomes[reuse as usize] = Some(out);
        }
        let (regen, reuse) = (outcomes[0].take().unwrap(), outcomes[1].take().unwrap());
        assert_outcomes_match(&reuse, &regen);
        accesses = reuse[0].report.accesses;
        regen_best = regen_best.min(secs[0]);
        reuse_best = reuse_best.min(secs[1]);
        if secs[1] > 0.0 {
            pair_ratios.push(secs[0] / secs[1]);
        }
    }
    SweepMeasurement {
        config: cfg.clone(),
        accesses,
        points,
        reuse_secs: reuse_best,
        regen_secs: regen_best,
        pair_ratios,
    }
}

/// Measure what the reuse *plumbing* costs when the cache contributes
/// nothing: `iters` pairs of the direct regenerate loop against the
/// [`TraceSpec`]-routed sweep with `SWEEP_REUSE=0` — with reuse off,
/// [`hybridmem::replay_into`] is exactly `replay_streaming` from a
/// fresh source, so the pair prices the spec indirection, the env
/// check and the signature assert, nothing else. Restores the prior
/// `SWEEP_REUSE` value before returning.
pub fn measure_sweep_overhead(cfg: &SweepBenchConfig, iters: usize) -> OverheadMeasurement {
    let prev = std::env::var("SWEEP_REUSE").ok();
    std::env::set_var("SWEEP_REUSE", "0");
    let spec = cfg.spec();
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut pair_ratios = Vec::new();
    for i in 0..iters.max(1) {
        let mut pair = [0.0f64; 2];
        let mut outcomes: [Option<Vec<PointOutcome>>; 2] = [None, None];
        let order = if i % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for routed in order {
            let t0 = Instant::now();
            let out = if routed {
                cfg.points()
                    .iter()
                    .map(|point| {
                        let mcfg = MachineConfig::knl7210(point.setup, 64);
                        let (sim, report) =
                            hybridmem::replay_point(&spec, &mcfg, point.placement, point.msc);
                        PointOutcome {
                            label: point.label.clone(),
                            report,
                            migration: sim.migration_stats(),
                        }
                    })
                    .collect()
            } else {
                run_regen(cfg)
            };
            pair[routed as usize] = t0.elapsed().as_secs_f64();
            outcomes[routed as usize] = Some(out);
        }
        let (direct, routed) = (outcomes[0].take().unwrap(), outcomes[1].take().unwrap());
        assert_outcomes_match(&routed, &direct);
        off = off.min(pair[0]);
        on = on.min(pair[1]);
        if pair[0] > 0.0 {
            pair_ratios.push(pair[1] / pair[0]);
        }
    }
    match prev {
        Some(v) => std::env::set_var("SWEEP_REUSE", v),
        None => std::env::remove_var("SWEEP_REUSE"),
    }
    OverheadMeasurement {
        off_secs: off,
        on_secs: on,
        pair_ratios,
    }
}

/// Replay the sweep through the production engine — [`TraceSpec`]
/// routing, the global classify cache, `SWEEP_REUSE` honored — and
/// return `(label, report, migration stats)` per point. This is the
/// path `repro sweep-reuse` prints; the `measure_*` arms above bypass
/// the global cache on purpose, so this is also what populates the
/// `replay.classify.*` metrics.
pub fn run_engine_sweep(
    cfg: &SweepBenchConfig,
) -> Vec<(String, TraceSimReport, Option<MigrationStats>)> {
    let spec = cfg.spec();
    cfg.points()
        .iter()
        .map(|point| {
            let mcfg = MachineConfig::knl7210(point.setup, 64);
            let (sim, report) = hybridmem::replay_point(&spec, &mcfg, point.placement, point.msc);
            (point.label.clone(), report, sim.migration_stats())
        })
        .collect()
}

/// The bundled sweep-bench scenario for `repro bench-replay` /
/// `repro sweep-reuse`: 7 points (4 statics + 3 migration periods)
/// over a 640 k-access XSBench trace. XSBench because its random
/// lookups exercise the private-cache models hardest, which is the
/// cost class the artifact amortizes — STREAM's classification is
/// nearly free and measures mostly the (smaller) generator saving.
pub fn standard_sweep_config() -> SweepBenchConfig {
    SweepBenchConfig {
        kind: TraceKind::XsBench,
        cores: 32,
        accesses_per_core: 20_000,
        periods: vec![2_000, 8_000, 32_000],
        budget_pages: 64,
    }
}

/// Tiny scenario for the CI smoke gate (seconds, not minutes): 5
/// points over a 32 k-access XSBench trace.
pub fn smoke_sweep_config() -> SweepBenchConfig {
    SweepBenchConfig {
        kind: TraceKind::XsBench,
        cores: 8,
        accesses_per_core: 4_000,
        periods: vec![1_000],
        budget_pages: 32,
    }
}

/// Render a measurement as the `sweep_reuse` section of the
/// `bench_trace_replay/v1` report.
pub fn sweep_report_section(m: &SweepMeasurement) -> Json {
    Json::obj([
        ("label", Json::Str(m.config.label())),
        ("kind", Json::Str(m.config.kind.name().to_string())),
        ("cores", Json::Num(m.config.cores as f64)),
        ("points", Json::Num(m.points as f64)),
        ("accesses", Json::Num(m.accesses as f64)),
        ("reuse_secs", Json::Num(m.reuse_secs)),
        ("regen_secs", Json::Num(m.regen_secs)),
        ("speedup_reuse_vs_regen", Json::Num(m.speedup())),
        ("best_speedup", Json::Num(m.best_speedup())),
        (
            "pair_ratios",
            Json::Arr(m.pair_ratios.iter().map(|&r| Json::Num(r)).collect()),
        ),
    ])
}

/// Validate a `sweep_reuse` section (called from
/// [`check_report`](crate::replay::check_report)).
pub fn check_sweep_section(sweep: &Json) -> Result<(), String> {
    let label = sweep.str_field("label")?;
    sweep.str_field("kind")?;
    sweep.num_field("cores")?;
    let points = sweep.num_field("points")?;
    if points < 4.0 {
        return Err(format!(
            "{label}: {points} sweep points (expected the 4 statics at least)"
        ));
    }
    let accesses = sweep.num_field("accesses")?;
    if accesses <= 0.0 {
        return Err(format!("{label}: non-positive access count"));
    }
    for field in [
        "reuse_secs",
        "regen_secs",
        "speedup_reuse_vs_regen",
        "best_speedup",
    ] {
        let v = sweep.num_field(field)?;
        if v <= 0.0 || !v.is_finite() {
            return Err(format!("{label}: non-positive {field} {v}"));
        }
    }
    let ratios = sweep.arr_field("pair_ratios")?;
    if ratios.is_empty() {
        return Err(format!("{label}: empty pair_ratios"));
    }
    Ok(())
}

/// [`bench_report`](crate::replay::bench_report) plus the
/// `sweep_reuse` section — what `repro bench-replay` writes.
pub fn bench_report_with_sweep(
    configs: &[crate::replay::ReplayConfig],
    sweep_cfg: &SweepBenchConfig,
    iters: usize,
) -> Json {
    let mut report = crate::replay::bench_report(configs);
    let m = measure_sweep(sweep_cfg, iters);
    if let Json::Obj(map) = &mut report {
        map.insert("sweep_reuse".to_string(), sweep_report_section(&m));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro() -> SweepBenchConfig {
        SweepBenchConfig {
            kind: TraceKind::Stream,
            cores: 2,
            accesses_per_core: 200,
            periods: vec![100],
            budget_pages: 16,
        }
    }

    #[test]
    fn sweep_points_cover_statics_and_periods() {
        let cfg = micro();
        let points = cfg.points();
        assert_eq!(points.len(), 5);
        assert_eq!(points[0].label, "ddr");
        assert_eq!(points[2].label, "hbm");
        assert!(points[3].label.starts_with("cache("));
        assert_eq!(points[4].label, "migrated_T100");
        assert_eq!(cfg.label(), "sweep_stream_2x200");
    }

    #[test]
    fn arms_are_bit_identical_and_measured() {
        let m = measure_sweep(&micro(), 2);
        assert_eq!(m.points, 5);
        assert_eq!(m.accesses, 400);
        assert_eq!(m.pair_ratios.len(), 2);
        assert!(m.reuse_secs > 0.0 && m.regen_secs > 0.0);
        assert!(m.speedup() > 0.0);
    }

    #[test]
    fn sweep_section_round_trips_and_validates() {
        let m = measure_sweep(&micro(), 1);
        let section = sweep_report_section(&m);
        check_sweep_section(&section).expect("fresh section validates");
        let parsed = hybridmem::json::parse(&section.to_pretty()).expect("parse");
        check_sweep_section(&parsed).expect("parsed section validates");
        assert!(check_sweep_section(&Json::obj([])).is_err());
    }

    #[test]
    fn overhead_measurement_compares_identical_work() {
        let m = measure_sweep_overhead(&micro(), 2);
        assert!(m.off_secs > 0.0 && m.on_secs > 0.0);
        assert_eq!(m.pair_ratios.len(), 2);
        // Identical work either way: the plumbing ratio is near 1,
        // not near the reuse speedup. Generous bound — this is a
        // correctness test, not a timing gate.
        assert!(m.ratio() < 1.5, "plumbing ratio {}", m.ratio());
    }
}

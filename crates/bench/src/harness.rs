//! Minimal fixed-iteration benchmark harness with a Criterion-shaped
//! API, so the `benches/` files build and run with zero external
//! dependencies.
//!
//! Semantics: each benchmark warms up for `warm_up_time`, calibrates
//! an iteration count so one sample fills roughly
//! `measurement_time / sample_size`, then times `sample_size`
//! samples and reports the median time per iteration (plus
//! throughput when configured). This is deliberately simpler than
//! Criterion — no outlier analysis, no saved baselines — but keeps
//! the same bench structure and labels.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput units attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter display.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level harness handle; hands out benchmark groups.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget across all samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Attach throughput units to subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), &mut f);
        self
    }

    /// Run a benchmark identified by a `BenchmarkId`, passing `input`
    /// through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group (prints nothing extra; provided for API
    /// compatibility).
    pub fn finish(&mut self) {}

    fn run_one(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut b);
        report(&self.name, &id, &b, self.throughput);
    }
}

/// Passed to the benchmark closure; `iter` runs the timing loop.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, first warming up and calibrating an iteration
    /// count, then collecting `sample_size` timed samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up doubles as calibration: count how many iterations
        // fit in the warm-up window.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_iter) as u64).max(1);
        self.iters_per_sample = iters;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns
                .push(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let mut sorted = b.samples_ns.clone();
    sorted.sort_by(|a, c| a.partial_cmp(c).unwrap());
    let median = if sorted.is_empty() {
        0.0
    } else {
        sorted[sorted.len() / 2]
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:10.3} GiB/s", n as f64 / median / 1.073_741_824)
        }
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:10.3} Melem/s", n as f64 / median * 1e3)
        }
        _ => String::new(),
    };
    println!(
        "{group}/{id:<40} {median:>12.1} ns/iter  ({} samples x {} iters){rate}",
        b.samples_ns.len(),
        b.iters_per_sample,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("stream", "4GB").to_string(), "stream/4GB");
        assert_eq!(BenchmarkId::new("dgemm", 64).to_string(), "dgemm/64");
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        let mut acc = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        g.finish();
        assert!(acc > 0);
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        g.throughput(Throughput::Elements(7));
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::new("in", 7), &7u64, |b, &n| {
            b.iter(|| {
                seen = n;
                n
            })
        });
        assert_eq!(seen, 7);
    }
}

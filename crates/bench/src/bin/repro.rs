//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all              # every table and figure, as text
//! repro fig2 [--csv]     # one figure (fig2, fig3, fig4a..e, fig5, fig6a..d)
//! repro table1|table2    # the tables
//! repro latency          # the §IV-A idle-latency point values
//! repro validate         # run every shape check against the paper
//! repro bench-replay [--smoke] [--out PATH] [--metrics PATH]
//!                        # time the trace-replay engines (including
//!                        # the classify-once sweep-reuse arm), write
//!                        # BENCH_trace_replay.json
//! repro bench-check <file>
//!                        # validate a bench-replay JSON report
//! repro bench-gate [--config LABEL] [--tol F]
//!                        # time one config and require the parallel
//!                        # path to be >= (1 - F) x the streaming
//!                        # path's throughput (default
//!                        # stream_64x50000 at 5%); exit 1 on failure
//! repro profile [config] [--out PATH] [--metrics PATH]
//!               [--timeseries PATH]
//!                        # streaming replay with telemetry on; write a
//!                        # Chrome trace_event JSONL (about:tracing /
//!                        # Perfetto) and optionally the metrics JSON
//!                        # and the in-replay timeseries/v1 JSONL.
//!                        # config is a bench label, default
//!                        # stream_64x50000
//! repro profile-check <trace.jsonl> [--metrics PATH] [--timeseries PATH]
//!                        # validate a profile: JSONL parses, spans are
//!                        # monotonic and cover every replay phase, and
//!                        # at least 5 device metric series are present;
//!                        # --timeseries additionally validates a
//!                        # timeseries/v1 document (rejects malformed
//!                        # or empty window arrays)
//! repro report <trace.jsonl> [--timeseries PATH]
//!                        # text dashboard from a profile: per-phase
//!                        # span table, top-k stalls, final counters,
//!                        # and (with --timeseries) one sparkline
//!                        # timeline per sampled series
//! repro serve [--threads N] [--flush-every N] [--interval N]
//!             [--timeseries PATH] [--full]
//!                        # long-running advisor service: JSON-lines
//!                        # queries on stdin, one response per query on
//!                        # stdout with a causal id and a per-query
//!                        # span, periodic cache flush events, and a
//!                        # drain event at EOF; --timeseries writes the
//!                        # deterministic per-query sampler's export
//! repro serve-check <transcript.jsonl> [--queries N] [--timeseries PATH]
//!                        # validate a serve transcript: causal ids,
//!                        # one span per response, drain totals; and
//!                        # optionally the timeseries export
//! repro queries [--bundled smoke|full] [--out PATH]
//!                        # emit the bundled advisor query batch as
//!                        # JSON lines (the serve/advise-batch input
//!                        # format)
//! repro bench-history <report.json> [--append] [--check] [--tol F]
//!                        # regression sentinel over the report's
//!                        # history section: latest entry vs trailing
//!                        # median per tracked metric, exit 1 on a
//!                        # >F regression (default 10%); --append adds
//!                        # an entry derived from the report's own
//!                        # numbers and writes the file back
//! repro bench-overhead [--config LABEL] [--iters N] [--tol F]
//!                        # assert the telemetry-off vs -on streaming
//!                        # wall-time ratio stays within tolerance
//! repro sampling-overhead [--config LABEL] [--iters N] [--tol F]
//!                        # assert the timeseries-sampling-off vs -on
//!                        # streaming wall-time ratio stays within
//!                        # tolerance (replay bit-identity asserted)
//! repro migrate [--golden]
//!                        # run the Cori-style migration T-sweep
//!                        # (statics vs migrated, crossover verdict)
//! repro migrate-overhead [--config LABEL] [--iters N] [--tol F]
//!                        # assert a disabled migration scheduler adds
//!                        # no replay overhead vs the static path
//! repro sweep-reuse [--smoke] [--iters N]
//!                        # time the classify-once sweep engine against
//!                        # regenerate-per-point (bit-identity asserted)
//!                        # and print the speedup + classify-cache
//!                        # metrics
//! repro bench-sweep [--smoke] [--iters N] [--tol F] [--min-speedup F]
//!                        # CI gate: sweep-reuse speedup >= F (default
//!                        # 1.5) and reuse plumbing overhead with the
//!                        # cache disabled <= tol (default 2%); exit 1
//!                        # on failure
//! repro advise <workload> [--budget-kib K] [--threads T] [--seed S]
//!              [--period P] [--json]
//!                        # one placement-advice query through the
//!                        # batch engine (workload label like
//!                        # stream_8x2000); --json prints a validated
//!                        # advisor_advice/v1 document
//! repro advise-batch [file.jsonl|-] [--bundled smoke|full]
//!                    [--rounds N] [--out PATH]
//!                        # answer a JSON-lines query batch through
//!                        # the advisor service (dedup + result cache
//!                        # + worker pool); --rounds N re-runs the
//!                        # batch asserting bit-identical answers and
//!                        # a warm cache; --out writes one advice
//!                        # document per query
//! repro bench-advisor [--smoke] [--iters N] [--tol F] [--min-speedup F]
//!                        # CI gate: batch engine >= F x the naive
//!                        # query loop (default 5) and single-query
//!                        # plumbing overhead <= tol (default 2%);
//!                        # exit 1 on failure
//! repro trace [cores] [per_core] [--metrics PATH]
//!                        # replay the paper workloads; optionally dump
//!                        # the merged telemetry registry as JSON
//! ```

use hybridmem::figures;
use hybridmem::report::{render_figure, series_csv};
use hybridmem::validate::{render_checks, validate_all};

/// Value of `--name <value>`, if present.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Positional arguments after the subcommand; flags taking a value
/// consume the following argument.
fn positionals(args: &[String]) -> Vec<&str> {
    const VALUE_FLAGS: [&str; 16] = [
        "--out",
        "--metrics",
        "--config",
        "--iters",
        "--tol",
        "--min-speedup",
        "--budget-kib",
        "--threads",
        "--seed",
        "--period",
        "--rounds",
        "--bundled",
        "--timeseries",
        "--flush-every",
        "--interval",
        "--queries",
    ];
    let mut out = Vec::new();
    let mut iter = args.iter().skip(1);
    while let Some(a) = iter.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            iter.next();
        } else if !a.starts_with("--") {
            out.push(a.as_str());
        }
    }
    out
}

fn figure_by_id(id: &str) -> Option<hybridmem::FigureData> {
    Some(match id {
        "table1" => figures::table1(),
        "table2" => figures::table2(),
        "fig2" => figures::fig2(),
        "fig3" => figures::fig3(),
        "fig4a" => figures::fig4a(),
        "fig4b" => figures::fig4b(),
        "fig4c" => figures::fig4c(),
        "fig4d" => figures::fig4d(),
        "fig4e" => figures::fig4e(),
        "fig5" => figures::fig5(),
        "fig6a" => figures::fig6a(),
        "fig6b" => figures::fig6b(),
        "fig6c" => figures::fig6c(),
        "fig6d" => figures::fig6d(),
        "ext-hybrid" => hybridmem::extensions::ext_hybrid_stream(),
        "ext-interleave" => hybridmem::extensions::ext_interleaved_stream(),
        "ext-energy" => hybridmem::extensions::ext_energy_stream(),
        "ext-migrate" => hybridmem::ext_migration(),
        _ => return None,
    })
}

fn latency_report() -> String {
    let ddr = memdev::ddr4_knl();
    let hbm = memdev::mcdram_knl();
    format!(
        "Idle pointer-chase latency (paper §IV-A):\n  DRAM: {:.1} ns (paper: 130.4 ns)\n  HBM : {:.1} ns (paper: 154.0 ns)\n  HBM penalty: {:.1}% (paper: ~18%)\n",
        ddr.idle_latency.as_ns(),
        hbm.idle_latency.as_ns(),
        (hbm.idle_latency.as_ns() / ddr.idle_latency.as_ns() - 1.0) * 100.0
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let csv = args.iter().any(|a| a == "--csv");
    match cmd {
        "all" => {
            for fig in figures::all_figures() {
                println!("{}", render_figure(&fig));
            }
            println!("{}", latency_report());
        }
        "validate" => {
            let checks = validate_all();
            print!("{}", render_checks(&checks));
            if checks.iter().any(|c| !c.pass) {
                std::process::exit(1);
            }
        }
        "latency" => print!("{}", latency_report()),
        "trace" => {
            // repro trace [cores] [accesses_per_core] [--metrics PATH]
            let pos = positionals(&args);
            let cores: u32 = pos.first().and_then(|a| a.parse().ok()).unwrap_or(16);
            let per_core: u64 = pos.get(1).and_then(|a| a.parse().ok()).unwrap_or(2_000);
            let sweep = hybridmem::TraceSweep::paper(cores, per_core, 0xC0FFEE);
            let rows = if let Some(path) = flag_value(&args, "--metrics") {
                let (rows, registry) = sweep.run_with_metrics();
                let doc = hybridmem::metrics_to_json(&registry);
                hybridmem::check_metrics(&doc).expect("fresh metrics dump validates");
                std::fs::write(path, doc.to_pretty()).expect("write metrics");
                println!("wrote {path}");
                rows
            } else {
                sweep.run()
            };
            print!("{}", hybridmem::render_trace_replays(&rows));
            println!(
                "(replayed with {} worker thread(s); set TRACESIM_THREADS to change)",
                knl::tracesim::worker_threads()
            );
        }
        "profile" => {
            // repro profile [config-label] [--out PATH] [--metrics PATH]
            let label = positionals(&args)
                .first()
                .copied()
                .unwrap_or("stream_64x50000")
                .to_string();
            let cfg = bench::replay::ReplayConfig::parse_label(&label).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            let out = flag_value(&args, "--out")
                .map(String::from)
                .unwrap_or_else(|| format!("profile_{label}.jsonl"));
            let run = bench::replay::profile_config(&cfg);
            let trace =
                hybridmem::check_chrome_trace(&run.chrome_jsonl).expect("fresh profile validates");
            hybridmem::check_metrics(&run.metrics).expect("fresh metrics dump validates");
            let ts = hybridmem::check_timeseries(&run.timeseries_jsonl)
                .expect("fresh timeseries validates");
            std::fs::write(&out, &run.chrome_jsonl).expect("write profile");
            println!(
                "{label}: {} accesses in {:.3} s ({:.2} Macc/s with telemetry on)",
                run.accesses,
                run.seconds,
                run.accesses as f64 / run.seconds / 1e6
            );
            println!(
                "wrote {out} ({} events: spans [{}], {} metric series) — load in about:tracing or ui.perfetto.dev",
                trace.events,
                trace.span_names.join(", "),
                trace.counter_series
            );
            if let Some(path) = flag_value(&args, "--metrics") {
                std::fs::write(path, run.metrics.to_pretty()).expect("write metrics");
                println!("wrote {path}");
            }
            if let Some(path) = flag_value(&args, "--timeseries") {
                std::fs::write(path, &run.timeseries_jsonl).expect("write timeseries");
                println!(
                    "wrote {path} ({} series x {} windows, {} accesses/window)",
                    ts.series.len(),
                    ts.windows,
                    ts.interval
                );
            }
        }
        "profile-check" => {
            // repro profile-check <trace.jsonl> [--metrics PATH]
            let path = positionals(&args)
                .first()
                .copied()
                .unwrap_or_else(|| {
                    eprintln!("usage: repro profile-check <trace.jsonl> [--metrics PATH]");
                    std::process::exit(2);
                })
                .to_string();
            let text = std::fs::read_to_string(&path).expect("read profile");
            let trace = hybridmem::check_chrome_trace(&text).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            });
            for phase in ["generate", "classify", "merge", "finish"] {
                if !trace.span_names.iter().any(|n| n == phase) {
                    eprintln!(
                        "{path}: missing replay phase span {phase:?} (have: {})",
                        trace.span_names.join(", ")
                    );
                    std::process::exit(1);
                }
            }
            if trace.counter_series < 5 {
                eprintln!(
                    "{path}: only {} metric series (expected >= 5)",
                    trace.counter_series
                );
                std::process::exit(1);
            }
            println!(
                "{path}: ok ({} events, spans [{}], {} metric series)",
                trace.events,
                trace.span_names.join(", "),
                trace.counter_series
            );
            if let Some(mpath) = flag_value(&args, "--metrics") {
                let mtext = std::fs::read_to_string(mpath).expect("read metrics");
                let doc = hybridmem::json::parse(&mtext).unwrap_or_else(|e| {
                    eprintln!("{mpath}: invalid JSON: {e}");
                    std::process::exit(1);
                });
                match hybridmem::check_metrics(&doc) {
                    Ok(s) => println!(
                        "{mpath}: ok ({} counters, {} gauges, {} histograms)",
                        s.counters, s.gauges, s.histograms
                    ),
                    Err(e) => {
                        eprintln!("{mpath}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            if let Some(tpath) = flag_value(&args, "--timeseries") {
                let ttext = std::fs::read_to_string(tpath).expect("read timeseries");
                match hybridmem::check_timeseries(&ttext) {
                    Ok(s) => println!(
                        "{tpath}: ok ({} series [{}], {} windows, {} ticks, {} dropped)",
                        s.series.len(),
                        s.series.join(", "),
                        s.windows,
                        s.ticks,
                        s.dropped
                    ),
                    Err(e) => {
                        eprintln!("{tpath}: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "bench-overhead" => {
            // repro bench-overhead [--config LABEL] [--iters N] [--tol F]
            let label = flag_value(&args, "--config").unwrap_or("stream_64x50000");
            let cfg = bench::replay::ReplayConfig::parse_label(label).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            let iters: usize = flag_value(&args, "--iters")
                .and_then(|a| a.parse().ok())
                .unwrap_or(3);
            let tol: f64 = flag_value(&args, "--tol")
                .and_then(|a| a.parse().ok())
                .unwrap_or(0.02);
            let m = bench::replay::measure_overhead(&cfg, iters);
            // Two estimators with different noise modes: the median
            // of per-pair ratios (robust to outlier runs, but carries
            // any residual pairing bias) and the ratio of best times
            // (immune to pairing bias, but one lucky off-run inflates
            // it). A genuine per-access cost inflates both, so the
            // gate takes the smaller.
            let best_ratio = if m.off_secs > 0.0 {
                m.on_secs / m.off_secs
            } else {
                1.0
            };
            let ratio = m.ratio().min(best_ratio);
            println!(
                "{label}: telemetry off {:.4} s, on {:.4} s over {iters} pairs -> median pair ratio {:.4}, best ratio {:.4} (tolerance {:.2}%)",
                m.off_secs,
                m.on_secs,
                m.ratio(),
                best_ratio,
                tol * 100.0
            );
            if ratio > 1.0 + tol {
                eprintln!(
                    "telemetry overhead {:.2}% exceeds {:.2}%",
                    (ratio - 1.0) * 100.0,
                    tol * 100.0
                );
                std::process::exit(1);
            }
        }
        "compare" => {
            let cmp = hybridmem::compare_with_model();
            print!("{}", hybridmem::paper::render_comparison(&cmp));
        }
        "sensitivity" => {
            print!(
                "{}",
                hybridmem::sensitivity::render_scans(&hybridmem::all_scans())
            );
        }
        "export" => {
            // repro export <path.json>
            let path = args.get(1).map(String::as_str).unwrap_or("results.json");
            let archive = hybridmem::Archive::capture(
                "knl-hybrid-memory reproduction (Xeon Phi 7210 model)",
                figures::all_figures(),
            );
            std::fs::write(path, archive.to_json()).expect("write archive");
            println!("wrote {path}");
        }
        "diff" => {
            // repro diff <baseline.json> <candidate.json> [tolerance]
            let base = args.get(1).expect("baseline path");
            let cand = args.get(2).expect("candidate path");
            let tol: f64 = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(0.02);
            let base = hybridmem::Archive::from_json(
                &std::fs::read_to_string(base).expect("read baseline"),
            )
            .expect("parse baseline");
            let cand = hybridmem::Archive::from_json(
                &std::fs::read_to_string(cand).expect("read candidate"),
            )
            .expect("parse candidate");
            let divs = hybridmem::diff(&base, &cand, tol);
            print!("{}", hybridmem::archive::render_diff(&divs));
            if !divs.is_empty() {
                std::process::exit(1);
            }
        }
        "bench-replay" => {
            // repro bench-replay [--smoke] [--out PATH] [--metrics PATH]
            let smoke = args.iter().any(|a| a == "--smoke");
            let out = flag_value(&args, "--out").unwrap_or("BENCH_trace_replay.json");
            let configs = if smoke {
                bench::replay::smoke_configs()
            } else {
                bench::replay::standard_configs()
            };
            let sweep_cfg = if smoke {
                bench::sweep::smoke_sweep_config()
            } else {
                bench::sweep::standard_sweep_config()
            };
            let advisor_cfg = if smoke {
                bench::advisor::smoke_advisor_config()
            } else {
                bench::advisor::standard_advisor_config()
            };
            let report =
                bench::advisor::bench_report_with_service(&configs, &sweep_cfg, &advisor_cfg, 3);
            // Carry the previous report's history forward and append
            // this run, so the file at --out remembers how fast it
            // used to be (repro bench-history gates on it).
            let prior = std::fs::read_to_string(out)
                .ok()
                .and_then(|t| hybridmem::json::parse(&t).ok());
            let report = bench::history::with_appended_run(
                &report,
                prior.as_ref(),
                bench::history::unix_now_s(),
            )
            .expect("fresh report yields a history entry");
            bench::replay::check_report(&report).expect("fresh bench report validates");
            std::fs::write(out, report.to_pretty()).expect("write bench report");
            if let Some(path) = flag_value(&args, "--metrics") {
                // A separate telemetry-enabled pass, so the timed runs
                // above stay unobserved.
                let doc = bench::replay::collect_metrics(&configs);
                hybridmem::check_metrics(&doc).expect("fresh metrics dump validates");
                std::fs::write(path, doc.to_pretty()).expect("write metrics");
                println!("wrote {path}");
            }
            for cfg in report.arr_field("configs").unwrap() {
                println!(
                    "{:<22} streaming speedup vs sequential: {:.2}x",
                    cfg.str_field("label").unwrap(),
                    cfg.num_field("streaming_speedup_vs_sequential").unwrap()
                );
            }
            let sweep = report.get("sweep_reuse").unwrap();
            println!(
                "{:<22} sweep-reuse speedup vs regenerate: {:.2}x ({} points)",
                sweep.str_field("label").unwrap(),
                sweep.num_field("speedup_reuse_vs_regen").unwrap(),
                sweep.num_field("points").unwrap()
            );
            let advisor = report.get("advisor_service").unwrap();
            println!(
                "{:<22} advisor batch speedup vs naive loop: {:.2}x ({} queries, {} distinct, warm hit rate {:.2})",
                advisor.str_field("label").unwrap(),
                advisor.num_field("speedup_engine_vs_naive").unwrap(),
                advisor.num_field("queries").unwrap(),
                advisor.num_field("distinct").unwrap(),
                advisor.num_field("warm_hit_rate").unwrap()
            );
            println!(
                "history: {} entr{}",
                bench::history::entries(&report).len(),
                if bench::history::entries(&report).len() == 1 {
                    "y"
                } else {
                    "ies"
                }
            );
            println!(
                "wrote {out} ({} worker thread(s))",
                knl::tracesim::worker_threads()
            );
        }
        "bench-gate" => {
            // repro bench-gate [--config LABEL] [--tol F]
            let label = flag_value(&args, "--config").unwrap_or("stream_64x50000");
            let cfg = bench::replay::ReplayConfig::parse_label(label).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            let tol: f64 = flag_value(&args, "--tol")
                .and_then(|a| a.parse().ok())
                .unwrap_or(0.05);
            match bench::replay::gate_parallel_vs_streaming(&cfg, tol) {
                Ok((parallel, streaming)) => println!(
                    "{label}: parallel {parallel:.3} Macc/s >= streaming {streaming:.3} Macc/s \
                     (tolerance {:.0}%, {} worker thread(s))",
                    tol * 100.0,
                    knl::tracesim::worker_threads()
                ),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        "bench-check" => {
            // repro bench-check <file>
            let path = args.get(1).expect("bench report path");
            let text = std::fs::read_to_string(path).expect("read bench report");
            let report = hybridmem::json::parse(&text).unwrap_or_else(|e| {
                eprintln!("{path}: invalid JSON: {e}");
                std::process::exit(1);
            });
            match bench::replay::check_report(&report) {
                Ok(()) => println!("{path}: ok"),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        "migrate" => {
            // repro migrate [--golden]
            let golden = args.iter().any(|a| a == "--golden");
            let cfg = if golden {
                hybridmem::MigrationSweepConfig::golden()
            } else {
                hybridmem::MigrationSweepConfig::cori()
            };
            let sweep = hybridmem::run_migration_sweep(&cfg);
            print!("{}", hybridmem::render_migration_sweep(&sweep));
            let speedup = sweep.crossover_speedup();
            if speedup > 1.0 {
                println!(
                    "crossover: migration beats every static placement that fits the \
                     {}-page budget",
                    cfg.budget_pages
                );
            } else {
                println!("no crossover at this scale (best migrated {speedup:.3}x of best static)");
                // The golden configuration is deliberately tiny and
                // latency-bound; only the repro-scale sweep gates.
                if !golden {
                    std::process::exit(1);
                }
            }
        }
        "migrate-overhead" => {
            // repro migrate-overhead [--config LABEL] [--iters N] [--tol F]
            let label = flag_value(&args, "--config").unwrap_or("stream_16x12500");
            let cfg = bench::replay::ReplayConfig::parse_label(label).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            let iters: usize = flag_value(&args, "--iters")
                .and_then(|a| a.parse().ok())
                .unwrap_or(3);
            let tol: f64 = flag_value(&args, "--tol")
                .and_then(|a| a.parse().ok())
                .unwrap_or(0.02);
            let m = bench::replay::measure_migration_overhead(&cfg, iters);
            // Same two-estimator gate as bench-overhead: a genuine
            // per-access routing cost inflates both the median pair
            // ratio and the best-times ratio; take the smaller.
            let best_ratio = if m.off_secs > 0.0 {
                m.on_secs / m.off_secs
            } else {
                1.0
            };
            let ratio = m.ratio().min(best_ratio);
            println!(
                "{label}: migration-off {:.4} s, disabled-scheduler {:.4} s over {iters} pairs -> median pair ratio {:.4}, best ratio {:.4} (tolerance {:.2}%)",
                m.off_secs,
                m.on_secs,
                m.ratio(),
                best_ratio,
                tol * 100.0
            );
            if ratio > 1.0 + tol {
                eprintln!(
                    "migration-off overhead {:.2}% exceeds {:.2}%",
                    (ratio - 1.0) * 100.0,
                    tol * 100.0
                );
                std::process::exit(1);
            }
        }
        "sweep-reuse" => {
            // repro sweep-reuse [--smoke] [--iters N]
            let smoke = args.iter().any(|a| a == "--smoke");
            let iters: usize = flag_value(&args, "--iters")
                .and_then(|a| a.parse().ok())
                .unwrap_or(3);
            let cfg = if smoke {
                bench::sweep::smoke_sweep_config()
            } else {
                bench::sweep::standard_sweep_config()
            };
            println!("{} — classify-once / replay-many sweep:", cfg.label());
            println!(
                "{:<18} {:>14} {:>10} {:>12}",
                "point", "makespan_us", "bw_GBs", "moved_pages"
            );
            for (label, report, stats) in bench::sweep::run_engine_sweep(&cfg) {
                let moved = stats
                    .map(|s| (s.promoted_pages + s.demoted_pages).to_string())
                    .unwrap_or_else(|| "-".to_string());
                println!(
                    "{:<18} {:>14.3} {:>10.3} {:>12}",
                    label,
                    report.makespan.as_ns() / 1e3,
                    report.bandwidth_gbs,
                    moved
                );
            }
            let metrics = hybridmem::sweep::classify_metrics();
            for name in [
                "replay.classify.hits",
                "replay.classify.misses",
                "replay.classify.bytes",
                "replay.classify.peak_bytes",
            ] {
                if let Some(v) = metrics.get(name) {
                    println!("{name}: {v:?}");
                }
            }
            let m = bench::sweep::measure_sweep(&cfg, iters);
            println!(
                "regenerate-per-point best {:.4} s, classify-once best {:.4} s over {iters} pairs \
                 -> speedup median pair {:.2}x, best {:.2}x (arms asserted bit-identical)",
                m.regen_secs,
                m.reuse_secs,
                m.speedup(),
                m.best_speedup()
            );
        }
        "bench-sweep" => {
            // repro bench-sweep [--smoke] [--iters N] [--tol F] [--min-speedup F]
            let smoke = args.iter().any(|a| a == "--smoke");
            let iters: usize = flag_value(&args, "--iters")
                .and_then(|a| a.parse().ok())
                .unwrap_or(3);
            let tol: f64 = flag_value(&args, "--tol")
                .and_then(|a| a.parse().ok())
                .unwrap_or(0.02);
            let min_speedup: f64 = flag_value(&args, "--min-speedup")
                .and_then(|a| a.parse().ok())
                .unwrap_or(1.5);
            let cfg = if smoke {
                bench::sweep::smoke_sweep_config()
            } else {
                bench::sweep::standard_sweep_config()
            };
            let label = cfg.label();
            let m = bench::sweep::measure_sweep(&cfg, iters);
            // Two estimators, mirroring bench-overhead but inverted:
            // a genuine speedup inflates both the median pair ratio
            // and the best-times ratio, while one noisy run only moves
            // one of them — so the floor gates on the larger.
            let speedup = m.speedup().max(m.best_speedup());
            println!(
                "{label}: regenerate {:.4} s, reuse {:.4} s over {iters} pairs -> \
                 median pair {:.2}x, best {:.2}x (floor {min_speedup:.2}x)",
                m.regen_secs,
                m.reuse_secs,
                m.speedup(),
                m.best_speedup()
            );
            if speedup < min_speedup {
                eprintln!("sweep-reuse speedup {speedup:.2}x below the {min_speedup:.2}x floor");
                std::process::exit(1);
            }
            let o = bench::sweep::measure_sweep_overhead(&cfg, iters);
            let best_ratio = if o.off_secs > 0.0 {
                o.on_secs / o.off_secs
            } else {
                1.0
            };
            let ratio = o.ratio().min(best_ratio);
            println!(
                "{label}: reuse-off plumbing — direct {:.4} s, engine-routed {:.4} s -> \
                 median pair ratio {:.4}, best ratio {:.4} (tolerance {:.2}%)",
                o.off_secs,
                o.on_secs,
                o.ratio(),
                best_ratio,
                tol * 100.0
            );
            if ratio > 1.0 + tol {
                eprintln!(
                    "reuse-disabled plumbing overhead {:.2}% exceeds {:.2}%",
                    (ratio - 1.0) * 100.0,
                    tol * 100.0
                );
                std::process::exit(1);
            }
        }
        "advise" => {
            // repro advise <workload> [--budget-kib K] [--threads T]
            //              [--seed S] [--period P] [--json]
            let pos = positionals(&args);
            let workload = pos.first().copied().unwrap_or_else(|| {
                eprintln!(
                    "usage: repro advise <workload> [--budget-kib K] [--threads T] [--seed S] [--period P] [--json]"
                );
                std::process::exit(2);
            });
            let budget_kib: u64 = flag_value(&args, "--budget-kib")
                .and_then(|a| a.parse().ok())
                .unwrap_or(256);
            let mut query =
                hybridmem::AdvisorQuery::over(workload, simfabric::ByteSize::kib(budget_kib))
                    .unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    });
            if let Some(t) = flag_value(&args, "--threads").and_then(|a| a.parse().ok()) {
                query.threads = t;
            }
            if let Some(s) = flag_value(&args, "--seed").and_then(|a| a.parse().ok()) {
                query.seed = s;
            }
            if let Some(p) = flag_value(&args, "--period").and_then(|a| a.parse().ok()) {
                query.migrate_period = p;
            }
            let key = hybridmem::canonicalize(&query);
            let service = hybridmem::AdvisorService::with_defaults();
            let advice = service.advise(&query);
            if args.iter().any(|a| a == "--json") {
                let doc = hybridmem::advice_to_json(&key, &advice);
                hybridmem::check_advice(&doc).expect("fresh advice validates");
                println!("{}", doc.to_pretty());
            } else {
                println!(
                    "{} (canonical: {})",
                    query.workload_label(),
                    key.canonical()
                );
                println!(
                    "{:<28} {:>6} {:>14} {:>10}",
                    "candidate", "fits", "makespan_us", "bw_GBs"
                );
                for c in &advice.candidates {
                    println!(
                        "{:<28} {:>6} {:>14.3} {:>10.3}",
                        c.label,
                        if c.fits_budget { "yes" } else { "no" },
                        c.report.makespan.as_ns() / 1e3,
                        c.report.bandwidth_gbs
                    );
                }
                println!(
                    "recommended: {} ({:.2}x vs all-DDR)",
                    advice.recommended().label,
                    advice.speedup_vs_ddr
                );
            }
        }
        "advise-batch" => {
            // repro advise-batch [file.jsonl|-] [--bundled smoke|full]
            //                    [--rounds N] [--out PATH]
            let rounds: usize = flag_value(&args, "--rounds")
                .and_then(|a| a.parse().ok())
                .unwrap_or(1)
                .max(1);
            let queries: Vec<hybridmem::AdvisorQuery> = if let Some(which) =
                flag_value(&args, "--bundled")
            {
                let cfg = match which {
                    "smoke" => bench::advisor::smoke_advisor_config(),
                    "full" => bench::advisor::standard_advisor_config(),
                    other => {
                        eprintln!("unknown bundled batch {other:?} (want smoke or full)");
                        std::process::exit(2);
                    }
                };
                cfg.batch()
            } else {
                let path = positionals(&args).first().copied().unwrap_or_else(|| {
                        eprintln!(
                            "usage: repro advise-batch <file.jsonl|-> | --bundled smoke|full [--rounds N] [--out PATH]"
                        );
                        std::process::exit(2);
                    });
                let text = if path == "-" {
                    use std::io::Read as _;
                    let mut buf = String::new();
                    std::io::stdin()
                        .read_to_string(&mut buf)
                        .expect("read stdin");
                    buf
                } else {
                    std::fs::read_to_string(path).expect("read query batch")
                };
                text.lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty())
                    .enumerate()
                    .map(|(i, line)| {
                        let doc = hybridmem::json::parse(line).unwrap_or_else(|e| {
                            eprintln!("query line {}: invalid JSON: {e}", i + 1);
                            std::process::exit(1);
                        });
                        hybridmem::AdvisorQuery::from_json(&doc).unwrap_or_else(|e| {
                            eprintln!("query line {}: {e}", i + 1);
                            std::process::exit(1);
                        })
                    })
                    .collect()
            };
            if queries.is_empty() {
                eprintln!("empty query batch");
                std::process::exit(1);
            }
            let service = hybridmem::AdvisorService::with_defaults();
            let mut first: Option<Vec<std::sync::Arc<hybridmem::ReplayedAdvice>>> = None;
            let mut last_hits = 0;
            for round in 1..=rounds {
                let (answers, stats) = service.advise_batch(&queries);
                println!(
                    "round {round}: {} queries -> {} distinct, {} cache hits, {} computed",
                    stats.queries, stats.distinct, stats.cache_hits, stats.computed
                );
                last_hits = stats.cache_hits;
                match &first {
                    Some(cold) => {
                        for (i, (a, b)) in cold.iter().zip(&answers).enumerate() {
                            assert_eq!(
                                **a, **b,
                                "round {round} diverged from round 1 at query {i}"
                            );
                        }
                    }
                    None => first = Some(answers),
                }
            }
            if rounds > 1 && last_hits == 0 {
                eprintln!("warm round served no cache hits — the result cache is not retaining");
                std::process::exit(1);
            }
            let reg = service.cache().metrics_registry();
            for name in [
                "advisor.cache.hits",
                "advisor.cache.misses",
                "advisor.cache.inserts",
                "advisor.cache.bytes",
            ] {
                if let Some(v) = reg.get(name) {
                    println!("{name}: {v:?}");
                }
            }
            if let Some(out) = flag_value(&args, "--out") {
                let answers = first.expect("at least one round ran");
                let lines: Vec<String> = queries
                    .iter()
                    .zip(&answers)
                    .map(|(q, advice)| {
                        let doc = hybridmem::advice_to_json(&hybridmem::canonicalize(q), advice);
                        hybridmem::check_advice(&doc).expect("fresh advice validates");
                        doc.to_compact()
                    })
                    .collect();
                std::fs::write(out, lines.join("\n") + "\n").expect("write advice batch");
                println!("wrote {out} ({} advice documents)", lines.len());
            }
        }
        "bench-advisor" => {
            // repro bench-advisor [--smoke] [--iters N] [--tol F] [--min-speedup F]
            let smoke = args.iter().any(|a| a == "--smoke");
            let iters: usize = flag_value(&args, "--iters")
                .and_then(|a| a.parse().ok())
                .unwrap_or(3);
            let tol: f64 = flag_value(&args, "--tol")
                .and_then(|a| a.parse().ok())
                .unwrap_or(0.02);
            let min_speedup: f64 = flag_value(&args, "--min-speedup")
                .and_then(|a| a.parse().ok())
                .unwrap_or(5.0);
            let cfg = if smoke {
                bench::advisor::smoke_advisor_config()
            } else {
                bench::advisor::standard_advisor_config()
            };
            let label = cfg.label();
            let m = bench::advisor::measure_advisor(&cfg, iters);
            // Same inverted two-estimator floor as bench-sweep: a
            // genuine speedup inflates both estimators, one noisy run
            // only moves one — gate on the larger.
            let speedup = m.speedup().max(m.best_speedup());
            println!(
                "{label}: naive loop {:.4} s, batch engine {:.4} s over {iters} pairs -> \
                 median pair {:.2}x, best {:.2}x (floor {min_speedup:.2}x; {} distinct, warm hit rate {:.2})",
                m.naive_secs,
                m.engine_secs,
                m.speedup(),
                m.best_speedup(),
                m.distinct,
                m.warm_hit_rate()
            );
            if speedup < min_speedup {
                eprintln!("advisor batch speedup {speedup:.2}x below the {min_speedup:.2}x floor");
                std::process::exit(1);
            }
            let o = bench::advisor::measure_single_query_overhead(&cfg, iters);
            let best_ratio = if o.off_secs > 0.0 {
                o.on_secs / o.off_secs
            } else {
                1.0
            };
            let ratio = o.ratio().min(best_ratio);
            println!(
                "{label}: single-query plumbing — direct {:.4} s, service-routed {:.4} s -> \
                 median pair ratio {:.4}, best ratio {:.4} (tolerance {:.2}%)",
                o.off_secs,
                o.on_secs,
                o.ratio(),
                best_ratio,
                tol * 100.0
            );
            if ratio > 1.0 + tol {
                eprintln!(
                    "single-query plumbing overhead {:.2}% exceeds {:.2}%",
                    (ratio - 1.0) * 100.0,
                    tol * 100.0
                );
                std::process::exit(1);
            }
        }
        "report" => {
            // repro report <trace.jsonl> [--timeseries PATH]
            let path = positionals(&args)
                .first()
                .copied()
                .unwrap_or_else(|| {
                    eprintln!("usage: repro report <trace.jsonl> [--timeseries PATH]");
                    std::process::exit(2);
                })
                .to_string();
            let trace_text = std::fs::read_to_string(&path).expect("read profile");
            let ts_text = flag_value(&args, "--timeseries")
                .map(|p| std::fs::read_to_string(p).expect("read timeseries"));
            match hybridmem::render_report(&trace_text, ts_text.as_deref()) {
                Ok(rendered) => print!("{rendered}"),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        "serve" => {
            // repro serve [--threads N] [--flush-every N] [--interval N]
            //             [--timeseries PATH] [--full]
            let mut opts = bench::serve::ServeOptions::default();
            if let Some(t) = flag_value(&args, "--threads").and_then(|a| a.parse().ok()) {
                opts.workers = t;
            }
            if let Some(f) = flag_value(&args, "--flush-every").and_then(|a| a.parse().ok()) {
                opts.flush_every = f;
            }
            if let Some(i) = flag_value(&args, "--interval").and_then(|a| a.parse().ok()) {
                opts.ts_interval = i;
            }
            opts.full_advice = args.iter().any(|a| a == "--full");
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let summary = bench::serve::serve_loop(stdin.lock(), stdout.lock(), &opts)
                .unwrap_or_else(|e| {
                    eprintln!("serve: {e}");
                    std::process::exit(1);
                });
            // The transcript owns stdout; the human-facing summary
            // goes to stderr.
            eprintln!(
                "served {} queries ({} cache hits, {} computed, {} errors) with {} worker(s)",
                summary.queries, summary.hits, summary.computed, summary.errors, opts.workers
            );
            if let Some(path) = flag_value(&args, "--timeseries") {
                let ts = hybridmem::check_timeseries(&summary.timeseries_jsonl)
                    .expect("fresh serve timeseries validates");
                std::fs::write(path, &summary.timeseries_jsonl).expect("write timeseries");
                eprintln!(
                    "wrote {path} ({} series x {} windows, {} queries/window)",
                    ts.series.len(),
                    ts.windows,
                    ts.interval
                );
            }
        }
        "serve-check" => {
            // repro serve-check <transcript.jsonl> [--queries N] [--timeseries PATH]
            let path = positionals(&args)
                .first()
                .copied()
                .unwrap_or_else(|| {
                    eprintln!(
                        "usage: repro serve-check <transcript.jsonl> [--queries N] [--timeseries PATH]"
                    );
                    std::process::exit(2);
                })
                .to_string();
            let text = std::fs::read_to_string(&path).expect("read transcript");
            let expect = flag_value(&args, "--queries").and_then(|a| a.parse().ok());
            match bench::serve::check_serve_output(&text, expect) {
                Ok(c) => println!(
                    "{path}: ok ({} responses, {} cache hits, {} errors, {} flush events)",
                    c.responses, c.hits, c.errors, c.flushes
                ),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            }
            if let Some(tpath) = flag_value(&args, "--timeseries") {
                let ttext = std::fs::read_to_string(tpath).expect("read timeseries");
                match hybridmem::check_timeseries(&ttext) {
                    Ok(s) => println!(
                        "{tpath}: ok ({} series, {} windows, {} ticks)",
                        s.series.len(),
                        s.windows,
                        s.ticks
                    ),
                    Err(e) => {
                        eprintln!("{tpath}: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "queries" => {
            // repro queries [--bundled smoke|full] [--out PATH]
            let cfg = match flag_value(&args, "--bundled").unwrap_or("full") {
                "smoke" => bench::advisor::smoke_advisor_config(),
                "full" => bench::advisor::standard_advisor_config(),
                other => {
                    eprintln!("unknown bundled batch {other:?} (want smoke or full)");
                    std::process::exit(2);
                }
            };
            let lines: Vec<String> = cfg
                .batch()
                .iter()
                .map(|q| q.to_json().to_compact())
                .collect();
            match flag_value(&args, "--out") {
                Some(out) => {
                    std::fs::write(out, lines.join("\n") + "\n").expect("write queries");
                    println!("wrote {out} ({} queries)", lines.len());
                }
                None => {
                    for line in &lines {
                        println!("{line}");
                    }
                }
            }
        }
        "bench-history" => {
            // repro bench-history <report.json> [--append] [--check] [--tol F]
            let path = positionals(&args)
                .first()
                .copied()
                .unwrap_or_else(|| {
                    eprintln!(
                        "usage: repro bench-history <report.json> [--append] [--check] [--tol F]"
                    );
                    std::process::exit(2);
                })
                .to_string();
            let tol: f64 = flag_value(&args, "--tol")
                .and_then(|a| a.parse().ok())
                .unwrap_or(bench::history::DEFAULT_TOLERANCE);
            let text = std::fs::read_to_string(&path).expect("read bench report");
            let mut report = hybridmem::json::parse(&text).unwrap_or_else(|e| {
                eprintln!("{path}: invalid JSON: {e}");
                std::process::exit(1);
            });
            if args.iter().any(|a| a == "--append") {
                report = bench::history::with_appended_run(
                    &report,
                    Some(&report),
                    bench::history::unix_now_s(),
                )
                .unwrap_or_else(|e| {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                });
                std::fs::write(&path, report.to_pretty()).expect("write bench report");
                println!(
                    "{path}: appended entry {} (host {}, rev {})",
                    bench::history::entries(&report).len(),
                    bench::history::host_fingerprint(),
                    bench::history::git_rev()
                );
            }
            let verdict = bench::history::sentinel(&report, tol).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            });
            print!("{}", verdict.render());
            let regressions = verdict.regressions();
            if !regressions.is_empty() {
                for r in &regressions {
                    eprintln!(
                        "{}: latest {:.3} is {:.1}% below the trailing median {:.3} (tolerance {:.0}%)",
                        r.metric,
                        r.latest,
                        (1.0 - r.latest / r.median) * 100.0,
                        r.median,
                        tol * 100.0
                    );
                }
                std::process::exit(1);
            }
        }
        "sampling-overhead" => {
            // repro sampling-overhead [--config LABEL] [--iters N] [--tol F]
            let label = flag_value(&args, "--config").unwrap_or("stream_64x50000");
            let cfg = bench::replay::ReplayConfig::parse_label(label).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            let iters: usize = flag_value(&args, "--iters")
                .and_then(|a| a.parse().ok())
                .unwrap_or(3);
            let tol: f64 = flag_value(&args, "--tol")
                .and_then(|a| a.parse().ok())
                .unwrap_or(0.02);
            let m = bench::replay::measure_sampling_overhead(&cfg, iters);
            // Same two-estimator gate as bench-overhead: a genuine
            // per-access sampling cost inflates both the median pair
            // ratio and the best-times ratio; take the smaller.
            let best_ratio = if m.off_secs > 0.0 {
                m.on_secs / m.off_secs
            } else {
                1.0
            };
            let ratio = m.ratio().min(best_ratio);
            println!(
                "{label}: sampling off {:.4} s, on {:.4} s over {iters} pairs -> median pair ratio {:.4}, best ratio {:.4} (tolerance {:.2}%)",
                m.off_secs,
                m.on_secs,
                m.ratio(),
                best_ratio,
                tol * 100.0
            );
            if ratio > 1.0 + tol {
                eprintln!(
                    "sampling overhead {:.2}% exceeds {:.2}%",
                    (ratio - 1.0) * 100.0,
                    tol * 100.0
                );
                std::process::exit(1);
            }
        }
        "decompose" => {
            // repro decompose <GB> [sequential|random] [max_nodes]
            let gb: f64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(140.0);
            let pattern = match args.get(2).map(String::as_str) {
                Some("random") => workloads::AccessClass::Random,
                _ => workloads::AccessClass::Sequential,
            };
            let max_nodes: u32 = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(64);
            let plan = hybridmem::decompose(simfabric::ByteSize::gib_f(gb), pattern, max_nodes);
            println!(
                "{} problem, {:?} access:\n  {} node(s) x {} each, {} per node\n  predicted per-node speedup vs single node: {:.2}x\n  {}",
                plan.total, pattern, plan.nodes, plan.per_node, plan.setup.label(),
                plan.speedup_vs_single_node, plan.rationale
            );
        }
        id => match figure_by_id(id) {
            Some(fig) => {
                if csv {
                    print!("{}", series_csv(&fig.series));
                } else {
                    println!("{}", render_figure(&fig));
                }
            }
            None => {
                eprintln!(
                    "unknown target {id:?}; try: all, validate, latency, trace, compare, sensitivity, export, diff, decompose, migrate, migrate-overhead, bench-replay, bench-check, bench-history, sweep-reuse, bench-sweep, advise, advise-batch, bench-advisor, serve, serve-check, queries, profile, profile-check, report, bench-overhead, sampling-overhead, table1, table2, fig2, fig3, fig4a-e, fig5, fig6a-d, ext-hybrid, ext-interleave, ext-energy, ext-migrate"
                );
                std::process::exit(2);
            }
        },
    }
}

//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all              # every table and figure, as text
//! repro fig2 [--csv]     # one figure (fig2, fig3, fig4a..e, fig5, fig6a..d)
//! repro table1|table2    # the tables
//! repro latency          # the §IV-A idle-latency point values
//! repro validate         # run every shape check against the paper
//! repro bench-replay [--smoke] [--out PATH]
//!                        # time the trace-replay engines, write
//!                        # BENCH_trace_replay.json
//! repro bench-check <file>
//!                        # validate a bench-replay JSON report
//! ```

use hybridmem::figures;
use hybridmem::report::{render_figure, series_csv};
use hybridmem::validate::{render_checks, validate_all};

fn figure_by_id(id: &str) -> Option<hybridmem::FigureData> {
    Some(match id {
        "table1" => figures::table1(),
        "table2" => figures::table2(),
        "fig2" => figures::fig2(),
        "fig3" => figures::fig3(),
        "fig4a" => figures::fig4a(),
        "fig4b" => figures::fig4b(),
        "fig4c" => figures::fig4c(),
        "fig4d" => figures::fig4d(),
        "fig4e" => figures::fig4e(),
        "fig5" => figures::fig5(),
        "fig6a" => figures::fig6a(),
        "fig6b" => figures::fig6b(),
        "fig6c" => figures::fig6c(),
        "fig6d" => figures::fig6d(),
        "ext-hybrid" => hybridmem::extensions::ext_hybrid_stream(),
        "ext-interleave" => hybridmem::extensions::ext_interleaved_stream(),
        "ext-energy" => hybridmem::extensions::ext_energy_stream(),
        _ => return None,
    })
}

fn latency_report() -> String {
    let ddr = memdev::ddr4_knl();
    let hbm = memdev::mcdram_knl();
    format!(
        "Idle pointer-chase latency (paper §IV-A):\n  DRAM: {:.1} ns (paper: 130.4 ns)\n  HBM : {:.1} ns (paper: 154.0 ns)\n  HBM penalty: {:.1}% (paper: ~18%)\n",
        ddr.idle_latency.as_ns(),
        hbm.idle_latency.as_ns(),
        (hbm.idle_latency.as_ns() / ddr.idle_latency.as_ns() - 1.0) * 100.0
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let csv = args.iter().any(|a| a == "--csv");
    match cmd {
        "all" => {
            for fig in figures::all_figures() {
                println!("{}", render_figure(&fig));
            }
            println!("{}", latency_report());
        }
        "validate" => {
            let checks = validate_all();
            print!("{}", render_checks(&checks));
            if checks.iter().any(|c| !c.pass) {
                std::process::exit(1);
            }
        }
        "latency" => print!("{}", latency_report()),
        "trace" => {
            // repro trace [cores] [accesses_per_core]
            let cores: u32 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(16);
            let per_core: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(2_000);
            let rows = hybridmem::TraceSweep::paper(cores, per_core, 0xC0FFEE).run();
            print!("{}", hybridmem::render_trace_replays(&rows));
            println!(
                "(replayed with {} worker thread(s); set TRACESIM_THREADS to change)",
                knl::tracesim::worker_threads()
            );
        }
        "compare" => {
            let cmp = hybridmem::compare_with_model();
            print!("{}", hybridmem::paper::render_comparison(&cmp));
        }
        "sensitivity" => {
            print!(
                "{}",
                hybridmem::sensitivity::render_scans(&hybridmem::all_scans())
            );
        }
        "export" => {
            // repro export <path.json>
            let path = args.get(1).map(String::as_str).unwrap_or("results.json");
            let archive = hybridmem::Archive::capture(
                "knl-hybrid-memory reproduction (Xeon Phi 7210 model)",
                figures::all_figures(),
            );
            std::fs::write(path, archive.to_json()).expect("write archive");
            println!("wrote {path}");
        }
        "diff" => {
            // repro diff <baseline.json> <candidate.json> [tolerance]
            let base = args.get(1).expect("baseline path");
            let cand = args.get(2).expect("candidate path");
            let tol: f64 = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(0.02);
            let base = hybridmem::Archive::from_json(
                &std::fs::read_to_string(base).expect("read baseline"),
            )
            .expect("parse baseline");
            let cand = hybridmem::Archive::from_json(
                &std::fs::read_to_string(cand).expect("read candidate"),
            )
            .expect("parse candidate");
            let divs = hybridmem::diff(&base, &cand, tol);
            print!("{}", hybridmem::archive::render_diff(&divs));
            if !divs.is_empty() {
                std::process::exit(1);
            }
        }
        "bench-replay" => {
            // repro bench-replay [--smoke] [--out PATH]
            let smoke = args.iter().any(|a| a == "--smoke");
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("BENCH_trace_replay.json");
            let configs = if smoke {
                bench::replay::smoke_configs()
            } else {
                bench::replay::standard_configs()
            };
            let report = bench::replay::bench_report(&configs);
            bench::replay::check_report(&report).expect("fresh bench report validates");
            std::fs::write(out, report.to_pretty()).expect("write bench report");
            for cfg in report.arr_field("configs").unwrap() {
                println!(
                    "{:<22} streaming speedup vs sequential: {:.2}x",
                    cfg.str_field("label").unwrap(),
                    cfg.num_field("streaming_speedup_vs_sequential").unwrap()
                );
            }
            println!(
                "wrote {out} ({} worker thread(s))",
                knl::tracesim::worker_threads()
            );
        }
        "bench-check" => {
            // repro bench-check <file>
            let path = args.get(1).expect("bench report path");
            let text = std::fs::read_to_string(path).expect("read bench report");
            let report = hybridmem::json::parse(&text).unwrap_or_else(|e| {
                eprintln!("{path}: invalid JSON: {e}");
                std::process::exit(1);
            });
            match bench::replay::check_report(&report) {
                Ok(()) => println!("{path}: ok"),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        "decompose" => {
            // repro decompose <GB> [sequential|random] [max_nodes]
            let gb: f64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(140.0);
            let pattern = match args.get(2).map(String::as_str) {
                Some("random") => workloads::AccessClass::Random,
                _ => workloads::AccessClass::Sequential,
            };
            let max_nodes: u32 = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(64);
            let plan = hybridmem::decompose(simfabric::ByteSize::gib_f(gb), pattern, max_nodes);
            println!(
                "{} problem, {:?} access:\n  {} node(s) x {} each, {} per node\n  predicted per-node speedup vs single node: {:.2}x\n  {}",
                plan.total, pattern, plan.nodes, plan.per_node, plan.setup.label(),
                plan.speedup_vs_single_node, plan.rationale
            );
        }
        id => match figure_by_id(id) {
            Some(fig) => {
                if csv {
                    print!("{}", series_csv(&fig.series));
                } else {
                    println!("{}", render_figure(&fig));
                }
            }
            None => {
                eprintln!(
                    "unknown target {id:?}; try: all, validate, latency, trace, compare, sensitivity, export, diff, decompose, bench-replay, bench-check, table1, table2, fig2, fig3, fig4a-e, fig5, fig6a-d, ext-hybrid, ext-interleave, ext-energy"
                );
                std::process::exit(2);
            }
        },
    }
}

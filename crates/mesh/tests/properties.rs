//! Property tests for the mesh model.

use mesh::{ClusterMode, Coord, MeshModel, Topology};
use proptest::prelude::*;
use simfabric::SimTime;

fn coord() -> impl Strategy<Value = Coord> {
    (0u8..6, 0u8..6).prop_map(|(x, y)| Coord { x, y })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Route length always equals the Manhattan distance, routes are
    /// duplicate-free, and each step moves by exactly one hop.
    #[test]
    fn routes_are_minimal_xy_paths(a in coord(), b in coord()) {
        let route = MeshModel::route(a, b);
        prop_assert_eq!(route.len() as u32, a.hops_to(b));
        let mut prev = a;
        for &c in &route {
            prop_assert_eq!(prev.hops_to(c), 1, "non-unit step {:?} -> {:?}", prev, c);
            prev = c;
        }
        if !route.is_empty() {
            prop_assert_eq!(*route.last().unwrap(), b);
        }
    }

    /// Uncontended send latency is exactly hops x hop-latency, and
    /// sending never returns earlier than it started.
    #[test]
    fn send_latency_is_hops(a in coord(), b in coord()) {
        let mut m = MeshModel::knl(ClusterMode::Quadrant);
        let t = m.send(a, b, SimTime::ZERO);
        let expect = a.hops_to(b) as f64 * 1.2;
        prop_assert!((t.as_ns() - expect).abs() < 1e-9);
    }

    /// CHA selection is deterministic and respects the cluster-mode
    /// affinity constraint for every address.
    #[test]
    fn cha_respects_mode_constraints(addr in 0u64..(1u64 << 40), is_mcdram in any::<bool>()) {
        let topo = Topology::knl7210();
        for mode in [ClusterMode::Quadrant, ClusterMode::Hemisphere, ClusterMode::AllToAll] {
            let port = mode.port_for(&topo, addr, is_mcdram);
            let cha1 = mode.cha_for(&topo, addr, port);
            let cha2 = mode.cha_for(&topo, addr, port);
            prop_assert_eq!(cha1, cha2, "non-deterministic CHA");
            match mode {
                ClusterMode::Quadrant => prop_assert_eq!(
                    topo.quadrant_of(cha1),
                    topo.quadrant_of(topo.port(port))
                ),
                ClusterMode::Hemisphere => prop_assert_eq!(
                    topo.hemisphere_of(cha1),
                    topo.hemisphere_of(topo.port(port))
                ),
                _ => {}
            }
            // The CHA is always an active tile.
            prop_assert!(topo.tiles.contains(&cha1));
        }
    }

    /// Messages through one link are separated by at least the link
    /// service time (rate limiting holds under load).
    #[test]
    fn link_rate_is_enforced(n in 2usize..40) {
        let mut m = MeshModel::knl(ClusterMode::Quadrant);
        let a = Coord { x: 0, y: 0 };
        let b = Coord { x: 5, y: 0 };
        let mut arrivals: Vec<f64> = (0..n)
            .map(|_| m.send(a, b, SimTime::ZERO).as_ns())
            .collect();
        arrivals.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for w in arrivals.windows(2) {
            prop_assert!(w[1] - w[0] > 0.39, "arrivals too close: {:?}", w);
        }
    }
}

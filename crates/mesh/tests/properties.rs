//! Property tests for the mesh model, driven by seeded random cases
//! from the in-tree PRNG.

use mesh::{ClusterMode, Coord, MeshModel, Topology};
use simfabric::prng::Rng;
use simfabric::SimTime;

fn coord(rng: &mut Rng) -> Coord {
    Coord {
        x: rng.gen_range(0u8..6),
        y: rng.gen_range(0u8..6),
    }
}

/// Route length always equals the Manhattan distance, routes are
/// duplicate-free, and each step moves by exactly one hop.
#[test]
fn routes_are_minimal_xy_paths() {
    let mut rng = Rng::seed_from_u64(0x3e54_0001);
    for case in 0..128 {
        let a = coord(&mut rng);
        let b = coord(&mut rng);
        let route = MeshModel::route(a, b);
        assert_eq!(route.len() as u32, a.hops_to(b), "case {case}");
        let mut prev = a;
        for &c in &route {
            assert_eq!(
                prev.hops_to(c),
                1,
                "case {case}: non-unit step {prev:?} -> {c:?}"
            );
            prev = c;
        }
        if !route.is_empty() {
            assert_eq!(*route.last().unwrap(), b, "case {case}");
        }
    }
}

/// Uncontended send latency is exactly hops x hop-latency, and
/// sending never returns earlier than it started.
#[test]
fn send_latency_is_hops() {
    let mut rng = Rng::seed_from_u64(0x3e54_0002);
    for case in 0..128 {
        let a = coord(&mut rng);
        let b = coord(&mut rng);
        let mut m = MeshModel::knl(ClusterMode::Quadrant);
        let t = m.send(a, b, SimTime::ZERO);
        let expect = a.hops_to(b) as f64 * 1.2;
        assert!((t.as_ns() - expect).abs() < 1e-9, "case {case}");
    }
}

/// CHA selection is deterministic and respects the cluster-mode
/// affinity constraint for every address.
#[test]
fn cha_respects_mode_constraints() {
    let mut rng = Rng::seed_from_u64(0x3e54_0003);
    for case in 0..128 {
        let addr = rng.gen_range(0u64..(1u64 << 40));
        let is_mcdram: bool = rng.gen();
        let topo = Topology::knl7210();
        for mode in [
            ClusterMode::Quadrant,
            ClusterMode::Hemisphere,
            ClusterMode::AllToAll,
        ] {
            let port = mode.port_for(&topo, addr, is_mcdram);
            let cha1 = mode.cha_for(&topo, addr, port);
            let cha2 = mode.cha_for(&topo, addr, port);
            assert_eq!(cha1, cha2, "case {case}: non-deterministic CHA");
            match mode {
                ClusterMode::Quadrant => assert_eq!(
                    topo.quadrant_of(cha1),
                    topo.quadrant_of(topo.port(port)),
                    "case {case}"
                ),
                ClusterMode::Hemisphere => assert_eq!(
                    topo.hemisphere_of(cha1),
                    topo.hemisphere_of(topo.port(port)),
                    "case {case}"
                ),
                _ => {}
            }
            // The CHA is always an active tile.
            assert!(topo.tiles.contains(&cha1), "case {case}");
        }
    }
}

/// Messages through one link are separated by at least the link
/// service time (rate limiting holds under load).
#[test]
fn link_rate_is_enforced() {
    let mut rng = Rng::seed_from_u64(0x3e54_0004);
    for case in 0..128 {
        let n = rng.gen_range(2usize..40);
        let mut m = MeshModel::knl(ClusterMode::Quadrant);
        let a = Coord { x: 0, y: 0 };
        let b = Coord { x: 5, y: 0 };
        let mut arrivals: Vec<f64> = (0..n)
            .map(|_| m.send(a, b, SimTime::ZERO).as_ns())
            .collect();
        arrivals.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for w in arrivals.windows(2) {
            assert!(w[1] - w[0] > 0.39, "case {case}: arrivals too close: {w:?}");
        }
    }
}

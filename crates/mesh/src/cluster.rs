//! Cluster modes.
//!
//! KNL's cluster mode controls the affinity between a request's CHA
//! (tag-directory slice) and the memory port that serves it:
//!
//! * **All-to-all** — no affinity: any address may be homed by any CHA
//!   and served by any port; worst-case hop counts.
//! * **Quadrant** — the die is split into four virtual quadrants; an
//!   address is homed by a CHA in the *same quadrant* as its memory
//!   port, halving the CHA→port distance. The paper's testbed uses
//!   this mode (§III-A). Software still sees one NUMA node per memory.
//! * **Hemisphere** — same idea with two halves.
//! * **SNC-4** — quadrants are additionally exposed to software as NUMA
//!   nodes (not used by the paper; included for ablations).

use crate::topology::{Coord, MemPort, Topology};

/// The KNL cluster mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClusterMode {
    /// No CHA/port affinity.
    AllToAll,
    /// Four-way affinity (the testbed's configuration).
    #[default]
    Quadrant,
    /// Two-way affinity.
    Hemisphere,
    /// Quadrant affinity exposed as NUMA subdomains.
    Snc4,
}

/// Stable address hash used for CHA and port selection.
fn mix(addr: u64, salt: u64) -> u64 {
    let mut z = (addr / 64).wrapping_add(salt.wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl ClusterMode {
    /// The memory port that serves `addr` on `topo`, for MCDRAM
    /// (`is_mcdram = true`, hashed over the eight EDCs) or DDR
    /// (hashed over the two MCs — each MC drives three channels).
    pub fn port_for(self, topo: &Topology, addr: u64, is_mcdram: bool) -> MemPort {
        if is_mcdram {
            MemPort::Edc((mix(addr, 0xEDC) % topo.edcs.len() as u64) as u8)
        } else {
            MemPort::DdrMc((mix(addr, 0xDD4) % topo.ddr_mcs.len() as u64) as u8)
        }
    }

    /// The CHA (directory home) tile for `addr`, given the port that
    /// will serve it. In quadrant/hemisphere/SNC modes the CHA is
    /// constrained to the port's die region.
    pub fn cha_for(self, topo: &Topology, addr: u64, port: MemPort) -> Coord {
        let h = mix(addr, 0xC4A);
        let port_pos = topo.port(port);
        let candidates: Vec<Coord> = match self {
            ClusterMode::AllToAll => topo.tiles.clone(),
            ClusterMode::Quadrant | ClusterMode::Snc4 => {
                let q = topo.quadrant_of(port_pos);
                topo.tiles
                    .iter()
                    .copied()
                    .filter(|&c| topo.quadrant_of(c) == q)
                    .collect()
            }
            ClusterMode::Hemisphere => {
                let hm = topo.hemisphere_of(port_pos);
                topo.tiles
                    .iter()
                    .copied()
                    .filter(|&c| topo.hemisphere_of(c) == hm)
                    .collect()
            }
        };
        candidates[(h % candidates.len() as u64) as usize]
    }

    /// Average CHA→port hop count over a sample of addresses — the
    /// quantity the cluster mode actually improves.
    pub fn avg_cha_to_port_hops(self, topo: &Topology, is_mcdram: bool, samples: u64) -> f64 {
        let mut total = 0u64;
        for i in 0..samples {
            let addr = i.wrapping_mul(0x9e3779b97f4a7c15) & !63;
            let port = self.port_for(topo, addr, is_mcdram);
            let cha = self.cha_for(topo, addr, port);
            total += cha.hops_to(topo.port(port)) as u64;
        }
        total as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_cover_all_edcs_and_mcs() {
        let topo = Topology::knl7210();
        let mode = ClusterMode::Quadrant;
        let mut edcs = std::collections::HashSet::new();
        let mut mcs = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            match mode.port_for(&topo, i * 64, true) {
                MemPort::Edc(e) => {
                    edcs.insert(e);
                }
                MemPort::DdrMc(_) => panic!("asked for MCDRAM"),
            }
            match mode.port_for(&topo, i * 64, false) {
                MemPort::DdrMc(m) => {
                    mcs.insert(m);
                }
                MemPort::Edc(_) => panic!("asked for DDR"),
            }
        }
        assert_eq!(edcs.len(), 8);
        assert_eq!(mcs.len(), 2);
    }

    #[test]
    fn quadrant_mode_keeps_cha_near_port() {
        let topo = Topology::knl7210();
        for i in 0..2_000u64 {
            let addr = i * 4096 + 64;
            let port = ClusterMode::Quadrant.port_for(&topo, addr, true);
            let cha = ClusterMode::Quadrant.cha_for(&topo, addr, port);
            assert_eq!(
                topo.quadrant_of(cha),
                topo.quadrant_of(topo.port(port)),
                "CHA left the port's quadrant"
            );
        }
    }

    #[test]
    fn quadrant_beats_all_to_all_on_cha_port_distance() {
        let topo = Topology::knl7210();
        let q = ClusterMode::Quadrant.avg_cha_to_port_hops(&topo, true, 5_000);
        let a = ClusterMode::AllToAll.avg_cha_to_port_hops(&topo, true, 5_000);
        assert!(
            q < a * 0.7,
            "quadrant {q:.2} hops should clearly beat all-to-all {a:.2}"
        );
    }

    #[test]
    fn hemisphere_is_between() {
        let topo = Topology::knl7210();
        let q = ClusterMode::Quadrant.avg_cha_to_port_hops(&topo, true, 5_000);
        let h = ClusterMode::Hemisphere.avg_cha_to_port_hops(&topo, true, 5_000);
        let a = ClusterMode::AllToAll.avg_cha_to_port_hops(&topo, true, 5_000);
        assert!(q <= h && h <= a, "q={q:.2} h={h:.2} a={a:.2}");
    }

    #[test]
    fn cha_selection_is_deterministic() {
        let topo = Topology::knl7210();
        let port = ClusterMode::Quadrant.port_for(&topo, 0xABCD00, true);
        let a = ClusterMode::Quadrant.cha_for(&topo, 0xABCD00, port);
        let b = ClusterMode::Quadrant.cha_for(&topo, 0xABCD00, port);
        assert_eq!(a, b);
    }
}

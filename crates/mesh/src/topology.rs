//! Tile grid and memory-port placement.
//!
//! The KNL die arranges tiles in a 2D grid with the eight MCDRAM EDC
//! ports at the die's corners (two per corner) and the two DDR memory
//! controllers on the left and right edges. The Xeon Phi 7210 used by
//! the paper's testbed has 32 active tiles (64 cores) out of the 38
//! physical sites; we model the active grid as 6 columns × 6 rows with
//! four sites unused, which preserves the average hop distances that
//! matter to the timing model.

/// A grid coordinate (column, row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (0 = west edge).
    pub x: u8,
    /// Row (0 = north edge).
    pub y: u8,
}

impl Coord {
    /// Manhattan distance to `other` (the XY-routed hop count).
    pub fn hops_to(self, other: Coord) -> u32 {
        (self.x.abs_diff(other.x) + self.y.abs_diff(other.y)) as u32
    }
}

/// A memory port on the mesh edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemPort {
    /// One of the eight MCDRAM embedded DRAM controllers.
    Edc(u8),
    /// One of the two DDR memory controllers (each drives 3 channels).
    DdrMc(u8),
}

/// The mesh topology: active tiles and memory-port positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Grid width in tile columns.
    pub cols: u8,
    /// Grid height in tile rows.
    pub rows: u8,
    /// Positions of active tiles, indexed by tile ID.
    pub tiles: Vec<Coord>,
    /// Positions of the eight EDCs (MCDRAM ports).
    pub edcs: Vec<Coord>,
    /// Positions of the two DDR MCs.
    pub ddr_mcs: Vec<Coord>,
}

impl Topology {
    /// The Xeon Phi 7210 layout: 32 active tiles on a 6×6 grid, EDCs
    /// paired at the four corners, DDR MCs mid-height on the west and
    /// east edges.
    pub fn knl7210() -> Self {
        let mut tiles = Vec::with_capacity(32);
        // Skip the four sites nearest the grid centre-columns' top row,
        // mirroring how parts are binned (which sites are fused off
        // varies per die; the choice only perturbs hop averages by a
        // fraction of a hop).
        let inactive = [(2u8, 0u8), (3, 0), (2, 5), (3, 5)];
        for y in 0..6u8 {
            for x in 0..6u8 {
                if inactive.contains(&(x, y)) {
                    continue;
                }
                tiles.push(Coord { x, y });
            }
        }
        debug_assert_eq!(tiles.len(), 32);
        Topology {
            cols: 6,
            rows: 6,
            tiles,
            edcs: vec![
                Coord { x: 0, y: 0 },
                Coord { x: 1, y: 0 },
                Coord { x: 4, y: 0 },
                Coord { x: 5, y: 0 },
                Coord { x: 0, y: 5 },
                Coord { x: 1, y: 5 },
                Coord { x: 4, y: 5 },
                Coord { x: 5, y: 5 },
            ],
            ddr_mcs: vec![Coord { x: 0, y: 2 }, Coord { x: 5, y: 2 }],
        }
    }

    /// Number of active tiles.
    pub fn num_tiles(&self) -> u32 {
        self.tiles.len() as u32
    }

    /// Position of tile `id`.
    pub fn tile(&self, id: u32) -> Coord {
        self.tiles[id as usize]
    }

    /// Position of a memory port.
    pub fn port(&self, port: MemPort) -> Coord {
        match port {
            MemPort::Edc(i) => self.edcs[i as usize],
            MemPort::DdrMc(i) => self.ddr_mcs[i as usize],
        }
    }

    /// The quadrant (0–3) a coordinate belongs to: west/east split at
    /// `cols/2`, north/south at `rows/2`.
    pub fn quadrant_of(&self, c: Coord) -> u8 {
        let east = (c.x >= self.cols / 2) as u8;
        let south = (c.y >= self.rows / 2) as u8;
        south * 2 + east
    }

    /// The hemisphere (0–1) a coordinate belongs s to (west/east).
    pub fn hemisphere_of(&self, c: Coord) -> u8 {
        (c.x >= self.cols / 2) as u8
    }

    /// EDC indices within quadrant `q`.
    pub fn edcs_in_quadrant(&self, q: u8) -> Vec<u8> {
        (0..self.edcs.len() as u8)
            .filter(|&i| self.quadrant_of(self.edcs[i as usize]) == q)
            .collect()
    }

    /// Average tile-to-tile hop count (all ordered active pairs).
    pub fn avg_tile_hops(&self) -> f64 {
        let n = self.tiles.len();
        let total: u32 = self
            .tiles
            .iter()
            .flat_map(|&a| self.tiles.iter().map(move |&b| a.hops_to(b)))
            .sum();
        total as f64 / (n * n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl7210_has_32_tiles_8_edcs_2_mcs() {
        let t = Topology::knl7210();
        assert_eq!(t.num_tiles(), 32);
        assert_eq!(t.edcs.len(), 8);
        assert_eq!(t.ddr_mcs.len(), 2);
    }

    #[test]
    fn hops_are_manhattan_and_symmetric() {
        let a = Coord { x: 0, y: 0 };
        let b = Coord { x: 3, y: 4 };
        assert_eq!(a.hops_to(b), 7);
        assert_eq!(b.hops_to(a), 7);
        assert_eq!(a.hops_to(a), 0);
    }

    #[test]
    fn quadrants_partition_the_die() {
        let t = Topology::knl7210();
        let mut counts = [0u32; 4];
        for &c in &t.tiles {
            counts[t.quadrant_of(c) as usize] += 1;
        }
        // 32 tiles, 4 inactive sites split evenly: 8 per quadrant.
        assert_eq!(counts, [8, 8, 8, 8]);
        // Two EDCs per quadrant.
        for q in 0..4 {
            assert_eq!(t.edcs_in_quadrant(q).len(), 2, "quadrant {q}");
        }
    }

    #[test]
    fn hemispheres_split_east_west() {
        let t = Topology::knl7210();
        assert_eq!(t.hemisphere_of(Coord { x: 0, y: 3 }), 0);
        assert_eq!(t.hemisphere_of(Coord { x: 5, y: 3 }), 1);
    }

    #[test]
    fn avg_hops_is_reasonable_for_6x6() {
        // For a uniform 6x6 grid the mean Manhattan distance is ~3.9;
        // the active-tile subset should be close.
        let t = Topology::knl7210();
        let avg = t.avg_tile_hops();
        assert!(avg > 3.0 && avg < 4.5, "avg hops {avg}");
    }

    #[test]
    fn ports_resolve() {
        let t = Topology::knl7210();
        assert_eq!(t.port(MemPort::Edc(0)), Coord { x: 0, y: 0 });
        assert_eq!(t.port(MemPort::DdrMc(1)), Coord { x: 5, y: 2 });
    }
}

//! XY routing with link occupancy, and the analytic mesh-latency
//! helpers used by the machine model.
//!
//! The event-driven path reserves every link along the XY route through
//! a per-link regulator, so concurrent traffic through shared links
//! serializes. The analytic path reduces the mesh to an average
//! per-access latency from hop counts — adequate because on KNL the
//! mesh is provisioned to be far from saturation for memory traffic.

use crate::cluster::ClusterMode;
use crate::topology::{Coord, MemPort, Topology};
use simfabric::stats::Counter;
use simfabric::{Duration, SimTime};
use std::collections::HashMap;

/// Statistics for the mesh.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshStats {
    /// Messages routed.
    pub messages: Counter,
    /// Total hops traversed.
    pub hops: Counter,
    /// Messages delayed by link contention.
    pub contended: Counter,
}

impl MeshStats {
    /// Combine two stat sets (commutative and associative: counter
    /// sums reduce to the same totals in any merge order).
    pub fn merge(self, other: MeshStats) -> MeshStats {
        MeshStats {
            messages: self.messages.merge(other.messages),
            hops: self.hops.merge(other.hops),
            contended: self.contended.merge(other.contended),
        }
    }
}

/// The mesh model: topology + cluster mode + link state.
#[derive(Debug, Clone)]
pub struct MeshModel {
    topo: Topology,
    mode: ClusterMode,
    hop_latency: Duration,
    /// Per-link flit slot: (from, to) → busy-until.
    links: HashMap<(Coord, Coord), SimTime>,
    /// Link service time per message (flit serialization).
    link_service: Duration,
    stats: MeshStats,
    /// Telemetry: traversal count per directed link, recorded in
    /// [`send`](Self::send). `None` (the default) costs one branch per
    /// hop; the map only grows to links actually traversed.
    link_traversals: Option<Box<HashMap<(Coord, Coord), u64>>>,
}

impl MeshModel {
    /// A KNL mesh in `mode`. Hop latency ≈ 2 mesh cycles at 1.7 GHz
    /// (~1.2 ns); a 64-B line occupies a link for one flit train
    /// (~0.4 ns at 3 flits/cycle × 32 B/flit).
    pub fn knl(mode: ClusterMode) -> Self {
        MeshModel {
            topo: Topology::knl7210(),
            mode,
            hop_latency: Duration::from_ns(1.2),
            links: HashMap::new(),
            link_service: Duration::from_ns(0.4),
            stats: MeshStats::default(),
            link_traversals: None,
        }
    }

    /// Start counting per-link traversals: every hop reserved by
    /// [`send`](Self::send) increments its directed link's counter.
    /// Purely observational — routing and timing are unchanged.
    pub fn enable_link_telemetry(&mut self) {
        if self.link_traversals.is_none() {
            self.link_traversals = Some(Box::default());
        }
    }

    /// Per-link traversal counts sorted by `(from, to)` coordinate, if
    /// link telemetry was enabled. Sorted so exports are deterministic
    /// regardless of hash-map iteration order.
    pub fn link_traversals(&self) -> Option<Vec<((Coord, Coord), u64)>> {
        let map = self.link_traversals.as_deref()?;
        let mut v: Vec<_> = map.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_unstable_by_key(|&((a, b), _)| (a.x, a.y, b.x, b.y));
        Some(v)
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The cluster mode.
    pub fn mode(&self) -> ClusterMode {
        self.mode
    }

    /// Statistics so far.
    pub fn stats(&self) -> MeshStats {
        self.stats
    }

    /// The XY route from `a` to `b` (exclusive of `a`, inclusive of
    /// `b`): first along X, then along Y, as KNL routes.
    pub fn route(a: Coord, b: Coord) -> Vec<Coord> {
        let mut path = Vec::with_capacity(a.hops_to(b) as usize);
        let mut cur = a;
        while cur.x != b.x {
            cur.x = if b.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(cur);
        }
        while cur.y != b.y {
            cur.y = if b.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(cur);
        }
        path
    }

    /// Send one message from `a` to `b` starting at `at`, reserving
    /// each link in turn; returns arrival time.
    pub fn send(&mut self, a: Coord, b: Coord, at: SimTime) -> SimTime {
        self.stats.messages.incr();
        let mut t = at;
        let mut prev = a;
        let mut contended = false;
        for next in Self::route(a, b) {
            if let Some(map) = &mut self.link_traversals {
                *map.entry((prev, next)).or_insert(0) += 1;
            }
            let link = self.links.entry((prev, next)).or_insert(SimTime::ZERO);
            if *link > t {
                contended = true;
                t = *link;
            }
            t += self.hop_latency;
            *link = t - self.hop_latency + self.link_service;
            self.stats.hops.incr();
            prev = next;
        }
        if contended {
            self.stats.contended.incr();
        }
        t
    }

    /// Record a message whose latency the caller charges analytically
    /// (the trace simulator's memory round trips): bumps the message
    /// and hop counters without reserving links, so timing is
    /// unaffected and the counts are independent of processing order.
    pub fn note_analytic_message(&mut self, hops: u64) {
        self.stats.messages.incr();
        self.stats.hops.add(hops);
    }

    /// Fold a batch of analytically-charged messages accumulated in a
    /// [`MeshTally`] into the stats — equivalent to one
    /// [`note_analytic_message`](Self::note_analytic_message) call per
    /// tallied message, in any order (pure counter sums).
    pub fn absorb_tally(&mut self, tally: MeshTally) {
        self.stats.messages.add(tally.messages);
        self.stats.hops.add(tally.hops);
    }
}

/// A detached accumulator for analytic mesh messages, used by the
/// concurrent replay sequencer to batch accounting away from the
/// shared [`MeshModel`] and fold it back with
/// [`MeshModel::absorb_tally`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshTally {
    /// Messages tallied.
    pub messages: u64,
    /// Total hops across tallied messages.
    pub hops: u64,
}

impl MeshTally {
    /// Tally one analytic message of `hops` hops.
    pub fn note(&mut self, hops: u64) {
        self.messages += 1;
        self.hops += hops;
    }

    /// Whether anything has been tallied.
    pub fn is_empty(&self) -> bool {
        self.messages == 0
    }
}

impl MeshModel {
    /// The full memory path for tile `tile` accessing `addr` in memory
    /// class `is_mcdram`, at `at`: tile → CHA → port. Returns
    /// `(arrival at port, port)`. The response path is accounted
    /// analytically by the caller (responses use the opposite-direction
    /// links, which carry the same load by symmetry).
    pub fn memory_path(
        &mut self,
        tile: u32,
        addr: u64,
        is_mcdram: bool,
        at: SimTime,
    ) -> (SimTime, MemPort) {
        let src = self.topo.tile(tile);
        let port = self.mode.port_for(&self.topo, addr, is_mcdram);
        let cha = self.mode.cha_for(&self.topo, addr, port);
        let t1 = self.send(src, cha, at);
        let t2 = self.send(cha, self.topo.port(port), t1);
        (t2, port)
    }

    /// Analytic average one-way mesh latency for an L2 miss (tile→CHA→
    /// port plus the return trip), used by the machine model.
    pub fn avg_memory_latency(&self, is_mcdram: bool) -> Duration {
        let tile_to_cha = self.topo.avg_tile_hops();
        let cha_to_port = self.mode.avg_cha_to_port_hops(&self.topo, is_mcdram, 4096);
        // Round trip: request (tile→CHA→port) + response (port→tile,
        // approximated by avg tile distance).
        let hops = tile_to_cha + cha_to_port + tile_to_cha;
        self.hop_latency.scale(hops)
    }

    /// The round-trip hop count behind [`Self::avg_memory_latency`],
    /// rounded to whole hops, for analytic message accounting.
    pub fn avg_memory_hops(&self, is_mcdram: bool) -> u64 {
        let tile_to_cha = self.topo.avg_tile_hops();
        let cha_to_port = self.mode.avg_cha_to_port_hops(&self.topo, is_mcdram, 4096);
        (tile_to_cha + cha_to_port + tile_to_cha).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_xy_and_correct_length() {
        let a = Coord { x: 1, y: 1 };
        let b = Coord { x: 4, y: 3 };
        let r = MeshModel::route(a, b);
        assert_eq!(r.len(), 5);
        // X first.
        assert_eq!(r[0], Coord { x: 2, y: 1 });
        assert_eq!(r[2], Coord { x: 4, y: 1 });
        assert_eq!(r[4], b);
        assert!(MeshModel::route(a, a).is_empty());
    }

    #[test]
    fn send_charges_hop_latency() {
        let mut m = MeshModel::knl(ClusterMode::Quadrant);
        let a = Coord { x: 0, y: 0 };
        let b = Coord { x: 3, y: 0 };
        let t = m.send(a, b, SimTime::ZERO);
        assert!((t.as_ns() - 3.0 * 1.2).abs() < 1e-9);
        assert_eq!(m.stats().hops.get(), 3);
    }

    #[test]
    fn contention_serializes_shared_links() {
        let mut m = MeshModel::knl(ClusterMode::Quadrant);
        let a = Coord { x: 0, y: 0 };
        let b = Coord { x: 5, y: 0 };
        let t1 = m.send(a, b, SimTime::ZERO);
        let t2 = m.send(a, b, SimTime::ZERO);
        assert!(t2 > t1, "second message should queue behind the first");
        assert_eq!(m.stats().contended.get(), 1);
        // Disjoint routes don't contend.
        let c = Coord { x: 0, y: 5 };
        let d = Coord { x: 5, y: 5 };
        let t3 = m.send(c, d, SimTime::ZERO);
        assert_eq!(t3, t1);
    }

    #[test]
    fn memory_path_reaches_a_port_deterministically() {
        let mut m1 = MeshModel::knl(ClusterMode::Quadrant);
        let mut m2 = MeshModel::knl(ClusterMode::Quadrant);
        let (t1, p1) = m1.memory_path(7, 0xDEADBEC0, true, SimTime::ZERO);
        let (t2, p2) = m2.memory_path(7, 0xDEADBEC0, true, SimTime::ZERO);
        assert_eq!(t1, t2);
        assert_eq!(p1, p2);
        assert!(matches!(p1, MemPort::Edc(_)));
        let (_, p3) = m1.memory_path(7, 0xDEADBEC0, false, SimTime::ZERO);
        assert!(matches!(p3, MemPort::DdrMc(_)));
    }

    #[test]
    fn tally_absorb_equals_direct_analytic_notes() {
        let mut direct = MeshModel::knl(ClusterMode::Quadrant);
        let mut batched = MeshModel::knl(ClusterMode::Quadrant);
        let mut tally = MeshTally::default();
        assert!(tally.is_empty());
        for hops in [3u64, 0, 7, 7, 12] {
            direct.note_analytic_message(hops);
            tally.note(hops);
        }
        batched.absorb_tally(tally);
        assert_eq!(batched.stats(), direct.stats());
    }

    #[test]
    fn quadrant_mode_lowers_avg_memory_latency() {
        let q = MeshModel::knl(ClusterMode::Quadrant).avg_memory_latency(true);
        let a = MeshModel::knl(ClusterMode::AllToAll).avg_memory_latency(true);
        assert!(q < a, "quadrant {q} should beat all-to-all {a}");
        // Both in the ~5–20 ns band that separates L2 (~15 ns total)
        // from memory (~130+ ns) in Fig. 3's middle tier.
        assert!(q.as_ns() > 5.0 && a.as_ns() < 25.0, "q={q} a={a}");
    }
}

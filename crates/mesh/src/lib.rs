//! `mesh` — the KNL network-on-chip.
//!
//! KNL tiles are connected by a 2D mesh (§II, Fig. 1 of the paper);
//! every L2 miss traverses the mesh twice before reaching memory: once
//! from the requesting tile to the distributed tag directory (CHA)
//! slice that homes the address, and once from the CHA to the memory
//! port — an MCDRAM EDC or a DDR memory controller. The *cluster mode*
//! (all-to-all, quadrant, hemisphere, SNC) constrains which CHA homes
//! an address relative to its memory port and thereby the average hop
//! count; the testbed in the paper runs quadrant mode (§III-A).
//!
//! Modules:
//! * [`topology`] — tile grid, memory-port placement, hop distances;
//! * [`cluster`] — cluster modes and CHA-home selection;
//! * [`routing`] — XY routing with per-link occupancy for the
//!   event-driven path, plus the analytic average-latency helpers the
//!   machine model uses.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod routing;
pub mod topology;

pub use cluster::ClusterMode;
pub use routing::{MeshModel, MeshStats, MeshTally};
pub use topology::{Coord, MemPort, Topology};

//! Golden-vector pins for `workloads::tracegen`: the first 32 accesses
//! of each of the five application generators under a fixed seed.
//! These tuples are `(core, addr, write, dependent)` captured from the
//! current implementation; a failure here means a refactor silently
//! shifted a trace stream, which would invalidate every seeded
//! differential result built on top of these generators.

use knl::tracesim::TraceAccess;
use workloads::tracegen;

const SEED: u64 = 0x60D5EED;

const STREAM_GOLDEN: [(u32, u64, bool, bool); 32] = [
    (0, 0x0, false, false),
    (0, 0x40, false, false),
    (0, 0x80, false, false),
    (0, 0xc0, false, false),
    (0, 0x100, false, false),
    (0, 0x140, false, false),
    (0, 0x180, false, false),
    (0, 0x1c0, false, false),
    (0, 0x200, false, false),
    (0, 0x240, false, false),
    (0, 0x280, false, false),
    (0, 0x2c0, false, false),
    (0, 0x300, false, false),
    (0, 0x340, false, false),
    (0, 0x380, false, false),
    (0, 0x3c0, false, false),
    (1, 0x165ec00, false, false),
    (1, 0x165ec40, false, false),
    (1, 0x165ec80, false, false),
    (1, 0x165ecc0, false, false),
    (1, 0x165ed00, false, false),
    (1, 0x165ed40, false, false),
    (1, 0x165ed80, false, false),
    (1, 0x165edc0, false, false),
    (1, 0x165ee00, false, false),
    (1, 0x165ee40, false, false),
    (1, 0x165ee80, false, false),
    (1, 0x165eec0, false, false),
    (1, 0x165ef00, false, false),
    (1, 0x165ef40, false, false),
    (1, 0x165ef80, false, false),
    (1, 0x165efc0, false, false),
];

const GUPS_GOLDEN: [(u32, u64, bool, bool); 32] = [
    (0, 0xc7180, false, false),
    (0, 0xc7180, true, false),
    (1, 0x79600, false, false),
    (1, 0x79600, true, false),
    (2, 0x74440, false, false),
    (2, 0x74440, true, false),
    (3, 0xfa400, false, false),
    (3, 0xfa400, true, false),
    (0, 0x2fa00, false, false),
    (0, 0x2fa00, true, false),
    (1, 0xa8500, false, false),
    (1, 0xa8500, true, false),
    (2, 0xf4dc0, false, false),
    (2, 0xf4dc0, true, false),
    (3, 0x69080, false, false),
    (3, 0x69080, true, false),
    (0, 0xa27c0, false, false),
    (0, 0xa27c0, true, false),
    (1, 0xa6780, false, false),
    (1, 0xa6780, true, false),
    (2, 0x47f00, false, false),
    (2, 0x47f00, true, false),
    (3, 0x22d40, false, false),
    (3, 0x22d40, true, false),
    (0, 0x91c40, false, false),
    (0, 0x91c40, true, false),
    (1, 0x42500, false, false),
    (1, 0x42500, true, false),
    (2, 0x22400, false, false),
    (2, 0x22400, true, false),
    (3, 0x5dec0, false, false),
    (3, 0x5dec0, true, false),
];

const CHASE_GOLDEN: [(u32, u64, bool, bool); 32] = [
    (0, 0x7c7180, false, true),
    (0, 0xe2fa00, false, true),
    (0, 0xd69940, false, true),
    (0, 0x9c1640, false, true),
    (0, 0x6ced00, false, true),
    (0, 0xf48300, false, true),
    (0, 0xd6b6c0, false, true),
    (0, 0x8dcd80, false, true),
    (0, 0x8e4e40, false, true),
    (0, 0x55ab40, false, true),
    (0, 0xce8ec0, false, true),
    (0, 0xc62200, false, true),
    (0, 0x356600, false, true),
    (0, 0xf9ec0, false, true),
    (0, 0x912100, false, true),
    (0, 0x720180, false, true),
    (0, 0x540d40, false, true),
    (0, 0x541900, false, true),
    (0, 0xa2f600, false, true),
    (0, 0xf9ed40, false, true),
    (0, 0x96b700, false, true),
    (0, 0x69a8c0, false, true),
    (0, 0x2ddb00, false, true),
    (0, 0x7ca40, false, true),
    (0, 0xb06080, false, true),
    (0, 0x4d6b80, false, true),
    (0, 0x3b4600, false, true),
    (0, 0xa39680, false, true),
    (0, 0xdedd00, false, true),
    (0, 0x24c140, false, true),
    (0, 0x93f140, false, true),
    (0, 0xde8180, false, true),
];

const XSBENCH_GOLDEN: [(u32, u64, bool, bool); 32] = [
    (0, 0x78cf80, false, true),
    (0, 0x178cf80, false, true),
    (0, 0x1f8cf80, false, true),
    (0, 0x238cf80, false, true),
    (0, 0x258cf80, false, true),
    (0, 0x268cf80, false, true),
    (1, 0xacf880, false, true),
    (1, 0x1acf880, false, true),
    (1, 0x22cf880, false, true),
    (1, 0x26cf880, false, true),
    (1, 0x28cf880, false, true),
    (1, 0x29cf880, false, true),
    (2, 0x704800, false, true),
    (2, 0x1704800, false, true),
    (2, 0x1f04800, false, true),
    (2, 0x2304800, false, true),
    (2, 0x2504800, false, true),
    (2, 0x2604800, false, true),
    (3, 0x2752e40, false, true),
    (3, 0x3752e40, false, true),
    (3, 0x3f52e40, false, true),
    (3, 0x352e40, false, true),
    (3, 0x552e40, false, true),
    (3, 0x652e40, false, true),
    (0, 0x2f0c00, false, true),
    (0, 0x12f0c00, false, true),
    (0, 0x1af0c00, false, true),
    (0, 0x1ef0c00, false, true),
    (0, 0x20f0c00, false, true),
    (0, 0x21f0c00, false, true),
    (1, 0xf748c0, false, true),
    (1, 0x1f748c0, false, true),
];

const BFS_GOLDEN: [(u32, u64, bool, bool); 32] = [
    (0, 0x40, false, false),
    (0, 0x632b80, false, false),
    (1, 0x65ec40, false, false),
    (1, 0xf6c0, false, false),
    (2, 0xcbd840, false, false),
    (2, 0xbbe540, false, false),
    (3, 0x31c440, false, false),
    (3, 0x3e3d00, false, false),
    (0, 0x80, false, false),
    (0, 0xf4e80, false, false),
    (1, 0x65ec80, false, false),
    (1, 0x474b40, true, false),
    (2, 0xcbd880, false, false),
    (2, 0xaf4e80, true, false),
    (3, 0x31c480, false, false),
    (3, 0x25b800, false, false),
    (0, 0xc0, false, false),
    (0, 0x887180, false, false),
    (1, 0x65ecc0, false, false),
    (1, 0xcf7700, false, false),
    (2, 0xcbd8c0, false, false),
    (2, 0x75b400, false, false),
    (3, 0x31c4c0, false, false),
    (3, 0x79e2c0, false, false),
    (0, 0x100, false, false),
    (0, 0x81e040, false, false),
    (1, 0x65ed00, false, false),
    (1, 0x97c440, false, false),
    (2, 0xcbd900, false, false),
    (2, 0x420800, false, false),
    (3, 0x31c500, false, false),
    (3, 0x282a40, false, false),
];

fn assert_prefix(name: &str, trace: &[TraceAccess], golden: &[(u32, u64, bool, bool); 32]) {
    assert!(
        trace.len() >= golden.len(),
        "{name}: trace too short ({} accesses)",
        trace.len()
    );
    for (i, (acc, &(core, addr, write, dependent))) in trace.iter().zip(golden.iter()).enumerate() {
        assert_eq!(
            (acc.core, acc.addr, acc.write, acc.dependent),
            (core, addr, write, dependent),
            "{name}: access {i} shifted from its golden value"
        );
    }
}

#[test]
fn stream_trace_matches_golden_prefix() {
    assert_prefix("STREAM", &tracegen::stream_trace(4, 64, 1), &STREAM_GOLDEN);
}

#[test]
fn gups_trace_matches_golden_prefix() {
    assert_prefix(
        "GUPS",
        &tracegen::gups_trace(4, 1 << 20, 16, SEED),
        &GUPS_GOLDEN,
    );
}

#[test]
fn chase_trace_matches_golden_prefix() {
    assert_prefix(
        "Chase",
        &tracegen::chase_trace(1 << 24, 40, SEED),
        &CHASE_GOLDEN,
    );
}

#[test]
fn xsbench_trace_matches_golden_prefix() {
    assert_prefix(
        "XSBench",
        &tracegen::xsbench_trace(4, 1 << 26, 4, 6, SEED),
        &XSBENCH_GOLDEN,
    );
}

#[test]
fn bfs_trace_matches_golden_prefix() {
    assert_prefix(
        "Graph500",
        &tracegen::bfs_trace(4, 1 << 24, 16, SEED),
        &BFS_GOLDEN,
    );
}

//! GUPS \[14\] — the HPC Challenge RandomAccess benchmark.
//!
//! A table of 2^k 64-bit words is updated at uniformly random indices
//! (`table[idx] ^= value`); the metric is giga-updates-per-second.
//! The native path implements the actual xorshift-driven update kernel
//! (with the HPCC verification pass: re-applying the same update
//! stream must restore the table). The model path prices the updates
//! as random read-modify-writes; the reported GUPS applies the
//! [`knl::calib::GUPS_SERIALIZATION`] reporting constant that matches
//! the paper's HPCC configuration scale.

use crate::PaperWorkload;
use knl::access::RandomOp;
use knl::{calib, Machine, MachineError};
use simfabric::ByteSize;

/// A GUPS problem instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gups {
    /// Table size in bytes (power of two, as HPCC requires).
    pub table_bytes: u64,
}

impl Gups {
    /// GUPS over a table of `size` (rounded down to a power of two).
    pub fn new(size: ByteSize) -> Self {
        let b = size.as_u64().max(64);
        Gups {
            table_bytes: 1u64 << (63 - b.leading_zeros()),
        }
    }

    /// Number of 8-byte table entries.
    pub fn entries(&self) -> u64 {
        self.table_bytes / 8
    }

    /// Updates performed (HPCC uses 4× the table entries).
    pub fn updates(&self) -> u64 {
        4 * self.entries()
    }

    /// Model: GUPS on `machine`.
    pub fn model_gups(&self, machine: &mut Machine) -> Result<f64, MachineError> {
        let table = machine.alloc("gups_table", ByteSize::bytes(self.table_bytes))?;
        let op = RandomOp::updates(&table, self.updates());
        let rate = machine.random_rate(&op);
        machine.random(&op);
        machine.release(&table)?;
        Ok(rate / 1e9 / calib::GUPS_SERIALIZATION)
    }
}

impl PaperWorkload for Gups {
    fn name(&self) -> &'static str {
        "GUPS"
    }

    fn metric(&self) -> &'static str {
        "GUPS"
    }

    fn footprint(&self) -> ByteSize {
        ByteSize::bytes(self.table_bytes)
    }

    fn run_model(&self, machine: &mut Machine) -> Result<f64, MachineError> {
        self.model_gups(machine)
    }
}

// ---------------------------------------------------------------------
// Native kernel
// ---------------------------------------------------------------------

/// The HPCC polynomial random-number stream: x ← (x << 1) ^ (POLY if
/// the top bit was set).
#[inline]
fn hpcc_next(x: u64) -> u64 {
    const POLY: u64 = 0x0000000000000007;
    (x << 1) ^ (if (x as i64) < 0 { POLY } else { 0 })
}

/// A native GUPS table.
pub struct GupsTable {
    /// The table; entry i is initialized to i.
    pub table: Vec<u64>,
}

impl GupsTable {
    /// Allocate a table of `entries` (power of two) words.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "HPCC requires a power-of-two table"
        );
        GupsTable {
            table: (0..entries as u64).collect(),
        }
    }

    /// Run `n` updates from the given stream seed; returns the number
    /// of updates applied.
    pub fn run_updates(&mut self, n: u64, seed: u64) -> u64 {
        let mask = self.table.len() as u64 - 1;
        let mut x = if seed == 0 { 1 } else { seed };
        for _ in 0..n {
            x = hpcc_next(x);
            let idx = (x & mask) as usize;
            self.table[idx] ^= x;
        }
        n
    }

    /// HPCC verification: re-running the identical update stream must
    /// restore the initial table (xor is an involution). Returns the
    /// number of mismatching entries.
    pub fn verify(&mut self, n: u64, seed: u64) -> u64 {
        self.run_updates(n, seed);
        self.table
            .iter()
            .enumerate()
            .filter(|&(i, &v)| v != i as u64)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl::MemSetup;

    #[test]
    fn native_updates_verify_to_zero_errors() {
        let mut t = GupsTable::new(1 << 12);
        t.run_updates(4 << 12, 42);
        let errors = t.verify(4 << 12, 42);
        assert_eq!(errors, 0);
    }

    #[test]
    fn native_updates_actually_change_the_table() {
        // xor updates cancel in pairs, so roughly half the entries end
        // up changed; assert a loose statistical bound.
        let mut t = GupsTable::new(1 << 10);
        t.run_updates(1 << 12, 7);
        let changed = t
            .table
            .iter()
            .enumerate()
            .filter(|&(i, &v)| v != i as u64)
            .count();
        assert!(changed > 256, "only {changed} entries changed");
    }

    #[test]
    fn hpcc_stream_has_long_period() {
        let mut x = 1u64;
        let mut seen_one_again = 0;
        for _ in 0..100_000 {
            x = hpcc_next(x);
            if x == 1 {
                seen_one_again += 1;
            }
        }
        assert_eq!(seen_one_again, 0, "stream cycled suspiciously early");
    }

    #[test]
    fn table_size_rounds_to_power_of_two() {
        let g = Gups::new(ByteSize::gib(3));
        assert_eq!(g.table_bytes, ByteSize::gib(2).as_u64());
        assert_eq!(g.updates(), 4 * g.entries());
    }

    #[test]
    fn model_matches_fig4c_scale_and_ordering() {
        let g = Gups::new(ByteSize::gib(8));
        let run = |setup| {
            let mut m = Machine::knl7210(setup, 64).unwrap();
            g.model_gups(&mut m).unwrap()
        };
        let dram = run(MemSetup::DramOnly);
        let hbm = run(MemSetup::HbmOnly);
        // Paper scale: ~1.06–1.10 × 10⁻².
        assert!(dram > 0.008 && dram < 0.014, "DRAM GUPS {dram}");
        assert!(dram > hbm, "DRAM should beat HBM: {dram} vs {hbm}");
        assert!(hbm / dram > 0.8, "gap too wide: {}", hbm / dram);
    }

    #[test]
    fn model_is_roughly_flat_in_table_size() {
        // Fig. 4c: GUPS varies only a few percent from 1 to 32 GB.
        let mut vals = Vec::new();
        for gib in [1u64, 4, 16, 32] {
            let g = Gups::new(ByteSize::gib(gib));
            let mut m = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
            vals.push(g.model_gups(&mut m).unwrap());
        }
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min < 1.35, "GUPS spread too wide: {vals:?}");
    }

    #[test]
    fn model_hbm_stops_at_capacity() {
        let g = Gups::new(ByteSize::gib(32));
        let mut hbm = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
        assert!(g.model_gups(&mut hbm).is_err());
        let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        assert!(g.model_gups(&mut dram).is_ok());
    }

    #[test]
    fn model_cache_mode_between_at_moderate_sizes() {
        let g = Gups::new(ByteSize::gib(8));
        let run = |setup| {
            let mut m = Machine::knl7210(setup, 64).unwrap();
            g.model_gups(&mut m).unwrap()
        };
        let dram = run(MemSetup::DramOnly);
        let cache = run(MemSetup::CacheMode);
        let hbm = run(MemSetup::HbmOnly);
        // At 8 GB the table fits the MCDRAM cache: cache ≈ HBM < DRAM.
        assert!(
            (cache - hbm).abs() / hbm < 0.15,
            "cache {cache} vs hbm {hbm}"
        );
        assert!(dram > cache);
    }
}

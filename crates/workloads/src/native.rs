//! Native measurement harness: run the real kernels on the host with a
//! controlled thread count and report the paper's metrics from
//! wall-clock time.
//!
//! This is the "run it on whatever machine you have" counterpart to the
//! KNL model — the same kernels, the same metrics (GB/s, GFLOPS,
//! CG MFLOPS, GUPS, TEPS, lookups/s), measured rather than modeled.
//! The examples use it to ground the model's numbers against reality
//! at laptop scale.

use crate::dgemm::matmul_blocked;
use crate::graph500::{Graph, Kronecker};
use crate::gups::GupsTable;
use crate::minife::{assemble_27pt, cg_solve};
use crate::stream::StreamArrays;
use crate::xsbench::XsData;
use simfabric::par;
use std::time::Instant;

/// One native measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeMeasurement {
    /// Workload name.
    pub workload: &'static str,
    /// Metric name.
    pub metric: &'static str,
    /// Measured value (higher is better).
    pub value: f64,
    /// Wall-clock seconds spent in the timed section.
    pub seconds: f64,
    /// Worker threads used.
    pub threads: usize,
}

fn in_pool<F: FnOnce() -> NativeMeasurement + Send>(threads: usize, f: F) -> NativeMeasurement {
    let mut m = par::with_threads(threads, f);
    m.threads = threads;
    m
}

/// STREAM triad over `n` elements per array, `reps` repetitions; the
/// best repetition's bandwidth is reported (the STREAM convention).
pub fn measure_stream(threads: usize, n: usize, reps: u32) -> NativeMeasurement {
    in_pool(threads, || {
        let mut arrays = StreamArrays::new(n);
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t = Instant::now();
            arrays.triad(3.0);
            best = best.min(t.elapsed().as_secs_f64());
        }
        NativeMeasurement {
            workload: "STREAM",
            metric: "GB/s",
            value: 3.0 * 8.0 * n as f64 / 1e9 / best,
            seconds: best,
            threads: 0,
        }
    })
}

/// DGEMM of dimension `n`.
pub fn measure_dgemm(threads: usize, n: usize) -> NativeMeasurement {
    in_pool(threads, || {
        let a = vec![1.5f64; n * n];
        let b = vec![0.5f64; n * n];
        let mut c = vec![0.0f64; n * n];
        let t = Instant::now();
        matmul_blocked(&a, &b, &mut c, n);
        let secs = t.elapsed().as_secs_f64();
        assert!((c[0] - 0.75 * n as f64).abs() < 1e-6, "result check failed");
        NativeMeasurement {
            workload: "DGEMM",
            metric: "GFLOPS",
            value: 2.0 * (n as f64).powi(3) / 1e9 / secs,
            seconds: secs,
            threads: 0,
        }
    })
}

/// MiniFE CG on an nx³ grid, `iters` iterations.
pub fn measure_minife(threads: usize, nx: usize, iters: usize) -> NativeMeasurement {
    in_pool(threads, || {
        let a = assemble_27pt(nx);
        let b = vec![1.0; a.rows()];
        let mut x = vec![0.0; a.rows()];
        let t = Instant::now();
        let res = cg_solve(&a, &b, &mut x, 0.0, iters); // fixed iterations
        let secs = t.elapsed().as_secs_f64();
        NativeMeasurement {
            workload: "MiniFE",
            metric: "CG MFLOPS",
            value: res.flops / 1e6 / secs,
            seconds: secs,
            threads: 0,
        }
    })
}

/// GUPS over a `2^log2_entries`-entry table.
pub fn measure_gups(threads: usize, log2_entries: u32) -> NativeMeasurement {
    in_pool(threads, || {
        // The HPCC kernel is serial per stream; run one stream per
        // thread over disjoint seeds via scoped threads.
        let entries = 1usize << log2_entries;
        let updates_per_stream = 4 * entries as u64;
        let n_streams = par::num_threads().max(1);
        let t = Instant::now();
        let total: u64 = par::par_map_range(n_streams, |i| {
            let mut table = GupsTable::new(entries);
            table.run_updates(updates_per_stream, i as u64 + 1)
        })
        .into_iter()
        .sum();
        let secs = t.elapsed().as_secs_f64();
        NativeMeasurement {
            workload: "GUPS",
            metric: "GUPS",
            value: total as f64 / 1e9 / secs,
            seconds: secs,
            threads: 0,
        }
    })
}

/// Graph500 BFS over a Kronecker graph of the given scale; harmonic
/// mean TEPS over `roots` validated searches.
pub fn measure_graph500(threads: usize, scale: u32, roots: usize) -> NativeMeasurement {
    in_pool(threads, || {
        let gen = Kronecker::new(scale, 2017);
        let g = Graph::from_edges(gen.vertices() as usize, &gen.generate());
        let mut rates = Vec::new();
        let mut secs_total = 0.0;
        let mut done = 0;
        for root in 0..g.num_vertices() as u32 {
            if g.neighbors_of(root).is_empty() {
                continue;
            }
            let t = Instant::now();
            let parents = g.bfs(root);
            let secs = t.elapsed().as_secs_f64();
            g.validate_bfs(root, &parents).expect("validation");
            rates.push(g.traversed_edges(&parents) as f64 / secs);
            secs_total += secs;
            done += 1;
            if done == roots {
                break;
            }
        }
        NativeMeasurement {
            workload: "Graph500",
            metric: "TEPS",
            value: simfabric::stats::harmonic_mean(&rates),
            seconds: secs_total,
            threads: 0,
        }
    })
}

/// XSBench lookups over a generated data set.
pub fn measure_xsbench(
    threads: usize,
    nuclides: usize,
    gridpoints: usize,
    lookups: u64,
) -> NativeMeasurement {
    in_pool(threads, || {
        let data = XsData::build(nuclides, gridpoints, 7);
        let n_chunks = par::num_threads().max(1) as u64;
        let per_chunk = lookups / n_chunks;
        let t = Instant::now();
        let (sum, count) =
            par::par_map_range(n_chunks as usize, |i| data.run_lookups(per_chunk, i as u64))
                .into_iter()
                .fold((0.0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        let secs = t.elapsed().as_secs_f64();
        assert!(sum.is_finite());
        NativeMeasurement {
            workload: "XSBench",
            metric: "lookups/s",
            value: count as f64 / secs,
            seconds: secs,
            threads: 0,
        }
    })
}

/// Run the whole native suite at laptop scale.
pub fn native_suite(threads: usize) -> Vec<NativeMeasurement> {
    vec![
        measure_stream(threads, 1 << 21, 3),
        measure_dgemm(threads, 192),
        measure_minife(threads, 16, 25),
        measure_gups(threads, 14),
        measure_graph500(threads, 12, 4),
        measure_xsbench(threads, 24, 400, 40_000),
    ]
}

/// Render measurements as an aligned table.
pub fn render_native(results: &[NativeMeasurement]) -> String {
    let mut out = format!(
        "{:<10} {:>14} {:>12} {:>10} {:>8}\n",
        "workload", "value", "metric", "seconds", "threads"
    );
    for r in results {
        out.push_str(&format!(
            "{:<10} {:>14.4e} {:>12} {:>10.4} {:>8}\n",
            r.workload, r.value, r.metric, r.seconds, r.threads
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_measurement_is_sane() {
        let m = measure_stream(1, 1 << 16, 2);
        assert_eq!(m.workload, "STREAM");
        assert!(m.value > 0.1, "bandwidth {}", m.value);
        assert!(m.seconds > 0.0);
        assert_eq!(m.threads, 1);
    }

    #[test]
    fn dgemm_measurement_verifies_result() {
        let m = measure_dgemm(1, 96);
        assert!(m.value > 0.01, "GFLOPS {}", m.value);
    }

    #[test]
    fn minife_counts_fixed_iterations() {
        let m = measure_minife(1, 8, 10);
        assert!(m.value > 0.0);
        assert_eq!(m.metric, "CG MFLOPS");
    }

    #[test]
    fn gups_scales_streams_with_threads() {
        let m = measure_gups(2, 10);
        assert!(m.value > 0.0);
        assert_eq!(m.threads, 2);
    }

    #[test]
    fn graph500_validates_and_reports_harmonic_mean() {
        let m = measure_graph500(1, 8, 2);
        assert!(m.value > 0.0);
        assert_eq!(m.metric, "TEPS");
    }

    #[test]
    fn xsbench_counts_all_lookups() {
        let m = measure_xsbench(1, 8, 100, 2_000);
        assert!(m.value > 0.0);
    }

    #[test]
    fn suite_covers_all_workloads_and_renders() {
        // Tiny configuration so the test stays fast.
        let results = vec![measure_stream(1, 1 << 12, 1), measure_gups(1, 8)];
        let table = render_native(&results);
        assert!(table.contains("STREAM"));
        assert!(table.contains("GUPS"));
        assert_eq!(table.lines().count(), 3);
    }
}

//! TinyMemBench \[19\] — dual random read latency.
//!
//! The paper measures the latency of two simultaneous dependent random
//! read chains over buffers from 128 KB to 1 GB (Fig. 3), in DRAM and
//! HBM. The native path implements the actual dual pointer chase
//! (with a Sattolo-cycle permutation so every element is visited); the
//! model path evaluates [`knl::dual_random_read_latency`].

use knl::{Machine, MachineError};
use simfabric::prng::Rng;
use simfabric::ByteSize;

/// The block sizes Fig. 3 sweeps (128 KB … 1 GB, powers of two).
pub fn fig3_block_sizes() -> Vec<ByteSize> {
    let mut v = Vec::new();
    let mut b = 128 * 1024u64;
    while b <= 1 << 30 {
        v.push(ByteSize::bytes(b));
        b *= 2;
    }
    v
}

/// Model: dual random read latency (ns) for a buffer of `block` bytes
/// on `machine`'s *bound* memory (DRAM or HBM per the machine setup).
pub fn model_latency_ns(machine: &mut Machine, block: ByteSize) -> Result<f64, MachineError> {
    // Allocate so that an HBM bind that cannot hold the block errors
    // out exactly like the real benchmark would.
    let region = machine.alloc("tmb_buffer", block)?;
    let cfg = machine.config();
    let tlb = if cfg.huge_pages {
        cachesim::tlb::TlbConfig::knl_2m()
    } else {
        cachesim::tlb::TlbConfig::knl_4k()
    };
    let spec = if region.hbm_fraction >= 0.5 {
        cfg.mcdram.clone()
    } else {
        cfg.ddr.clone()
    };
    let ns = knl::dual_random_read_latency(&spec, block, &tlb).as_ns();
    machine.release(&region)?;
    Ok(ns)
}

/// A pointer-chase buffer: `next[i]` is the index to visit after `i`,
/// forming a single cycle covering every slot (Sattolo's algorithm),
/// so the chase cannot be predicted or shortcut.
pub struct ChaseBuffer {
    next: Vec<u32>,
}

impl ChaseBuffer {
    /// Build a chase over `n` slots with the given seed.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "need at least two slots");
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let mut rng = Rng::seed_from_u64(seed);
        // Sattolo: single cycle.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i);
            idx.swap(i, j);
        }
        // The shuffled permutation is a single cycle when applied as a
        // successor function.
        ChaseBuffer { next: idx }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// True if empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }

    /// Chase one chain for `steps` starting at `start`; returns the
    /// final index (forces the dependency chain).
    pub fn chase(&self, start: u32, steps: usize) -> u32 {
        let mut p = start;
        for _ in 0..steps {
            p = self.next[p as usize];
        }
        p
    }

    /// Chase two chains in lockstep — the "dual random read" pattern.
    /// Returns both endpoints.
    pub fn dual_chase(&self, start_a: u32, start_b: u32, steps: usize) -> (u32, u32) {
        let mut a = start_a;
        let mut b = start_b;
        for _ in 0..steps {
            a = self.next[a as usize];
            b = self.next[b as usize];
        }
        (a, b)
    }

    /// Verify the successor map is a single cycle through all slots.
    pub fn is_single_cycle(&self) -> bool {
        let n = self.next.len();
        let mut seen = vec![false; n];
        let mut p = 0u32;
        for _ in 0..n {
            if seen[p as usize] {
                return false;
            }
            seen[p as usize] = true;
            p = self.next[p as usize];
        }
        p == 0 && seen.iter().all(|&s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl::MemSetup;

    #[test]
    fn fig3_sweep_covers_128k_to_1g() {
        let sizes = fig3_block_sizes();
        assert_eq!(sizes.first().unwrap().as_u64(), 128 * 1024);
        assert_eq!(sizes.last().unwrap().as_u64(), 1 << 30);
        assert_eq!(sizes.len(), 14);
    }

    #[test]
    fn chase_buffer_is_single_cycle() {
        for n in [2usize, 3, 64, 1000] {
            let c = ChaseBuffer::new(n, 42);
            assert!(c.is_single_cycle(), "n={n}");
        }
    }

    #[test]
    fn chase_visits_everything_in_n_steps() {
        let c = ChaseBuffer::new(128, 7);
        // A full cycle returns to the start.
        assert_eq!(c.chase(5, 128), 5);
        assert_ne!(c.chase(5, 64), 5);
    }

    #[test]
    fn dual_chase_matches_two_singles() {
        let c = ChaseBuffer::new(256, 3);
        let (a, b) = c.dual_chase(0, 100, 37);
        assert_eq!(a, c.chase(0, 37));
        assert_eq!(b, c.chase(100, 37));
    }

    #[test]
    fn model_dram_faster_than_hbm_beyond_l2() {
        let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let mut hbm = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
        let block = ByteSize::mib(64);
        let d = model_latency_ns(&mut dram, block).unwrap();
        let h = model_latency_ns(&mut hbm, block).unwrap();
        let gap = (h - d) / d;
        assert!(gap > 0.10 && gap < 0.25, "gap {gap}");
    }

    #[test]
    fn model_small_blocks_show_no_gap() {
        let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let mut hbm = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
        let block = ByteSize::kib(256);
        let d = model_latency_ns(&mut dram, block).unwrap();
        let h = model_latency_ns(&mut hbm, block).unwrap();
        assert!((d - h).abs() < 0.5, "L2-resident gap {d} vs {h}");
        assert!(d < 15.0);
    }
}

//! DGEMM \[12\] — dense matrix-matrix multiplication.
//!
//! The paper links against MKL and reports GFLOPS for square matrices
//! whose combined footprint is swept from 0.1 to 24 GB (Fig. 4a) and
//! over 64/128/192 threads (Fig. 6a; 256-thread runs did not finish).
//!
//! The native path is a cache-blocked, Rayon-parallel triple loop with
//! a small register-tiled micro-kernel — not MKL, but the same blocking
//! structure, and validated against a naive reference. The model path
//! prices the roofline: `min(compute roof, arithmetic-intensity ×
//! effective bandwidth)`, with the memory traffic reduced by the
//! fraction of the working set the 32-MB aggregate L2 captures.

use crate::PaperWorkload;
use knl::access::Reuse;
use knl::{calib, Machine, MachineError, StreamOp};
use simfabric::par;
use simfabric::ByteSize;

/// A DGEMM problem: C (m×n) += A (m×k) × B (k×n), square in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dgemm {
    /// Matrix dimension (square: m = n = k).
    pub n: u64,
}

impl Dgemm {
    /// Square DGEMM of dimension `n`.
    pub fn new(n: u64) -> Self {
        Dgemm { n }
    }

    /// The problem whose three matrices total `footprint` bytes
    /// (Fig. 4a's x-axis).
    pub fn with_footprint(footprint: ByteSize) -> Self {
        let n = ((footprint.as_u64() as f64 / 3.0 / 8.0).sqrt()) as u64;
        Dgemm { n: n.max(1) }
    }

    /// Flops executed (2·n³).
    pub fn flops(&self) -> f64 {
        2.0 * (self.n as f64).powi(3)
    }

    /// Bytes of the three matrices.
    pub fn bytes(&self) -> u64 {
        3 * self.n * self.n * 8
    }

    /// The MKL-like compute roof at `threads` total threads (GFLOPS);
    /// `None` when the paper could not complete the run (256 threads).
    pub fn compute_roof(threads: u32) -> Option<f64> {
        calib::DGEMM_COMPUTE_ROOF
            .iter()
            .find(|&&(t, _)| t == threads)
            .map(|&(_, g)| g)
            .or_else(|| {
                // Interpolate for non-paper thread counts below 192.
                (threads < 256).then(|| {
                    let t = threads.min(192) as f64;
                    600.0 + (t - 64.0).max(0.0) / 128.0 * 420.0
                })
            })
    }

    /// Memory traffic per flop after cache blocking, scaled down by the
    /// L2-resident fraction of the working set.
    fn effective_bytes_per_flop(&self) -> f64 {
        let l2_total = 32.0 * 1024.0 * 1024.0; // 32 tiles × 1 MB
        let ws = self.bytes() as f64;
        let resident = (l2_total / ws).min(1.0);
        // Fully resident problems stream (almost) nothing; large
        // problems converge to the blocked-GEMM traffic of
        // 1/DGEMM_FLOPS_PER_BYTE.
        (1.0 - 0.8 * resident) / calib::DGEMM_FLOPS_PER_BYTE
    }

    /// Model GFLOPS on `machine`.
    pub fn model_gflops(&self, machine: &mut Machine) -> Result<f64, MachineError> {
        let threads = machine.config().threads;
        let roof = Self::compute_roof(threads).ok_or_else(|| {
            MachineError::Invalid(format!("DGEMM does not complete at {threads} threads"))
        })?;
        let third = ByteSize::bytes(self.n * self.n * 8);
        let mut regions =
            machine.alloc_many(&[("dgemm_a", third), ("dgemm_b", third), ("dgemm_c", third)])?;
        let c = regions.pop().expect("three regions");
        let b = regions.pop().expect("three regions");
        let a = regions.pop().expect("three regions");
        // Panels of A and B are re-streamed once per block pass; the
        // effective traffic is flops × bytes-per-flop.
        let traffic = (self.flops() * self.effective_bytes_per_flop()) as u64;
        let ops = [
            StreamOp {
                region: a.clone(),
                read_bytes: traffic / 2,
                write_bytes: 0,
                reuse: Reuse::Streaming,
            },
            StreamOp {
                region: b.clone(),
                read_bytes: traffic / 2 - traffic / 8,
                write_bytes: traffic / 8,
                reuse: Reuse::Streaming,
            },
        ];
        let mem_time = machine.price_stream(&ops);
        let compute_time = self.flops() / (roof * 1e9);
        // Memory and compute overlap; the slower one binds.
        let secs = mem_time.as_secs().max(compute_time);
        // Advance the clock by the bound time.
        machine.compute(self.flops(), self.flops() / secs / 1e9);
        let gflops = self.flops() / secs / 1e9;
        machine.release(&a)?;
        machine.release(&b)?;
        machine.release(&c)?;
        Ok(gflops)
    }
}

impl PaperWorkload for Dgemm {
    fn name(&self) -> &'static str {
        "DGEMM"
    }

    fn metric(&self) -> &'static str {
        "GFLOPS"
    }

    fn footprint(&self) -> ByteSize {
        ByteSize::bytes(self.bytes())
    }

    fn run_model(&self, machine: &mut Machine) -> Result<f64, MachineError> {
        self.model_gflops(machine)
    }
}

// ---------------------------------------------------------------------
// Native kernel
// ---------------------------------------------------------------------

/// Block size for the native cache-blocked kernel (fits three 64×64
/// f64 panels in a 256-KB L2 slice).
const BLOCK: usize = 64;

/// Naive reference: C += A·B, row-major.
pub fn matmul_reference(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    for i in 0..n {
        for l in 0..n {
            let av = a[i * n + l];
            for j in 0..n {
                c[i * n + j] += av * b[l * n + j];
            }
        }
    }
}

/// Cache-blocked, Rayon-parallel DGEMM: C += A·B, row-major square.
pub fn matmul_blocked(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    // Parallelize over row-blocks of C; each task owns its C rows.
    par::par_chunks_mut(c, BLOCK * n, |bi, c_rows| {
        let i0 = bi * BLOCK;
        let i_max = (i0 + BLOCK).min(n) - i0;
        for l0 in (0..n).step_by(BLOCK) {
            let l_max = (l0 + BLOCK).min(n);
            for j0 in (0..n).step_by(BLOCK) {
                let j_max = (j0 + BLOCK).min(n);
                for i in 0..i_max {
                    for l in l0..l_max {
                        let av = a[(i0 + i) * n + l];
                        let brow = &b[l * n + j0..l * n + j_max];
                        let crow = &mut c_rows[i * n + j0..i * n + j_max];
                        for (cj, &bj) in crow.iter_mut().zip(brow) {
                            *cj += av * bj;
                        }
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl::MemSetup;
    use simfabric::prng::Rng;

    #[test]
    fn blocked_matches_reference() {
        let n = 97; // not a multiple of BLOCK: exercises edge blocks
        let mut rng = Rng::seed_from_u64(1);
        let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut c_ref = vec![0.0; n * n];
        let mut c_blk = vec![0.0; n * n];
        matmul_reference(&a, &b, &mut c_ref, n);
        matmul_blocked(&a, &b, &mut c_blk, n);
        for i in 0..n * n {
            assert!((c_ref[i] - c_blk[i]).abs() < 1e-9, "mismatch at {i}");
        }
    }

    #[test]
    fn blocked_accumulates_into_c() {
        let n = 8;
        let a = vec![1.0; n * n];
        let b = vec![1.0; n * n];
        let mut c = vec![5.0; n * n];
        matmul_blocked(&a, &b, &mut c, n);
        for &v in &c {
            assert_eq!(v, 5.0 + n as f64);
        }
    }

    #[test]
    fn footprint_roundtrip() {
        let d = Dgemm::with_footprint(ByteSize::gib(24));
        let fp = d.footprint().as_gib();
        assert!((fp - 24.0).abs() < 0.1, "footprint {fp}");
    }

    #[test]
    fn model_matches_fig4a_endpoints() {
        let d = Dgemm::with_footprint(ByteSize::gib(24));
        let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let g_dram = d.model_gflops(&mut dram).unwrap();
        assert!((g_dram - 300.0).abs() < 30.0, "DRAM 24GB: {g_dram}");
        // 24 GB does not fit HBM.
        let mut hbm = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
        assert!(matches!(
            d.model_gflops(&mut hbm),
            Err(MachineError::Alloc(_))
        ));
        // 6 GB fits: HBM is compute-roofed at ~600.
        let d6 = Dgemm::with_footprint(ByteSize::gib(6));
        let mut hbm = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
        let g_hbm = d6.model_gflops(&mut hbm).unwrap();
        assert!((g_hbm - 600.0).abs() < 40.0, "HBM 6GB: {g_hbm}");
        // HBM ≈ 2× DRAM at matched size (Fig. 4a's reported gain).
        let mut dram6 = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let g_dram6 = d6.model_gflops(&mut dram6).unwrap();
        let ratio = g_hbm / g_dram6;
        assert!(ratio > 1.7 && ratio < 2.3, "HBM/DRAM at 6GB: {ratio}");
    }

    #[test]
    fn model_small_problems_narrow_the_gap() {
        // Fig. 4a improvement line: ~1.4x at 0.1 GB.
        let d = Dgemm::with_footprint(ByteSize::gib_f(0.1));
        let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let mut hbm = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
        let r = d.model_gflops(&mut hbm).unwrap() / d.model_gflops(&mut dram).unwrap();
        assert!(r > 1.2 && r < 1.7, "improvement at 0.1GB: {r}");
    }

    #[test]
    fn model_thread_scaling_fig6a() {
        let d = Dgemm::with_footprint(ByteSize::gib(6));
        let g = |threads| {
            let mut m = Machine::knl7210(MemSetup::HbmOnly, threads).unwrap();
            d.model_gflops(&mut m).unwrap()
        };
        let g64 = g(64);
        let g192 = g(192);
        let ratio = g192 / g64;
        assert!((ratio - 1.7).abs() < 0.15, "HBM 192/64 threads: {ratio}");
        // DRAM stays bandwidth-bound: flat.
        let gd = |threads| {
            let mut m = Machine::knl7210(MemSetup::DramOnly, threads).unwrap();
            d.model_gflops(&mut m).unwrap()
        };
        let flat = gd(192) / gd(64);
        assert!(flat < 1.1, "DRAM thread scaling should be flat: {flat}");
        // 256 threads: the run fails, as in the paper.
        let mut m = Machine::knl7210(MemSetup::HbmOnly, 256).unwrap();
        assert!(d.model_gflops(&mut m).is_err());
    }
}

//! Trace generators: emit [`knl::TraceAccess`] streams with each
//! workload's characteristic access pattern, at footprints the
//! line-accurate trace simulator can chew through.
//!
//! This closes the validation triangle: the *native kernels* prove the
//! algorithms are real, the *machine model* prices them at paper
//! scale, and these traces let the *trace simulator* check the model's
//! orderings with the exact cache/bank/TLB substrate models
//! (`tests/trace_crosscheck.rs`).

use knl::tracesim::TraceAccess;
use simfabric::prng::Rng;

/// De-aliased per-core base addresses (physically scattered pages
/// never alias all cores onto one DRAM bank; synthetic traces must
/// not either).
fn core_base(core: u32) -> u64 {
    (core as u64 * 23_456_789) & !63
}

/// STREAM: each core sweeps a disjoint contiguous block in bursts of
/// 16 lines (the natural MSHR-drain issue pattern).
pub fn stream_trace(cores: u32, lines_per_core: u64, passes: u32) -> Vec<TraceAccess> {
    const BURST: u64 = 16;
    let mut t = Vec::with_capacity((cores as u64 * lines_per_core * passes as u64) as usize);
    for _ in 0..passes.max(1) {
        let mut i = 0;
        while i < lines_per_core {
            for c in 0..cores {
                for j in i..(i + BURST).min(lines_per_core) {
                    t.push(TraceAccess::read(c, core_base(c) + j * 64));
                }
            }
            i += BURST;
        }
    }
    t
}

/// GUPS: independent random read-modify-writes over a shared table.
pub fn gups_trace(
    cores: u32,
    table_bytes: u64,
    updates_per_core: u64,
    seed: u64,
) -> Vec<TraceAccess> {
    let mut t = Vec::with_capacity((cores as u64 * updates_per_core * 2) as usize);
    let lines = (table_bytes / 64).max(1);
    let mut rngs: Vec<Rng> = (0..cores)
        .map(|c| Rng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9e3779b97f4a7c15)))
        .collect();
    for _ in 0..updates_per_core {
        for c in 0..cores {
            let line = rngs[c as usize].gen_range(0..lines);
            let addr = line * 64;
            t.push(TraceAccess::read(c, addr));
            t.push(TraceAccess::write(c, addr));
        }
    }
    t
}

/// TinyMemBench: a dependent pointer chase over `block_bytes` (two
/// interleaved chains on one core, as the dual-read benchmark runs).
pub fn chase_trace(block_bytes: u64, steps: u64, seed: u64) -> Vec<TraceAccess> {
    let lines = (block_bytes / 64).max(2);
    let mut rng = Rng::seed_from_u64(seed);
    let mut t = Vec::with_capacity(steps as usize);
    let mut a = 0u64;
    let mut b = lines / 2;
    for i in 0..steps {
        // Jump far enough to defeat the prefetcher and row buffer.
        let hop = rng.gen_range(lines / 4..lines.max(2));
        if i % 2 == 0 {
            a = (a + hop) % lines;
            t.push(TraceAccess::chase(0, a * 64));
        } else {
            b = (b + hop) % lines;
            t.push(TraceAccess::chase(0, b * 64));
        }
    }
    t
}

/// XSBench-like: each "lookup" is a short dependent chain (binary
/// search tail) at a random position, chains from different iterations
/// independent across cores.
pub fn xsbench_trace(
    cores: u32,
    grid_bytes: u64,
    lookups_per_core: u64,
    deps_per_lookup: u32,
    seed: u64,
) -> Vec<TraceAccess> {
    let lines = (grid_bytes / 64).max(deps_per_lookup as u64 + 1);
    let mut rngs: Vec<Rng> = (0..cores)
        .map(|c| {
            Rng::seed_from_u64(seed ^ (0xA11CEu64 + c as u64).wrapping_mul(0x9e3779b97f4a7c15))
        })
        .collect();
    let mut t = Vec::new();
    for _ in 0..lookups_per_core {
        for c in 0..cores {
            let rng = &mut rngs[c as usize];
            // Binary-search tail: successive halving jumps, dependent.
            let mut pos = rng.gen_range(0..lines);
            let mut span = lines / 2;
            for _ in 0..deps_per_lookup {
                t.push(TraceAccess::chase(c, pos * 64));
                span = (span / 2).max(1);
                pos = (pos + span) % lines;
            }
        }
    }
    t
}

/// Graph500-like: per traversed edge, a streaming CSR read plus a
/// random probe of the visited structure (write when claiming).
pub fn bfs_trace(cores: u32, graph_bytes: u64, edges_per_core: u64, seed: u64) -> Vec<TraceAccess> {
    let lines = (graph_bytes / 64).max(2);
    let mut rngs: Vec<Rng> = (0..cores)
        .map(|c| Rng::seed_from_u64(seed ^ (0xB5Fu64 + c as u64).wrapping_mul(0x9e3779b97f4a7c15)))
        .collect();
    let mut csr_cursor: Vec<u64> = (0..cores).map(|c| core_base(c) / 64 % lines).collect();
    let mut t = Vec::new();
    for _ in 0..edges_per_core {
        for c in 0..cores {
            let rng = &mut rngs[c as usize];
            // Sequential CSR adjacency read.
            let cur = &mut csr_cursor[c as usize];
            *cur = (*cur + 1) % lines;
            t.push(TraceAccess::read(c, *cur * 64));
            // Random visited probe; 30% of probes claim (write).
            let probe = rng.gen_range(0..lines);
            if rng.gen_bool(0.3) {
                t.push(TraceAccess::write(c, probe * 64));
            } else {
                t.push(TraceAccess::read(c, probe * 64));
            }
        }
    }
    t
}

/// The five application trace generators, as a closed enum so sweeps,
/// benches and the differential test suite can iterate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// STREAM triad sweep ([`stream_trace`]).
    Stream,
    /// GUPS random read-modify-write ([`gups_trace`]).
    Gups,
    /// TinyMemBench dual pointer chase ([`chase_trace`]).
    Chase,
    /// XSBench binary-search tails ([`xsbench_trace`]).
    XsBench,
    /// Graph500 BFS CSR-plus-probe mix ([`bfs_trace`]).
    Bfs,
}

impl TraceKind {
    /// Every generator, in paper-workload order.
    pub const ALL: [TraceKind; 5] = [
        TraceKind::Stream,
        TraceKind::Gups,
        TraceKind::Chase,
        TraceKind::XsBench,
        TraceKind::Bfs,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Stream => "STREAM",
            TraceKind::Gups => "GUPS",
            TraceKind::Chase => "Chase",
            TraceKind::XsBench => "XSBench",
            TraceKind::Bfs => "Graph500",
        }
    }

    /// Generate a deterministic trace with roughly
    /// `cores * accesses_per_core` records over a test-scale footprint.
    /// The chase generator is single-core by construction (a dependent
    /// chain has no intra-core parallelism to shard), so it emits
    /// `cores * accesses_per_core` records on core 0.
    pub fn generate(self, cores: u32, accesses_per_core: u64, seed: u64) -> Vec<TraceAccess> {
        let footprint = 64 << 20; // 64 MiB: beyond L2, tractable to replay
        match self {
            TraceKind::Stream => stream_trace(cores, accesses_per_core, 1),
            TraceKind::Gups => gups_trace(cores, footprint, accesses_per_core.div_ceil(2), seed),
            TraceKind::Chase => chase_trace(footprint, cores as u64 * accesses_per_core, seed),
            TraceKind::XsBench => xsbench_trace(
                cores,
                footprint,
                accesses_per_core.div_ceil(6).max(1),
                6,
                seed,
            ),
            TraceKind::Bfs => bfs_trace(cores, footprint / 2, accesses_per_core.div_ceil(2), seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_trace_is_sequential_per_core() {
        let t = stream_trace(2, 64, 1);
        assert_eq!(t.len(), 128);
        let core0: Vec<u64> = t.iter().filter(|a| a.core == 0).map(|a| a.addr).collect();
        assert!(core0.windows(2).all(|w| w[1] == w[0] + 64));
        assert!(t.iter().all(|a| !a.dependent && !a.write));
    }

    #[test]
    fn stream_trace_passes_repeat_addresses() {
        let one = stream_trace(1, 32, 1);
        let two = stream_trace(1, 32, 2);
        assert_eq!(two.len(), 2 * one.len());
        assert_eq!(&two[..one.len()], &one[..]);
        assert_eq!(&two[one.len()..], &one[..]);
    }

    #[test]
    fn gups_trace_pairs_reads_with_writes() {
        let t = gups_trace(2, 1 << 20, 100, 42);
        assert_eq!(t.len(), 400);
        for pair in t.chunks(2) {
            assert_eq!(pair[0].addr, pair[1].addr);
            assert!(!pair[0].write && pair[1].write);
            assert_eq!(pair[0].core, pair[1].core);
        }
        // Addresses stay within the table.
        assert!(t.iter().all(|a| a.addr < 1 << 20));
    }

    #[test]
    fn gups_trace_is_deterministic_per_seed() {
        assert_eq!(gups_trace(2, 1 << 16, 50, 7), gups_trace(2, 1 << 16, 50, 7));
        assert_ne!(gups_trace(2, 1 << 16, 50, 7), gups_trace(2, 1 << 16, 50, 8));
    }

    #[test]
    fn chase_trace_is_fully_dependent() {
        let t = chase_trace(1 << 24, 500, 1);
        assert_eq!(t.len(), 500);
        assert!(t.iter().all(|a| a.dependent && a.core == 0));
        // Jumps are large (defeat prefetch): median hop > 1 MB.
        let mut hops: Vec<i64> = t
            .windows(2)
            .map(|w| (w[1].addr as i64 - w[0].addr as i64).abs())
            .collect();
        hops.sort();
        assert!(hops[hops.len() / 2] > 1 << 20);
    }

    #[test]
    fn xsbench_trace_has_dependent_chains() {
        let t = xsbench_trace(4, 1 << 26, 10, 6, 3);
        assert_eq!(t.len(), 4 * 10 * 6);
        assert!(t.iter().all(|a| a.dependent));
    }

    #[test]
    fn bfs_trace_mixes_sequential_and_random() {
        let t = bfs_trace(2, 1 << 24, 200, 9);
        assert_eq!(t.len(), 800);
        let writes = t.iter().filter(|a| a.write).count();
        // ~30% of the probe half.
        assert!(writes > 60 && writes < 180, "writes {writes}");
    }
}

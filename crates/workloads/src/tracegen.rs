//! Trace generators: emit [`knl::TraceAccess`] streams with each
//! workload's characteristic access pattern, at footprints the
//! line-accurate trace simulator can chew through.
//!
//! This closes the validation triangle: the *native kernels* prove the
//! algorithms are real, the *machine model* prices them at paper
//! scale, and these traces let the *trace simulator* check the model's
//! orderings with the exact cache/bank/TLB substrate models
//! (`tests/trace_crosscheck.rs`).
//!
//! # Streaming sources
//!
//! Every generator exists in two forms: an incremental state machine
//! implementing [`TraceSource`] (the primary form), and an eager
//! `*_trace` function that materializes the whole stream — now a thin
//! [`collect`] wrapper kept for small tests and call sites that
//! genuinely need a `Vec`. The source form yields bounded chunks
//! ([`DEFAULT_CHUNK`] accesses at a time through
//! [`TraceSource::fill`]), which lets [`replay_streaming`] drive
//! [`TraceSim::run_streaming`] without ever materializing a
//! paper-scale trace: generation overlaps classification and timing,
//! and the buffered window stays at roughly one chunk for workloads
//! that spread accesses across cores. Both forms are bit-identical —
//! the golden-vector suite (`tests/tracegen_golden.rs`) and the
//! chunking-invariance tests below pin that.

use knl::classified::ClassifiedTrace;
use knl::config::MachineConfig;
use knl::tracesim::{TraceAccess, TraceSim, TraceSimReport};
use simfabric::prng::Rng;
use simfabric::ByteSize;

/// De-aliased per-core base addresses (physically scattered pages
/// never alias all cores onto one DRAM bank; synthetic traces must
/// not either).
fn core_base(core: u32) -> u64 {
    (core as u64 * 23_456_789) & !63
}

/// Default chunk granularity for [`TraceSource::fill`]: 64 Ki accesses
/// (1 MiB of `TraceAccess` records) — big enough to amortize the
/// per-chunk partition/classify fan-out, small enough that the
/// streaming replay's working set stays cache-resident.
pub const DEFAULT_CHUNK: usize = 64 * 1024;

/// An incremental trace generator: a resumable state machine yielding
/// one deterministic access stream.
///
/// Implementations must be pure functions of their construction
/// parameters — the stream a source yields access-by-access is
/// bit-identical to the `Vec` its eager counterpart materializes.
pub trait TraceSource {
    /// The next access, or `None` once the stream is exhausted.
    fn next_access(&mut self) -> Option<TraceAccess>;

    /// Append up to `max` accesses to `out`; returns how many were
    /// appended (0 means the stream is exhausted — sources are never
    /// "temporarily empty").
    fn fill(&mut self, out: &mut Vec<TraceAccess>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.next_access() {
                Some(t) => {
                    out.push(t);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Exact number of accesses left in the stream, when the source
    /// knows it (all in-tree sources do; `None` is allowed for
    /// external sources of unknown length).
    fn remaining(&self) -> Option<u64> {
        None
    }
}

/// Drain a source into a `Vec` (the eager form of the stream).
pub fn collect(source: &mut dyn TraceSource) -> Vec<TraceAccess> {
    let mut out = match source.remaining() {
        Some(n) => Vec::with_capacity(n as usize),
        None => Vec::new(),
    };
    while source.fill(&mut out, DEFAULT_CHUNK) > 0 {}
    out
}

/// Replay `source` through `sim` in [`DEFAULT_CHUNK`]-sized chunks via
/// [`TraceSim::run_streaming`]: generation overlaps classification and
/// timing, and the report is bit-identical to materializing the trace
/// and calling [`TraceSim::run`].
pub fn replay_streaming(
    sim: &mut TraceSim,
    source: &mut (dyn TraceSource + Send),
) -> TraceSimReport {
    sim.run_streaming(|buf| source.fill(buf, DEFAULT_CHUNK))
}

/// Classify `source` into a [`ClassifiedTrace`] artifact in
/// [`DEFAULT_CHUNK`]-sized chunks — the classify-once counterpart of
/// [`replay_streaming`]: the raw trace never materializes, and the
/// artifact replays against any number of timing setups via
/// [`TraceSim::run_classified`]. `trace_spec` must canonically name
/// the stream (use [`TraceKind::spec`] for the app generators) — it
/// becomes the generator half of the artifact's key.
pub fn classify_streaming(
    cfg: &MachineConfig,
    cores: u32,
    msc_capacity: ByteSize,
    trace_spec: &str,
    source: &mut (dyn TraceSource + Send),
) -> ClassifiedTrace {
    ClassifiedTrace::build_streaming(cfg, cores, msc_capacity, trace_spec, |buf| {
        source.fill(buf, DEFAULT_CHUNK)
    })
}

/// STREAM source: each core sweeps a disjoint contiguous block in
/// bursts of 16 lines (the natural MSHR-drain issue pattern),
/// round-robining cores burst by burst.
#[derive(Debug, Clone)]
pub struct StreamSource {
    cores: u32,
    lines: u64,
    passes: u32,
    pass: u32,
    i: u64,
    c: u32,
    j: u64,
    emitted: u64,
}

impl StreamSource {
    const BURST: u64 = 16;

    /// `lines_per_core` sequential lines per core, swept `passes`
    /// times (at least once).
    pub fn new(cores: u32, lines_per_core: u64, passes: u32) -> Self {
        StreamSource {
            cores,
            lines: lines_per_core,
            passes: passes.max(1),
            pass: 0,
            i: 0,
            c: 0,
            j: 0,
            emitted: 0,
        }
    }
}

impl TraceSource for StreamSource {
    fn next_access(&mut self) -> Option<TraceAccess> {
        loop {
            if self.pass >= self.passes {
                return None;
            }
            if self.i >= self.lines {
                self.pass += 1;
                self.i = 0;
                self.c = 0;
                self.j = 0;
                continue;
            }
            if self.c >= self.cores {
                self.c = 0;
                self.i += Self::BURST;
                self.j = self.i;
                continue;
            }
            if self.j >= (self.i + Self::BURST).min(self.lines) {
                self.c += 1;
                self.j = self.i;
                continue;
            }
            let acc = TraceAccess::read(self.c, core_base(self.c) + self.j * 64);
            self.j += 1;
            self.emitted += 1;
            return Some(acc);
        }
    }

    fn remaining(&self) -> Option<u64> {
        Some(self.cores as u64 * self.lines * self.passes as u64 - self.emitted)
    }
}

/// STREAM: each core sweeps a disjoint contiguous block in bursts of
/// 16 lines (the natural MSHR-drain issue pattern).
pub fn stream_trace(cores: u32, lines_per_core: u64, passes: u32) -> Vec<TraceAccess> {
    collect(&mut StreamSource::new(cores, lines_per_core, passes))
}

/// GUPS source: independent random read-modify-writes over a shared
/// table, one update per core per round.
#[derive(Debug, Clone)]
pub struct GupsSource {
    cores: u32,
    lines: u64,
    updates: u64,
    rngs: Vec<Rng>,
    u: u64,
    c: u32,
    pending_write: Option<TraceAccess>,
    emitted: u64,
}

impl GupsSource {
    /// `updates_per_core` read+write pairs per core over a
    /// `table_bytes` table.
    pub fn new(cores: u32, table_bytes: u64, updates_per_core: u64, seed: u64) -> Self {
        GupsSource {
            cores,
            lines: (table_bytes / 64).max(1),
            updates: updates_per_core,
            rngs: (0..cores)
                .map(|c| Rng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9e3779b97f4a7c15)))
                .collect(),
            u: 0,
            c: 0,
            pending_write: None,
            emitted: 0,
        }
    }
}

impl TraceSource for GupsSource {
    fn next_access(&mut self) -> Option<TraceAccess> {
        if let Some(w) = self.pending_write.take() {
            self.emitted += 1;
            return Some(w);
        }
        loop {
            if self.u >= self.updates {
                return None;
            }
            if self.c >= self.cores {
                self.c = 0;
                self.u += 1;
                continue;
            }
            let line = self.rngs[self.c as usize].gen_range(0..self.lines);
            let addr = line * 64;
            self.pending_write = Some(TraceAccess::write(self.c, addr));
            let read = TraceAccess::read(self.c, addr);
            self.c += 1;
            self.emitted += 1;
            return Some(read);
        }
    }

    fn remaining(&self) -> Option<u64> {
        Some(self.cores as u64 * self.updates * 2 - self.emitted)
    }
}

/// GUPS: independent random read-modify-writes over a shared table.
pub fn gups_trace(
    cores: u32,
    table_bytes: u64,
    updates_per_core: u64,
    seed: u64,
) -> Vec<TraceAccess> {
    collect(&mut GupsSource::new(
        cores,
        table_bytes,
        updates_per_core,
        seed,
    ))
}

/// TinyMemBench source: a dependent pointer chase over a block (two
/// interleaved chains on one core, as the dual-read benchmark runs).
#[derive(Debug, Clone)]
pub struct ChaseSource {
    lines: u64,
    steps: u64,
    rng: Rng,
    i: u64,
    a: u64,
    b: u64,
}

impl ChaseSource {
    /// `steps` dependent hops over a `block_bytes` block on core 0.
    pub fn new(block_bytes: u64, steps: u64, seed: u64) -> Self {
        let lines = (block_bytes / 64).max(2);
        ChaseSource {
            lines,
            steps,
            rng: Rng::seed_from_u64(seed),
            i: 0,
            a: 0,
            b: lines / 2,
        }
    }
}

impl TraceSource for ChaseSource {
    fn next_access(&mut self) -> Option<TraceAccess> {
        if self.i >= self.steps {
            return None;
        }
        // Jump far enough to defeat the prefetcher and row buffer.
        let hop = self.rng.gen_range(self.lines / 4..self.lines.max(2));
        let addr = if self.i % 2 == 0 {
            self.a = (self.a + hop) % self.lines;
            self.a * 64
        } else {
            self.b = (self.b + hop) % self.lines;
            self.b * 64
        };
        self.i += 1;
        Some(TraceAccess::chase(0, addr))
    }

    fn remaining(&self) -> Option<u64> {
        Some(self.steps - self.i)
    }
}

/// TinyMemBench: a dependent pointer chase over `block_bytes` (two
/// interleaved chains on one core, as the dual-read benchmark runs).
pub fn chase_trace(block_bytes: u64, steps: u64, seed: u64) -> Vec<TraceAccess> {
    collect(&mut ChaseSource::new(block_bytes, steps, seed))
}

/// XSBench-like source: each "lookup" is a short dependent chain
/// (binary search tail) at a random position, chains from different
/// iterations independent across cores.
#[derive(Debug, Clone)]
pub struct XsBenchSource {
    cores: u32,
    lines: u64,
    lookups: u64,
    deps: u32,
    rngs: Vec<Rng>,
    l: u64,
    c: u32,
    d: u32,
    pos: u64,
    span: u64,
    in_chain: bool,
    emitted: u64,
}

impl XsBenchSource {
    /// `lookups_per_core` chains of `deps_per_lookup` dependent reads
    /// per core over a `grid_bytes` grid.
    pub fn new(
        cores: u32,
        grid_bytes: u64,
        lookups_per_core: u64,
        deps_per_lookup: u32,
        seed: u64,
    ) -> Self {
        XsBenchSource {
            cores,
            lines: (grid_bytes / 64).max(deps_per_lookup as u64 + 1),
            lookups: lookups_per_core,
            deps: deps_per_lookup,
            rngs: (0..cores)
                .map(|c| {
                    Rng::seed_from_u64(
                        seed ^ (0xA11CEu64 + c as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    )
                })
                .collect(),
            l: 0,
            c: 0,
            d: 0,
            pos: 0,
            span: 0,
            in_chain: false,
            emitted: 0,
        }
    }
}

impl TraceSource for XsBenchSource {
    fn next_access(&mut self) -> Option<TraceAccess> {
        loop {
            if self.l >= self.lookups {
                return None;
            }
            if self.c >= self.cores {
                self.c = 0;
                self.l += 1;
                continue;
            }
            if !self.in_chain {
                // Binary-search tail: successive halving jumps,
                // dependent.
                self.pos = self.rngs[self.c as usize].gen_range(0..self.lines);
                self.span = self.lines / 2;
                self.d = 0;
                self.in_chain = true;
            }
            if self.d >= self.deps {
                self.in_chain = false;
                self.c += 1;
                continue;
            }
            let acc = TraceAccess::chase(self.c, self.pos * 64);
            self.span = (self.span / 2).max(1);
            self.pos = (self.pos + self.span) % self.lines;
            self.d += 1;
            self.emitted += 1;
            return Some(acc);
        }
    }

    fn remaining(&self) -> Option<u64> {
        Some(self.lookups * self.cores as u64 * self.deps as u64 - self.emitted)
    }
}

/// XSBench-like: each "lookup" is a short dependent chain (binary
/// search tail) at a random position, chains from different iterations
/// independent across cores.
pub fn xsbench_trace(
    cores: u32,
    grid_bytes: u64,
    lookups_per_core: u64,
    deps_per_lookup: u32,
    seed: u64,
) -> Vec<TraceAccess> {
    collect(&mut XsBenchSource::new(
        cores,
        grid_bytes,
        lookups_per_core,
        deps_per_lookup,
        seed,
    ))
}

/// Graph500-like source: per traversed edge, a streaming CSR read plus
/// a random probe of the visited structure (write when claiming).
#[derive(Debug, Clone)]
pub struct BfsSource {
    cores: u32,
    lines: u64,
    edges: u64,
    rngs: Vec<Rng>,
    csr_cursor: Vec<u64>,
    e: u64,
    c: u32,
    pending_probe: Option<TraceAccess>,
    emitted: u64,
}

impl BfsSource {
    /// `edges_per_core` CSR-read + visited-probe pairs per core over a
    /// `graph_bytes` footprint.
    pub fn new(cores: u32, graph_bytes: u64, edges_per_core: u64, seed: u64) -> Self {
        let lines = (graph_bytes / 64).max(2);
        BfsSource {
            cores,
            lines,
            edges: edges_per_core,
            rngs: (0..cores)
                .map(|c| {
                    Rng::seed_from_u64(
                        seed ^ (0xB5Fu64 + c as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    )
                })
                .collect(),
            csr_cursor: (0..cores).map(|c| core_base(c) / 64 % lines).collect(),
            e: 0,
            c: 0,
            pending_probe: None,
            emitted: 0,
        }
    }
}

impl TraceSource for BfsSource {
    fn next_access(&mut self) -> Option<TraceAccess> {
        if let Some(p) = self.pending_probe.take() {
            self.emitted += 1;
            return Some(p);
        }
        loop {
            if self.e >= self.edges {
                return None;
            }
            if self.c >= self.cores {
                self.c = 0;
                self.e += 1;
                continue;
            }
            // Sequential CSR adjacency read.
            let cur = &mut self.csr_cursor[self.c as usize];
            *cur = (*cur + 1) % self.lines;
            let read = TraceAccess::read(self.c, *cur * 64);
            // Random visited probe; 30% of probes claim (write).
            let rng = &mut self.rngs[self.c as usize];
            let probe = rng.gen_range(0..self.lines);
            self.pending_probe = Some(if rng.gen_bool(0.3) {
                TraceAccess::write(self.c, probe * 64)
            } else {
                TraceAccess::read(self.c, probe * 64)
            });
            self.c += 1;
            self.emitted += 1;
            return Some(read);
        }
    }

    fn remaining(&self) -> Option<u64> {
        Some(self.edges * self.cores as u64 * 2 - self.emitted)
    }
}

/// Graph500-like: per traversed edge, a streaming CSR read plus a
/// random probe of the visited structure (write when claiming).
pub fn bfs_trace(cores: u32, graph_bytes: u64, edges_per_core: u64, seed: u64) -> Vec<TraceAccess> {
    collect(&mut BfsSource::new(
        cores,
        graph_bytes,
        edges_per_core,
        seed,
    ))
}

/// Phased hot/cold source: the migration stress workload. Each phase
/// streams ~90% of its accesses over a small *hot* block placed high
/// in the address space (above [`HotColdSource::HOT_BASE`], so no
/// low-boundary static split can capture it), mixed with ~10% cold
/// random probes over a large low region. Every phase the hot block
/// moves to a fresh address range, so a static placement can at best
/// capture one phase — a periodic hot-page migrator tracks all of
/// them, which is exactly the crossover the `T`-sweep demonstrates.
#[derive(Debug, Clone)]
pub struct HotColdSource {
    cores: u32,
    phases: u32,
    per_core: u64,
    hot_lines: u64,
    cold_lines: u64,
    rngs: Vec<Rng>,
    hot_cursor: Vec<u64>,
    p: u32,
    i: u64,
    c: u32,
    emitted: u64,
}

impl HotColdSource {
    /// Hot blocks start here: far above any test-scale footprint, so
    /// `SplitAt(boundary)` placements with a low boundary route every
    /// hot access to DDR.
    pub const HOT_BASE: u64 = 1 << 32;

    /// Fraction of accesses aimed at the hot block.
    pub const HOT_FRACTION: f64 = 0.9;

    /// `accesses_per_core_per_phase` accesses per core in each of
    /// `phases` phases; each phase's hot block is `hot_bytes` at a
    /// fresh high range, cold probes cover `cold_bytes` at the bottom
    /// of the address space.
    pub fn new(
        cores: u32,
        phases: u32,
        accesses_per_core_per_phase: u64,
        hot_bytes: u64,
        cold_bytes: u64,
        seed: u64,
    ) -> Self {
        let hot_lines = (hot_bytes / 64).max(1);
        HotColdSource {
            cores,
            phases,
            per_core: accesses_per_core_per_phase,
            hot_lines,
            cold_lines: (cold_bytes / 64).max(1),
            rngs: (0..cores)
                .map(|c| {
                    Rng::seed_from_u64(
                        seed ^ (0x407C01Du64 + c as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    )
                })
                .collect(),
            // Offset each core's streaming walk so cores spread over
            // banks instead of marching in lockstep.
            hot_cursor: (0..cores).map(|c| core_base(c) / 64 % hot_lines).collect(),
            p: 0,
            i: 0,
            c: 0,
            emitted: 0,
        }
    }
}

impl TraceSource for HotColdSource {
    fn next_access(&mut self) -> Option<TraceAccess> {
        loop {
            if self.p >= self.phases {
                return None;
            }
            if self.i >= self.per_core {
                self.p += 1;
                self.i = 0;
                self.c = 0;
                continue;
            }
            if self.c >= self.cores {
                self.c = 0;
                self.i += 1;
                continue;
            }
            let c = self.c as usize;
            let rng = &mut self.rngs[c];
            let addr = if rng.gen_bool(Self::HOT_FRACTION) {
                // Streaming walk of this phase's hot block.
                let line = self.hot_cursor[c] % self.hot_lines;
                self.hot_cursor[c] += 1;
                Self::HOT_BASE + (self.p as u64 * self.hot_lines + line) * 64
            } else {
                // Cold random probe over the low region.
                rng.gen_range(0..self.cold_lines) * 64
            };
            let acc = TraceAccess::read(self.c, addr);
            self.c += 1;
            self.emitted += 1;
            return Some(acc);
        }
    }

    fn remaining(&self) -> Option<u64> {
        Some(self.cores as u64 * self.phases as u64 * self.per_core - self.emitted)
    }
}

/// Phased hot/cold mix (the eager form of [`HotColdSource`]).
pub fn hot_cold_trace(
    cores: u32,
    phases: u32,
    accesses_per_core_per_phase: u64,
    hot_bytes: u64,
    cold_bytes: u64,
    seed: u64,
) -> Vec<TraceAccess> {
    collect(&mut HotColdSource::new(
        cores,
        phases,
        accesses_per_core_per_phase,
        hot_bytes,
        cold_bytes,
        seed,
    ))
}

/// The five application trace generators, as a closed enum so sweeps,
/// benches and the differential test suite can iterate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// STREAM triad sweep ([`stream_trace`]).
    Stream,
    /// GUPS random read-modify-write ([`gups_trace`]).
    Gups,
    /// TinyMemBench dual pointer chase ([`chase_trace`]).
    Chase,
    /// XSBench binary-search tails ([`xsbench_trace`]).
    XsBench,
    /// Graph500 BFS CSR-plus-probe mix ([`bfs_trace`]).
    Bfs,
}

impl TraceKind {
    /// Every generator, in paper-workload order.
    pub const ALL: [TraceKind; 5] = [
        TraceKind::Stream,
        TraceKind::Gups,
        TraceKind::Chase,
        TraceKind::XsBench,
        TraceKind::Bfs,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Stream => "STREAM",
            TraceKind::Gups => "GUPS",
            TraceKind::Chase => "Chase",
            TraceKind::XsBench => "XSBench",
            TraceKind::Bfs => "Graph500",
        }
    }

    /// The canonical trace-spec label for the stream
    /// [`source`](Self::source) yields with these parameters — the
    /// generator half of a classify key. Everything that changes the
    /// stream (kind, cores, per-core length, seed) reaches the string;
    /// two equal labels always name bit-identical streams.
    pub fn spec(self, cores: u32, accesses_per_core: u64, seed: u64) -> String {
        format!(
            "{}:{}x{}:seed={:#x}",
            self.name(),
            cores,
            accesses_per_core,
            seed
        )
    }

    /// A streaming source over the same deterministic stream
    /// [`generate`](Self::generate) materializes: roughly
    /// `cores * accesses_per_core` records over a test-scale
    /// footprint. The chase generator is single-core by construction
    /// (a dependent chain has no intra-core parallelism to shard), so
    /// it emits `cores * accesses_per_core` records on core 0.
    pub fn source(
        self,
        cores: u32,
        accesses_per_core: u64,
        seed: u64,
    ) -> Box<dyn TraceSource + Send> {
        let footprint = 64 << 20; // 64 MiB: beyond L2, tractable to replay
        match self {
            TraceKind::Stream => Box::new(StreamSource::new(cores, accesses_per_core, 1)),
            TraceKind::Gups => Box::new(GupsSource::new(
                cores,
                footprint,
                accesses_per_core.div_ceil(2),
                seed,
            )),
            TraceKind::Chase => Box::new(ChaseSource::new(
                footprint,
                cores as u64 * accesses_per_core,
                seed,
            )),
            TraceKind::XsBench => Box::new(XsBenchSource::new(
                cores,
                footprint,
                accesses_per_core.div_ceil(6).max(1),
                6,
                seed,
            )),
            TraceKind::Bfs => Box::new(BfsSource::new(
                cores,
                footprint / 2,
                accesses_per_core.div_ceil(2),
                seed,
            )),
        }
    }

    /// Generate a deterministic trace with roughly
    /// `cores * accesses_per_core` records over a test-scale footprint
    /// (the materialized form of [`source`](Self::source)).
    pub fn generate(self, cores: u32, accesses_per_core: u64, seed: u64) -> Vec<TraceAccess> {
        collect(&mut *self.source(cores, accesses_per_core, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_trace_is_sequential_per_core() {
        let t = stream_trace(2, 64, 1);
        assert_eq!(t.len(), 128);
        let core0: Vec<u64> = t.iter().filter(|a| a.core == 0).map(|a| a.addr).collect();
        assert!(core0.windows(2).all(|w| w[1] == w[0] + 64));
        assert!(t.iter().all(|a| !a.dependent && !a.write));
    }

    #[test]
    fn stream_trace_passes_repeat_addresses() {
        let one = stream_trace(1, 32, 1);
        let two = stream_trace(1, 32, 2);
        assert_eq!(two.len(), 2 * one.len());
        assert_eq!(&two[..one.len()], &one[..]);
        assert_eq!(&two[one.len()..], &one[..]);
    }

    #[test]
    fn gups_trace_pairs_reads_with_writes() {
        let t = gups_trace(2, 1 << 20, 100, 42);
        assert_eq!(t.len(), 400);
        for pair in t.chunks(2) {
            assert_eq!(pair[0].addr, pair[1].addr);
            assert!(!pair[0].write && pair[1].write);
            assert_eq!(pair[0].core, pair[1].core);
        }
        // Addresses stay within the table.
        assert!(t.iter().all(|a| a.addr < 1 << 20));
    }

    #[test]
    fn gups_trace_is_deterministic_per_seed() {
        assert_eq!(gups_trace(2, 1 << 16, 50, 7), gups_trace(2, 1 << 16, 50, 7));
        assert_ne!(gups_trace(2, 1 << 16, 50, 7), gups_trace(2, 1 << 16, 50, 8));
    }

    #[test]
    fn chase_trace_is_fully_dependent() {
        let t = chase_trace(1 << 24, 500, 1);
        assert_eq!(t.len(), 500);
        assert!(t.iter().all(|a| a.dependent && a.core == 0));
        // Jumps are large (defeat prefetch): median hop > 1 MB.
        let mut hops: Vec<i64> = t
            .windows(2)
            .map(|w| (w[1].addr as i64 - w[0].addr as i64).abs())
            .collect();
        hops.sort();
        assert!(hops[hops.len() / 2] > 1 << 20);
    }

    #[test]
    fn xsbench_trace_has_dependent_chains() {
        let t = xsbench_trace(4, 1 << 26, 10, 6, 3);
        assert_eq!(t.len(), 4 * 10 * 6);
        assert!(t.iter().all(|a| a.dependent));
    }

    #[test]
    fn bfs_trace_mixes_sequential_and_random() {
        let t = bfs_trace(2, 1 << 24, 200, 9);
        assert_eq!(t.len(), 800);
        let writes = t.iter().filter(|a| a.write).count();
        // ~30% of the probe half.
        assert!(writes > 60 && writes < 180, "writes {writes}");
    }

    #[test]
    fn hot_cold_trace_is_mostly_hot_and_phases_move_the_hot_block() {
        let hot_bytes = 1 << 16;
        let t = hot_cold_trace(4, 3, 500, hot_bytes, 1 << 22, 0xC0FFEE);
        assert_eq!(t.len(), 4 * 3 * 500);
        let hot: Vec<&TraceAccess> = t
            .iter()
            .filter(|a| a.addr >= HotColdSource::HOT_BASE)
            .collect();
        let frac = hot.len() as f64 / t.len() as f64;
        assert!((0.85..0.95).contains(&frac), "hot fraction {frac}");
        // Cold probes stay in the low region.
        assert!(t
            .iter()
            .all(|a| a.addr >= HotColdSource::HOT_BASE || a.addr < 1 << 22));
        // Each phase's hot block is a fresh disjoint range.
        let phase_len = 4 * 500;
        for (p, chunk) in t.chunks(phase_len).enumerate() {
            let lo = HotColdSource::HOT_BASE + p as u64 * hot_bytes;
            assert!(chunk
                .iter()
                .filter(|a| a.addr >= HotColdSource::HOT_BASE)
                .all(|a| a.addr >= lo && a.addr < lo + hot_bytes));
        }
        assert!(t.iter().all(|a| !a.dependent && !a.write));
    }

    #[test]
    fn hot_cold_source_streams_bit_identically_to_the_eager_form() {
        let eager = hot_cold_trace(2, 2, 300, 1 << 16, 1 << 20, 7);
        for chunk in [1usize, 13, 1 << 20] {
            let mut src = HotColdSource::new(2, 2, 300, 1 << 16, 1 << 20, 7);
            let total = src.remaining().unwrap();
            assert_eq!(total as usize, eager.len());
            let mut out = Vec::new();
            while src.fill(&mut out, chunk) > 0 {}
            assert_eq!(out, eager, "chunk={chunk}");
            assert_eq!(src.remaining(), Some(0));
            assert!(src.next_access().is_none());
        }
        assert!(collect(&mut HotColdSource::new(0, 2, 300, 1 << 16, 1 << 20, 7)).is_empty());
        assert!(collect(&mut HotColdSource::new(2, 0, 300, 1 << 16, 1 << 20, 7)).is_empty());
        assert!(collect(&mut HotColdSource::new(2, 2, 0, 1 << 16, 1 << 20, 7)).is_empty());
    }

    /// Every kind, as a boxed source with small test-scale parameters.
    fn sources() -> Vec<(TraceKind, Box<dyn TraceSource + Send>)> {
        TraceKind::ALL
            .into_iter()
            .map(|k| (k, k.source(4, 200, 0x5EED)))
            .collect()
    }

    #[test]
    fn chunked_fill_is_invariant_to_chunk_size() {
        // Pulling a source 1, 7, or a million accesses at a time must
        // yield the identical stream the eager form materializes.
        for chunk in [1usize, 7, 1 << 20] {
            for (kind, mut src) in sources() {
                let eager = kind.generate(4, 200, 0x5EED);
                let mut chunked = Vec::new();
                while src.fill(&mut chunked, chunk) > 0 {}
                assert_eq!(chunked, eager, "{kind:?} chunk={chunk}");
            }
        }
    }

    #[test]
    fn remaining_counts_down_exactly() {
        for (kind, mut src) in sources() {
            let total = src.remaining().expect("in-tree sources know their length");
            let mut seen = 0u64;
            while let Some(_) = src.next_access() {
                seen += 1;
                assert_eq!(src.remaining(), Some(total - seen), "{kind:?} at {seen}");
            }
            assert_eq!(seen, total, "{kind:?}");
            assert_eq!(src.remaining(), Some(0));
            // Exhausted sources stay exhausted.
            assert!(src.next_access().is_none());
            assert_eq!(src.fill(&mut Vec::new(), 8), 0);
        }
    }

    #[test]
    fn fill_respects_max_and_reports_count() {
        let mut src = StreamSource::new(2, 64, 1);
        let mut out = Vec::new();
        assert_eq!(src.fill(&mut out, 10), 10);
        assert_eq!(out.len(), 10);
        assert_eq!(src.remaining(), Some(128 - 10));
        assert_eq!(src.fill(&mut out, 1 << 20), 118);
        assert_eq!(src.fill(&mut out, 1 << 20), 0);
    }

    #[test]
    fn zero_core_and_zero_length_sources_are_empty() {
        assert!(collect(&mut StreamSource::new(0, 64, 1)).is_empty());
        assert!(collect(&mut StreamSource::new(4, 0, 3)).is_empty());
        assert!(collect(&mut GupsSource::new(0, 1 << 20, 10, 1)).is_empty());
        assert!(collect(&mut GupsSource::new(4, 1 << 20, 0, 1)).is_empty());
        assert!(collect(&mut ChaseSource::new(1 << 20, 0, 1)).is_empty());
        assert!(collect(&mut XsBenchSource::new(4, 1 << 20, 10, 0, 1)).is_empty());
        assert!(collect(&mut BfsSource::new(4, 1 << 20, 0, 1)).is_empty());
    }
}

//! STREAM — McCalpin's bandwidth benchmark \[17\], OpenMP-style.
//!
//! The paper uses the triad kernel (`a[i] = b[i] + s*c[i]`) with one
//! thread per core to produce Fig. 2, and sweeps hardware threads for
//! Fig. 5. The native path implements all four kernels (copy, scale,
//! add, triad) with Rayon and verifies results; the model path submits
//! the triad's traffic (two streamed reads + one streamed write, plus
//! the write-allocate read the paper's compiler flags imply away with
//! streaming stores — STREAM convention counts 3 × N × 8 bytes).

use crate::PaperWorkload;
use knl::{Machine, MachineError, StreamOp};
use simfabric::par;
use simfabric::ByteSize;

/// STREAM configured for a total array footprint (all three arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamBench {
    /// Combined size of the three arrays.
    pub total_size: ByteSize,
    /// Number of triad iterations to time (STREAM uses 10, reports the
    /// best; the model prices the steady state so one pass suffices).
    pub passes: u32,
}

impl StreamBench {
    /// STREAM with the given combined footprint.
    pub fn new(total_size: ByteSize) -> Self {
        StreamBench {
            total_size,
            passes: 1,
        }
    }

    /// Elements per array.
    pub fn elements(&self) -> u64 {
        self.total_size.as_u64() / 3 / 8
    }

    /// Run the model and return the triad bandwidth in GB/s.
    pub fn triad_bandwidth(&self, machine: &mut Machine) -> Result<f64, MachineError> {
        let per_array = ByteSize::bytes(self.elements() * 8);
        let mut regions = machine.alloc_many(&[
            ("stream_a", per_array),
            ("stream_b", per_array),
            ("stream_c", per_array),
        ])?;
        let c = regions.pop().expect("three regions");
        let b = regions.pop().expect("three regions");
        let a = regions.pop().expect("three regions");
        let ops = [
            StreamOp::read_all(&b),
            StreamOp::read_all(&c),
            StreamOp::write_all(&a),
        ];
        let mut total_bytes = 0u64;
        let mut secs = 0.0;
        for _ in 0..self.passes.max(1) {
            let d = machine.stream(&ops);
            secs += d.as_secs();
            total_bytes += ops.iter().map(StreamOp::bytes).sum::<u64>();
        }
        machine.release(&a)?;
        machine.release(&b)?;
        machine.release(&c)?;
        Ok(total_bytes as f64 / 1e9 / secs)
    }
}

impl PaperWorkload for StreamBench {
    fn name(&self) -> &'static str {
        "STREAM"
    }

    fn metric(&self) -> &'static str {
        "GB/s"
    }

    fn footprint(&self) -> ByteSize {
        self.total_size
    }

    fn run_model(&self, machine: &mut Machine) -> Result<f64, MachineError> {
        let mut bench = *self;
        bench.passes = bench.passes.max(1);
        bench.triad_bandwidth(machine)
    }
}

// ---------------------------------------------------------------------
// Native kernels
// ---------------------------------------------------------------------

/// Native STREAM arrays.
pub struct StreamArrays {
    /// `a` — destination of copy/triad.
    pub a: Vec<f64>,
    /// `b` — destination of scale, source of add/triad.
    pub b: Vec<f64>,
    /// `c` — destination of add, source of copy/scale/triad.
    pub c: Vec<f64>,
}

impl StreamArrays {
    /// Initialize as the reference code does: a=1, b=2, c=0.
    pub fn new(n: usize) -> Self {
        StreamArrays {
            a: vec![1.0; n],
            b: vec![2.0; n],
            c: vec![0.0; n],
        }
    }

    /// `c = a`.
    pub fn copy(&mut self) {
        let a = &self.a;
        par::par_update(&mut self.c, |i, c| *c = a[i]);
    }

    /// `b = s * c`.
    pub fn scale(&mut self, s: f64) {
        let c = &self.c;
        par::par_update(&mut self.b, |i, b| *b = s * c[i]);
    }

    /// `c = a + b`.
    pub fn add(&mut self) {
        let (a, b) = (&self.a, &self.b);
        par::par_update(&mut self.c, |i, c| *c = a[i] + b[i]);
    }

    /// `a = b + s * c`.
    pub fn triad(&mut self, s: f64) {
        let (b, c) = (&self.b, &self.c);
        par::par_update(&mut self.a, |i, a| *a = b[i] + s * c[i]);
    }

    /// Run the full STREAM sequence once and verify against the
    /// closed-form expected values; returns `Err` with the first
    /// mismatching index otherwise.
    pub fn run_and_verify(&mut self, s: f64) -> Result<(), usize> {
        self.copy(); // c = 1
        self.scale(s); // b = s
        self.add(); // c = 1 + s
        self.triad(s); // a = s + s(1+s)
        let expect_a = s + s * (1.0 + s);
        let expect_b = s;
        let expect_c = 1.0 + s;
        for i in 0..self.a.len() {
            if (self.a[i] - expect_a).abs() > 1e-12
                || (self.b[i] - expect_b).abs() > 1e-12
                || (self.c[i] - expect_c).abs() > 1e-12
            {
                return Err(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl::MemSetup;

    #[test]
    fn native_kernels_verify() {
        let mut s = StreamArrays::new(10_000);
        s.run_and_verify(3.0).unwrap();
    }

    #[test]
    fn native_triad_matches_formula_elementwise() {
        let mut s = StreamArrays::new(257); // odd size exercises tails
        s.b.iter_mut().enumerate().for_each(|(i, b)| *b = i as f64);
        s.c.iter_mut()
            .enumerate()
            .for_each(|(i, c)| *c = 2.0 * i as f64);
        s.triad(0.5);
        for i in 0..257 {
            assert_eq!(s.a[i], i as f64 + 0.5 * 2.0 * i as f64);
        }
    }

    #[test]
    fn model_reproduces_fig2_ordering() {
        let bench = StreamBench::new(ByteSize::gib(6));
        let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let mut hbm = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
        let mut cache = Machine::knl7210(MemSetup::CacheMode, 64).unwrap();
        let d = bench.triad_bandwidth(&mut dram).unwrap();
        let h = bench.triad_bandwidth(&mut hbm).unwrap();
        let c = bench.triad_bandwidth(&mut cache).unwrap();
        assert!(h > c && c > d, "HBM {h} > cache {c} > DRAM {d} expected");
        assert!(h / d > 4.0, "HBM/DRAM ratio {}", h / d);
    }

    #[test]
    fn model_hbm_stops_at_capacity() {
        let bench = StreamBench::new(ByteSize::gib(20));
        let mut hbm = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
        assert!(matches!(
            bench.triad_bandwidth(&mut hbm),
            Err(MachineError::Alloc(_))
        ));
        // Same size is fine on DRAM.
        let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        assert!(bench.triad_bandwidth(&mut dram).is_ok());
    }

    #[test]
    fn workload_trait_surface() {
        let bench = StreamBench::new(ByteSize::gib(3));
        assert_eq!(bench.name(), "STREAM");
        assert_eq!(bench.metric(), "GB/s");
        assert_eq!(bench.footprint(), ByteSize::gib(3));
        let mut m = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let bw = bench.run_model(&mut m).unwrap();
        assert!(bw > 70.0 && bw < 80.0);
    }

    #[test]
    fn repeated_passes_price_identically() {
        let mut m = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let one = StreamBench {
            total_size: ByteSize::gib(3),
            passes: 1,
        }
        .triad_bandwidth(&mut m)
        .unwrap();
        let ten = StreamBench {
            total_size: ByteSize::gib(3),
            passes: 10,
        }
        .triad_bandwidth(&mut m)
        .unwrap();
        assert!((one - ten).abs() < 1e-6);
    }
}

//! XSBench \[16\] — the Monte Carlo macroscopic cross-section lookup
//! kernel from OpenMC.
//!
//! Each macroscopic lookup samples a particle energy and material,
//! then for every nuclide in the material binary-searches the
//! unionized energy grid and interpolates the five cross-section
//! channels; the metric is lookups per second. The paper scales the
//! grid-point count (`-g`) to push the footprint from 5.6 to 90 GB —
//! beyond MCDRAM, almost filling DDR.
//!
//! The native path implements the real data structures (nuclide grids,
//! unionized grid with index vectors, interpolated lookups) and
//! validates them; the model path prices the per-nuclide dependent
//! chases with the calibrated constants in [`knl::calib`].

use crate::PaperWorkload;
use knl::access::RandomOp;
use knl::{calib, Machine, MachineError};
use simfabric::prng::Rng;
use simfabric::ByteSize;

// ---------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------

/// An XSBench problem instance for the model path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XsBench {
    /// Total footprint in bytes (Fig. 4e's x-axis; scaled via `-g`).
    pub footprint_bytes: u64,
    /// Macroscopic lookups to perform (reference default 15 M).
    pub lookups: u64,
}

impl XsBench {
    /// Problem with the given footprint.
    pub fn with_footprint(footprint: ByteSize) -> Self {
        XsBench {
            footprint_bytes: footprint.as_u64(),
            lookups: 15_000_000,
        }
    }

    /// Dependent uncached accesses per nuclide micro-lookup at this
    /// problem size.
    pub fn deps_per_nuclide(&self) -> f64 {
        let doublings = (self.footprint_bytes as f64 / calib::XSBENCH_REFERENCE_BYTES)
            .log2()
            .max(0.0);
        calib::XSBENCH_DEPS_BASE + calib::XSBENCH_DEPS_PER_DOUBLING * doublings
    }

    /// Model: macroscopic lookups per second on `machine`.
    pub fn model_lookups_per_sec(&self, machine: &mut Machine) -> Result<f64, MachineError> {
        let grid = machine.alloc("xs_grid", ByteSize::bytes(self.footprint_bytes))?;
        let nuclide_units = self.lookups as f64 * calib::XSBENCH_NUCLIDES_PER_LOOKUP;
        let op = RandomOp {
            region: grid.clone(),
            count: nuclide_units as u64,
            dependent_depth: self.deps_per_nuclide().round() as u32,
            mlp_per_thread: calib::XSBENCH_MLP_PER_THREAD,
            updates: false,
            cpu_ns_per_unit: calib::XSBENCH_CPU_NS_PER_NUCLIDE,
        };
        let unit_rate = machine.random_rate(&op);
        machine.random(&op);
        machine.release(&grid)?;
        Ok(unit_rate / calib::XSBENCH_NUCLIDES_PER_LOOKUP)
    }
}

impl PaperWorkload for XsBench {
    fn name(&self) -> &'static str {
        "XSBench"
    }

    fn metric(&self) -> &'static str {
        "lookups/s"
    }

    fn footprint(&self) -> ByteSize {
        ByteSize::bytes(self.footprint_bytes)
    }

    fn run_model(&self, machine: &mut Machine) -> Result<f64, MachineError> {
        self.model_lookups_per_sec(machine)
    }
}

// ---------------------------------------------------------------------
// Native kernel
// ---------------------------------------------------------------------

/// Cross sections in the five reaction channels XSBench tracks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct XsVector {
    /// Total cross section.
    pub total: f64,
    /// Elastic scattering.
    pub elastic: f64,
    /// Absorption.
    pub absorption: f64,
    /// Fission.
    pub fission: f64,
    /// Neutron production (ν·fission).
    pub nu_fission: f64,
}

/// One nuclide's energy grid with per-point cross sections.
pub struct NuclideGrid {
    /// Ascending energies in (0, 1].
    pub energy: Vec<f64>,
    /// Cross sections at each energy.
    pub xs: Vec<XsVector>,
}

/// The full data set: nuclides plus the unionized energy grid with
/// per-nuclide index vectors (the XSBench "unionized" layout).
pub struct XsData {
    /// Per-nuclide grids.
    pub nuclides: Vec<NuclideGrid>,
    /// Unionized (merged, sorted) energies.
    pub unionized: Vec<f64>,
    /// For unionized point i and nuclide n: the index into nuclide n's
    /// grid of the last point ≤ unionized\[i\].
    pub index: Vec<u32>,
    /// Materials: lists of (nuclide, number-density).
    pub materials: Vec<Vec<(u32, f64)>>,
}

impl XsData {
    /// Build a data set with `n_nuclides` nuclides of `grid_points`
    /// points each, and a few materials of varying nuclide counts.
    pub fn build(n_nuclides: usize, grid_points: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut nuclides = Vec::with_capacity(n_nuclides);
        for _ in 0..n_nuclides {
            let mut energy: Vec<f64> = (0..grid_points)
                .map(|_| rng.gen_range(1e-11..1.0))
                .collect();
            energy.sort_by(|a, b| a.partial_cmp(b).unwrap());
            energy.dedup();
            let xs = energy
                .iter()
                .map(|_| XsVector {
                    total: rng.gen(),
                    elastic: rng.gen(),
                    absorption: rng.gen(),
                    fission: rng.gen(),
                    nu_fission: rng.gen(),
                })
                .collect();
            nuclides.push(NuclideGrid { energy, xs });
        }
        // Unionized grid = sorted union of all energies.
        let mut unionized: Vec<f64> = nuclides
            .iter()
            .flat_map(|n| n.energy.iter().copied())
            .collect();
        unionized.sort_by(|a, b| a.partial_cmp(b).unwrap());
        unionized.dedup();
        // Index vectors.
        let mut index = vec![0u32; unionized.len() * n_nuclides];
        for (n_i, nuc) in nuclides.iter().enumerate() {
            let mut k = 0usize;
            for (u_i, &e) in unionized.iter().enumerate() {
                while k + 1 < nuc.energy.len() && nuc.energy[k + 1] <= e {
                    k += 1;
                }
                index[u_i * n_nuclides + n_i] = k as u32;
            }
        }
        // Materials: one "fuel" with most nuclides, a few lighter ones.
        let mut materials = Vec::new();
        let fuel: Vec<(u32, f64)> = (0..n_nuclides as u32)
            .map(|n| (n, rng.gen_range(0.01..1.0)))
            .collect();
        materials.push(fuel);
        for size in [n_nuclides / 2, n_nuclides / 4, 2.max(n_nuclides / 8)] {
            let m: Vec<(u32, f64)> = (0..size.max(1) as u32)
                .map(|n| (n % n_nuclides as u32, rng.gen_range(0.01..1.0)))
                .collect();
            materials.push(m);
        }
        XsData {
            nuclides,
            unionized,
            index,
            materials,
        }
    }

    /// Binary search the unionized grid for the last index with
    /// energy ≤ `e` (0 if `e` precedes the grid).
    pub fn unionized_search(&self, e: f64) -> usize {
        match self
            .unionized
            .binary_search_by(|probe| probe.partial_cmp(&e).unwrap())
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Micro XS for nuclide `n` at energy `e`, linearly interpolated.
    pub fn micro_xs(&self, n: u32, grid_idx: usize, e: f64) -> XsVector {
        let nuc = &self.nuclides[n as usize];
        let lo = grid_idx.min(nuc.energy.len() - 1);
        let hi = (lo + 1).min(nuc.energy.len() - 1);
        if hi == lo {
            return nuc.xs[lo];
        }
        let (e0, e1) = (nuc.energy[lo], nuc.energy[hi]);
        let f = if e1 > e0 {
            ((e - e0) / (e1 - e0)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let (a, b) = (nuc.xs[lo], nuc.xs[hi]);
        XsVector {
            total: a.total + f * (b.total - a.total),
            elastic: a.elastic + f * (b.elastic - a.elastic),
            absorption: a.absorption + f * (b.absorption - a.absorption),
            fission: a.fission + f * (b.fission - a.fission),
            nu_fission: a.nu_fission + f * (b.nu_fission - a.nu_fission),
        }
    }

    /// Macroscopic XS for `material` at energy `e`: density-weighted
    /// sum of micro XS over the material's nuclides, located through
    /// the unionized index (the XSBench hot loop).
    pub fn macro_xs(&self, material: usize, e: f64) -> XsVector {
        let u = self.unionized_search(e);
        let n_nuclides = self.nuclides.len();
        let mut acc = XsVector::default();
        for &(n, density) in &self.materials[material] {
            let grid_idx = self.index[u * n_nuclides + n as usize] as usize;
            let micro = self.micro_xs(n, grid_idx, e);
            acc.total += density * micro.total;
            acc.elastic += density * micro.elastic;
            acc.absorption += density * micro.absorption;
            acc.fission += density * micro.fission;
            acc.nu_fission += density * micro.nu_fission;
        }
        acc
    }

    /// Run `n` random lookups; returns a checksum (so the work cannot
    /// be optimized away) and the count performed.
    pub fn run_lookups(&self, n: u64, seed: u64) -> (f64, u64) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut checksum = 0.0;
        for _ in 0..n {
            let e: f64 = rng.gen_range(1e-11..1.0);
            let m = rng.gen_range(0..self.materials.len());
            checksum += self.macro_xs(m, e).total;
        }
        (checksum, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl::MemSetup;

    fn data() -> XsData {
        XsData::build(12, 200, 7)
    }

    #[test]
    fn unionized_grid_is_sorted_union() {
        let d = data();
        assert!(d.unionized.windows(2).all(|w| w[0] < w[1]));
        let total: usize = d.nuclides.iter().map(|n| n.energy.len()).sum();
        assert!(d.unionized.len() <= total);
        assert!(d.unionized.len() >= d.nuclides[0].energy.len());
    }

    #[test]
    fn index_vectors_are_correct() {
        let d = data();
        let nn = d.nuclides.len();
        for (u_i, &e) in d.unionized.iter().enumerate().step_by(37) {
            for (n_i, nuc) in d.nuclides.iter().enumerate() {
                let k = d.index[u_i * nn + n_i] as usize;
                if k == 0 && nuc.energy[0] > e {
                    // e precedes this nuclide's grid: clamped to 0.
                    continue;
                }
                assert!(nuc.energy[k] <= e + 1e-15, "index points past e");
                if k + 1 < nuc.energy.len() {
                    assert!(nuc.energy[k + 1] > e - 1e-15, "index not maximal");
                }
            }
        }
    }

    #[test]
    fn unionized_search_brackets_energy() {
        let d = data();
        for &e in d.unionized.iter().step_by(53) {
            let i = d.unionized_search(e);
            assert!(d.unionized[i] <= e);
        }
        assert_eq!(d.unionized_search(0.0), 0);
        assert_eq!(d.unionized_search(2.0), d.unionized.len() - 1);
    }

    #[test]
    fn interpolation_is_exact_at_grid_points_and_bounded_between() {
        let d = data();
        let nuc = &d.nuclides[0];
        let k = nuc.energy.len() / 2;
        let at_point = d.micro_xs(0, k, nuc.energy[k]);
        assert!((at_point.total - nuc.xs[k].total).abs() < 1e-12);
        // Midpoint lies between neighbours.
        let mid_e = (nuc.energy[k] + nuc.energy[k + 1]) / 2.0;
        let mid = d.micro_xs(0, k, mid_e);
        let (lo, hi) = (
            nuc.xs[k].total.min(nuc.xs[k + 1].total),
            nuc.xs[k].total.max(nuc.xs[k + 1].total),
        );
        assert!(mid.total >= lo - 1e-12 && mid.total <= hi + 1e-12);
    }

    #[test]
    fn macro_xs_is_density_weighted_sum() {
        let d = data();
        // A single-nuclide material reproduces the micro XS scaled.
        let mut d2 = d;
        d2.materials = vec![vec![(3, 2.0)]];
        let e = 0.5;
        let u = d2.unionized_search(e);
        let k = d2.index[u * d2.nuclides.len() + 3] as usize;
        let micro = d2.micro_xs(3, k, e);
        let mac = d2.macro_xs(0, e);
        assert!((mac.total - 2.0 * micro.total).abs() < 1e-12);
    }

    #[test]
    fn lookups_produce_stable_checksum() {
        let d = data();
        let (c1, n1) = d.run_lookups(1000, 99);
        let (c2, n2) = d.run_lookups(1000, 99);
        assert_eq!(n1, n2);
        assert_eq!(c1, c2);
        assert!(c1.is_finite() && c1 > 0.0);
    }

    #[test]
    fn model_matches_fig4e_scale_and_dram_preference() {
        let xs = XsBench::with_footprint(ByteSize::gib_f(5.6));
        let run = |setup| {
            let mut m = Machine::knl7210(setup, 64).unwrap();
            xs.model_lookups_per_sec(&mut m).unwrap()
        };
        let dram = run(MemSetup::DramOnly);
        let hbm = run(MemSetup::HbmOnly);
        assert!(dram > 2.0e6 && dram < 3.5e6, "DRAM lookups/s {dram}");
        assert!(dram > hbm, "DRAM should win at 1 thread/core");
        assert!(hbm / dram > 0.8);
    }

    #[test]
    fn model_90gb_runs_only_on_dram() {
        let xs = XsBench::with_footprint(ByteSize::gib(90));
        let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let d = xs.model_lookups_per_sec(&mut dram).unwrap();
        assert!(d > 1.5e6, "90 GB DRAM rate {d}");
        let mut hbm = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
        assert!(xs.model_lookups_per_sec(&mut hbm).is_err());
        // Larger problems are slower (deeper uncached search).
        let xs_small = XsBench::with_footprint(ByteSize::gib_f(5.6));
        let mut dram2 = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        assert!(xs_small.model_lookups_per_sec(&mut dram2).unwrap() > d);
    }

    #[test]
    fn model_threads_flip_the_winner_fig6d() {
        // §IV-D: at 256 threads HBM (and cache mode) reach ~2.5x and
        // overtake DRAM, which only gains ~1.5x.
        let xs = XsBench::with_footprint(ByteSize::gib_f(5.6));
        let run = |setup, threads| {
            let mut m = Machine::knl7210(setup, threads).unwrap();
            xs.model_lookups_per_sec(&mut m).unwrap()
        };
        let d64 = run(MemSetup::DramOnly, 64);
        let d256 = run(MemSetup::DramOnly, 256);
        let h64 = run(MemSetup::HbmOnly, 64);
        let h256 = run(MemSetup::HbmOnly, 256);
        let c256 = run(MemSetup::CacheMode, 256);
        let d_gain = d256 / d64;
        let h_gain = h256 / h64;
        assert!((1.1..=1.9).contains(&d_gain), "DRAM gain {d_gain}");
        assert!((2.0..=3.2).contains(&h_gain), "HBM gain {h_gain}");
        assert!(h256 > d256, "HBM should overtake DRAM at 256 threads");
        assert!(
            c256 > d256,
            "cache mode should overtake DRAM at 256 threads"
        );
    }
}

//! MiniFE \[13\] — the implicit finite-element proxy application.
//!
//! The performance-critical part is the conjugate-gradient solve over
//! the assembled sparse system (the paper reports "total Mflops in the
//! CG part"). The native path assembles the 27-point (3D structured
//! hexahedral) stiffness-like matrix in CSR form and runs a real CG
//! solver (Rayon-parallel SpMV, axpy, dot) validated on a Poisson
//! problem. The model path prices one CG iteration's traffic — matrix
//! stream, x-vector gather, CG vector sweeps — with the calibrated
//! per-row constants in [`knl::calib`].

use crate::PaperWorkload;
use knl::access::Reuse;
use knl::{calib, Machine, MachineError, StreamOp};
use simfabric::par;
use simfabric::ByteSize;

/// Approximate bytes of footprint per matrix row (CSR + CG vectors).
pub const BYTES_PER_ROW: u64 = 364;

/// A MiniFE problem instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiniFe {
    /// Grid dimension (the problem is nx × nx × nx nodes).
    pub nx: u64,
}

impl MiniFe {
    /// Cubic problem of dimension `nx`.
    pub fn new(nx: u64) -> Self {
        MiniFe { nx: nx.max(2) }
    }

    /// The problem whose matrix+vectors total ≈ `footprint` (Fig. 4b's
    /// x-axis).
    pub fn with_footprint(footprint: ByteSize) -> Self {
        let rows = footprint.as_u64() / BYTES_PER_ROW;
        MiniFe {
            nx: (rows as f64).cbrt().round().max(2.0) as u64,
        }
    }

    /// Number of matrix rows (= grid nodes).
    pub fn rows(&self) -> u64 {
        self.nx * self.nx * self.nx
    }

    /// Model: CG MFLOPS on `machine`.
    pub fn model_cg_mflops(&self, machine: &mut Machine) -> Result<f64, MachineError> {
        let rows = self.rows() as f64;
        let mut regions = machine.alloc_many(&[
            (
                "minife_matrix",
                ByteSize::bytes((rows * calib::MINIFE_MATRIX_BYTES_PER_ROW) as u64),
            ),
            ("minife_vectors", ByteSize::bytes((rows as u64) * 8 * 5)),
        ])?;
        let vectors = regions.pop().expect("two regions");
        let matrix = regions.pop().expect("two regions");
        // The x-vector gather only reaches memory for the part of x
        // the 32-MB aggregate L2 cannot hold: small problems gather
        // entirely from cache, which is why the paper's Fig. 4b
        // improvement line starts low and grows with size.
        let x_bytes = rows * 8.0;
        let l2_total = 32.0 * 1024.0 * 1024.0;
        let gather_miss = (1.0 - (l2_total / x_bytes).min(1.0)).max(0.0);
        // One CG iteration, phase 1: SpMV — matrix stream plus the
        // x-gather, which contends with the matrix for MCDRAM-cache
        // slots (hence one phase).
        let spmv = [
            StreamOp {
                region: matrix.clone(),
                read_bytes: (rows * calib::MINIFE_MATRIX_BYTES_PER_ROW) as u64,
                write_bytes: 0,
                reuse: Reuse::Streaming,
            },
            StreamOp {
                region: vectors.clone(),
                read_bytes: (rows * calib::MINIFE_GATHER_BYTES_PER_ROW * gather_miss) as u64,
                write_bytes: 0,
                reuse: Reuse::Streaming,
            },
        ];
        let t_spmv = machine.price_stream(&spmv);
        // Phase 2: CG vector updates (axpys, dots) — hot, small
        // footprint.
        let vec_bytes = (rows * calib::MINIFE_VECTOR_BYTES_PER_ROW) as u64;
        let vecops = [StreamOp {
            region: vectors.clone(),
            read_bytes: vec_bytes * 2 / 3,
            write_bytes: vec_bytes / 3,
            reuse: Reuse::Streaming,
        }];
        let t_vec = machine.price_stream(&vecops);
        // Non-memory overhead (reductions, loop bookkeeping) shrinks
        // as threads grow, saturating at 2 threads/core.
        let threads = machine.config().threads.min(128) as f64;
        let flops = rows * calib::MINIFE_FLOPS_PER_ROW;
        let overhead_s = flops * calib::MINIFE_COMPUTE_NS_PER_FLOP_64T * (64.0 / threads) * 1e-9;
        let secs = t_spmv.as_secs() + t_vec.as_secs() + overhead_s;
        machine.compute(flops, flops / secs / 1e9);
        machine.release(&matrix)?;
        machine.release(&vectors)?;
        Ok(flops / secs / 1e6)
    }
}

impl PaperWorkload for MiniFe {
    fn name(&self) -> &'static str {
        "MiniFE"
    }

    fn metric(&self) -> &'static str {
        "CG MFLOPS"
    }

    fn footprint(&self) -> ByteSize {
        ByteSize::bytes(self.rows() * BYTES_PER_ROW)
    }

    fn run_model(&self, machine: &mut Machine) -> Result<f64, MachineError> {
        self.model_cg_mflops(machine)
    }
}

// ---------------------------------------------------------------------
// Native kernel: CSR assembly + CG solver
// ---------------------------------------------------------------------

/// A CSR sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Row pointers (len = rows + 1).
    pub row_ptr: Vec<usize>,
    /// Column indices.
    pub cols: Vec<u32>,
    /// Values.
    pub vals: Vec<f64>,
}

impl Csr {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// y = A·x (parallel over rows).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows());
        assert_eq!(y.len(), self.rows());
        par::par_update(y, |i, yi| {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.vals[k] * x[self.cols[k] as usize];
            }
            *yi = acc;
        });
    }
}

/// Assemble the 27-point stencil operator for an nx³ grid: diagonal 26,
/// off-diagonals −1 toward every lattice neighbour (a strictly
/// diagonally dominant M-matrix, so CG converges).
pub fn assemble_27pt(nx: usize) -> Csr {
    let n = nx * nx * nx;
    let idx = |x: usize, y: usize, z: usize| (z * nx + y) * nx + x;
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for z in 0..nx {
        for y in 0..nx {
            for x in 0..nx {
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if xx < 0
                                || yy < 0
                                || zz < 0
                                || xx >= nx as i64
                                || yy >= nx as i64
                                || zz >= nx as i64
                            {
                                continue;
                            }
                            let j = idx(xx as usize, yy as usize, zz as usize);
                            if dx == 0 && dy == 0 && dz == 0 {
                                cols.push(j as u32);
                                vals.push(26.0);
                            } else {
                                cols.push(j as u32);
                                vals.push(-1.0);
                            }
                        }
                    }
                }
                row_ptr.push(cols.len());
            }
        }
    }
    Csr {
        row_ptr,
        cols,
        vals,
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgResult {
    /// Iterations executed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Flops executed (2·nnz + 10·n per iteration, as MiniFE counts).
    pub flops: f64,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    par::par_sum(a.len(), |i| a[i] * b[i])
}

/// Conjugate gradient: solve A·x = b to `tol` or `max_iters`.
pub fn cg_solve(a: &Csr, b: &[f64], x: &mut [f64], tol: f64, max_iters: usize) -> CgResult {
    let n = a.rows();
    let mut r = b.to_vec();
    let mut ap = vec![0.0; n];
    // r = b - A·x
    a.spmv(x, &mut ap);
    par::par_update(&mut r, |i, ri| *ri -= ap[i]);
    let mut p = r.clone();
    let mut rsq = dot(&r, &r);
    let b_norm = dot(b, b).sqrt().max(f64::MIN_POSITIVE);
    let mut iterations = 0;
    while iterations < max_iters && rsq.sqrt() / b_norm > tol {
        a.spmv(&p, &mut ap);
        let alpha = rsq / dot(&p, &ap);
        par::par_update(x, |i, xi| *xi += alpha * p[i]);
        par::par_update(&mut r, |i, ri| *ri -= alpha * ap[i]);
        let rsq_new = dot(&r, &r);
        let beta = rsq_new / rsq;
        par::par_update(&mut p, |i, pi| *pi = r[i] + beta * *pi);
        rsq = rsq_new;
        iterations += 1;
    }
    CgResult {
        iterations,
        residual: rsq.sqrt(),
        flops: iterations as f64 * (2.0 * a.nnz() as f64 + 10.0 * n as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl::MemSetup;

    #[test]
    fn assembly_shape_and_symmetry() {
        let a = assemble_27pt(4);
        assert_eq!(a.rows(), 64);
        // Interior nodes have 27 entries; corners 8.
        let interior = (4 + 1) * 4 + 1; // node (1,1,1)
        assert_eq!(a.row_ptr[interior + 1] - a.row_ptr[interior], 27);
        assert_eq!(a.row_ptr[1] - a.row_ptr[0], 8);
        // Weak diagonal dominance: interior rows sum to exactly zero
        // (26 - 26 neighbours), boundary rows are strictly positive —
        // together with irreducibility this makes the operator SPD.
        for i in 0..a.rows() {
            let sum: f64 = (a.row_ptr[i]..a.row_ptr[i + 1]).map(|k| a.vals[k]).sum();
            assert!(sum >= 0.0, "row {i} sum {sum}");
        }
        let corner_sum: f64 = (a.row_ptr[0]..a.row_ptr[1]).map(|k| a.vals[k]).sum();
        assert!(corner_sum > 0.0, "corner row should be strictly dominant");
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let a = assemble_27pt(3);
        let n = a.rows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; n];
        a.spmv(&x, &mut y);
        // Dense reference.
        for (i, &yi) in y.iter().enumerate().take(n) {
            let mut acc = 0.0;
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                acc += a.vals[k] * x[a.cols[k] as usize];
            }
            assert!((yi - acc).abs() < 1e-12);
        }
    }

    #[test]
    fn cg_converges_and_solves() {
        let a = assemble_27pt(6);
        let n = a.rows();
        // Manufactured solution.
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) / 17.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let res = cg_solve(&a, &b, &mut x, 1e-10, 500);
        assert!(
            res.iterations < 200,
            "CG took {} iterations",
            res.iterations
        );
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "solution error {err}");
        assert!(res.flops > 0.0);
    }

    #[test]
    fn cg_zero_rhs_terminates_immediately() {
        let a = assemble_27pt(3);
        let b = vec![0.0; a.rows()];
        let mut x = vec![0.0; a.rows()];
        let res = cg_solve(&a, &b, &mut x, 1e-8, 100);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn model_fig4b_ordering_and_3x() {
        let m = MiniFe::with_footprint(ByteSize::gib_f(7.2));
        let run = |setup| {
            let mut mac = Machine::knl7210(setup, 64).unwrap();
            m.model_cg_mflops(&mut mac).unwrap()
        };
        let dram = run(MemSetup::DramOnly);
        let hbm = run(MemSetup::HbmOnly);
        let cache = run(MemSetup::CacheMode);
        assert!(
            hbm > cache && cache > dram,
            "hbm {hbm} cache {cache} dram {dram}"
        );
        let ratio = hbm / dram;
        assert!(ratio > 2.6 && ratio < 3.8, "HBM/DRAM {ratio}");
    }

    #[test]
    fn model_cache_gain_decays_to_1_05x_at_twice_capacity() {
        // Fig. 4b: improvement from cache mode drops to ~1.05x when the
        // problem is nearly twice the HBM capacity (28.8 GB).
        let m = MiniFe::with_footprint(ByteSize::gib_f(28.8));
        let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let mut cache = Machine::knl7210(MemSetup::CacheMode, 64).unwrap();
        let d = m.model_cg_mflops(&mut dram).unwrap();
        let c = m.model_cg_mflops(&mut cache).unwrap();
        let imp = c / d;
        assert!(imp > 0.98 && imp < 1.25, "cache improvement {imp}");
        // And HBM cannot hold it at all.
        let mut hbm = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
        assert!(m.model_cg_mflops(&mut hbm).is_err());
    }

    #[test]
    fn model_thread_scaling_fig6b() {
        let m = MiniFe::with_footprint(ByteSize::gib_f(7.2));
        let run = |setup, threads| {
            let mut mac = Machine::knl7210(setup, threads).unwrap();
            m.model_cg_mflops(&mut mac).unwrap()
        };
        let h64 = run(MemSetup::HbmOnly, 64);
        let h192 = run(MemSetup::HbmOnly, 192);
        let gain = h192 / h64;
        assert!(gain > 1.3 && gain < 1.9, "HBM 192/64 gain {gain}");
        // DRAM barely moves.
        let d_gain = run(MemSetup::DramOnly, 192) / run(MemSetup::DramOnly, 64);
        assert!(d_gain < 1.15, "DRAM gain {d_gain}");
        // §I: ~3.8x HBM-vs-DRAM with 4 hardware threads/core.
        let r256 = run(MemSetup::HbmOnly, 256) / run(MemSetup::DramOnly, 256);
        assert!(r256 > 3.0 && r256 < 5.2, "HBM/DRAM at 256 threads {r256}");
    }
}

//! `workloads` — the paper's benchmarks and proxy applications,
//! implemented from scratch (§III-B, Table I).
//!
//! | Module | Application | Type | Access pattern | Metric |
//! |---|---|---|---|---|
//! | [`stream`] | STREAM (triad) | micro | sequential | GB/s |
//! | [`tinymembench`] | TinyMemBench | micro | random chase | ns |
//! | [`dgemm`] | DGEMM | scientific | sequential | GFLOPS |
//! | [`minife`] | MiniFE (CG) | scientific | sequential | CG MFLOPS |
//! | [`gups`] | GUPS | data analytics | random | GUPS |
//! | [`graph500`] | Graph500 (BFS) | data analytics | random | TEPS |
//! | [`xsbench`] | XSBench | scientific | random | lookups/s |
//!
//! Every workload exists in two coupled forms:
//!
//! * a **native kernel** — a real, tested Rust implementation (parallel
//!   with Rayon where the original uses OpenMP) that computes verified
//!   results at laptop scale; and
//! * a **machine-model driver** — the same algorithm's memory behaviour
//!   expressed as [`knl::StreamOp`]/[`knl::RandomOp`] phases against
//!   regions allocated through the simulated KNL, used to reproduce the
//!   paper's figures at full problem sizes (up to 90 GB of *virtual*
//!   footprint; see DESIGN.md on the virtual-footprint substitution).
//!
//! The [`catalog`] module reproduces Table I, and [`PaperWorkload`] is
//! the common interface the experiment harness sweeps over.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod dgemm;
pub mod graph500;
pub mod gups;
pub mod minife;
pub mod native;
pub mod stream;
pub mod tinymembench;
pub mod tracegen;
pub mod xsbench;

use knl::{Machine, MachineError};
use simfabric::ByteSize;

/// Common interface for the five applications of Table I plus the two
/// micro-benchmarks, as swept by the experiment harness.
pub trait PaperWorkload {
    /// Display name ("DGEMM", "Graph500", …).
    fn name(&self) -> &'static str;

    /// Name of the reported metric ("GFLOPS", "TEPS", …).
    fn metric(&self) -> &'static str;

    /// Total memory footprint of this problem instance.
    fn footprint(&self) -> ByteSize;

    /// Run the workload on the machine model and return the metric
    /// (higher is better). `Err(MachineError::Alloc(..))` means the
    /// problem does not fit the machine's memory binding — the paper's
    /// missing-bar case.
    fn run_model(&self, machine: &mut Machine) -> Result<f64, MachineError>;
}

pub use catalog::{catalog, AccessClass, CatalogEntry};
pub use tracegen::TraceKind;

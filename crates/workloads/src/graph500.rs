//! Graph500 \[15\] — breadth-first search over a Kronecker graph.
//!
//! The reference benchmark generates a scale-free Kronecker graph
//! (scale s → 2^s vertices, edge factor 16), runs BFS from 64 random
//! roots, validates each parent tree, and reports the harmonic mean of
//! traversed edges per second (TEPS). The paper uses the v2.1.4
//! OpenMP/CSR reference implementation.
//!
//! The native path implements the full pipeline — generator, CSR
//! builder, level-synchronous parallel BFS with atomic parent claims,
//! and the validator — and is exercised at laptop scales. The model
//! path prices BFS memory behaviour per traversed edge with the
//! calibrated constants in [`knl::calib`].

use crate::PaperWorkload;
use knl::access::RandomOp;
use knl::{calib, Machine, MachineError};
use simfabric::par;
use simfabric::prng::Rng;
use simfabric::ByteSize;
use std::sync::atomic::{AtomicI64, Ordering};

// ---------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------

/// A Graph500 problem instance for the model path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Graph500 {
    /// Total graph footprint in bytes (Fig. 4d's x-axis).
    pub footprint_bytes: u64,
}

impl Graph500 {
    /// Problem with the given footprint.
    pub fn with_footprint(footprint: ByteSize) -> Self {
        Graph500 {
            footprint_bytes: footprint.as_u64(),
        }
    }

    /// Undirected edge count implied by the footprint.
    pub fn edges(&self) -> u64 {
        (self.footprint_bytes as f64 / calib::G500_BYTES_PER_EDGE) as u64
    }

    /// Model: harmonic-mean TEPS on `machine`.
    pub fn model_teps(&self, machine: &mut Machine) -> Result<f64, MachineError> {
        let graph = machine.alloc("graph_csr", ByteSize::bytes(self.footprint_bytes))?;
        let op = RandomOp {
            region: graph.clone(),
            count: self.edges(),
            dependent_depth: calib::G500_DEPS_PER_EDGE,
            mlp_per_thread: calib::G500_MLP_PER_THREAD,
            updates: true, // parent claims dirty the lines
            cpu_ns_per_unit: calib::G500_CPU_NS_PER_EDGE,
        };
        let base = machine.price_random(&op);
        // Load imbalance and atomic contention inflate with thread
        // count; this term places the TEPS peak at 128 threads.
        let t = machine.config().threads as f64 / 64.0;
        let inflation = 1.0 + calib::G500_IMBALANCE_COEFF * t * t * t;
        let total = base.scale(inflation);
        machine.random(&op); // account the traffic
        machine.release(&graph)?;
        Ok(self.edges() as f64 / total.as_secs())
    }
}

impl PaperWorkload for Graph500 {
    fn name(&self) -> &'static str {
        "Graph500"
    }

    fn metric(&self) -> &'static str {
        "TEPS"
    }

    fn footprint(&self) -> ByteSize {
        ByteSize::bytes(self.footprint_bytes)
    }

    fn run_model(&self, machine: &mut Machine) -> Result<f64, MachineError> {
        self.model_teps(machine)
    }
}

// ---------------------------------------------------------------------
// Native pipeline
// ---------------------------------------------------------------------

/// Kronecker (R-MAT) edge generator with the Graph500 reference
/// parameters A=0.57, B=0.19, C=0.19.
pub struct Kronecker {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Kronecker {
    /// Reference-parameter generator.
    pub fn new(scale: u32, seed: u64) -> Self {
        Kronecker {
            scale,
            edge_factor: 16,
            seed,
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Generate the edge list (directed pairs; the CSR builder
    /// symmetrizes).
    pub fn generate(&self) -> Vec<(u32, u32)> {
        let mut rng = Rng::seed_from_u64(self.seed);
        let m = self.vertices() * self.edge_factor as u64;
        let mut edges = Vec::with_capacity(m as usize);
        for _ in 0..m {
            let (mut u, mut v) = (0u64, 0u64);
            for _ in 0..self.scale {
                let r: f64 = rng.gen();
                let (du, dv) = if r < 0.57 {
                    (0, 0)
                } else if r < 0.76 {
                    (0, 1)
                } else if r < 0.95 {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            edges.push((u as u32, v as u32));
        }
        edges
    }
}

/// An undirected graph in CSR form.
///
/// # Example
///
/// ```
/// use workloads::graph500::{Graph, Kronecker};
///
/// let gen = Kronecker::new(8, 42);
/// let g = Graph::from_edges(gen.vertices() as usize, &gen.generate());
/// let root = (0..g.num_vertices() as u32)
///     .find(|&v| !g.neighbors_of(v).is_empty())
///     .unwrap();
/// let parents = g.bfs(root);
/// g.validate_bfs(root, &parents).unwrap();
/// ```
pub struct Graph {
    /// Row offsets, len = n+1.
    pub offsets: Vec<usize>,
    /// Neighbour lists.
    pub neighbors: Vec<u32>,
    /// Undirected input edge count (before symmetrization, self-loops
    /// removed) — the quantity TEPS counts.
    pub input_edges: u64,
}

impl Graph {
    /// Build a CSR from a directed edge list: self-loops dropped,
    /// each edge stored in both directions.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0usize; n];
        let mut kept = 0u64;
        for &(u, v) in edges {
            if u != v {
                degree[u as usize] += 1;
                degree[v as usize] += 1;
                kept += 1;
            }
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; offsets[n]];
        for &(u, v) in edges {
            if u != v {
                neighbors[cursor[u as usize]] = v;
                cursor[u as usize] += 1;
                neighbors[cursor[v as usize]] = u;
                cursor[v as usize] += 1;
            }
        }
        Graph {
            offsets,
            neighbors,
            input_edges: kept,
        }
    }

    /// Vertex count.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbours of `v`.
    pub fn neighbors_of(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Level-synchronous parallel BFS. Returns the parent array
    /// (−1 = unreached; the root is its own parent).
    pub fn bfs(&self, root: u32) -> Vec<i64> {
        let n = self.num_vertices();
        let parents: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
        parents[root as usize].store(root as i64, Ordering::Relaxed);
        let mut frontier = vec![root];
        while !frontier.is_empty() {
            let parents_ref = &parents;
            frontier = par::par_flat_map(&frontier, |&u, next| {
                for &v in self.neighbors_of(u) {
                    // Claim v for parent u; only one thread wins.
                    if parents_ref[v as usize]
                        .compare_exchange(-1, u as i64, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        next.push(v);
                    }
                }
            });
        }
        parents.into_iter().map(AtomicI64::into_inner).collect()
    }

    /// Direction-optimizing BFS (Beamer's algorithm, the strategy the
    /// post-2.1.4 reference adopted): run top-down while the frontier
    /// is small, switch to bottom-up sweeps when the frontier's edge
    /// count grows past `1/alpha` of the unexplored edges. Produces a
    /// valid (possibly different) parent tree with the identical
    /// reached set.
    pub fn bfs_direction_optimizing(&self, root: u32) -> Vec<i64> {
        const ALPHA: usize = 14;
        let n = self.num_vertices();
        let mut parents = vec![-1i64; n];
        parents[root as usize] = root as i64;
        let mut frontier = vec![root];
        let mut in_frontier = vec![false; n];
        in_frontier[root as usize] = true;
        while !frontier.is_empty() {
            let frontier_edges: usize = frontier.iter().map(|&v| self.neighbors_of(v).len()).sum();
            let unexplored_edges: usize = (0..n)
                .filter(|&v| parents[v] < 0)
                .map(|v| self.neighbors_of(v as u32).len())
                .sum();
            let next: Vec<u32> = if frontier_edges * ALPHA > unexplored_edges {
                // Bottom-up: every unreached vertex scans its own
                // neighbours for a frontier member.
                let parents_ro = &parents;
                let in_frontier_ro = &in_frontier;
                par::par_flat_map_range(n, |v, out: &mut Vec<(u32, u32)>| {
                    let v = v as u32;
                    if parents_ro[v as usize] < 0 {
                        if let Some(&w) = self
                            .neighbors_of(v)
                            .iter()
                            .find(|&&w| in_frontier_ro[w as usize])
                        {
                            out.push((v, w));
                        }
                    }
                })
                .into_iter()
                .map(|(v, w)| {
                    parents[v as usize] = w as i64;
                    v
                })
                .collect()
            } else {
                // Top-down (serial claim loop; the atomic variant is
                // `bfs`).
                let mut next = Vec::new();
                for &u in &frontier {
                    for &v in self.neighbors_of(u) {
                        if parents[v as usize] < 0 {
                            parents[v as usize] = u as i64;
                            next.push(v);
                        }
                    }
                }
                next
            };
            for &v in &frontier {
                in_frontier[v as usize] = false;
            }
            for &v in &next {
                in_frontier[v as usize] = true;
            }
            frontier = next;
        }
        parents
    }

    /// Count the input edges with at least one endpoint reached by the
    /// BFS — the edges "traversed" for TEPS purposes (reference
    /// definition: edges in the connected component of the root).
    pub fn traversed_edges(&self, parents: &[i64]) -> u64 {
        let mut count = 0u64;
        for (v, &p) in parents.iter().enumerate().take(self.num_vertices()) {
            if p >= 0 {
                count += self.neighbors_of(v as u32).len() as u64;
            }
        }
        count / 2
    }

    /// Graph500 validation of one BFS tree: the root is its own
    /// parent; every reached vertex's parent is reached and adjacent;
    /// depths are finite (no cycles).
    pub fn validate_bfs(&self, root: u32, parents: &[i64]) -> Result<(), String> {
        if parents.len() != self.num_vertices() {
            return Err("parent array length mismatch".into());
        }
        if parents[root as usize] != root as i64 {
            return Err("root is not its own parent".into());
        }
        // Depth via memoized chase; cycle detection with a step cap.
        let n = self.num_vertices();
        for v in 0..n {
            let p = parents[v];
            if p < 0 || v == root as usize {
                continue;
            }
            let p = p as u32;
            if parents[p as usize] < 0 {
                return Err(format!("vertex {v} has unreached parent {p}"));
            }
            if !self.neighbors_of(p).contains(&(v as u32)) {
                return Err(format!("parent {p} of {v} is not adjacent"));
            }
            // Walk to the root; must terminate within n steps.
            let mut cur = v as u32;
            let mut steps = 0;
            while cur != root {
                cur = parents[cur as usize] as u32;
                steps += 1;
                if steps > n {
                    return Err(format!("cycle in parent chain of {v}"));
                }
            }
        }
        Ok(())
    }

    /// Run BFS from `roots`, validate each tree, and return the
    /// harmonic-mean TEPS using the supplied per-BFS runtimes.
    pub fn teps_harmonic_mean(&self, rates: &[f64]) -> f64 {
        simfabric::stats::harmonic_mean(rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl::MemSetup;

    fn small_graph() -> Graph {
        let gen = Kronecker::new(10, 42);
        Graph::from_edges(gen.vertices() as usize, &gen.generate())
    }

    #[test]
    fn generator_produces_requested_edges_in_range() {
        let gen = Kronecker::new(8, 1);
        let edges = gen.generate();
        assert_eq!(edges.len(), 256 * 16);
        assert!(edges.iter().all(|&(u, v)| u < 256 && v < 256));
    }

    #[test]
    fn kronecker_is_skewed() {
        // Scale-free structure: the max degree far exceeds the mean.
        let g = small_graph();
        let max_deg = (0..g.num_vertices())
            .map(|v| g.neighbors_of(v as u32).len())
            .max()
            .unwrap();
        let mean = g.neighbors.len() / g.num_vertices();
        assert!(max_deg > 5 * mean, "max {max_deg} vs mean {mean}");
    }

    #[test]
    fn csr_is_symmetric() {
        let g = small_graph();
        for v in 0..g.num_vertices() as u32 {
            for &w in g.neighbors_of(v) {
                assert!(
                    g.neighbors_of(w).contains(&v),
                    "edge {v}->{w} missing reverse"
                );
            }
        }
    }

    #[test]
    fn bfs_tree_validates() {
        let g = small_graph();
        // Pick a root with neighbours.
        let root = (0..g.num_vertices() as u32)
            .find(|&v| !g.neighbors_of(v).is_empty())
            .unwrap();
        let parents = g.bfs(root);
        g.validate_bfs(root, &parents).unwrap();
        assert!(g.traversed_edges(&parents) > 0);
    }

    #[test]
    fn bfs_reaches_exactly_the_component() {
        // A hand-built graph: a path 0-1-2 plus an isolated edge 3-4.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let parents = g.bfs(0);
        assert!(parents[0] == 0 && parents[1] >= 0 && parents[2] >= 0);
        assert_eq!(parents[3], -1);
        assert_eq!(parents[4], -1);
        g.validate_bfs(0, &parents).unwrap();
        assert_eq!(g.traversed_edges(&parents), 2);
    }

    #[test]
    fn self_loops_are_dropped() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (1, 2)]);
        assert_eq!(g.input_edges, 2);
        assert_eq!(g.neighbors_of(0), &[1]);
    }

    #[test]
    fn validator_rejects_forged_trees() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut parents = g.bfs(0);
        // Forge: parent not adjacent.
        parents[3] = 0;
        assert!(g.validate_bfs(0, &parents).is_err());
        // Forge: cycle.
        let mut parents = g.bfs(0);
        parents[1] = 2;
        parents[2] = 1;
        assert!(g.validate_bfs(0, &parents).is_err());
    }

    #[test]
    fn direction_optimizing_bfs_matches_top_down_reachability() {
        let g = small_graph();
        let root = (0..g.num_vertices() as u32)
            .find(|&v| !g.neighbors_of(v).is_empty())
            .unwrap();
        let td = g.bfs(root);
        let dopt = g.bfs_direction_optimizing(root);
        g.validate_bfs(root, &dopt).unwrap();
        // Identical reached sets (trees may differ).
        for v in 0..g.num_vertices() {
            assert_eq!(td[v] >= 0, dopt[v] >= 0, "reachability differs at {v}");
        }
        assert_eq!(g.traversed_edges(&td), g.traversed_edges(&dopt));
    }

    #[test]
    fn direction_optimizing_bfs_on_path_graph() {
        // A long path never triggers the bottom-up switch (tiny
        // frontier) — exercise the top-down arm end to end.
        let edges: Vec<(u32, u32)> = (0..63).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(64, &edges);
        let parents = g.bfs_direction_optimizing(0);
        g.validate_bfs(0, &parents).unwrap();
        assert!(parents.iter().all(|&p| p >= 0));
        // The path forces a unique tree.
        for (v, &p) in parents.iter().enumerate().skip(1) {
            assert_eq!(p, v as i64 - 1);
        }
    }

    #[test]
    fn model_matches_fig4d_scale_and_large_size_ordering() {
        let g = Graph500::with_footprint(ByteSize::gib(35));
        let run = |setup| {
            let mut m = Machine::knl7210(setup, 64).unwrap();
            g.model_teps(&mut m).unwrap()
        };
        let dram = run(MemSetup::DramOnly);
        let cache = run(MemSetup::CacheMode);
        assert!(dram > 1.0e8 && dram < 2.5e8, "DRAM TEPS {dram}");
        let ratio = dram / cache;
        assert!(
            ratio > 1.15 && ratio < 1.5,
            "DRAM/cache at 35 GB should be ~1.3x: {ratio}"
        );
        // 35 GB does not fit HBM.
        let mut hbm = Machine::knl7210(MemSetup::HbmOnly, 64).unwrap();
        assert!(g.model_teps(&mut hbm).is_err());
    }

    #[test]
    fn model_small_graphs_show_small_differences() {
        let g = Graph500::with_footprint(ByteSize::gib_f(1.1));
        let run = |setup| {
            let mut m = Machine::knl7210(setup, 64).unwrap();
            g.model_teps(&mut m).unwrap()
        };
        let dram = run(MemSetup::DramOnly);
        let hbm = run(MemSetup::HbmOnly);
        let cache = run(MemSetup::CacheMode);
        for (name, v) in [("hbm", hbm), ("cache", cache)] {
            let rel = (dram - v).abs() / dram;
            assert!(rel < 0.15, "{name} differs from dram by {rel}");
        }
    }

    #[test]
    fn model_thread_scaling_peaks_at_128() {
        let g = Graph500::with_footprint(ByteSize::gib(17));
        let run = |threads| {
            let mut m = Machine::knl7210(MemSetup::DramOnly, threads).unwrap();
            g.model_teps(&mut m).unwrap()
        };
        let t64 = run(64);
        let t128 = run(128);
        let t192 = run(192);
        let t256 = run(256);
        assert!(t128 > t64, "no gain at 128");
        assert!(
            t128 >= t192 && t128 >= t256,
            "peak not at 128: {t64} {t128} {t192} {t256}"
        );
        let gain = t128 / t64;
        assert!(gain > 1.3 && gain < 1.8, "gain at 128 threads {gain}");
    }
}

//! Table I of the paper: the evaluated applications.

use simfabric::ByteSize;

/// Coarse access-pattern classes used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Regular, prefetcher-friendly sweeps — bandwidth-bound.
    Sequential,
    /// Data-dependent scattered accesses — latency-bound.
    Random,
}

impl AccessClass {
    /// Label as printed in Table I.
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::Sequential => "Sequential",
            AccessClass::Random => "Random",
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Application name.
    pub application: &'static str,
    /// "Scientific" or "Data analytics".
    pub app_type: &'static str,
    /// Access pattern class.
    pub pattern: AccessClass,
    /// Largest problem size evaluated (Table I "Max. Scale").
    pub max_scale: ByteSize,
}

/// Table I, verbatim.
pub fn catalog() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            application: "DGEMM",
            app_type: "Scientific",
            pattern: AccessClass::Sequential,
            max_scale: ByteSize::gib(24),
        },
        CatalogEntry {
            application: "MiniFE",
            app_type: "Scientific",
            pattern: AccessClass::Sequential,
            max_scale: ByteSize::gib(30),
        },
        CatalogEntry {
            application: "GUPS",
            app_type: "Data analytics",
            pattern: AccessClass::Random,
            max_scale: ByteSize::gib(32),
        },
        CatalogEntry {
            application: "Graph500",
            app_type: "Data analytics",
            pattern: AccessClass::Random,
            max_scale: ByteSize::gib(35),
        },
        CatalogEntry {
            application: "XSBench",
            app_type: "Scientific",
            pattern: AccessClass::Random,
            max_scale: ByteSize::gib(90),
        },
    ]
}

/// Render Table I as aligned text.
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<15} {:<14} {:>10}\n",
        "Application", "Type", "Access Pattern", "Max. Scale"
    ));
    for e in catalog() {
        out.push_str(&format!(
            "{:<10} {:<15} {:<14} {:>7} GB\n",
            e.application,
            e.app_type,
            e.pattern.label(),
            e.max_scale.as_u64() >> 30,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_applications_as_in_table1() {
        let c = catalog();
        assert_eq!(c.len(), 5);
        let names: Vec<_> = c.iter().map(|e| e.application).collect();
        assert_eq!(names, ["DGEMM", "MiniFE", "GUPS", "Graph500", "XSBench"]);
    }

    #[test]
    fn patterns_match_table1() {
        for e in catalog() {
            let expect = match e.application {
                "DGEMM" | "MiniFE" => AccessClass::Sequential,
                _ => AccessClass::Random,
            };
            assert_eq!(e.pattern, expect, "{}", e.application);
        }
    }

    #[test]
    fn max_scales_match_table1() {
        let sizes: Vec<u64> = catalog()
            .iter()
            .map(|e| e.max_scale.as_u64() >> 30)
            .collect();
        assert_eq!(sizes, [24, 30, 32, 35, 90]);
    }

    #[test]
    fn xsbench_exceeds_dram_minus_hbm() {
        // The 90-GB XSBench cannot fit HBM and barely fits DDR — the
        // reason Fig. 4e's red bars stop early.
        let xs = &catalog()[4];
        assert!(xs.max_scale > ByteSize::gib(16));
        assert!(xs.max_scale < ByteSize::gib(96));
    }

    #[test]
    fn render_contains_all_rows() {
        let t = render_table1();
        for e in catalog() {
            assert!(t.contains(e.application));
        }
        assert!(t.contains("Sequential") && t.contains("Random"));
    }
}

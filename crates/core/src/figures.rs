//! The figure/table registry: one constructor per table and figure in
//! the paper's evaluation section, each returning the data the paper
//! plots. DESIGN.md's per-experiment index maps each entry here.

use crate::experiment::{AppSpec, Measurement, Series, SizeSweep, ThreadSweep};
use knl::{calib, MemSetup};
use memdev::{ddr4_knl, mcdram_knl};
use numamem::numactl::table2_panel;
use numamem::NumaTopology;
use workloads::catalog::render_table1;

/// One reproduced figure (or numeric table panel).
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Identifier matching the paper ("fig2", "fig4a", "table2", …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Data series.
    pub series: Vec<Series>,
    /// Pre-rendered text for table-style entries (empty otherwise).
    pub text: String,
}

impl FigureData {
    fn plot(id: &str, title: &str, x: &str, y: &str, series: Vec<Series>) -> Self {
        FigureData {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x.to_string(),
            y_label: y.to_string(),
            series,
            text: String::new(),
        }
    }
}

/// Table I: the evaluated applications.
pub fn table1() -> FigureData {
    FigureData {
        id: "table1".into(),
        title: "List of Evaluated Applications".into(),
        x_label: String::new(),
        y_label: String::new(),
        series: vec![],
        text: render_table1(),
    }
}

/// Table II: NUMA distances in flat and cache mode.
pub fn table2() -> FigureData {
    let text = format!(
        "[flat mode]\n{}\n[cache mode]\n{}",
        table2_panel(&NumaTopology::knl_flat()),
        table2_panel(&NumaTopology::knl_cache())
    );
    FigureData {
        id: "table2".into(),
        title: "NUMA distances reported by numactl --hardware".into(),
        x_label: String::new(),
        y_label: String::new(),
        series: vec![],
        text,
    }
}

/// Fig. 2: STREAM triad bandwidth vs data size under the three memory
/// configurations.
pub fn fig2() -> FigureData {
    let sizes = vec![
        2.0, 4.0, 6.0, 8.0, 10.0, 11.4, 12.0, 14.0, 16.0, 18.0, 20.0, 22.8, 24.0, 28.0, 32.0, 36.0,
        40.0, 44.0,
    ];
    let series = SizeSweep::paper(AppSpec::Stream, sizes).run();
    FigureData::plot(
        "fig2",
        "Peak bandwidth measured by STREAM (triad)",
        "Size (GB)",
        "Bandwidth (GB/s)",
        series,
    )
}

/// Fig. 3: dual random read latency vs block size (DRAM and HBM) plus
/// the performance-gap series.
pub fn fig3() -> FigureData {
    let tlb = cachesim::tlb::TlbConfig::knl_4k();
    let ddr = ddr4_knl();
    let hbm = mcdram_knl();
    let blocks = workloads::tinymembench::fig3_block_sizes();
    let mk = |spec: &memdev::MemDeviceSpec| -> Vec<Measurement> {
        blocks
            .iter()
            .map(|&b| Measurement {
                x: b.as_mib(),
                value: Some(knl::dual_random_read_latency(spec, b, &tlb).as_ns()),
            })
            .collect()
    };
    let gap: Vec<Measurement> = blocks
        .iter()
        .map(|&b| Measurement {
            x: b.as_mib(),
            value: Some(knl::latency::latency_gap_percent(&ddr, &hbm, b, &tlb)),
        })
        .collect();
    FigureData::plot(
        "fig3",
        "Dual random read latency (TinyMemBench)",
        "Block Size (MiB)",
        "Latency (ns) / Gap (%)",
        vec![
            Series {
                label: "DRAM".into(),
                points: mk(&ddr),
            },
            Series {
                label: "HBM".into(),
                points: mk(&hbm),
            },
            Series {
                label: "Performance Gap (%)".into(),
                points: gap,
            },
        ],
    )
}

/// Fig. 4a: DGEMM GFLOPS vs array size.
pub fn fig4a() -> FigureData {
    let series = SizeSweep::paper(AppSpec::Dgemm, vec![0.1, 0.4, 1.5, 6.0, 24.0]).run();
    FigureData::plot("fig4a", "DGEMM", "Array Size (GB)", "GFLOPS", series)
}

/// Fig. 4b: MiniFE CG MFLOPS vs matrix size, with the speedup lines.
pub fn fig4b() -> FigureData {
    let sizes = vec![0.1, 0.9, 1.8, 3.6, 7.2, 14.4, 28.8];
    let series = SizeSweep::paper(AppSpec::MiniFe, sizes.clone()).run();
    let mut out = series;
    // Derived improvement lines, as on the figure's right axis.
    let dram: Vec<Option<f64>> = sizes
        .iter()
        .map(|&s| out.iter().find(|x| x.label == "DRAM").unwrap().value_at(s))
        .collect();
    for (label, src) in [
        ("Speedup by HBM w.r.t. DRAM", "HBM"),
        ("Speedup by Cache w.r.t. DRAM", "Cache Mode"),
    ] {
        let pts = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| Measurement {
                x: s,
                value: out
                    .iter()
                    .find(|x| x.label == src)
                    .unwrap()
                    .value_at(s)
                    .zip(dram[i])
                    .map(|(v, d)| v / d),
            })
            .collect();
        out.push(Series {
            label: label.into(),
            points: pts,
        });
    }
    FigureData::plot("fig4b", "MiniFE", "Matrix Size (GB)", "CG MFLOPS", out)
}

/// Fig. 4c: GUPS vs table size.
pub fn fig4c() -> FigureData {
    let series = SizeSweep::paper(AppSpec::Gups, vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0]).run();
    FigureData::plot("fig4c", "GUPS", "Table Size (GB)", "GUPS", series)
}

/// Fig. 4d: Graph500 TEPS vs graph size.
pub fn fig4d() -> FigureData {
    let series = SizeSweep::paper(AppSpec::Graph500, vec![1.1, 2.2, 4.4, 8.8, 17.5, 35.0]).run();
    FigureData::plot("fig4d", "Graph500", "Graph Size (GB)", "TEPS", series)
}

/// Fig. 4e: XSBench lookups/s vs problem size.
pub fn fig4e() -> FigureData {
    let series = SizeSweep::paper(AppSpec::XsBench, vec![5.6, 11.3, 22.5, 45.0, 90.0]).run();
    FigureData::plot("fig4e", "XSBench", "Problem Size (GB)", "Lookups/s", series)
}

/// Fig. 5: STREAM bandwidth vs data size for 1–4 hardware threads per
/// core, DRAM and HBM.
pub fn fig5() -> FigureData {
    let sizes = [2.0, 4.0, 6.0, 8.0, 10.0];
    let mut series = Vec::new();
    for setup in [MemSetup::DramOnly, MemSetup::HbmOnly] {
        for ht in 1..=calib::MAX_HT {
            let threads = 64 * ht;
            let sweep = SizeSweep {
                app: AppSpec::Stream,
                sizes_gb: sizes.to_vec(),
                threads,
                setups: vec![setup],
            };
            let mut got = sweep.run();
            let mut s = got.remove(0);
            s.label = format!("{} (ht = {ht})", setup.label());
            series.push(s);
        }
    }
    FigureData::plot(
        "fig5",
        "Impact of hardware threads on STREAM bandwidth",
        "Size (GB)",
        "Bandwidth (GB/s)",
        series,
    )
}

fn fig6(app: AppSpec, size_gb: f64, id: &str, y: &str) -> FigureData {
    let series = ThreadSweep::paper(app, size_gb).run();
    FigureData::plot(id, app.name(), "No. of Threads", y, series)
}

/// Fig. 6a: DGEMM vs thread count (256-thread runs fail, as in the
/// paper).
pub fn fig6a() -> FigureData {
    fig6(AppSpec::Dgemm, 6.0, "fig6a", "GFLOPS")
}

/// Fig. 6b: MiniFE vs thread count.
pub fn fig6b() -> FigureData {
    fig6(AppSpec::MiniFe, 7.2, "fig6b", "CG MFLOPS")
}

/// Fig. 6c: Graph500 vs thread count.
pub fn fig6c() -> FigureData {
    fig6(AppSpec::Graph500, 8.8, "fig6c", "TEPS")
}

/// Fig. 6d: XSBench vs thread count.
pub fn fig6d() -> FigureData {
    fig6(AppSpec::XsBench, 5.6, "fig6d", "Lookups/s")
}

/// Every reproduced table and figure, in paper order.
pub fn all_figures() -> Vec<FigureData> {
    vec![
        table1(),
        table2(),
        fig2(),
        fig3(),
        fig4a(),
        fig4b(),
        fig4c(),
        fig4d(),
        fig4e(),
        fig5(),
        fig6a(),
        fig6b(),
        fig6c(),
        fig6d(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_text_matches_paper_layout() {
        let t = table2();
        assert!(t.text.contains("Distances: 0 (96 GB) 1 (16 GB)"));
        assert!(t.text.contains("0 10 31"));
        assert!(t.text.contains("[cache mode]\nDistances: 0 (96 GB)"));
    }

    #[test]
    fn fig2_has_three_configs_and_hbm_cutoff() {
        let f = fig2();
        assert_eq!(f.series.len(), 3);
        let hbm = f.series.iter().find(|s| s.label == "HBM").unwrap();
        assert!(hbm.value_at(8.0).is_some());
        assert!(hbm.value_at(18.0).is_none());
    }

    #[test]
    fn fig3_gap_series_present() {
        let f = fig3();
        assert_eq!(f.series.len(), 3);
        let gap = &f.series[2];
        // All gaps beyond the L2 tier between 10 and 22 percent.
        for p in gap.points.iter().filter(|p| p.x >= 2.0) {
            let g = p.value.unwrap();
            assert!((10.0..=22.0).contains(&g), "gap {g} at {} MiB", p.x);
        }
    }

    #[test]
    fn fig4b_includes_speedup_lines() {
        let f = fig4b();
        assert!(f.series.iter().any(|s| s.label.contains("Speedup by HBM")));
        assert!(f
            .series
            .iter()
            .any(|s| s.label.contains("Speedup by Cache")));
        let hbm_speedup = f
            .series
            .iter()
            .find(|s| s.label.contains("Speedup by HBM"))
            .unwrap();
        let v = hbm_speedup.value_at(7.2).unwrap();
        assert!(v > 2.5 && v < 4.0, "HBM speedup at 7.2 GB: {v}");
    }

    #[test]
    fn fig5_has_eight_series() {
        let f = fig5();
        assert_eq!(f.series.len(), 8);
        // DRAM lines overlap; HBM ht≥2 exceeds ht=1.
        let h1 = f.series.iter().find(|s| s.label == "HBM (ht = 1)").unwrap();
        let h2 = f.series.iter().find(|s| s.label == "HBM (ht = 2)").unwrap();
        let r = h2.value_at(6.0).unwrap() / h1.value_at(6.0).unwrap();
        assert!((r - 1.27).abs() < 0.06, "ht2/ht1 {r}");
    }

    #[test]
    fn all_figures_ids_are_unique_and_complete() {
        let figs = all_figures();
        let ids: Vec<&str> = figs.iter().map(|f| f.id.as_str()).collect();
        let expected = [
            "table1", "table2", "fig2", "fig3", "fig4a", "fig4b", "fig4c", "fig4d", "fig4e",
            "fig5", "fig6a", "fig6b", "fig6c", "fig6d",
        ];
        assert_eq!(ids, expected);
    }
}

//! Reporters: render figures as aligned text tables and CSV.

use crate::experiment::{Series, TraceReplay};
use crate::figures::FigureData;
use std::fmt::Write as _;

fn fmt_value(v: Option<f64>) -> String {
    match v {
        None => "-".to_string(),
        Some(v) => {
            if v == 0.0 {
                "0".into()
            } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
                format!("{v:.3e}")
            } else if v.abs() >= 100.0 {
                format!("{v:.1}")
            } else if v.abs() < 0.1 {
                format!("{v:.4}")
            } else {
                format!("{v:.3}")
            }
        }
    }
}

/// Render a figure as an aligned text table (x column + one column per
/// series), or its pre-rendered text for table-style entries.
pub fn render_figure(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} [{}] ==", fig.title, fig.id);
    if !fig.text.is_empty() {
        out.push_str(&fig.text);
        return out;
    }
    // Header.
    let mut widths = vec![fig.x_label.len().max(8)];
    for s in &fig.series {
        widths.push(s.label.len().max(10));
    }
    let _ = write!(out, "{:>w$}", fig.x_label, w = widths[0]);
    for (s, w) in fig.series.iter().zip(widths.iter().skip(1)) {
        let _ = write!(out, "  {:>w$}", s.label, w = w);
    }
    out.push('\n');
    // Rows keyed by the first series' x values.
    if let Some(first) = fig.series.first() {
        for p in &first.points {
            let _ = write!(out, "{:>w$}", fmt_value(Some(p.x)), w = widths[0]);
            for (s, w) in fig.series.iter().zip(widths.iter().skip(1)) {
                let _ = write!(out, "  {:>w$}", fmt_value(s.value_at(p.x)), w = w);
            }
            out.push('\n');
        }
    }
    let _ = writeln!(out, "({})", fig.y_label);
    out
}

/// Render trace-replay results as an aligned text table (one row per
/// generator × setup).
pub fn render_trace_replays(rows: &[TraceReplay]) -> String {
    let mut out = String::from(
        "== Trace replay (sharded parallel engine) ==\n\
         workload    setup       accesses  mem-acc  avg-lat(ns)  bandwidth(GB/s)\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10}  {:<10}  {:>8}  {:>7}  {:>11.1}  {:>15.2}",
            r.kind.name(),
            r.setup.label(),
            r.report.accesses,
            r.report.memory_accesses,
            r.report.avg_latency.as_ns(),
            r.report.bandwidth_gbs,
        );
    }
    out
}

/// Render series as CSV: `x,label1,label2,...` rows.
pub fn series_csv(series: &[Series]) -> String {
    let mut out = String::from("x");
    for s in series {
        let _ = write!(out, ",{}", s.label.replace(',', ";"));
    }
    out.push('\n');
    if let Some(first) = series.first() {
        for p in &first.points {
            let _ = write!(out, "{}", p.x);
            for s in series {
                match s.value_at(p.x) {
                    Some(v) => {
                        let _ = write!(out, ",{v}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Measurement;

    fn sample() -> Vec<Series> {
        vec![
            Series {
                label: "DRAM".into(),
                points: vec![
                    Measurement {
                        x: 1.0,
                        value: Some(77.0),
                    },
                    Measurement {
                        x: 2.0,
                        value: Some(77.5),
                    },
                ],
            },
            Series {
                label: "HBM".into(),
                points: vec![
                    Measurement {
                        x: 1.0,
                        value: Some(330.0),
                    },
                    Measurement {
                        x: 2.0,
                        value: None,
                    },
                ],
            },
        ]
    }

    #[test]
    fn csv_renders_missing_as_empty() {
        let csv = series_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,DRAM,HBM");
        assert_eq!(lines[1], "1,77,330");
        assert_eq!(lines[2], "2,77.5,");
    }

    #[test]
    fn table_render_contains_all_labels_and_dashes() {
        let fig = FigureData {
            id: "t".into(),
            title: "Test".into(),
            x_label: "Size".into(),
            y_label: "GB/s".into(),
            series: sample(),
            text: String::new(),
        };
        let txt = render_figure(&fig);
        assert!(txt.contains("DRAM"));
        assert!(txt.contains("HBM"));
        assert!(txt.contains('-'), "missing value should render as dash");
        assert!(txt.contains("(GB/s)"));
    }

    #[test]
    fn prerendered_text_passthrough() {
        let fig = FigureData {
            id: "table2".into(),
            title: "T2".into(),
            x_label: String::new(),
            y_label: String::new(),
            series: vec![],
            text: "Distances: ...\n".into(),
        };
        assert!(render_figure(&fig).contains("Distances: ..."));
    }

    #[test]
    fn value_formatting_scales() {
        assert_eq!(fmt_value(Some(1.5e8)), "1.500e8");
        assert_eq!(fmt_value(Some(330.4)), "330.4");
        assert_eq!(fmt_value(Some(1.06e-2)), "0.0106");
        assert_eq!(fmt_value(Some(0.0)), "0");
        assert_eq!(fmt_value(None), "-");
    }
}

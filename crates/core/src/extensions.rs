//! Extensions beyond the paper's measurements, built on the same
//! machinery:
//!
//! * **Hybrid mode** (§II, described but not evaluated — changing the
//!   partition needs a BIOS reboot): [`ext_hybrid_stream`] sweeps the
//!   MCDRAM partition ratio.
//! * **Interleaved flat mode** (§IV-C mentions interleaving as the way
//!   to run problems larger than either memory):
//!   [`ext_interleaved_stream`].
//! * **Multi-node decomposition** (§IV-C: "the optimal setup is to
//!   decompose the problem so that each compute node is assigned a
//!   sub-problem with a size close to the HBM capacity"):
//!   [`decompose`] turns that sentence into a model-backed plan.

use crate::experiment::{Measurement, Series};
use crate::figures::FigureData;
use knl::access::Reuse;
use knl::{Machine, MachineConfig, MemSetup, StreamOp};
use simfabric::ByteSize;
use workloads::AccessClass;

fn stream_bw(mut machine: Machine, size: ByteSize) -> Option<f64> {
    let r = machine.alloc("s", size).ok()?;
    let d = machine.price_stream(&[StreamOp {
        region: r.clone(),
        read_bytes: size.as_u64() * 2 / 3,
        write_bytes: size.as_u64() / 3,
        reuse: Reuse::Streaming,
    }]);
    Some(size.as_u64() as f64 / 1e9 / d.as_secs())
}

/// STREAM bandwidth vs size with hybrid-mode partitions next to the
/// paper's configurations — the figure the paper could not produce.
pub fn ext_hybrid_stream() -> FigureData {
    let sizes = [4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 30.0, 36.0, 44.0];
    let mut series = Vec::new();
    // Baselines.
    for setup in [MemSetup::DramOnly, MemSetup::CacheMode] {
        series.push(Series {
            label: setup.label().to_string(),
            points: sizes
                .iter()
                .map(|&gb| Measurement {
                    x: gb,
                    value: stream_bw(Machine::knl7210(setup, 64).unwrap(), ByteSize::gib_f(gb)),
                })
                .collect(),
        });
    }
    // Hybrid partitions (cache fraction 25/50/75 %).
    for pct in [25u32, 50, 75] {
        series.push(Series {
            label: format!("Hybrid ({pct}% cache)"),
            points: sizes
                .iter()
                .map(|&gb| Measurement {
                    x: gb,
                    value: stream_bw(
                        Machine::new(MachineConfig::knl7210_hybrid(pct as f64 / 100.0, 64))
                            .unwrap(),
                        ByteSize::gib_f(gb),
                    ),
                })
                .collect(),
        });
    }
    FigureData {
        id: "ext-hybrid".into(),
        title: "Extension: STREAM under hybrid MCDRAM partitions".into(),
        x_label: "Size (GB)".into(),
        y_label: "Bandwidth (GB/s)".into(),
        series,
        text: String::new(),
    }
}

/// STREAM bandwidth vs size with page-interleaved flat mode next to
/// the paper's configurations.
pub fn ext_interleaved_stream() -> FigureData {
    let sizes = [4.0, 8.0, 16.0, 24.0, 32.0, 44.0];
    let mut series = Vec::new();
    for setup in [
        MemSetup::DramOnly,
        MemSetup::CacheMode,
        MemSetup::Interleaved,
    ] {
        series.push(Series {
            label: setup.label().to_string(),
            points: sizes
                .iter()
                .map(|&gb| Measurement {
                    x: gb,
                    value: stream_bw(Machine::knl7210(setup, 64).unwrap(), ByteSize::gib_f(gb)),
                })
                .collect(),
        });
    }
    FigureData {
        id: "ext-interleave".into(),
        title: "Extension: STREAM with page-interleaved flat mode".into(),
        x_label: "Size (GB)".into(),
        y_label: "Bandwidth (GB/s)".into(),
        series,
        text: String::new(),
    }
}

/// Memory energy per streamed gigabyte under each configuration — the
/// data-movement-energy extension (the paper motivates HBM partly via
/// the energy cost of data movement, citing Kestor et al. \[3\]).
pub fn ext_energy_stream() -> FigureData {
    let sizes = [4.0, 8.0, 16.0, 24.0, 32.0, 44.0];
    let model = knl::EnergyModel::knl();
    let mut series = Vec::new();
    for setup in [MemSetup::DramOnly, MemSetup::HbmOnly, MemSetup::CacheMode] {
        series.push(Series {
            label: setup.label().to_string(),
            points: sizes
                .iter()
                .map(|&gb| {
                    let size = ByteSize::gib_f(gb);
                    let value = Machine::knl7210(setup, 64).ok().and_then(|mut m| {
                        let r = m.alloc("s", size).ok()?;
                        m.stream(&[StreamOp {
                            region: r.clone(),
                            read_bytes: size.as_u64(),
                            write_bytes: 0,
                            reuse: Reuse::Streaming,
                        }]);
                        Some(m.energy(&model).total_joules() / size.as_gib())
                    });
                    Measurement { x: gb, value }
                })
                .collect(),
        });
    }
    FigureData {
        id: "ext-energy".into(),
        title: "Extension: memory energy per streamed GiB".into(),
        x_label: "Size (GB)".into(),
        y_label: "Joules / GiB".into(),
        series,
        text: String::new(),
    }
}

/// A multi-node decomposition plan (§IV-C turned into code).
#[derive(Debug, Clone, PartialEq)]
pub struct DecompositionPlan {
    /// Total problem size.
    pub total: ByteSize,
    /// Recommended number of nodes.
    pub nodes: u32,
    /// Per-node sub-problem size.
    pub per_node: ByteSize,
    /// Recommended per-node memory setup.
    pub setup: MemSetup,
    /// Model-predicted per-node speedup vs running the whole problem
    /// on one node in the best single-node configuration.
    pub speedup_vs_single_node: f64,
    /// Explanation.
    pub rationale: String,
}

/// Plan a multi-node decomposition of a `total`-sized problem with the
/// given access pattern, assuming good parallel efficiency across
/// nodes (the paper's premise).
///
/// For bandwidth-bound applications the plan sizes each sub-problem to
/// (90 % of) the HBM capacity so every node runs HBM-resident; for
/// latency-bound applications extra nodes buy nothing memory-wise, so
/// one node (DRAM) is recommended per memory-capacity constraint only.
pub fn decompose(total: ByteSize, pattern: AccessClass, max_nodes: u32) -> DecompositionPlan {
    let hbm = ByteSize::gib(16);
    let ddr = ByteSize::gib(96);
    let target = ByteSize::bytes(hbm.as_u64() * 9 / 10);
    match pattern {
        AccessClass::Sequential => {
            let nodes =
                (total.as_u64().div_ceil(target.as_u64()) as u32).clamp(1, max_nodes.max(1));
            let per_node = ByteSize::bytes(total.as_u64() / nodes as u64);
            let fits_hbm = per_node <= hbm;
            let setup = if fits_hbm {
                MemSetup::HbmOnly
            } else {
                MemSetup::CacheMode
            };
            // Per-node rate with the decomposition vs the whole problem
            // on one node (best feasible single-node config).
            let rate_decomposed =
                stream_bw(Machine::knl7210(setup, 128).unwrap(), per_node).unwrap_or(0.0);
            let single_setup = if total <= hbm {
                MemSetup::HbmOnly
            } else {
                MemSetup::CacheMode
            };
            let rate_single = stream_bw(
                Machine::knl7210(single_setup, 128).unwrap(),
                ByteSize::bytes(total.as_u64().min(ddr.as_u64())),
            )
            .unwrap_or(1.0);
            DecompositionPlan {
                total,
                nodes,
                per_node,
                setup,
                speedup_vs_single_node: rate_decomposed / rate_single,
                rationale: format!(
                    "bandwidth-bound: {nodes} node(s) put each {per_node} sub-problem \
                     {} MCDRAM (§IV-C: size sub-problems close to the HBM capacity)",
                    if fits_hbm { "inside" } else { "near" }
                ),
            }
        }
        AccessClass::Random => {
            // Latency-bound work gains nothing from MCDRAM; nodes are
            // only needed for capacity.
            let nodes = (total.as_u64().div_ceil(ddr.as_u64()) as u32).clamp(1, max_nodes.max(1));
            let per_node = ByteSize::bytes(total.as_u64() / nodes as u64);
            DecompositionPlan {
                total,
                nodes,
                per_node,
                setup: MemSetup::DramOnly,
                speedup_vs_single_node: 1.0,
                rationale: "latency-bound: MCDRAM does not help (§IV-B); use the fewest \
                            nodes whose DDR holds the problem and bind to DRAM"
                    .into(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_figure_orders_as_expected_at_30gb() {
        let f = ext_hybrid_stream();
        let at = |label: &str, x: f64| {
            f.series
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .value_at(x)
                .unwrap()
        };
        // At 30 GB the low-cache partitions (big flat slice) beat both
        // pure cache mode and pure DRAM; even the 75%-cache partition
        // still beats pure cache mode.
        let dram = at("DRAM", 30.0);
        let cache = at("Cache Mode", 30.0);
        for pct in [25, 50] {
            let h = at(&format!("Hybrid ({pct}% cache)"), 30.0);
            assert!(
                h > dram && h > cache,
                "{pct}%: {h} vs dram {dram} cache {cache}"
            );
        }
        let h75 = at("Hybrid (75% cache)", 30.0);
        assert!(h75 > cache, "75%: {h75} vs cache {cache}");
        // At 8 GB, pure cache mode (full 16-GB cache) beats a 25%-cache
        // hybrid whose flat partition cannot hold the problem... the
        // flat partition *can* hold 12 GB at 25% cache: hybrid wins.
        let h25 = at("Hybrid (25% cache)", 8.0);
        assert!(h25 > cache * 0.9);
    }

    #[test]
    fn interleave_sits_between_dram_and_hbm_and_covers_large_sizes() {
        let f = ext_interleaved_stream();
        let il = f.series.iter().find(|s| s.label == "Interleaved").unwrap();
        let dram = f.series.iter().find(|s| s.label == "DRAM").unwrap();
        // Interleave at 44 GB still works (either memory alone could
        // not hold it in a bind) and beats DRAM-only.
        let v = il.value_at(44.0).unwrap();
        assert!(v > dram.value_at(44.0).unwrap());
    }

    #[test]
    fn energy_figure_orders_devices() {
        let f = ext_energy_stream();
        let at = |label: &str, x: f64| {
            f.series
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .value_at(x)
        };
        // HBM streams cost ~2.75x less energy per byte.
        let d = at("DRAM", 8.0).unwrap();
        let h = at("HBM", 8.0).unwrap();
        assert!(d / h > 2.0, "dram {d} vs hbm {h}");
        // Cache-mode overflow pays both devices: most expensive.
        let c = at("Cache Mode", 44.0).unwrap();
        assert!(c > at("DRAM", 44.0).unwrap(), "cache {c}");
        // HBM series stops at capacity.
        assert!(at("HBM", 24.0).is_none());
    }

    #[test]
    fn decompose_streams_to_hbm_sized_chunks() {
        let plan = decompose(ByteSize::gib(140), AccessClass::Sequential, 64);
        assert!(plan.nodes >= 9 && plan.nodes <= 11, "nodes {}", plan.nodes);
        assert!(plan.per_node <= ByteSize::gib(16));
        assert_eq!(plan.setup, MemSetup::HbmOnly);
        assert!(
            plan.speedup_vs_single_node > 2.0,
            "{}",
            plan.speedup_vs_single_node
        );
    }

    #[test]
    fn decompose_respects_node_budget() {
        let plan = decompose(ByteSize::gib(140), AccessClass::Sequential, 4);
        assert_eq!(plan.nodes, 4);
        assert!(plan.per_node > ByteSize::gib(16));
        assert_eq!(plan.setup, MemSetup::CacheMode);
    }

    #[test]
    fn decompose_random_minimizes_nodes() {
        let plan = decompose(ByteSize::gib(90), AccessClass::Random, 64);
        assert_eq!(plan.nodes, 1);
        assert_eq!(plan.setup, MemSetup::DramOnly);
        let plan = decompose(ByteSize::gib(200), AccessClass::Random, 64);
        assert_eq!(plan.nodes, 3);
        assert_eq!(plan.setup, MemSetup::DramOnly);
    }
}

//! The paper's published numbers, transcribed, and a point-by-point
//! comparison against the model.
//!
//! Values come from the paper's text where stated exactly (latencies,
//! plateaus, ratios) and are read off the figures elsewhere (marked
//! `FromFigure`, read to the nearest gridline — treat those as ±10 %).
//! `comparison_report` prints paper vs model vs relative deviation for
//! every transcribed point; EXPERIMENTS.md is the curated version of
//! this output.

use crate::figures;

/// Where a transcribed value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Stated numerically in the paper's text.
    Stated,
    /// Read off a figure (±10 % transcription error).
    FromFigure,
}

/// One transcribed reference point.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperPoint {
    /// Figure/table the value comes from.
    pub figure: &'static str,
    /// Series within the figure ("DRAM", "HBM", "Cache Mode", or a
    /// described quantity).
    pub series: &'static str,
    /// X coordinate in the figure's units (GB or threads); NaN for
    /// scalar quantities.
    pub x: f64,
    /// The paper's value.
    pub paper_value: f64,
    /// Source fidelity.
    pub provenance: Provenance,
    /// What the number is (units).
    pub what: &'static str,
}

/// Every number transcribed from the paper.
pub fn paper_reference() -> Vec<PaperPoint> {
    use Provenance::*;
    vec![
        // §IV-A stated values.
        PaperPoint {
            figure: "latency",
            series: "DRAM",
            x: f64::NAN,
            paper_value: 130.4,
            provenance: Stated,
            what: "idle latency (ns)",
        },
        PaperPoint {
            figure: "latency",
            series: "HBM",
            x: f64::NAN,
            paper_value: 154.0,
            provenance: Stated,
            what: "idle latency (ns)",
        },
        // Fig. 2 stated values.
        PaperPoint {
            figure: "fig2",
            series: "DRAM",
            x: 8.0,
            paper_value: 77.0,
            provenance: Stated,
            what: "STREAM triad (GB/s)",
        },
        PaperPoint {
            figure: "fig2",
            series: "HBM",
            x: 8.0,
            paper_value: 330.0,
            provenance: Stated,
            what: "STREAM triad (GB/s)",
        },
        PaperPoint {
            figure: "fig2",
            series: "Cache Mode",
            x: 8.0,
            paper_value: 260.0,
            provenance: Stated,
            what: "STREAM triad (GB/s)",
        },
        PaperPoint {
            figure: "fig2",
            series: "Cache Mode",
            x: 11.4,
            paper_value: 125.0,
            provenance: Stated,
            what: "STREAM triad (GB/s)",
        },
        // Fig. 5 stated.
        PaperPoint {
            figure: "fig5",
            series: "HBM ht2/ht1",
            x: f64::NAN,
            paper_value: 1.27,
            provenance: Stated,
            what: "bandwidth ratio",
        },
        PaperPoint {
            figure: "fig5",
            series: "HBM max",
            x: f64::NAN,
            paper_value: 420.0,
            provenance: Stated,
            what: "bandwidth (GB/s)",
        },
        // Fig. 4a read off the figure.
        PaperPoint {
            figure: "fig4a",
            series: "DRAM",
            x: 24.0,
            paper_value: 300.0,
            provenance: FromFigure,
            what: "GFLOPS",
        },
        PaperPoint {
            figure: "fig4a",
            series: "HBM",
            x: 6.0,
            paper_value: 600.0,
            provenance: FromFigure,
            what: "GFLOPS",
        },
        PaperPoint {
            figure: "fig4a",
            series: "HBM/DRAM",
            x: 6.0,
            paper_value: 2.0,
            provenance: Stated,
            what: "speedup",
        },
        // Fig. 4b.
        PaperPoint {
            figure: "fig4b",
            series: "HBM/DRAM",
            x: 7.2,
            paper_value: 3.0,
            provenance: Stated,
            what: "speedup",
        },
        PaperPoint {
            figure: "fig4b",
            series: "Cache/DRAM",
            x: 28.8,
            paper_value: 1.05,
            provenance: Stated,
            what: "speedup",
        },
        // Fig. 4c.
        PaperPoint {
            figure: "fig4c",
            series: "DRAM",
            x: 8.0,
            paper_value: 1.08e-2,
            provenance: FromFigure,
            what: "GUPS",
        },
        // Fig. 4d.
        PaperPoint {
            figure: "fig4d",
            series: "DRAM",
            x: 8.8,
            paper_value: 1.7e8,
            provenance: FromFigure,
            what: "TEPS",
        },
        PaperPoint {
            figure: "fig4d",
            series: "DRAM/Cache",
            x: 35.0,
            paper_value: 1.3,
            provenance: Stated,
            what: "speedup",
        },
        // Fig. 4e.
        PaperPoint {
            figure: "fig4e",
            series: "DRAM",
            x: 5.6,
            paper_value: 2.8e6,
            provenance: FromFigure,
            what: "lookups/s",
        },
        // Fig. 6 stated ratios.
        PaperPoint {
            figure: "fig6a",
            series: "HBM 192/64",
            x: f64::NAN,
            paper_value: 1.7,
            provenance: Stated,
            what: "speedup",
        },
        PaperPoint {
            figure: "fig6d",
            series: "HBM 256/64",
            x: f64::NAN,
            paper_value: 2.5,
            provenance: Stated,
            what: "speedup",
        },
        PaperPoint {
            figure: "fig6d",
            series: "DRAM 256/64",
            x: f64::NAN,
            paper_value: 1.5,
            provenance: Stated,
            what: "speedup",
        },
    ]
}

/// A compared point.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The reference point.
    pub point: PaperPoint,
    /// The model's value for the same quantity.
    pub model_value: f64,
    /// Relative deviation `(model - paper) / paper`.
    pub rel_dev: f64,
}

fn series_value(fig: &crate::figures::FigureData, series: &str, x: f64) -> Option<f64> {
    fig.series
        .iter()
        .find(|s| s.label == series)
        .and_then(|s| s.value_at(x))
}

/// Evaluate the model for every transcribed paper point.
pub fn compare_with_model() -> Vec<Comparison> {
    let fig2 = figures::fig2();
    let fig4a = figures::fig4a();
    let fig4b = figures::fig4b();
    let fig4c = figures::fig4c();
    let fig4d = figures::fig4d();
    let fig4e = figures::fig4e();
    let fig5 = figures::fig5();
    let fig6a = figures::fig6a();
    let fig6d = figures::fig6d();
    let model_for = |p: &PaperPoint| -> Option<f64> {
        match (p.figure, p.series) {
            ("latency", "DRAM") => Some(memdev::ddr4_knl().idle_latency.as_ns()),
            ("latency", "HBM") => Some(memdev::mcdram_knl().idle_latency.as_ns()),
            ("fig2", s) => series_value(&fig2, s, p.x),
            ("fig4a", "HBM/DRAM") => {
                Some(series_value(&fig4a, "HBM", p.x)? / series_value(&fig4a, "DRAM", p.x)?)
            }
            ("fig4a", s) => series_value(&fig4a, s, p.x),
            ("fig4b", "HBM/DRAM") => {
                Some(series_value(&fig4b, "HBM", p.x)? / series_value(&fig4b, "DRAM", p.x)?)
            }
            ("fig4b", "Cache/DRAM") => {
                Some(series_value(&fig4b, "Cache Mode", p.x)? / series_value(&fig4b, "DRAM", p.x)?)
            }
            ("fig4c", s) => series_value(&fig4c, s, p.x),
            ("fig4d", "DRAM/Cache") => {
                Some(series_value(&fig4d, "DRAM", p.x)? / series_value(&fig4d, "Cache Mode", p.x)?)
            }
            ("fig4d", s) => series_value(&fig4d, s, p.x),
            ("fig4e", s) => series_value(&fig4e, s, p.x),
            ("fig5", "HBM ht2/ht1") => Some(
                series_value(&fig5, "HBM (ht = 2)", 6.0)?
                    / series_value(&fig5, "HBM (ht = 1)", 6.0)?,
            ),
            ("fig5", "HBM max") => series_value(&fig5, "HBM (ht = 2)", 6.0),
            ("fig6a", "HBM 192/64") => {
                Some(series_value(&fig6a, "HBM", 192.0)? / series_value(&fig6a, "HBM", 64.0)?)
            }
            ("fig6d", "HBM 256/64") => {
                Some(series_value(&fig6d, "HBM", 256.0)? / series_value(&fig6d, "HBM", 64.0)?)
            }
            ("fig6d", "DRAM 256/64") => {
                Some(series_value(&fig6d, "DRAM", 256.0)? / series_value(&fig6d, "DRAM", 64.0)?)
            }
            _ => None,
        }
    };
    paper_reference()
        .into_iter()
        .filter_map(|p| {
            let model_value = model_for(&p)?;
            let rel_dev = (model_value - p.paper_value) / p.paper_value;
            Some(Comparison {
                point: p,
                model_value,
                rel_dev,
            })
        })
        .collect()
}

/// Render the comparison as an aligned table.
pub fn render_comparison(comparisons: &[Comparison]) -> String {
    let mut out =
        String::from("figure   series            x        paper        model     dev    source\n");
    for c in comparisons {
        let x = if c.point.x.is_nan() {
            "-".to_string()
        } else {
            format!("{}", c.point.x)
        };
        out.push_str(&format!(
            "{:<8} {:<16} {:>5} {:>12.4} {:>12.4} {:>+6.1}%  {}\n",
            c.point.figure,
            c.point.series,
            x,
            c.point.paper_value,
            c.model_value,
            c.rel_dev * 100.0,
            match c.point.provenance {
                Provenance::Stated => "stated",
                Provenance::FromFigure => "figure",
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reference_point_has_a_model_value() {
        let refs = paper_reference();
        let cmp = compare_with_model();
        assert_eq!(
            refs.len(),
            cmp.len(),
            "some transcribed points were not evaluated"
        );
    }

    #[test]
    fn stated_values_are_matched_tightly() {
        // Quantities the paper states numerically must be reproduced
        // within 15 % (they are what the model is calibrated to).
        for c in compare_with_model() {
            if c.point.provenance == Provenance::Stated {
                assert!(
                    c.rel_dev.abs() < 0.15,
                    "{} {} deviates {:+.1}% (paper {}, model {})",
                    c.point.figure,
                    c.point.series,
                    c.rel_dev * 100.0,
                    c.point.paper_value,
                    c.model_value
                );
            }
        }
    }

    #[test]
    fn figure_read_values_are_matched_loosely() {
        // Figure-read values carry transcription error: within 40 %.
        for c in compare_with_model() {
            if c.point.provenance == Provenance::FromFigure {
                assert!(
                    c.rel_dev.abs() < 0.4,
                    "{} {} deviates {:+.1}%",
                    c.point.figure,
                    c.point.series,
                    c.rel_dev * 100.0
                );
            }
        }
    }

    #[test]
    fn report_renders_all_rows() {
        let cmp = compare_with_model();
        let r = render_comparison(&cmp);
        assert_eq!(r.lines().count(), cmp.len() + 1);
        assert!(r.contains("stated"));
        assert!(r.contains("figure"));
    }
}

//! The placement-guidelines advisor.
//!
//! §VI of the paper: "Our study provides guidelines for selecting
//! suitable memory allocation based on application characteristic and
//! problem to solve." This module turns those guidelines into code: an
//! application profile goes in, a memory-configuration recommendation
//! with a model-predicted speedup comes out.

use crate::sweep::{replay_point, TraceSpec};
use knl::access::{RandomOp, Region, Reuse, StreamOp};
use knl::tracesim::{TracePlacement, TraceSimReport};
use knl::{Machine, MachineConfig, MemSetup};
use simfabric::ByteSize;
use workloads::AccessClass;

/// What the advisor needs to know about an application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Display name, used in the rationale.
    pub name: String,
    /// Dominant access pattern.
    pub pattern: AccessClass,
    /// Memory footprint of the target problem.
    pub footprint: ByteSize,
    /// Whether the code scales to multiple hardware threads per core
    /// (affects whether HBM latency can be hidden, §IV-D).
    pub can_use_hyperthreads: bool,
}

/// The advisor's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Recommended memory configuration.
    pub setup: MemSetup,
    /// Recommended OpenMP thread count.
    pub threads: u32,
    /// Model-predicted speedup relative to DRAM-only at 64 threads.
    pub expected_speedup: f64,
    /// Why.
    pub rationale: String,
}

fn proxy_region(machine: &mut Machine, footprint: ByteSize) -> Option<Region> {
    machine.alloc("advisor_proxy", footprint).ok()
}

/// Model-predicted throughput (arbitrary units) of a synthetic proxy
/// with the profile's pattern under a given configuration; `None` if
/// the footprint cannot be placed.
fn proxy_rate(profile: &AppProfile, setup: MemSetup, threads: u32) -> Option<f64> {
    let mut machine = Machine::knl7210(setup, threads).ok()?;
    let region = proxy_region(&mut machine, profile.footprint)?;
    Some(match profile.pattern {
        AccessClass::Sequential => {
            let ops = [StreamOp {
                region: region.clone(),
                read_bytes: region.size().as_u64(),
                write_bytes: region.size().as_u64() / 3,
                reuse: Reuse::Streaming,
            }];
            let d = machine.price_stream(&ops);
            region.size().as_u64() as f64 / d.as_secs()
        }
        AccessClass::Random => machine.random_rate(&RandomOp::probes(&region, 1_000_000)),
    })
}

/// Produce a recommendation for `profile`.
///
/// # Example
///
/// ```
/// use hybridmem::{advise, AppProfile};
/// use knl::MemSetup;
/// use simfabric::ByteSize;
/// use workloads::AccessClass;
///
/// let rec = advise(&AppProfile {
///     name: "stencil".into(),
///     pattern: AccessClass::Sequential,
///     footprint: ByteSize::gib(8),
///     can_use_hyperthreads: true,
/// });
/// assert_eq!(rec.setup, MemSetup::HbmOnly);
/// ```
pub fn advise(profile: &AppProfile) -> Recommendation {
    let threads_options: &[u32] = if profile.can_use_hyperthreads {
        &[64, 128, 192, 256]
    } else {
        &[64]
    };
    let baseline =
        proxy_rate(profile, MemSetup::DramOnly, 64).expect("DRAM-only baseline must fit (96 GB)");
    let mut best: Option<(MemSetup, u32, f64)> = None;
    for setup in [MemSetup::DramOnly, MemSetup::HbmOnly, MemSetup::CacheMode] {
        for &t in threads_options {
            if let Some(rate) = proxy_rate(profile, setup, t) {
                if best.is_none_or(|(_, _, r)| rate > r) {
                    best = Some((setup, t, rate));
                }
            }
        }
    }
    let (setup, threads, rate) = best.expect("at least the baseline ran");
    let speedup = rate / baseline;
    let fits_hbm = profile.footprint <= ByteSize::gib(16);
    let rationale = match (profile.pattern, setup) {
        (AccessClass::Sequential, MemSetup::HbmOnly) => format!(
            "{} is bandwidth-bound and fits MCDRAM: bind it to the HBM node \
             (numactl --membind=1) for the full 4x bandwidth advantage.",
            profile.name
        ),
        (AccessClass::Sequential, MemSetup::CacheMode) => format!(
            "{} is bandwidth-bound but exceeds the 16-GB MCDRAM: cache mode \
             captures part of the bandwidth advantage without code changes.",
            profile.name
        ),
        (AccessClass::Sequential, _) => format!(
            "{} is bandwidth-bound but far exceeds MCDRAM ({}), where the \
             direct-mapped cache thrashes: plain DRAM is fastest.",
            profile.name, profile.footprint
        ),
        (AccessClass::Random, MemSetup::DramOnly) => format!(
            "{} is latency-bound; MCDRAM's ~18% higher latency makes DRAM \
             (numactl --membind=0) the best home for its data.",
            profile.name
        ),
        (AccessClass::Random, _) => format!(
            "{} is latency-bound, but with {} threads the extra hardware \
             threads hide MCDRAM latency and its bandwidth wins (§IV-D).",
            profile.name, threads
        ),
    };
    let _ = fits_hbm;
    Recommendation {
        setup,
        threads,
        expected_speedup: speedup,
        rationale,
    }
}

/// One placement candidate of a replayed advisor query.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedCandidate {
    /// Display label of the placement.
    pub label: String,
    /// Whether the placement fits a fast tier of `budget` bytes
    /// (all-HBM does not; it is reported as the upper bound).
    pub fits_budget: bool,
    /// The replay report.
    pub report: TraceSimReport,
}

/// The verdict of a replayed advisor query.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedAdvice {
    /// The trace the query replayed (the spec's canonical label).
    pub trace: String,
    /// Thread count the recommendation is issued for (echoed from the
    /// query; the trace replay itself is per-core).
    pub threads: u32,
    /// Every candidate, fixed order: DDR, split, cache, migrated,
    /// HBM (the unconstrained bound last).
    pub candidates: Vec<ReplayedCandidate>,
    /// Index of the fastest budget-fitting candidate.
    pub best: usize,
    /// Makespan speedup of the best candidate over all-DDR.
    pub speedup_vs_ddr: f64,
}

impl ReplayedAdvice {
    /// The recommended candidate.
    pub fn recommended(&self) -> &ReplayedCandidate {
        &self.candidates[self.best]
    }
}

/// The largest power of two at or below `n` (0 for 0).
fn prev_power_of_two(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        1 << (63 - n.leading_zeros())
    }
}

/// Migration rebalance period (accesses) used by
/// [`advise_replayed`]'s `Migrated` candidate when the caller has no
/// opinion; [`advise_replayed_query`] takes it as a parameter.
pub const DEFAULT_MIGRATE_PERIOD: u64 = 4_096;

/// The pure query function behind the advisor service: replay `spec`
/// against every placement that fits a `budget`-sized fast tier —
/// all-DDR, a boundary split, cache mode, periodic migration with
/// period `migrate_period` and a `budget`-page move budget — plus
/// unconstrained all-HBM as the upper bound, and recommend the
/// fastest fitting one. Everything that can change the answer is in
/// the argument list (that is the service's `QueryKey` contract);
/// equal arguments produce bit-identical advice.
///
/// Repeated queries are what the classify-once engine exists for: the
/// flat placements (DDR, split, migrated, HBM) share one classified
/// artifact and cache mode a second, both served from the global
/// cache — so a follow-up query over the same trace (a different
/// budget, say) replays without classifying anything.
pub fn advise_replayed_query(
    spec: &TraceSpec,
    budget: ByteSize,
    threads: u32,
    migrate_period: u64,
) -> ReplayedAdvice {
    let flat = MachineConfig::knl7210(MemSetup::DramOnly, threads);
    let cache = MachineConfig::knl7210(MemSetup::CacheMode, threads);
    let msc = ByteSize::mib(8);
    let budget_pages = (budget.as_u64() / memkind_sim::migrate::PAGE_BYTES).max(1) as u32;
    // The memory-side cache is direct-mapped over power-of-two slots,
    // so the cache-mode candidate gets the largest power-of-two
    // capacity that fits the budget (never below one 64 B line).
    let cache_capacity = ByteSize::bytes(prev_power_of_two(budget.as_u64()).max(64));
    let candidates: Vec<ReplayedCandidate> = [
        (
            "DDR (flat)".to_string(),
            &flat,
            TracePlacement::AllDdr,
            msc,
            true,
        ),
        (
            format!("split@{}KiB", budget.as_u64() >> 10),
            &flat,
            TracePlacement::SplitAt(budget.as_u64()),
            msc,
            true,
        ),
        (
            format!("cache({}KiB)", cache_capacity.as_u64() >> 10),
            &cache,
            TracePlacement::AllDdr,
            cache_capacity,
            true,
        ),
        (
            format!("migrated(T={migrate_period})"),
            &flat,
            TracePlacement::Migrated(memkind_sim::MigrationSpec::new(
                migrate_period,
                budget_pages,
            )),
            msc,
            true,
        ),
        (
            "HBM (flat, unconstrained)".to_string(),
            &flat,
            TracePlacement::AllHbm,
            msc,
            false,
        ),
    ]
    .into_iter()
    .map(
        |(label, cfg, placement, msc, fits_budget)| ReplayedCandidate {
            label,
            fits_budget,
            report: replay_point(spec, cfg, placement, msc).1,
        },
    )
    .collect();
    let best = candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.fits_budget)
        .min_by_key(|(i, c)| (c.report.makespan, *i))
        .map(|(i, _)| i)
        .expect("budget-fitting candidates exist");
    let ddr = candidates[0].report.makespan.as_ps() as f64;
    let speedup_vs_ddr = ddr / candidates[best].report.makespan.as_ps() as f64;
    ReplayedAdvice {
        trace: spec.label().to_string(),
        threads,
        candidates,
        best,
        speedup_vs_ddr,
    }
}

/// The advisor-as-a-service form of [`advise`] at its defaults: 64
/// threads, [`DEFAULT_MIGRATE_PERIOD`]. See [`advise_replayed_query`]
/// for the full parameter set the service canonicalizes over.
pub fn advise_replayed(spec: &TraceSpec, budget: ByteSize) -> ReplayedAdvice {
    advise_replayed_query(spec, budget, 64, DEFAULT_MIGRATE_PERIOD)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(pattern: AccessClass, gib: u64, ht: bool) -> AppProfile {
        AppProfile {
            name: "app".into(),
            pattern,
            footprint: ByteSize::gib(gib),
            can_use_hyperthreads: ht,
        }
    }

    #[test]
    fn streaming_fitting_app_goes_to_hbm() {
        let r = advise(&profile(AccessClass::Sequential, 8, true));
        assert_eq!(r.setup, MemSetup::HbmOnly);
        assert!(r.expected_speedup > 3.0, "speedup {}", r.expected_speedup);
        assert!(r.rationale.contains("membind=1"));
    }

    #[test]
    fn streaming_oversized_app_goes_to_cache_mode() {
        let r = advise(&profile(AccessClass::Sequential, 20, false));
        assert_eq!(r.setup, MemSetup::CacheMode);
        assert!(r.expected_speedup > 1.0);
    }

    #[test]
    fn streaming_huge_app_stays_on_dram() {
        let r = advise(&profile(AccessClass::Sequential, 40, false));
        assert_eq!(r.setup, MemSetup::DramOnly);
        assert!((r.expected_speedup - 1.0).abs() < 1e-9);
        assert!(r.rationale.contains("thrashes"));
    }

    #[test]
    fn random_app_without_hyperthreads_stays_on_dram() {
        let r = advise(&profile(AccessClass::Random, 8, false));
        assert_eq!(r.setup, MemSetup::DramOnly);
        assert_eq!(r.threads, 64);
    }

    #[test]
    fn random_app_with_hyperthreads_may_flip_to_hbm() {
        // §IV-D: with 4 threads/core, HBM's concurrency wins for
        // independent random access.
        let r = advise(&profile(AccessClass::Random, 8, true));
        assert!(r.threads > 64, "should recommend hyper-threading");
        assert!(r.expected_speedup > 1.0);
    }

    #[test]
    fn replayed_advice_covers_placements_and_repeated_queries_share_artifacts() {
        use workloads::tracegen::TraceKind;
        let spec = TraceSpec::from_kind(TraceKind::Stream, 4, 400, 0xAD51);
        let first = advise_replayed(&spec, ByteSize::kib(256));
        assert_eq!(first.candidates.len(), 5);
        assert_eq!(first.trace, spec.label());
        assert_eq!(first.threads, 64);
        assert!(first.candidates[first.best].fits_budget);
        assert!(first.speedup_vs_ddr >= 1.0 - 1e-12);
        assert!(
            first.candidates[3].label.starts_with("migrated(T="),
            "periodic migration must be in the candidate set"
        );
        assert!(!first.candidates[4].fits_budget, "all-HBM is the bound");
        // A second query over the same trace reuses the flat artifact
        // for all four flat placements (migration included — placement
        // never classifies); only the cache-mode point rebuilds,
        // because a new budget resizes the memory-side cache and so
        // changes its classify signature (key invalidation).
        let before = knl::with_global_classify_cache(|c| c.stats());
        let second = advise_replayed(&spec, ByteSize::kib(512));
        let after = knl::with_global_classify_cache(|c| c.stats());
        if crate::sweep::sweep_reuse_enabled() {
            assert_eq!(
                after.misses - before.misses,
                1,
                "only the resized cache-mode artifact may rebuild"
            );
            assert!(after.hits - before.hits >= 4, "flat placements must hit");
        }
        // Same trace, same DDR baseline either way.
        assert_eq!(
            first.candidates[0].report, second.candidates[0].report,
            "all-DDR is budget-independent"
        );
    }
}

//! The Cori-style migration tuning sweep — the dynamic-placement
//! experiment the paper could not run.
//!
//! The paper measures only *static* placements (DDR-only, HBM-only,
//! cache mode). Its discussion, and the follow-up heterogeneous
//! memory-pool tuning work, point at the interesting regime: a small
//! fast tier plus periodic hot-page migration, where the migration
//! period `T` is the tuning knob. This module runs that sweep on the
//! trace simulator:
//!
//! * the workload is [`HotColdSource`] — phased hot blocks that no
//!   static boundary split can capture, plus cold random noise;
//! * the *static* baselines are every placement that fits the same
//!   MCDRAM budget: all-DDR, a boundary split of `budget` bytes, and
//!   cache mode with a `budget`-sized memory-side cache (all-HBM is
//!   also reported as the unconstrained upper bound);
//! * the *migrated* runs sweep `T` through
//!   [`TracePlacement::Migrated`], pricing every page move through the
//!   scheduler's cost model and the bytes-moved energy through
//!   [`EnergyReport::with_migration`].
//!
//! The interesting result — pinned by `tests/migration_golden.rs` —
//! is the crossover: at intermediate `T` the migrated run beats every
//! static placement that fits the budget, while tiny `T` thrashes on
//! migration overhead and huge `T` degenerates to all-DDR.

use crate::experiment::{Measurement, Series};
use crate::figures::FigureData;
use crate::sweep::{replay_point, TraceSpec};
use knl::tracesim::{TracePlacement, TraceSim, TraceSimReport};
use knl::{EnergyModel, EnergyReport, MachineConfig, MemSetup};
use memkind_sim::migrate::{MigrationSpec, MigrationStats, PAGE_BYTES};
use simfabric::ByteSize;
use workloads::tracegen::HotColdSource;

/// Parameters of one migration `T`-sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationSweepConfig {
    /// Simulated cores.
    pub cores: u32,
    /// Hot-block phases in the trace.
    pub phases: u32,
    /// Accesses per core per phase.
    pub accesses_per_core_per_phase: u64,
    /// Hot-block size per phase, bytes.
    pub hot_bytes: u64,
    /// Cold-region size, bytes.
    pub cold_bytes: u64,
    /// Trace seed.
    pub seed: u64,
    /// MCDRAM budget, in 4-KiB pages (also sizes the cache-mode
    /// baseline's memory-side cache).
    pub budget_pages: u32,
    /// Migration periods to sweep, in accesses.
    pub periods: Vec<u64>,
}

impl MigrationSweepConfig {
    /// Repro scale: the configuration `repro migrate` runs. Each of
    /// the four phases streams a fresh 1-MiB hot block (exactly the
    /// 256-page budget) with 10% cold noise over 64 MiB.
    pub fn cori() -> Self {
        MigrationSweepConfig {
            cores: 32,
            phases: 4,
            accesses_per_core_per_phase: 32_768,
            hot_bytes: 1 << 20,
            cold_bytes: 64 << 20,
            seed: 0xC021,
            budget_pages: 256,
            periods: vec![1_024, 8_192, 65_536, 262_144, 1_048_576, 4_194_304],
        }
    }

    /// Tiny fixed-seed configuration for the byte-exact golden test:
    /// same shape, two orders of magnitude fewer accesses.
    pub fn golden() -> Self {
        MigrationSweepConfig {
            cores: 4,
            phases: 3,
            accesses_per_core_per_phase: 2_048,
            hot_bytes: 128 << 10,
            cold_bytes: 8 << 20,
            seed: 0xC021,
            budget_pages: 32,
            periods: vec![128, 1_024, 8_192, 24_576],
        }
    }

    /// MCDRAM budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_pages as u64 * PAGE_BYTES
    }

    /// Total trace length in accesses.
    pub fn total_accesses(&self) -> u64 {
        self.cores as u64 * self.phases as u64 * self.accesses_per_core_per_phase
    }

    /// The sweep's workload as a [`TraceSpec`], so every point —
    /// statics, cache mode, and all migrated periods — replays one
    /// classified artifact per hierarchy config instead of
    /// regenerating and re-classifying the stream per point.
    pub fn trace_spec(&self) -> TraceSpec {
        let (cores, phases, per, hot, cold, seed) = (
            self.cores,
            self.phases,
            self.accesses_per_core_per_phase,
            self.hot_bytes,
            self.cold_bytes,
            self.seed,
        );
        TraceSpec::new(
            format!("hotcold:{cores}x{phases}x{per}:hot={hot}:cold={cold}:seed={seed:#x}"),
            cores,
            move || Box::new(HotColdSource::new(cores, phases, per, hot, cold, seed)),
        )
    }
}

/// One static baseline of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticPoint {
    /// Display label.
    pub label: String,
    /// Whether this placement fits the sweep's MCDRAM budget (all-HBM
    /// does not; it is the unconstrained upper bound).
    pub fits_budget: bool,
    /// Replay report.
    pub report: TraceSimReport,
    /// Priced memory energy.
    pub energy: EnergyReport,
}

/// One migrated point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MigratedPoint {
    /// Migration period, in accesses.
    pub period: u64,
    /// Replay report.
    pub report: TraceSimReport,
    /// Scheduler counters (moves, bytes, digest).
    pub stats: MigrationStats,
    /// Priced memory energy including the bytes moved.
    pub energy: EnergyReport,
}

/// A complete `T`-sweep: statics plus one migrated point per period.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationSweep {
    /// The configuration that produced it.
    pub config: MigrationSweepConfig,
    /// Static baselines, fixed order: DDR, split, cache, HBM.
    pub statics: Vec<StaticPoint>,
    /// Migrated runs, in `config.periods` order.
    pub migrated: Vec<MigratedPoint>,
}

impl MigrationSweep {
    /// The best (lowest-makespan) migrated point.
    pub fn best_migrated(&self) -> &MigratedPoint {
        self.migrated
            .iter()
            .min_by_key(|p| (p.report.makespan, p.period))
            .expect("sweep has at least one period")
    }

    /// The best static placement that fits the budget.
    pub fn best_static_fitting(&self) -> &StaticPoint {
        self.statics
            .iter()
            .filter(|s| s.fits_budget)
            .min_by(|a, b| {
                a.report
                    .makespan
                    .cmp(&b.report.makespan)
                    .then(a.label.cmp(&b.label))
            })
            .expect("sweep has budget-fitting statics")
    }

    /// Speedup of the best migrated point over the best budget-fitting
    /// static placement (> 1 means migration wins).
    pub fn crossover_speedup(&self) -> f64 {
        let stat = self.best_static_fitting().report.makespan.as_ps() as f64;
        let mig = self.best_migrated().report.makespan.as_ps() as f64;
        stat / mig
    }
}

fn run_flat(cfg: &MigrationSweepConfig, placement: TracePlacement) -> (TraceSim, TraceSimReport) {
    let mcfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    replay_point(&cfg.trace_spec(), &mcfg, placement, ByteSize::mib(8))
}

fn run_cache(cfg: &MigrationSweepConfig) -> (TraceSim, TraceSimReport) {
    let mcfg = MachineConfig::knl7210(MemSetup::CacheMode, 64);
    replay_point(
        &cfg.trace_spec(),
        &mcfg,
        TracePlacement::AllDdr,
        ByteSize::bytes(cfg.budget_bytes()),
    )
}

fn price(sim: &TraceSim, moved_bytes: u64) -> EnergyReport {
    let model = EnergyModel::knl();
    let ddr_bytes = sim.ddr_stats().total() * 64;
    let hbm_bytes = sim.hbm_stats().total() * 64;
    EnergyReport::with_migration(
        &model,
        ddr_bytes as f64,
        hbm_bytes as f64,
        moved_bytes as f64,
    )
}

/// Run the full sweep: four static baselines, then one migrated run
/// per period. Every flat point (statics and all migrated periods)
/// replays one shared classified artifact, and cache mode a second —
/// classification runs twice where it used to run `3 + periods` times.
/// Bit-identical to regenerating per point (the classified-equivalence
/// suite pins it), so the sweep itself needs no engine knob.
pub fn run_migration_sweep(cfg: &MigrationSweepConfig) -> MigrationSweep {
    let mut statics = Vec::new();
    let budget = cfg.budget_bytes();
    let flat_statics = [
        ("DDR (flat)".to_string(), TracePlacement::AllDdr, true),
        (
            format!("split@{}KiB", budget >> 10),
            TracePlacement::SplitAt(budget),
            true,
        ),
        (
            "HBM (flat, unconstrained)".to_string(),
            TracePlacement::AllHbm,
            false,
        ),
    ];
    for (label, placement, fits_budget) in flat_statics {
        let (sim, report) = run_flat(cfg, placement);
        statics.push(StaticPoint {
            label,
            fits_budget,
            energy: price(&sim, 0),
            report,
        });
    }
    let (sim, report) = run_cache(cfg);
    statics.insert(
        2,
        StaticPoint {
            label: format!("cache({}KiB)", budget >> 10),
            fits_budget: true,
            energy: price(&sim, 0),
            report,
        },
    );
    let migrated = cfg
        .periods
        .iter()
        .map(|&period| {
            let spec = MigrationSpec::new(period, cfg.budget_pages);
            let (sim, report) = run_flat(cfg, TracePlacement::Migrated(spec));
            let stats = sim.migration_stats().expect("migration scheduler active");
            MigratedPoint {
                period,
                energy: price(&sim, stats.bytes_moved),
                report,
                stats,
            }
        })
        .collect();
    MigrationSweep {
        config: cfg.clone(),
        statics,
        migrated,
    }
}

/// Render the sweep as a deterministic text table (the form the golden
/// test pins byte-exact).
pub fn render_migration_sweep(sweep: &MigrationSweep) -> String {
    let cfg = &sweep.config;
    let mut out = String::new();
    out.push_str(&format!(
        "Migration T-sweep: {} cores x {} phases x {} accesses/core, hot {} KiB/phase, \
         cold {} MiB, budget {} pages ({} KiB), seed {:#x}\n",
        cfg.cores,
        cfg.phases,
        cfg.accesses_per_core_per_phase,
        cfg.hot_bytes >> 10,
        cfg.cold_bytes >> 20,
        cfg.budget_pages,
        cfg.budget_bytes() >> 10,
        cfg.seed,
    ));
    out.push_str(&format!(
        "{:<28} {:>14} {:>10} {:>12} {:>10} {:>10}\n",
        "placement", "makespan_us", "bw_GBs", "moved_pages", "moved_KiB", "energy_mJ"
    ));
    for s in &sweep.statics {
        out.push_str(&format!(
            "{:<28} {:>14.3} {:>10.3} {:>12} {:>10} {:>10.4}\n",
            s.label,
            s.report.makespan.as_ns() / 1e3,
            s.report.bandwidth_gbs,
            "-",
            "-",
            s.energy.total_joules() * 1e3,
        ));
    }
    for m in &sweep.migrated {
        let moves = m.stats.promoted_pages + m.stats.demoted_pages;
        out.push_str(&format!(
            "{:<28} {:>14.3} {:>10.3} {:>12} {:>10} {:>10.4}\n",
            format!("migrated T={}", m.period),
            m.report.makespan.as_ns() / 1e3,
            m.report.bandwidth_gbs,
            moves,
            m.stats.bytes_moved >> 10,
            m.energy.total_joules() * 1e3,
        ));
    }
    let best = sweep.best_migrated();
    let stat = sweep.best_static_fitting();
    out.push_str(&format!(
        "best migrated: T={} ({:.3} us); best budget-fitting static: {} ({:.3} us); \
         speedup {:.3}x\n",
        best.period,
        best.report.makespan.as_ns() / 1e3,
        stat.label,
        stat.report.makespan.as_ns() / 1e3,
        sweep.crossover_speedup(),
    ));
    out
}

/// The `T`-sweep as a figure: makespan vs migration period, with the
/// budget-fitting statics as flat reference series and all-HBM as the
/// unconstrained bound.
pub fn ext_migration() -> FigureData {
    figure_from_sweep(&run_migration_sweep(&MigrationSweepConfig::cori()))
}

/// Build the figure from an already-run sweep.
pub fn figure_from_sweep(sweep: &MigrationSweep) -> FigureData {
    let xs: Vec<f64> = sweep.migrated.iter().map(|m| m.period as f64).collect();
    let mut series = vec![Series {
        label: "Migrated".into(),
        points: sweep
            .migrated
            .iter()
            .map(|m| Measurement {
                x: m.period as f64,
                value: Some(m.report.makespan.as_ns() / 1e3),
            })
            .collect(),
    }];
    for s in &sweep.statics {
        series.push(Series {
            label: s.label.clone(),
            points: xs
                .iter()
                .map(|&x| Measurement {
                    x,
                    value: Some(s.report.makespan.as_ns() / 1e3),
                })
                .collect(),
        });
    }
    FigureData {
        id: "ext-migrate".into(),
        title: "Extension: hot-page migration period tuning (Cori-style)".into(),
        x_label: "Migration period T (accesses)".into(),
        y_label: "Makespan (us)".into(),
        series,
        text: render_migration_sweep(sweep),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_sweep_runs_and_orders_sanely() {
        let sweep = run_migration_sweep(&MigrationSweepConfig::golden());
        assert_eq!(sweep.statics.len(), 4);
        assert_eq!(sweep.migrated.len(), 4);
        // All-HBM is the only placement exempt from the budget. (At
        // the golden scale the trace is latency-bound, so all-HBM is
        // *not* necessarily fastest — the crossover only appears at
        // the bandwidth-bound repro scale `repro migrate` gates on.)
        assert!(!sweep.statics[3].fits_budget);
        assert!(sweep.statics[..3].iter().all(|s| s.fits_budget));
        // Every run replayed the whole trace.
        let total = MigrationSweepConfig::golden().total_accesses();
        for s in &sweep.statics {
            assert_eq!(s.report.accesses, total);
        }
        for m in &sweep.migrated {
            assert_eq!(m.report.accesses, total);
            // Moved bytes are priced into the energy report.
            assert_eq!(
                m.energy.migration_joules > 0.0,
                m.stats.bytes_moved > 0,
                "T={}",
                m.period
            );
        }
        // Active migration actually migrates at reactive periods.
        assert!(sweep.migrated[0].stats.promoted_pages > 0);
    }

    #[test]
    fn figure_has_migrated_plus_static_series() {
        let f = figure_from_sweep(&run_migration_sweep(&MigrationSweepConfig::golden()));
        assert_eq!(f.id, "ext-migrate");
        assert_eq!(f.series.len(), 5);
        assert_eq!(f.series[0].label, "Migrated");
        assert!(!f.text.is_empty());
    }
}

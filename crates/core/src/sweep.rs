//! The classify-once / replay-many sweep engine.
//!
//! Every multi-setup experiment in this crate replays *the same*
//! deterministic trace against several timing setups — placements,
//! device presets, memory-side-cache sizes, migration periods. The
//! classification stage (private caches, TLB, MSHR occupancy tags)
//! dominates replay cost but is identical across every setup sharing
//! one hierarchy config, so this module factors it out:
//!
//! * a [`TraceSpec`] names a deterministic trace stream (canonical
//!   label + a factory for fresh sources);
//! * [`classified_for`] returns the stream's
//!   [`ClassifiedTrace`](knl::ClassifiedTrace) artifact for a machine
//!   config, built at most once per process through the global
//!   LRU [`ClassifyCache`](knl::ClassifyCache);
//! * [`replay_point`] / [`replay_into`] replay one timing setup from
//!   the artifact via
//!   [`TraceSim::run_classified`](knl::tracesim::TraceSim::run_classified),
//!   bit-identical to regenerating and re-classifying from scratch
//!   (`tests/classified_equivalence.rs`).
//!
//! Set `SWEEP_REUSE=0` to fall back to the regenerate-per-setup path —
//! the bench harness uses exactly that switch to price both the
//! speedup and the reuse plumbing's overhead.

use knl::classified::ClassifyKey;
use knl::tracesim::{TracePlacement, TraceSim, TraceSimReport};
use knl::{classify_signature, with_global_classify_cache, ClassifiedTrace, MachineConfig};
use simfabric::{ByteSize, MetricsRegistry};
use std::sync::Arc;
use workloads::tracegen::{classify_streaming, replay_streaming, TraceKind, TraceSource};

/// A named deterministic trace stream: the canonical label (the
/// generator half of a [`ClassifyKey`]) plus a factory producing fresh
/// sources of the identical stream. Factories must be pure — two
/// sources from one spec yield bit-identical streams, which is what
/// lets the label stand in for the trace.
pub struct TraceSpec {
    label: String,
    cores: u32,
    make: Box<dyn Fn() -> Box<dyn TraceSource + Send> + Send + Sync>,
}

impl std::fmt::Debug for TraceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSpec")
            .field("label", &self.label)
            .field("cores", &self.cores)
            .finish_non_exhaustive()
    }
}

impl TraceSpec {
    /// A spec from an explicit label and source factory. The caller
    /// owns the label contract: everything that changes the stream
    /// must reach the label, and equal labels must mean bit-identical
    /// streams.
    pub fn new(
        label: impl Into<String>,
        cores: u32,
        make: impl Fn() -> Box<dyn TraceSource + Send> + Send + Sync + 'static,
    ) -> Self {
        TraceSpec {
            label: label.into(),
            cores,
            make: Box::new(make),
        }
    }

    /// The spec of an application trace generator, labelled with
    /// [`TraceKind::spec`].
    pub fn from_kind(kind: TraceKind, cores: u32, accesses_per_core: u64, seed: u64) -> Self {
        Self::new(
            kind.spec(cores, accesses_per_core, seed),
            cores,
            move || kind.source(cores, accesses_per_core, seed),
        )
    }

    /// The canonical stream label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Simulated (and trace-emitting) core count.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// A fresh source over the stream.
    pub fn source(&self) -> Box<dyn TraceSource + Send> {
        (self.make)()
    }

    /// The full classify key of this stream under a machine config.
    pub fn key(&self, cfg: &MachineConfig, msc_capacity: ByteSize) -> ClassifyKey {
        ClassifyKey::new(
            self.label.clone(),
            self.cores,
            classify_signature(cfg, msc_capacity),
        )
    }
}

/// Whether sweeps replay from classified artifacts (`SWEEP_REUSE`,
/// default on; `0`/`false` falls back to regenerate-per-setup;
/// garbage warns once via [`simfabric::env`]).
pub fn sweep_reuse_enabled() -> bool {
    simfabric::env::bool_var("SWEEP_REUSE").unwrap_or(true)
}

/// The classified artifact for `spec` under `cfg`, through the global
/// [`ClassifyCache`]: built (streamed, never materializing the raw
/// trace) on first use, shared by every later sweep point whose key
/// matches — across experiments, not just within one sweep. Builds go
/// through the in-flight guard
/// ([`SharedClassifyCache`](knl::SharedClassifyCache)), so concurrent
/// callers missing on one key — advisor-service workers, say — run
/// one classification and share its artifact.
pub fn classified_for(
    spec: &TraceSpec,
    cfg: &MachineConfig,
    msc_capacity: ByteSize,
) -> Arc<ClassifiedTrace> {
    let key = spec.key(cfg, msc_capacity);
    knl::global_classify_cache().get_or_build(&key, || {
        classify_streaming(
            cfg,
            spec.cores,
            msc_capacity,
            spec.label(),
            spec.source().as_mut(),
        )
    })
}

/// Replay `spec` through an existing simulator (so callers can enable
/// telemetry or tweak knobs first). `cfg`/`msc_capacity` must be the
/// values the simulator was constructed from — asserted via the
/// classify signature. Honors [`sweep_reuse_enabled`]: with reuse off
/// this *is* the old regenerate-per-setup path
/// ([`replay_streaming`] from a fresh source), so the two modes
/// price exactly the artifact reuse, nothing else.
pub fn replay_into(
    sim: &mut TraceSim,
    spec: &TraceSpec,
    cfg: &MachineConfig,
    msc_capacity: ByteSize,
) -> TraceSimReport {
    assert_eq!(
        sim.classify_signature(),
        classify_signature(cfg, msc_capacity),
        "replay_into called with a config the simulator was not built from"
    );
    if sweep_reuse_enabled() {
        let ct = classified_for(spec, cfg, msc_capacity);
        sim.run_classified(&ct)
    } else {
        replay_streaming(sim, spec.source().as_mut())
    }
}

/// Replay one sweep point: a fresh simulator for
/// (`cfg`, `placement`, `msc_capacity`), fed from the classified
/// artifact (or a fresh stream with reuse disabled). Returns the
/// simulator too — device/migration stats live on it.
pub fn replay_point(
    spec: &TraceSpec,
    cfg: &MachineConfig,
    placement: TracePlacement,
    msc_capacity: ByteSize,
) -> (TraceSim, TraceSimReport) {
    let mut sim = TraceSim::new(cfg, spec.cores, placement, msc_capacity);
    let report = replay_into(&mut sim, spec, cfg, msc_capacity);
    (sim, report)
}

/// Snapshot of the global classify cache as `replay.classify.*`
/// metrics (hit/miss/eviction counters, current/high-water/budget
/// byte gauges).
pub fn classify_metrics() -> MetricsRegistry {
    with_global_classify_cache(|cache| cache.metrics_registry())
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl::MemSetup;
    use workloads::tracegen::collect;

    fn spec() -> TraceSpec {
        TraceSpec::from_kind(TraceKind::Stream, 4, 200, 0x5EED)
    }

    #[test]
    fn spec_sources_are_reproducible_and_labelled() {
        let s = spec();
        assert_eq!(s.label(), TraceKind::Stream.spec(4, 200, 0x5EED));
        assert_eq!(s.cores(), 4);
        let a = collect(s.source().as_mut());
        let b = collect(s.source().as_mut());
        assert_eq!(a, b, "spec factories must be pure");
        assert!(!a.is_empty());
    }

    #[test]
    fn flat_setups_share_one_key_and_cache_mode_does_not() {
        let s = spec();
        let msc = ByteSize::mib(8);
        let ddr = s.key(&MachineConfig::knl7210(MemSetup::DramOnly, 64), msc);
        let hbm = s.key(&MachineConfig::knl7210(MemSetup::HbmOnly, 64), msc);
        let cache = s.key(&MachineConfig::knl7210(MemSetup::CacheMode, 64), msc);
        assert_eq!(ddr, hbm);
        assert_ne!(ddr, cache);
    }

    #[test]
    fn classified_for_hits_the_global_cache_on_reuse() {
        // A spec label no other test uses, so the first call misses.
        let s = TraceSpec::new("sweeptest:stream:4x150:seed=0x51", 4, || {
            TraceKind::Stream.source(4, 150, 0x51)
        });
        let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
        let before = with_global_classify_cache(|c| c.stats());
        let a = classified_for(&s, &cfg, ByteSize::mib(8));
        let b = classified_for(&s, &cfg, ByteSize::mib(8));
        let after = with_global_classify_cache(|c| c.stats());
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the artifact");
        assert_eq!(after.misses - before.misses, 1);
        assert!(after.hits > before.hits);
        assert_eq!(a.accesses(), 4 * 150);
    }

    #[test]
    fn replay_point_matches_fresh_replay_in_both_modes() {
        let s = spec();
        let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
        let mut fresh = TraceSim::new(&cfg, 4, TracePlacement::AllDdr, ByteSize::mib(8));
        let want = replay_streaming(&mut fresh, s.source().as_mut());
        let (_, got) = replay_point(&s, &cfg, TracePlacement::AllDdr, ByteSize::mib(8));
        assert_eq!(got, want, "classified replay must be bit-identical");
        let metrics = classify_metrics();
        assert!(metrics.get("replay.classify.hits").is_some());
    }

    #[test]
    #[should_panic(expected = "not built from")]
    fn replay_into_rejects_mismatched_configs() {
        let s = spec();
        let flat = MachineConfig::knl7210(MemSetup::DramOnly, 64);
        let cache = MachineConfig::knl7210(MemSetup::CacheMode, 64);
        let mut sim = TraceSim::new(&flat, 4, TracePlacement::AllDdr, ByteSize::mib(8));
        replay_into(&mut sim, &s, &cache, ByteSize::mib(8));
    }
}

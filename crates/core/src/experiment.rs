//! Experiment descriptors and the sweep runner.
//!
//! A sweep is the paper's unit of evaluation: one application, one
//! varying parameter (problem size or thread count), three memory
//! configurations. Points are independent, so the runner evaluates
//! them in parallel on scoped threads.

use knl::tracesim::{TracePlacement, TraceSim, TraceSimReport};
use knl::{Machine, MachineConfig, MachineError, MemSetup};
use simfabric::par;
use simfabric::ByteSize;
use workloads::dgemm::Dgemm;
use workloads::graph500::Graph500;
use workloads::gups::Gups;
use workloads::minife::MiniFe;
use workloads::stream::StreamBench;
use workloads::tracegen::TraceKind;
use workloads::xsbench::XsBench;
use workloads::PaperWorkload;

/// Which application a sweep runs — the constructible mirror of the
/// workload structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppSpec {
    /// STREAM triad.
    Stream,
    /// DGEMM.
    Dgemm,
    /// MiniFE CG.
    MiniFe,
    /// GUPS.
    Gups,
    /// Graph500 BFS.
    Graph500,
    /// XSBench.
    XsBench,
}

impl AppSpec {
    /// Instantiate the workload at a given footprint.
    pub fn build(self, footprint: ByteSize) -> Box<dyn PaperWorkload + Send + Sync> {
        match self {
            AppSpec::Stream => Box::new(StreamBench::new(footprint)),
            AppSpec::Dgemm => Box::new(Dgemm::with_footprint(footprint)),
            AppSpec::MiniFe => Box::new(MiniFe::with_footprint(footprint)),
            AppSpec::Gups => Box::new(Gups::new(footprint)),
            AppSpec::Graph500 => Box::new(Graph500::with_footprint(footprint)),
            AppSpec::XsBench => Box::new(XsBench::with_footprint(footprint)),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AppSpec::Stream => "STREAM",
            AppSpec::Dgemm => "DGEMM",
            AppSpec::MiniFe => "MiniFE",
            AppSpec::Gups => "GUPS",
            AppSpec::Graph500 => "Graph500",
            AppSpec::XsBench => "XSBench",
        }
    }

    /// Metric name.
    pub fn metric(self) -> &'static str {
        match self {
            AppSpec::Stream => "GB/s",
            AppSpec::Dgemm => "GFLOPS",
            AppSpec::MiniFe => "CG MFLOPS",
            AppSpec::Gups => "GUPS",
            AppSpec::Graph500 => "TEPS",
            AppSpec::XsBench => "Lookups/s",
        }
    }
}

/// One evaluated point.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// X-coordinate (GB for size sweeps, threads for thread sweeps).
    pub x: f64,
    /// Metric value; `None` when the configuration cannot run the
    /// point (HBM bind too small, DGEMM at 256 threads, …) — rendered
    /// as the paper's missing bars.
    pub value: Option<f64>,
}

/// A named series of measurements (one memory setup).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label ("DRAM", "HBM", "Cache Mode").
    pub label: String,
    /// Points in x order.
    pub points: Vec<Measurement>,
}

impl Series {
    /// The value at `x`, if present and runnable.
    pub fn value_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .and_then(|p| p.value)
    }

    /// Largest value in the series.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .filter_map(|p| p.value)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }
}

fn run_point(app: AppSpec, footprint: ByteSize, setup: MemSetup, threads: u32) -> Option<f64> {
    let workload = app.build(footprint);
    let mut machine = Machine::knl7210(setup, threads).ok()?;
    match workload.run_model(&mut machine) {
        Ok(v) => Some(v),
        Err(MachineError::Alloc(_)) | Err(MachineError::Invalid(_)) => None,
    }
}

/// A sweep over problem size at fixed thread count (the Fig. 2/4
/// shape).
#[derive(Debug, Clone, PartialEq)]
pub struct SizeSweep {
    /// Application under test.
    pub app: AppSpec,
    /// Footprints to evaluate, in GB (decimal axis labels as the paper
    /// prints them; converted via GiB internally).
    pub sizes_gb: Vec<f64>,
    /// OpenMP thread count (64 in the paper's Fig. 4).
    pub threads: u32,
    /// Memory setups to compare.
    pub setups: Vec<MemSetup>,
}

impl SizeSweep {
    /// The paper's default: 64 threads, all three setups.
    pub fn paper(app: AppSpec, sizes_gb: Vec<f64>) -> Self {
        SizeSweep {
            app,
            sizes_gb,
            threads: 64,
            setups: MemSetup::PAPER_SETUPS.to_vec(),
        }
    }

    /// Evaluate every (setup × size) point in parallel.
    pub fn run(&self) -> Vec<Series> {
        par::par_map(&self.setups, |&setup| Series {
            label: setup.label().to_string(),
            points: par::par_map(&self.sizes_gb, |&gb| Measurement {
                x: gb,
                value: run_point(self.app, ByteSize::gib_f(gb), setup, self.threads),
            }),
        })
    }
}

/// A sweep over thread count at fixed problem size (the Fig. 5/6
/// shape).
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadSweep {
    /// Application under test.
    pub app: AppSpec,
    /// Fixed footprint in GB.
    pub size_gb: f64,
    /// Thread counts (64/128/192/256 in the paper).
    pub threads: Vec<u32>,
    /// Memory setups to compare.
    pub setups: Vec<MemSetup>,
}

impl ThreadSweep {
    /// The paper's default thread ladder over all three setups.
    pub fn paper(app: AppSpec, size_gb: f64) -> Self {
        ThreadSweep {
            app,
            size_gb,
            threads: vec![64, 128, 192, 256],
            setups: MemSetup::PAPER_SETUPS.to_vec(),
        }
    }

    /// Evaluate every (setup × threads) point in parallel.
    pub fn run(&self) -> Vec<Series> {
        par::par_map(&self.setups, |&setup| Series {
            label: setup.label().to_string(),
            points: par::par_map(&self.threads, |&t| Measurement {
                x: t as f64,
                value: run_point(self.app, ByteSize::gib_f(self.size_gb), setup, t),
            }),
        })
    }
}

/// One replayed (trace generator × memory setup) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceReplay {
    /// Which generator produced the trace.
    pub kind: TraceKind,
    /// The memory setup it was replayed under.
    pub setup: MemSetup,
    /// The trace simulator's report.
    pub report: TraceSimReport,
}

/// A sweep replaying workload-shaped traces through the line-accurate
/// trace simulator — the trace-level complement of the analytic
/// [`SizeSweep`]/[`ThreadSweep`]. Each kind is classified once per
/// hierarchy config into a bounded artifact (streamed from
/// [`TraceKind::source`], never materializing the full trace) and
/// each setup replays the artifact through the timing stage
/// ([`crate::sweep`]). The worker count comes from `TRACESIM_THREADS`
/// (or the ambient [`par`] override) and the output is bit-identical
/// to the sequential reference at any setting.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSweep {
    /// Trace generators to replay.
    pub kinds: Vec<TraceKind>,
    /// Simulated (and trace-emitting) core count.
    pub cores: u32,
    /// Approximate per-core trace length.
    pub accesses_per_core: u64,
    /// Generator seed.
    pub seed: u64,
    /// Memory setups to compare.
    pub setups: Vec<MemSetup>,
}

impl TraceSweep {
    /// All five generators over the paper's three memory setups.
    pub fn paper(cores: u32, accesses_per_core: u64, seed: u64) -> Self {
        TraceSweep {
            kinds: TraceKind::ALL.to_vec(),
            cores,
            accesses_per_core,
            seed,
            setups: MemSetup::PAPER_SETUPS.to_vec(),
        }
    }

    fn placement(setup: MemSetup) -> TracePlacement {
        match setup {
            MemSetup::HbmOnly => TracePlacement::AllHbm,
            _ => TracePlacement::AllDdr,
        }
    }

    /// Replay every (kind × setup) point. Each kind classifies once
    /// per hierarchy config through the global classify cache (all
    /// flat setups share one artifact; cache mode gets its own) and
    /// the timing stage replays the artifact per setup — see
    /// [`crate::sweep`]; `SWEEP_REUSE=0` restores the old
    /// regenerate-per-setup streaming path. The replays themselves are
    /// internally parallel, so points run in sequence rather than
    /// oversubscribing the worker pool.
    pub fn run(&self) -> Vec<TraceReplay> {
        self.run_inner(false).0
    }

    /// [`run`](Self::run) with telemetry enabled on every point's
    /// simulator, returning each point's metrics folded into one
    /// registry under a `{kind}.{setup}.` prefix (e.g.
    /// `stream.dram.mesh.messages`). Telemetry never changes replay
    /// results, so the reports match [`run`](Self::run) exactly.
    pub fn run_with_metrics(&self) -> (Vec<TraceReplay>, simfabric::MetricsRegistry) {
        self.run_inner(true)
    }

    /// Metric-name prefix of one (kind × setup) point.
    pub fn point_prefix(kind: TraceKind, setup: MemSetup) -> String {
        format!(
            "{}.{}.",
            kind.name().to_lowercase(),
            setup.label().to_lowercase().replace(' ', "_")
        )
    }

    fn run_inner(&self, telemetry: bool) -> (Vec<TraceReplay>, simfabric::MetricsRegistry) {
        let mut out = Vec::with_capacity(self.kinds.len() * self.setups.len());
        let mut metrics = simfabric::MetricsRegistry::new();
        let msc = ByteSize::mib(8);
        for &kind in &self.kinds {
            let spec = crate::sweep::TraceSpec::from_kind(
                kind,
                self.cores,
                self.accesses_per_core,
                self.seed,
            );
            for &setup in &self.setups {
                let cfg = MachineConfig::knl7210(setup, 64);
                let mut sim = TraceSim::new(&cfg, self.cores, Self::placement(setup), msc);
                if telemetry {
                    sim.enable_telemetry();
                }
                let report = crate::sweep::replay_into(&mut sim, &spec, &cfg, msc);
                if telemetry {
                    metrics
                        .merge_prefixed(&Self::point_prefix(kind, setup), &sim.metrics_registry());
                }
                out.push(TraceReplay {
                    kind,
                    setup,
                    report,
                });
            }
        }
        (out, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_produces_three_series_with_missing_hbm_points() {
        let sweep = SizeSweep::paper(AppSpec::Stream, vec![6.0, 24.0]);
        let series = sweep.run();
        assert_eq!(series.len(), 3);
        let hbm = series.iter().find(|s| s.label == "HBM").unwrap();
        assert!(hbm.value_at(6.0).is_some());
        assert!(hbm.value_at(24.0).is_none(), "24 GB cannot fit HBM");
        let dram = series.iter().find(|s| s.label == "DRAM").unwrap();
        assert!(dram.value_at(24.0).is_some());
    }

    #[test]
    fn thread_sweep_covers_ladder() {
        let sweep = ThreadSweep::paper(AppSpec::Gups, 4.0);
        let series = sweep.run();
        for s in &series {
            assert_eq!(s.points.len(), 4);
            assert!(s.points.iter().all(|p| p.value.is_some()), "{}", s.label);
        }
    }

    #[test]
    fn dgemm_256_threads_is_a_missing_point() {
        let sweep = ThreadSweep::paper(AppSpec::Dgemm, 6.0);
        let series = sweep.run();
        let dram = series.iter().find(|s| s.label == "DRAM").unwrap();
        assert!(dram.value_at(256.0).is_none());
        assert!(dram.value_at(192.0).is_some());
    }

    #[test]
    fn appspec_roundtrip_names() {
        for app in [
            AppSpec::Stream,
            AppSpec::Dgemm,
            AppSpec::MiniFe,
            AppSpec::Gups,
            AppSpec::Graph500,
            AppSpec::XsBench,
        ] {
            assert!(!app.name().is_empty());
            assert!(!app.metric().is_empty());
            let w = app.build(ByteSize::gib(1));
            assert_eq!(w.name(), app.name());
        }
    }

    #[test]
    fn trace_sweep_covers_kinds_by_setups_and_is_worker_independent() {
        let sweep = TraceSweep {
            kinds: vec![TraceKind::Stream, TraceKind::Gups],
            cores: 4,
            accesses_per_core: 200,
            seed: 42,
            setups: vec![MemSetup::DramOnly, MemSetup::HbmOnly],
        };
        let one = par::with_threads(1, || sweep.run());
        let eight = par::with_threads(8, || sweep.run());
        assert_eq!(one.len(), 4);
        assert_eq!(one, eight, "replay must not depend on worker count");
        for r in &one {
            assert!(r.report.accesses > 0, "{:?}", r);
        }
    }

    #[test]
    fn trace_sweep_metrics_ride_along_without_changing_reports() {
        let sweep = TraceSweep {
            kinds: vec![TraceKind::Stream],
            cores: 4,
            accesses_per_core: 200,
            seed: 42,
            setups: vec![MemSetup::DramOnly, MemSetup::CacheMode],
        };
        let plain = sweep.run();
        let (with_tel, metrics) = sweep.run_with_metrics();
        assert_eq!(plain, with_tel, "telemetry must not change replays");
        assert_eq!(
            TraceSweep::point_prefix(TraceKind::Stream, MemSetup::CacheMode),
            "stream.cache_mode."
        );
        for r in &plain {
            let key = format!(
                "{}shard.accesses",
                TraceSweep::point_prefix(r.kind, r.setup)
            );
            match metrics.get(&key) {
                Some(simfabric::MetricValue::Counter(n)) => {
                    assert_eq!(*n, r.report.accesses, "{key}")
                }
                other => panic!("{key}: {other:?}"),
            }
        }
    }

    #[test]
    fn series_helpers() {
        let s = Series {
            label: "X".into(),
            points: vec![
                Measurement {
                    x: 1.0,
                    value: Some(5.0),
                },
                Measurement {
                    x: 2.0,
                    value: None,
                },
                Measurement {
                    x: 3.0,
                    value: Some(9.0),
                },
            ],
        };
        assert_eq!(s.value_at(1.0), Some(5.0));
        assert_eq!(s.value_at(2.0), None);
        assert_eq!(s.value_at(7.0), None);
        assert_eq!(s.max_value(), Some(9.0));
    }
}

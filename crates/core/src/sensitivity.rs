//! Sensitivity analysis: how far do the paper's conclusions
//! generalize?
//!
//! §VI claims "our conclusions can be generalized to other
//! heterogeneous memory systems with similar characteristics". This
//! module makes "similar" quantitative: it re-runs the key findings on
//! hypothetical devices — scaling the HBM latency penalty, the
//! bandwidth ratio, and the fast-memory capacity — and reports where
//! each finding flips.

use crate::experiment::Measurement;
use crate::sweep::{replay_point, TraceSpec};
use knl::tracesim::TracePlacement;
use knl::{Machine, MachineConfig, MemSetup};
use memdev::presets;
use simfabric::{ByteSize, Duration};
use workloads::gups::Gups;
use workloads::minife::MiniFe;
use workloads::stream::StreamBench;

/// One scan over a device parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityScan {
    /// The varied parameter.
    pub parameter: String,
    /// The finding under test.
    pub finding: String,
    /// `(parameter value, figure of merit)` samples; the finding holds
    /// where the merit crosses `threshold`.
    pub points: Vec<Measurement>,
    /// The merit value at which the finding flips.
    pub threshold: f64,
    /// The parameter value where the flip happens (linear
    /// interpolation between samples), if it happens in range.
    pub flip_at: Option<f64>,
    /// Whether the finding holds at the paper's actual hardware point.
    pub holds_on_knl: bool,
}

fn find_flip(points: &[Measurement], threshold: f64) -> Option<f64> {
    for w in points.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if let (Some(va), Some(vb)) = (a.value, b.value) {
            if (va - threshold).signum() != (vb - threshold).signum() {
                let t = (threshold - va) / (vb - va);
                return Some(a.x + t * (b.x - a.x));
            }
        }
    }
    None
}

/// Scan the HBM latency penalty (HBM idle latency / DDR idle latency)
/// and test the finding "latency-bound applications prefer DRAM"
/// (merit: DRAM GUPS / HBM GUPS; holds while > 1).
pub fn scan_latency_penalty() -> SensitivityScan {
    let mut points = Vec::new();
    for penalty in [0.85, 0.95, 1.0, 1.05, 1.1, 1.18, 1.3, 1.5] {
        let mut cfg_h = MachineConfig::knl7210(MemSetup::HbmOnly, 64);
        cfg_h.mcdram.idle_latency = Duration::from_ns(presets::DDR_IDLE_LATENCY_NS * penalty);
        let gups = Gups::new(ByteSize::gib(8));
        let h = Machine::new(cfg_h)
            .ok()
            .and_then(|mut m| gups.model_gups(&mut m).ok());
        let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
        let d = gups.model_gups(&mut dram).ok();
        points.push(Measurement {
            x: penalty,
            value: d.zip(h).map(|(d, h)| d / h),
        });
    }
    let flip_at = find_flip(&points, 1.0);
    SensitivityScan {
        parameter: "HBM/DDR idle-latency ratio".into(),
        finding: "random access (GUPS) prefers DRAM (merit: DRAM/HBM rate > 1)".into(),
        holds_on_knl: points
            .iter()
            .find(|p| (p.x - 1.18).abs() < 1e-9)
            .and_then(|p| p.value)
            .map(|v| v > 1.0)
            .unwrap_or(false),
        points,
        threshold: 1.0,
        flip_at,
    }
}

/// Scan the HBM/DDR bandwidth ratio and test "bandwidth-bound
/// applications gain ≥ 2× from HBM" (merit: MiniFE HBM/DRAM; holds
/// while > 2).
pub fn scan_bandwidth_ratio() -> SensitivityScan {
    let mut points = Vec::new();
    let minife = MiniFe::with_footprint(ByteSize::gib_f(7.2));
    let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
    let d = minife.model_cg_mflops(&mut dram).unwrap();
    for ratio in [1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.45, 6.5] {
        let mut cfg = MachineConfig::knl7210(MemSetup::HbmOnly, 64);
        cfg.mcdram.sustained_bw_gbs = presets::DDR_SUSTAINED_GBS * ratio;
        cfg.mcdram.peak_bw_gbs = cfg.mcdram.sustained_bw_gbs * 1.1;
        let h = Machine::new(cfg)
            .ok()
            .and_then(|mut m| minife.model_cg_mflops(&mut m).ok());
        points.push(Measurement {
            x: ratio,
            value: h.map(|h| h / d),
        });
    }
    let flip_at = find_flip(&points, 2.0);
    SensitivityScan {
        parameter: "HBM/DDR sustained-bandwidth ratio".into(),
        finding: "bandwidth-bound apps (MiniFE) gain ≥2x from HBM".into(),
        // The KNL point: 420/77 = 5.45.
        holds_on_knl: points
            .iter()
            .find(|p| (p.x - 5.45).abs() < 1e-9)
            .and_then(|p| p.value)
            .map(|v| v > 2.0)
            .unwrap_or(false),
        points,
        threshold: 2.0,
        flip_at,
    }
}

/// Scan the fast-memory capacity and test "cache mode drops below
/// plain DRAM for a 28.8-GB stream" (merit: cache/DRAM bandwidth;
/// holds while < 1).
pub fn scan_cache_capacity() -> SensitivityScan {
    let mut points = Vec::new();
    let bench = StreamBench::new(ByteSize::gib_f(28.8));
    let mut dram = Machine::knl7210(MemSetup::DramOnly, 64).unwrap();
    let d = bench.triad_bandwidth(&mut dram).unwrap();
    for cap_gib in [4u64, 8, 12, 16, 24, 32, 48, 64] {
        let mut cfg = MachineConfig::knl7210(MemSetup::CacheMode, 64);
        cfg.mcdram.capacity = ByteSize::gib(cap_gib);
        let c = Machine::new(cfg)
            .ok()
            .and_then(|mut m| bench.triad_bandwidth(&mut m).ok());
        points.push(Measurement {
            x: cap_gib as f64,
            value: c.map(|c| c / d),
        });
    }
    let flip_at = find_flip(&points, 1.0);
    SensitivityScan {
        parameter: "MCDRAM-cache capacity (GiB)".into(),
        finding: "the direct-mapped cache underperforms DRAM for a 28.8 GB stream".into(),
        holds_on_knl: points
            .iter()
            .find(|p| (p.x - 16.0).abs() < 1e-9)
            .and_then(|p| p.value)
            .map(|v| v < 1.0)
            .unwrap_or(false),
        points,
        threshold: 1.0,
        flip_at,
    }
}

/// Replay-backed scan: sweep the fast-tier boundary of a
/// [`TracePlacement::SplitAt`] placement and measure the makespan
/// speedup over all-DDR at each boundary (merit > 1 means the partial
/// fast tier wins). Unlike the analytic scans above this runs the
/// line-accurate trace simulator — which is affordable precisely
/// because every boundary is a *timing-stage* change: all points
/// replay one shared classified artifact through [`crate::sweep`],
/// classification runs once for the whole scan. Not part of
/// [`all_scans`] (those stay analytic and paper-shaped); `repro
/// sweep-reuse` exercises this path at repro scale.
pub fn scan_split_boundary_replayed(spec: &TraceSpec, boundaries: &[u64]) -> SensitivityScan {
    let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
    let msc = ByteSize::mib(8);
    let ddr = replay_point(spec, &cfg, TracePlacement::AllDdr, msc)
        .1
        .makespan
        .as_ps() as f64;
    let points: Vec<Measurement> = boundaries
        .iter()
        .map(|&b| {
            let split = replay_point(spec, &cfg, TracePlacement::SplitAt(b), msc)
                .1
                .makespan
                .as_ps() as f64;
            Measurement {
                x: b as f64,
                value: Some(ddr / split),
            }
        })
        .collect();
    let flip_at = find_flip(&points, 1.0);
    SensitivityScan {
        parameter: "SplitAt fast-tier boundary (bytes)".into(),
        finding: format!(
            "a partial fast tier speeds up {} over all-DDR (merit: makespan ratio > 1)",
            spec.label()
        ),
        holds_on_knl: points
            .last()
            .and_then(|p| p.value)
            .map(|v| v > 1.0)
            .unwrap_or(false),
        points,
        threshold: 1.0,
        flip_at,
    }
}

/// All scans.
pub fn all_scans() -> Vec<SensitivityScan> {
    vec![
        scan_latency_penalty(),
        scan_bandwidth_ratio(),
        scan_cache_capacity(),
    ]
}

/// Render scans as a report.
pub fn render_scans(scans: &[SensitivityScan]) -> String {
    let mut out = String::new();
    for s in scans {
        out.push_str(&format!(
            "== {} ==\n   finding: {}\n   holds on the KNL point: {}\n",
            s.parameter,
            s.finding,
            if s.holds_on_knl { "YES" } else { "NO" }
        ));
        match s.flip_at {
            Some(x) => out.push_str(&format!("   flips at {} ≈ {x:.2}\n", s.parameter)),
            None => out.push_str("   no flip in the scanned range\n"),
        }
        for p in &s.points {
            out.push_str(&format!(
                "   {:>6.2} -> {}\n",
                p.x,
                p.value.map_or("-".into(), |v| format!("{v:.3}"))
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_finding_holds_on_knl_and_flips_below_parity() {
        let s = scan_latency_penalty();
        assert!(s.holds_on_knl);
        // With the penalty removed (HBM as fast as DDR), DRAM loses its
        // edge: the flip must sit at or below a ratio of ~1.05 (mesh
        // and cap effects keep a small DDR edge even at parity).
        let flip = s.flip_at.expect("flip expected in range");
        assert!(flip < 1.1, "flip at {flip}");
        // Monotone: higher penalty → bigger DRAM edge.
        let vals: Vec<f64> = s.points.iter().filter_map(|p| p.value).collect();
        assert!(vals.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{vals:?}");
    }

    #[test]
    fn bandwidth_finding_needs_enough_ratio() {
        let s = scan_bandwidth_ratio();
        assert!(s.holds_on_knl);
        let flip = s.flip_at.expect("2x gain needs a minimum BW ratio");
        assert!(
            flip > 1.5 && flip < 4.0,
            "MiniFE 2x gain should need a ~2-4x BW ratio; flip at {flip}"
        );
        // At parity bandwidth there is (essentially) no gain.
        let at_parity = s.points[0].value.unwrap();
        assert!(at_parity < 1.3, "gain at 1x BW: {at_parity}");
    }

    #[test]
    fn cache_capacity_rescues_cache_mode() {
        let s = scan_cache_capacity();
        assert!(s.holds_on_knl, "{:?}", s.points);
        let flip = s.flip_at.expect("a big enough cache must win");
        // A cache comfortably larger than 16 GB but below the 28.8-GB
        // footprint already wins on hit ratio.
        assert!(flip > 16.0 && flip < 34.0, "flip at {flip}");
        // And a 48-GB cache clearly beats DRAM.
        let big = s
            .points
            .iter()
            .find(|p| p.x == 48.0)
            .unwrap()
            .value
            .unwrap();
        assert!(big > 1.5, "48 GiB cache ratio {big}");
    }

    #[test]
    fn replayed_split_scan_shares_one_artifact_and_matches_endpoints() {
        use workloads::tracegen::TraceKind;
        let spec = TraceSpec::from_kind(TraceKind::Stream, 4, 400, 0x5CA9);
        let before = knl::with_global_classify_cache(|c| c.stats());
        // Boundaries from "nothing in HBM" to "everything in HBM"
        // (stream addresses sit below ~2 MiB at this scale).
        let s = scan_split_boundary_replayed(&spec, &[0, 1 << 20, 1 << 30]);
        let after = knl::with_global_classify_cache(|c| c.stats());
        if crate::sweep::sweep_reuse_enabled() {
            assert!(
                after.misses - before.misses <= 1,
                "all boundaries must share one flat artifact"
            );
        }
        assert_eq!(s.points.len(), 3);
        // Boundary 0 routes nothing to HBM: parity with all-DDR.
        assert!((s.points[0].value.unwrap() - 1.0).abs() < 1e-9);
        // A boundary above the whole footprint is all-HBM exactly: the
        // merit must equal the direct AllDdr/AllHbm makespan ratio.
        // (At this tiny scale the trace is latency-bound and HBM
        // *loses* — the bandwidth win only appears at repro scale, as
        // with the migration golden; the scan reports either way.)
        let cfg = MachineConfig::knl7210(MemSetup::DramOnly, 64);
        let msc = ByteSize::mib(8);
        let ddr = replay_point(&spec, &cfg, TracePlacement::AllDdr, msc).1;
        let hbm = replay_point(&spec, &cfg, TracePlacement::AllHbm, msc).1;
        let want = ddr.makespan.as_ps() as f64 / hbm.makespan.as_ps() as f64;
        assert!(
            (s.points[2].value.unwrap() - want).abs() < 1e-12,
            "{:?}",
            s.points
        );
        assert_eq!(s.holds_on_knl, want > 1.0);
    }

    #[test]
    fn render_mentions_every_scan() {
        let scans = all_scans();
        let r = render_scans(&scans);
        for s in &scans {
            assert!(r.contains(&s.parameter));
        }
        assert!(r.contains("YES"));
    }
}

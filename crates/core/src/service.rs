//! The advisor query engine: batched placement advice behind a
//! canonicalized key, a sharded result cache, and a worker pool.
//!
//! §VI of the paper is a lookup table in prose — "which memory tier
//! should this workload use?" — and the ROADMAP's service framing
//! asks that question at volume, where most queries repeat the same
//! few hundred configurations. [`advise_replayed`] answers one query
//! by replaying five placements; this module makes repeats nearly
//! free with a three-level fast path:
//!
//! 1. **Canonicalize** ([`canonicalize`]): an [`AdvisorQuery`] folds
//!    into a [`QueryKey`] — budgets round up to placement-equivalent
//!    page buckets, thread counts fold through the machine's valid
//!    SMT range, a zero migration period resolves to the trace-scaled
//!    default — and duplicate keys within a batch dedupe to one
//!    computation with N subscribers.
//! 2. **Result cache** ([`ResultCache`]): distinct keys probe a
//!    sharded, byte-bounded LRU ([`simfabric::ShardedLru`]) before
//!    any replay runs; repeats across batches cost a lookup. Exported
//!    as `advisor.cache.*` metrics.
//! 3. **Worker pool**: remaining misses fan out over
//!    [`simfabric::par::par_queued`] workers, each running the pure
//!    [`answer`] function; concurrent workers share classification
//!    work through the global classify cache's in-flight guard
//!    ([`knl::SharedClassifyCache`]), so two setups over one trace
//!    spec classify it once even across threads.
//!
//! The single-query path ([`AdvisorService::advise`]) is the batch
//! path at N = 1, so the CLI and batch entry points cannot drift.
//! Soundness of the canonicalization — equal keys give bit-identical
//! advice, distinct keys never alias — is property-tested below: the
//! engine *answers at the bucket's representative*, so a bucketed
//! query is answered exactly, for the bucket it canonicalized into.
//!
//! [`advise_replayed`]: crate::advisor::advise_replayed

use crate::advisor::{advise_replayed_query, ReplayedAdvice};
use crate::json::Json;
use crate::sweep::TraceSpec;
use memkind_sim::migrate::PAGE_BYTES;
use simfabric::cache::{ShardedCacheStats, ShardedLru};
use simfabric::telemetry::MetricsRegistry;
use simfabric::{par, ByteSize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use workloads::tracegen::TraceKind;

/// Schema tag of the advice documents [`advice_to_json`] writes and
/// [`check_advice`] validates.
pub const ADVICE_SCHEMA: &str = "advisor_advice/v1";

/// Seed a query uses when the JSON line omits `seed`.
pub const DEFAULT_QUERY_SEED: u64 = 0xAD5E;

/// Default [`ResultCache`] budget: plenty for tens of thousands of
/// advice entries (an entry is a few hundred bytes, not a trace).
pub const RESULT_CACHE_DEFAULT_BYTES: usize = 16 << 20;

/// Shards in the [`ResultCache`] — enough that a worker pool's
/// concurrent probes rarely collide on one lock.
pub const RESULT_CACHE_SHARDS: usize = 16;

/// One advisor query, as the CLI and the JSON-lines batch files state
/// it: which trace, how much fast-tier budget, how many threads, and
/// (optionally) a migration rebalance period.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvisorQuery {
    /// Trace generator.
    pub kind: TraceKind,
    /// Simulated core count.
    pub cores: u32,
    /// Approximate accesses per core.
    pub accesses_per_core: u64,
    /// Generator seed.
    pub seed: u64,
    /// Fast-tier budget (split boundary, cache capacity, migration
    /// pool), in bytes as stated — canonicalization buckets it.
    pub budget: ByteSize,
    /// Requested thread count — canonicalization folds it through the
    /// machine's valid SMT range.
    pub threads: u32,
    /// Migration rebalance period in accesses; 0 means "pick for me"
    /// (resolved to [`auto_period`] during canonicalization).
    pub migrate_period: u64,
}

/// Parse a `<kind>_<cores>x<per_core>` workload label (the bench
/// config format, e.g. `stream_8x2000`).
pub fn parse_workload(label: &str) -> Result<(TraceKind, u32, u64), String> {
    let shape = || format!("bad workload label {label:?} (expected <kind>_<cores>x<per_core>)");
    let (kind_s, rest) = label.rsplit_once('_').ok_or_else(shape)?;
    let kind = TraceKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(kind_s))
        .ok_or_else(|| {
            let known: Vec<String> = TraceKind::ALL
                .iter()
                .map(|k| k.name().to_lowercase())
                .collect();
            format!("unknown trace kind {kind_s:?}; known: {}", known.join(", "))
        })?;
    let (cores_s, per_s) = rest.split_once('x').ok_or_else(shape)?;
    let cores: u32 = cores_s.parse().map_err(|_| shape())?;
    let accesses_per_core: u64 = per_s.parse().map_err(|_| shape())?;
    if cores == 0 || accesses_per_core == 0 {
        return Err(shape());
    }
    Ok((kind, cores, accesses_per_core))
}

impl AdvisorQuery {
    /// A query over a `<kind>_<cores>x<per_core>` workload label at
    /// the given budget, with default seed, 64 threads, and an
    /// auto-resolved migration period.
    pub fn over(workload: &str, budget: ByteSize) -> Result<AdvisorQuery, String> {
        let (kind, cores, accesses_per_core) = parse_workload(workload)?;
        Ok(AdvisorQuery {
            kind,
            cores,
            accesses_per_core,
            seed: DEFAULT_QUERY_SEED,
            budget,
            threads: 64,
            migrate_period: 0,
        })
    }

    /// The workload label (`stream_8x2000` form).
    pub fn workload_label(&self) -> String {
        format!(
            "{}_{}x{}",
            self.kind.name().to_lowercase(),
            self.cores,
            self.accesses_per_core
        )
    }

    /// Parse one JSON-lines query document. `workload` is required;
    /// `budget_kib` defaults to 256, `seed` to
    /// [`DEFAULT_QUERY_SEED`], `threads` to 64, `period` to 0
    /// (auto). Unknown fields are ignored so batch files can carry
    /// annotations.
    pub fn from_json(doc: &Json) -> Result<AdvisorQuery, String> {
        let workload = doc.str_field("workload")?;
        let opt_num = |key: &str, default: f64| -> Result<f64, String> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| format!("non-numeric field `{key}`")),
            }
        };
        let budget_kib = opt_num("budget_kib", 256.0)?;
        if budget_kib <= 0.0 {
            return Err(format!("non-positive budget_kib {budget_kib}"));
        }
        let threads = opt_num("threads", 64.0)?;
        if threads < 1.0 {
            return Err(format!("non-positive threads {threads}"));
        }
        let mut q = AdvisorQuery::over(&workload, ByteSize::kib(budget_kib as u64))?;
        q.seed = opt_num("seed", DEFAULT_QUERY_SEED as f64)? as u64;
        q.threads = threads as u32;
        q.migrate_period = opt_num("period", 0.0)? as u64;
        Ok(q)
    }

    /// The JSON-lines form of this query (inverse of
    /// [`from_json`](Self::from_json)).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::Str(self.workload_label())),
            ("seed", Json::Num(self.seed as f64)),
            ("budget_kib", Json::Num((self.budget.as_u64() >> 10) as f64)),
            ("threads", Json::Num(self.threads as f64)),
            ("period", Json::Num(self.migrate_period as f64)),
        ])
    }
}

/// The canonical identity of an advisor query — every field the
/// answer depends on, post-normalization, and nothing else. Equal
/// keys get bit-identical [`ReplayedAdvice`]; the service computes
/// and caches per key, never per raw query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Trace generator.
    pub kind: TraceKind,
    /// Simulated core count.
    pub cores: u32,
    /// Accesses per core.
    pub accesses_per_core: u64,
    /// Generator seed.
    pub seed: u64,
    /// Budget bucket, in whole pages (the answer is computed at
    /// exactly this size).
    pub budget_pages: u64,
    /// Folded thread count (a full SMT level: 64, 128, 192 or 256).
    pub threads: u32,
    /// Resolved migration period (never 0).
    pub period: u64,
}

impl QueryKey {
    /// The canonical string form (used in logs; equality of keys is
    /// equality of these strings, which the no-alias property test
    /// checks).
    pub fn canonical(&self) -> String {
        format!(
            "advise:{}|budget_pages={}|threads={}|period={}",
            self.kind
                .spec(self.cores, self.accesses_per_core, self.seed),
            self.budget_pages,
            self.threads,
            self.period
        )
    }

    /// The budget the bucket represents.
    pub fn budget(&self) -> ByteSize {
        ByteSize::bytes(self.budget_pages * PAGE_BYTES)
    }

    /// The trace spec this key replays.
    pub fn spec(&self) -> TraceSpec {
        TraceSpec::from_kind(self.kind, self.cores, self.accesses_per_core, self.seed)
    }
}

/// Fold a requested thread count through the machine's valid range:
/// up to the next full SMT level (64 threads per level on the 64-core
/// KNL), clamped to 1–4 levels. Trace replay is per-core, so within a
/// level the advice is identical — folding is what makes "63
/// threads" and "64 threads" one cache entry.
pub fn fold_threads(threads: u32) -> u32 {
    64 * threads.div_ceil(64).clamp(1, 4)
}

/// The migration period a zero-period query resolves to: an eighth of
/// the trace (eight rebalance opportunities), floored at 256 accesses
/// so tiny traces still migrate.
pub fn auto_period(cores: u32, accesses_per_core: u64) -> u64 {
    (cores as u64 * accesses_per_core / 8).max(256)
}

/// Canonicalize a query into its [`QueryKey`]: bucket the budget up
/// to whole pages, fold threads, resolve a zero period. The answer is
/// computed *at the bucket's representative values*, which is what
/// makes same-key queries bit-identical by construction.
pub fn canonicalize(q: &AdvisorQuery) -> QueryKey {
    QueryKey {
        kind: q.kind,
        cores: q.cores,
        accesses_per_core: q.accesses_per_core,
        seed: q.seed,
        budget_pages: q.budget.as_u64().div_ceil(PAGE_BYTES).max(1),
        threads: fold_threads(q.threads),
        period: if q.migrate_period == 0 {
            auto_period(q.cores, q.accesses_per_core)
        } else {
            q.migrate_period
        },
    }
}

/// The pure query function: answer a canonicalized key by replaying
/// its five placement candidates
/// ([`advise_replayed_query`]). Deterministic in the key alone;
/// everything cached or deduplicated upstream funnels through here.
pub fn answer(key: &QueryKey) -> ReplayedAdvice {
    advise_replayed_query(&key.spec(), key.budget(), key.threads, key.period)
}

/// Approximate heap footprint of an advice entry, the unit the
/// [`ResultCache`] budget is measured in.
pub fn advice_bytes(advice: &ReplayedAdvice) -> usize {
    std::mem::size_of::<ReplayedAdvice>()
        + advice.trace.len()
        + advice
            .candidates
            .iter()
            .map(|c| std::mem::size_of_val(c) + c.label.len())
            .sum::<usize>()
}

/// The sharded, byte-bounded advice cache (level 2 of the fast
/// path). A thin wrapper over [`ShardedLru`] that owns entry sizing
/// and the `advisor.cache.*` metrics export.
#[derive(Debug)]
pub struct ResultCache {
    lru: ShardedLru<QueryKey, ReplayedAdvice>,
}

impl ResultCache {
    /// A cache with a `cap_bytes` budget over
    /// [`RESULT_CACHE_SHARDS`] shards (0 disables retention — every
    /// lookup misses, which the single-query overhead gate uses).
    pub fn new(cap_bytes: usize) -> Self {
        ResultCache {
            lru: ShardedLru::new(RESULT_CACHE_SHARDS, cap_bytes),
        }
    }

    /// Budget from the environment: `ADVISOR_CACHE_MB` (MiB; 0
    /// disables retention), defaulting to
    /// [`RESULT_CACHE_DEFAULT_BYTES`].
    pub fn capacity_from_env() -> usize {
        match simfabric::env::usize_var("ADVISOR_CACHE_MB") {
            Some(mib) => mib << 20,
            None => RESULT_CACHE_DEFAULT_BYTES,
        }
    }

    /// The cached advice for `key`, if any (counts a hit or miss).
    pub fn get(&self, key: &QueryKey) -> Option<Arc<ReplayedAdvice>> {
        self.lru.get(key)
    }

    /// Retain `advice` under `key`, weighted by [`advice_bytes`].
    pub fn insert(&self, key: QueryKey, advice: Arc<ReplayedAdvice>) {
        let bytes = advice_bytes(&advice);
        self.lru.insert(key, advice, bytes);
    }

    /// Behaviour counters, summed over shards.
    pub fn stats(&self) -> ShardedCacheStats {
        self.lru.stats()
    }

    /// Retained entries.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Retained payload bytes.
    pub fn bytes(&self) -> usize {
        self.lru.bytes()
    }

    /// Snapshot as `advisor.cache.*` metrics: hit/miss/insert/
    /// eviction/rejection counters plus entry, byte, and shard
    /// gauges.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let stats = self.stats();
        let mut reg = MetricsRegistry::new();
        reg.counter("advisor.cache.hits", stats.hits);
        reg.counter("advisor.cache.misses", stats.misses);
        reg.counter("advisor.cache.inserts", stats.inserts);
        reg.counter("advisor.cache.evictions", stats.evictions);
        reg.counter("advisor.cache.rejected", stats.rejected);
        reg.gauge("advisor.cache.entries", self.len() as f64);
        reg.gauge("advisor.cache.bytes", self.bytes() as f64);
        reg.gauge(
            "advisor.cache.shard_cap_bytes",
            self.lru.shard_cap_bytes() as f64,
        );
        reg.gauge("advisor.cache.shards", self.lru.shards() as f64);
        reg
    }
}

/// What one [`AdvisorService::advise_batch`] call did, level by
/// level: how many raw queries came in, how many distinct keys they
/// folded into, how many of those the result cache answered, and how
/// many had to compute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Raw queries in the batch.
    pub queries: usize,
    /// Distinct canonical keys after dedup.
    pub distinct: usize,
    /// Distinct keys served from the result cache.
    pub cache_hits: usize,
    /// Distinct keys that ran [`answer`].
    pub computed: usize,
}

/// The batch advisor engine: canonicalize → dedupe → result cache →
/// worker pool. One instance owns one [`ResultCache`]; the global
/// classify cache is shared process-wide regardless.
#[derive(Debug)]
pub struct AdvisorService {
    cache: ResultCache,
    workers: usize,
    /// Distinct keys each pool worker computed, indexed by the stable
    /// worker slot [`par::par_queued_tagged`] reports — the provenance
    /// behind the `worker{i}.` shards in
    /// [`metrics_registry`](Self::metrics_registry).
    worker_computed: Vec<AtomicU64>,
}

impl AdvisorService {
    /// A service with a `cap_bytes` result-cache budget and at most
    /// `workers` concurrent miss computations.
    pub fn new(cap_bytes: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        AdvisorService {
            cache: ResultCache::new(cap_bytes),
            workers,
            worker_computed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A service sized from the environment:
    /// [`ResultCache::capacity_from_env`] and
    /// [`par::num_threads`] workers.
    pub fn with_defaults() -> Self {
        Self::new(ResultCache::capacity_from_env(), par::num_threads())
    }

    /// The service's result cache (stats, metrics).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Worker-pool width for miss computation.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The service's metric dump: the result cache's
    /// `advisor.cache.*` registry plus one shard per pool worker
    /// merged under a stable `worker{i}.` prefix
    /// ([`MetricsRegistry::merge_prefixed`]), so per-worker compute
    /// provenance survives the merge instead of folding into one
    /// anonymous counter. `worker0.` also covers inline single-miss
    /// computations (they run on the caller's thread).
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = self.cache.metrics_registry();
        for (i, computed) in self.worker_computed.iter().enumerate() {
            let mut shard = MetricsRegistry::new();
            shard.counter("advisor.computed", computed.load(Ordering::Relaxed));
            reg.merge_prefixed(&format!("worker{i}."), &shard);
        }
        reg
    }

    /// Answer one query — the batch path at N = 1, so the CLI and
    /// batch entry points share every level of the fast path.
    pub fn advise(&self, query: &AdvisorQuery) -> Arc<ReplayedAdvice> {
        let (mut answers, _) = self.advise_batch(std::slice::from_ref(query));
        answers.pop().expect("one query yields one answer")
    }

    /// Answer a batch: canonicalize every query, dedupe identical
    /// keys (N duplicates → one computation with N subscribers),
    /// serve repeats from the result cache, and fan the remaining
    /// misses over the worker pool (a single miss computes inline —
    /// no pool spin-up on the single-query path). Answers come back
    /// in input order; element `i` answers `queries[i]`.
    pub fn advise_batch(&self, queries: &[AdvisorQuery]) -> (Vec<Arc<ReplayedAdvice>>, BatchStats) {
        // Level 1: canonicalize and dedupe within the batch.
        let keys: Vec<QueryKey> = queries.iter().map(canonicalize).collect();
        let mut distinct: Vec<QueryKey> = Vec::new();
        let mut slot_of: HashMap<QueryKey, usize> = HashMap::new();
        let subscriptions: Vec<usize> = keys
            .iter()
            .map(|key| {
                *slot_of.entry(key.clone()).or_insert_with(|| {
                    distinct.push(key.clone());
                    distinct.len() - 1
                })
            })
            .collect();

        // Level 2: probe the result cache per distinct key.
        let mut resolved: Vec<Option<Arc<ReplayedAdvice>>> =
            distinct.iter().map(|key| self.cache.get(key)).collect();
        let cache_hits = resolved.iter().filter(|r| r.is_some()).count();

        // Level 3: compute the misses — inline for one, through the
        // worker pool for many.
        let miss_slots: Vec<usize> = resolved
            .iter()
            .enumerate()
            .filter_map(|(slot, r)| r.is_none().then_some(slot))
            .collect();
        let miss_keys: Vec<&QueryKey> = miss_slots.iter().map(|&s| &distinct[s]).collect();
        let computed: Vec<ReplayedAdvice> = if miss_keys.len() <= 1 {
            // The inline path runs on the caller's thread: worker 0.
            self.worker_computed[0].fetch_add(miss_keys.len() as u64, Ordering::Relaxed);
            miss_keys.iter().map(|key| answer(key)).collect()
        } else {
            par::par_queued_tagged(&miss_keys, self.workers, |_, key| answer(key))
                .into_iter()
                .map(|(worker, advice)| {
                    self.worker_computed[worker].fetch_add(1, Ordering::Relaxed);
                    advice
                })
                .collect()
        };
        for (&slot, advice) in miss_slots.iter().zip(computed) {
            let advice = Arc::new(advice);
            self.cache
                .insert(distinct[slot].clone(), Arc::clone(&advice));
            resolved[slot] = Some(advice);
        }

        let answers = subscriptions
            .iter()
            .map(|&slot| {
                Arc::clone(
                    resolved[slot]
                        .as_ref()
                        .expect("every distinct key is resolved"),
                )
            })
            .collect();
        (
            answers,
            BatchStats {
                queries: queries.len(),
                distinct: distinct.len(),
                cache_hits,
                computed: miss_slots.len(),
            },
        )
    }
}

/// Render advice as an `advisor_advice/v1` document: the
/// canonicalized query, the recommendation, and every candidate's
/// replay numbers.
pub fn advice_to_json(key: &QueryKey, advice: &ReplayedAdvice) -> Json {
    let candidates: Vec<Json> = advice
        .candidates
        .iter()
        .map(|c| {
            Json::obj([
                ("label", Json::Str(c.label.clone())),
                ("fits_budget", Json::Bool(c.fits_budget)),
                ("makespan_ps", Json::Num(c.report.makespan.as_ps() as f64)),
                ("avg_latency_ns", Json::Num(c.report.avg_latency.as_ns())),
                ("bandwidth_gbs", Json::Num(c.report.bandwidth_gbs)),
                ("accesses", Json::Num(c.report.accesses as f64)),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::Str(ADVICE_SCHEMA.into())),
        (
            "query",
            Json::obj([
                (
                    "workload",
                    Json::Str(format!(
                        "{}_{}x{}",
                        key.kind.name().to_lowercase(),
                        key.cores,
                        key.accesses_per_core
                    )),
                ),
                ("seed", Json::Num(key.seed as f64)),
                ("budget_pages", Json::Num(key.budget_pages as f64)),
                ("threads", Json::Num(key.threads as f64)),
                ("period", Json::Num(key.period as f64)),
                ("canonical", Json::Str(key.canonical())),
            ]),
        ),
        ("trace", Json::Str(advice.trace.clone())),
        ("best", Json::Num(advice.best as f64)),
        ("recommended", Json::Str(advice.recommended().label.clone())),
        ("speedup_vs_ddr", Json::Num(advice.speedup_vs_ddr)),
        ("candidates", Json::Arr(candidates)),
    ])
}

/// What [`check_advice`] found in a valid advice document.
#[derive(Debug, Clone, PartialEq)]
pub struct AdviceSummary {
    /// Candidates in the document.
    pub candidates: usize,
    /// The recommended candidate's label.
    pub recommended: String,
    /// The recommendation's speedup over all-DDR.
    pub speedup_vs_ddr: f64,
}

/// Validate an `advisor_advice/v1` document: schema tag, a complete
/// canonicalized query block, a non-empty candidate list with typed
/// replay fields, a `best` index in range whose label matches
/// `recommended`, and a positive finite speedup. Errors name the
/// offending field.
pub fn check_advice(doc: &Json) -> Result<AdviceSummary, String> {
    let schema = doc.str_field("schema")?;
    if schema != ADVICE_SCHEMA {
        return Err(format!("schema {schema:?}, expected {ADVICE_SCHEMA:?}"));
    }
    let query = doc.get("query").ok_or("missing `query` object")?;
    query.str_field("workload")?;
    query.str_field("canonical")?;
    for field in ["seed", "budget_pages", "threads", "period"] {
        let v = query.num_field(field)?;
        if field != "seed" && v < 1.0 {
            return Err(format!("query.{field} {v} below 1"));
        }
    }
    doc.str_field("trace")?;
    let speedup = doc.num_field("speedup_vs_ddr")?;
    if speedup <= 0.0 || !speedup.is_finite() {
        return Err(format!("non-positive speedup_vs_ddr {speedup}"));
    }
    let candidates = doc.arr_field("candidates")?;
    if candidates.is_empty() {
        return Err("empty candidates array".into());
    }
    for (i, c) in candidates.iter().enumerate() {
        let label = c.str_field("label")?;
        if !matches!(c.get("fits_budget"), Some(Json::Bool(_))) {
            return Err(format!("candidate {i} ({label}): missing fits_budget"));
        }
        for field in ["makespan_ps", "avg_latency_ns", "bandwidth_gbs", "accesses"] {
            let v = c.num_field(field)?;
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("candidate {i} ({label}): non-positive {field} {v}"));
            }
        }
    }
    let best = doc.num_field("best")? as usize;
    if best >= candidates.len() {
        return Err(format!(
            "best index {best} out of range ({} candidates)",
            candidates.len()
        ));
    }
    let recommended = doc.str_field("recommended")?;
    let best_label = candidates[best].str_field("label")?;
    if recommended != best_label {
        return Err(format!(
            "recommended {recommended:?} does not match candidates[{best}] {best_label:?}"
        ));
    }
    Ok(AdviceSummary {
        candidates: candidates.len(),
        recommended,
        speedup_vs_ddr: speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfabric::Rng;
    use std::collections::HashSet;

    fn tiny_query() -> AdvisorQuery {
        AdvisorQuery {
            kind: TraceKind::Stream,
            cores: 2,
            accesses_per_core: 150,
            seed: 0x51,
            budget: ByteSize::kib(64),
            threads: 64,
            migrate_period: 0,
        }
    }

    #[test]
    fn thread_folding_snaps_to_smt_levels() {
        assert_eq!(fold_threads(0), 64);
        assert_eq!(fold_threads(1), 64);
        assert_eq!(fold_threads(64), 64);
        assert_eq!(fold_threads(65), 128);
        assert_eq!(fold_threads(128), 128);
        assert_eq!(fold_threads(200), 256);
        assert_eq!(fold_threads(256), 256);
        assert_eq!(fold_threads(10_000), 256, "clamped to the valid range");
    }

    #[test]
    fn canonicalization_buckets_budget_and_resolves_period() {
        let mut q = tiny_query();
        q.budget = ByteSize::bytes(1);
        let key = canonicalize(&q);
        assert_eq!(key.budget_pages, 1, "budgets round up to whole pages");
        assert_eq!(key.period, auto_period(2, 150));
        assert!(key.period >= 256);
        q.migrate_period = 777;
        assert_eq!(canonicalize(&q).period, 777);
    }

    /// Satellite property test, half 1: any two queries mapping to
    /// the same `QueryKey` produce bit-identical advice through the
    /// full pipeline. Jitters every canonicalized dimension within
    /// its bucket, seeded so failures replay.
    #[test]
    fn same_key_queries_get_bit_identical_advice() {
        let mut rng = Rng::seed_from_u64(0x5E41CE);
        let base = tiny_query();
        let base_key = canonicalize(&base);
        let service = AdvisorService::new(0, 1); // cache off: both sides compute
        let want = service.advise(&base);
        for _ in 0..4 {
            let mut jittered = base.clone();
            // Same page bucket, different byte count.
            let pages = base_key.budget_pages;
            jittered.budget =
                ByteSize::bytes((pages - 1) * PAGE_BYTES + 1 + rng.next_below(PAGE_BYTES - 1));
            // Same SMT level, different request.
            jittered.threads = 1 + rng.next_below(64) as u32;
            let key = canonicalize(&jittered);
            assert_eq!(key, base_key, "jitter escaped the bucket: {jittered:?}");
            let got = service.advise(&jittered);
            assert_eq!(
                *got, *want,
                "same key must mean bit-identical advice: {jittered:?}"
            );
        }
    }

    /// Satellite property test, half 2: distinct key tuples never
    /// alias — every component reaches the canonical string.
    #[test]
    fn distinct_keys_never_alias() {
        let base = canonicalize(&tiny_query());
        let mut variants = vec![base.clone()];
        let mut v = base.clone();
        v.kind = TraceKind::Gups;
        variants.push(v.clone());
        v = base.clone();
        v.cores = 4;
        variants.push(v.clone());
        v = base.clone();
        v.accesses_per_core += 1;
        variants.push(v.clone());
        v = base.clone();
        v.seed ^= 1;
        variants.push(v.clone());
        v = base.clone();
        v.budget_pages += 1;
        variants.push(v.clone());
        v = base.clone();
        v.threads = 128;
        variants.push(v.clone());
        v = base.clone();
        v.period += 1;
        variants.push(v);
        let canonicals: HashSet<String> = variants.iter().map(QueryKey::canonical).collect();
        assert_eq!(
            canonicals.len(),
            variants.len(),
            "a key component failed to reach the canonical string"
        );
        let keys: HashSet<QueryKey> = variants.iter().cloned().collect();
        assert_eq!(keys.len(), variants.len());
    }

    #[test]
    fn batch_dedupes_and_warm_round_hits() {
        let service = AdvisorService::new(RESULT_CACHE_DEFAULT_BYTES, 2);
        let mut queries = Vec::new();
        for i in 0..6 {
            let mut q = tiny_query();
            // Three distinct budgets, each stated two ways.
            q.budget = ByteSize::bytes((1 + i / 2) * PAGE_BYTES - (i % 2) * 100);
            queries.push(q);
        }
        let (answers, stats) = service.advise_batch(&queries);
        assert_eq!(answers.len(), 6);
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.distinct, 3, "pairs must dedupe to one key each");
        assert_eq!(stats.computed, 3);
        assert_eq!(stats.cache_hits, 0);
        for pair in answers.chunks(2) {
            assert!(
                Arc::ptr_eq(&pair[0], &pair[1]),
                "duplicate queries must share one answer"
            );
        }
        // Warm round: identical answers, all from the cache.
        let (warm, warm_stats) = service.advise_batch(&queries);
        assert_eq!(warm_stats.cache_hits, 3);
        assert_eq!(warm_stats.computed, 0);
        for (a, b) in answers.iter().zip(&warm) {
            assert_eq!(**a, **b, "cold and warm answers must be bit-identical");
        }
        let cache_stats = service.cache().stats();
        assert_eq!(cache_stats.inserts, 3);
        assert!(cache_stats.hits >= 3);
    }

    #[test]
    fn single_query_path_is_the_batch_path() {
        let service = AdvisorService::new(RESULT_CACHE_DEFAULT_BYTES, 4);
        let q = tiny_query();
        let via_advise = service.advise(&q);
        let direct = answer(&canonicalize(&q));
        assert_eq!(*via_advise, direct);
        // The advise() call warmed the cache.
        assert!(Arc::ptr_eq(&via_advise, &service.advise(&q)));
    }

    #[test]
    fn batch_answers_match_workers_any_width() {
        let mut queries = Vec::new();
        for i in 0..4u64 {
            let mut q = tiny_query();
            q.seed = 0x51 + i;
            queries.push(q);
        }
        let serial = AdvisorService::new(0, 1).advise_batch(&queries).0;
        let pooled = AdvisorService::new(0, 4).advise_batch(&queries).0;
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(**a, **b, "worker width must not change answers");
        }
    }

    #[test]
    fn query_json_round_trips_with_defaults() {
        let doc = crate::json::parse(r#"{"workload": "stream_4x200", "budget_kib": 128}"#).unwrap();
        let q = AdvisorQuery::from_json(&doc).unwrap();
        assert_eq!(q.kind, TraceKind::Stream);
        assert_eq!((q.cores, q.accesses_per_core), (4, 200));
        assert_eq!(q.seed, DEFAULT_QUERY_SEED);
        assert_eq!(q.budget, ByteSize::kib(128));
        assert_eq!((q.threads, q.migrate_period), (64, 0));
        let back = AdvisorQuery::from_json(&q.to_json()).unwrap();
        assert_eq!(back, q);

        for bad in [
            r#"{"budget_kib": 128}"#,
            r#"{"workload": "warp_4x200"}"#,
            r#"{"workload": "stream_4x200", "budget_kib": 0}"#,
            r#"{"workload": "stream_4x200", "threads": "lots"}"#,
        ] {
            let doc = crate::json::parse(bad).unwrap();
            assert!(AdvisorQuery::from_json(&doc).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn advice_document_validates_and_round_trips() {
        let q = tiny_query();
        let key = canonicalize(&q);
        let advice = answer(&key);
        let doc = advice_to_json(&key, &advice);
        let summary = check_advice(&doc).expect("fresh advice validates");
        assert_eq!(summary.candidates, 5);
        assert_eq!(summary.recommended, advice.recommended().label);
        let parsed = crate::json::parse(&doc.to_compact()).expect("compact parses");
        check_advice(&parsed).expect("parsed advice validates");

        // Mutations the checker must catch.
        assert!(check_advice(&Json::obj([])).is_err());
        if let Json::Obj(mut map) = doc.clone() {
            map.insert("best".into(), Json::Num(99.0));
            assert!(check_advice(&Json::Obj(map)).is_err(), "best out of range");
        }
        if let Json::Obj(mut map) = doc {
            map.insert("recommended".into(), Json::Str("nope".into()));
            assert!(
                check_advice(&Json::Obj(map)).is_err(),
                "recommended must match best"
            );
        }
    }

    #[test]
    fn metrics_cover_the_cache_counters() {
        use simfabric::telemetry::MetricValue;
        let service = AdvisorService::new(RESULT_CACHE_DEFAULT_BYTES, 1);
        let q = tiny_query();
        let _ = service.advise(&q);
        let _ = service.advise(&q);
        let reg = service.cache().metrics_registry();
        assert_eq!(
            reg.get("advisor.cache.hits"),
            Some(&MetricValue::Counter(1))
        );
        assert_eq!(
            reg.get("advisor.cache.misses"),
            Some(&MetricValue::Counter(1))
        );
        assert_eq!(
            reg.get("advisor.cache.inserts"),
            Some(&MetricValue::Counter(1))
        );
        assert!(matches!(
            reg.get("advisor.cache.bytes"),
            Some(MetricValue::Gauge(b)) if *b > 0.0
        ));
    }

    #[test]
    fn workload_labels_parse_and_reject() {
        assert!(parse_workload("stream_8x2000").is_ok());
        assert!(parse_workload("XSBench_4x10").is_ok());
        for bad in [
            "stream",
            "stream_8",
            "warp_8x100",
            "stream_0x100",
            "stream_8x0",
        ] {
            assert!(parse_workload(bad).is_err(), "accepted {bad:?}");
        }
    }
}

//! Minimal in-tree JSON: a value type, a recursive-descent parser and
//! a pretty printer.
//!
//! Replaces `serde`/`serde_json` so the workspace builds offline. Only
//! the archive format ([`crate::archive::Archive`]) crosses a
//! serialization boundary, so this module supports exactly what JSON
//! itself requires — objects, arrays, strings with escapes, f64
//! numbers, booleans and null — and nothing generic: each archived
//! type writes and reads its own fields explicitly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Required string field of an object (error names the key).
    pub fn str_field(&self, key: &str) -> Result<String, String> {
        self.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing or non-string field `{key}`"))
    }

    /// Required numeric field of an object.
    pub fn num_field(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
    }

    /// Required array field of an object.
    pub fn arr_field<'a>(&'a self, key: &str) -> Result<&'a [Json], String> {
        self.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing or non-array field `{key}`"))
    }

    /// Build an object from key/value pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serialize with 2-space indentation and `\n` line ends.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Serialize on one line with no whitespace — the JSON-lines form
    /// the advisor service's batch files use (one document per line).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; archives never contain them (missing
        // points are `null`), so treat any that appear as null.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Shortest representation that round-trips an f64.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 —
                    // it came from a &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        // self.pos is on the `u`.
        let hex4 = |p: &mut Self| -> Result<u32, String> {
            p.pos += 1; // past `u`
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err("truncated \\u escape".into());
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..end]).map_err(|e| e.to_string())?;
            let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect `\uXXXX` low half.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    let lo = hex4(self)?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| "invalid surrogate pair".into());
                    }
                }
            }
            return Err("unpaired surrogate".into());
        }
        char::from_u32(hi).ok_or_else(|| "invalid \\u escape".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.str_field("c").unwrap(), "x");
        let arr = v.arr_field("a").unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn pretty_print_roundtrips() {
        let v = Json::obj([
            ("name", Json::Str("fig\"2\"\n".into())),
            (
                "vals",
                Json::Arr(vec![Json::Num(1.5), Json::Null, Json::Num(-3.0)]),
            ),
            ("empty", Json::Arr(vec![])),
            ("flag", Json::Bool(true)),
        ]);
        let text = v.to_pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn compact_form_is_single_line_and_round_trips() {
        let v = Json::obj([
            ("name", Json::Str("a\nb".into())),
            ("vals", Json::Arr(vec![Json::Num(1.5), Json::Null])),
            ("empty", Json::obj([])),
        ]);
        let text = v.to_compact();
        assert!(!text.contains('\n') && !text.contains(' '), "{text}");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn numbers_roundtrip_precisely() {
        for n in [
            0.0,
            1.0,
            -1.0,
            0.1,
            1e-11,
            77.125,
            1.0e15,
            f64::MIN_POSITIVE,
        ] {
            let text = Json::Num(n).to_pretty();
            assert_eq!(parse(&text).unwrap().as_f64().unwrap(), n, "{text}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", r#"{"a" 1}"#, "tru", "1..2", "[] []", ""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn control_chars_are_escaped() {
        let text = Json::Str("a\u{1}b".into()).to_pretty();
        assert_eq!(text, "\"a\\u0001b\"");
        assert_eq!(parse(&text).unwrap(), Json::Str("a\u{1}b".into()));
    }
}

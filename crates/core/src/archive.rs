//! Result archives: persist a full set of reproduced figures as JSON
//! and compare two archives point by point.
//!
//! This is how regressions in the model are caught across calibration
//! changes: `repro export results.json` after a change, then
//! `repro diff old.json new.json` shows every figure point that moved
//! by more than a tolerance.

use crate::experiment::{Measurement, Series};
use crate::figures::FigureData;
use crate::json::{self, Json};

/// A saved set of figures plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Archive {
    /// Schema version for forward compatibility.
    pub version: u32,
    /// Free-form description (machine preset, code revision, …).
    pub description: String,
    /// The figures.
    pub figures: Vec<FigureData>,
}

/// Current archive schema version.
pub const ARCHIVE_VERSION: u32 = 1;

impl Archive {
    /// Capture figures into an archive.
    pub fn capture(description: &str, figures: Vec<FigureData>) -> Self {
        Archive {
            version: ARCHIVE_VERSION,
            description: description.to_string(),
            figures,
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        let figures = self.figures.iter().map(figure_to_json).collect();
        Json::obj([
            ("version", Json::Num(self.version as f64)),
            ("description", Json::Str(self.description.clone())),
            ("figures", Json::Arr(figures)),
        ])
        .to_pretty()
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = json::parse(s)?;
        let version = v.num_field("version")? as u32;
        if version != ARCHIVE_VERSION {
            return Err(format!(
                "archive version {version} unsupported (expected {ARCHIVE_VERSION})"
            ));
        }
        let figures = v
            .arr_field("figures")?
            .iter()
            .map(figure_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Archive {
            version,
            description: v.str_field("description")?,
            figures,
        })
    }

    /// Find a figure by id.
    pub fn figure(&self, id: &str) -> Option<&FigureData> {
        self.figures.iter().find(|f| f.id == id)
    }
}

/// One difference between two archives.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Figure id.
    pub figure: String,
    /// Series label.
    pub series: String,
    /// X coordinate.
    pub x: f64,
    /// Value in the baseline (None = missing point).
    pub baseline: Option<f64>,
    /// Value in the candidate.
    pub candidate: Option<f64>,
    /// Relative change (None when either side is missing).
    pub rel_change: Option<f64>,
}

fn series_points(s: &Series) -> impl Iterator<Item = (f64, Option<f64>)> + '_ {
    s.points.iter().map(|p| (p.x, p.value))
}

fn figure_to_json(f: &FigureData) -> Json {
    let series = f
        .series
        .iter()
        .map(|s| {
            let points = s
                .points
                .iter()
                .map(|p| {
                    Json::obj([
                        ("x", Json::Num(p.x)),
                        ("value", p.value.map_or(Json::Null, Json::Num)),
                    ])
                })
                .collect();
            Json::obj([
                ("label", Json::Str(s.label.clone())),
                ("points", Json::Arr(points)),
            ])
        })
        .collect();
    Json::obj([
        ("id", Json::Str(f.id.clone())),
        ("title", Json::Str(f.title.clone())),
        ("x_label", Json::Str(f.x_label.clone())),
        ("y_label", Json::Str(f.y_label.clone())),
        ("series", Json::Arr(series)),
        ("text", Json::Str(f.text.clone())),
    ])
}

fn figure_from_json(v: &Json) -> Result<FigureData, String> {
    let series = v
        .arr_field("series")?
        .iter()
        .map(|s| {
            let points = s
                .arr_field("points")?
                .iter()
                .map(|p| {
                    let value = match p.get("value") {
                        Some(Json::Null) | None => None,
                        Some(other) => Some(
                            other
                                .as_f64()
                                .ok_or_else(|| "non-numeric point value".to_string())?,
                        ),
                    };
                    Ok(Measurement {
                        x: p.num_field("x")?,
                        value,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Series {
                label: s.str_field("label")?,
                points,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(FigureData {
        id: v.str_field("id")?,
        title: v.str_field("title")?,
        x_label: v.str_field("x_label")?,
        y_label: v.str_field("y_label")?,
        series,
        text: v.str_field("text")?,
    })
}

/// Compare two archives; returns every point whose relative change
/// exceeds `tolerance` (or whose presence changed).
pub fn diff(baseline: &Archive, candidate: &Archive, tolerance: f64) -> Vec<Divergence> {
    let mut out = Vec::new();
    for bf in &baseline.figures {
        let Some(cf) = candidate.figure(&bf.id) else {
            out.push(Divergence {
                figure: bf.id.clone(),
                series: "<figure missing>".into(),
                x: f64::NAN,
                baseline: None,
                candidate: None,
                rel_change: None,
            });
            continue;
        };
        for bs in &bf.series {
            let Some(cs) = cf.series.iter().find(|s| s.label == bs.label) else {
                out.push(Divergence {
                    figure: bf.id.clone(),
                    series: bs.label.clone(),
                    x: f64::NAN,
                    baseline: None,
                    candidate: None,
                    rel_change: None,
                });
                continue;
            };
            for (x, bv) in series_points(bs) {
                let cv = cs.value_at(x);
                match (bv, cv) {
                    (Some(b), Some(c)) => {
                        let rel = if b == 0.0 {
                            if c == 0.0 {
                                0.0
                            } else {
                                f64::INFINITY
                            }
                        } else {
                            (c - b).abs() / b.abs()
                        };
                        if rel > tolerance {
                            out.push(Divergence {
                                figure: bf.id.clone(),
                                series: bs.label.clone(),
                                x,
                                baseline: bv,
                                candidate: cv,
                                rel_change: Some(rel),
                            });
                        }
                    }
                    (None, None) => {}
                    _ => out.push(Divergence {
                        figure: bf.id.clone(),
                        series: bs.label.clone(),
                        x,
                        baseline: bv,
                        candidate: cv,
                        rel_change: None,
                    }),
                }
            }
        }
    }
    out
}

/// Render divergences as a report.
pub fn render_diff(divs: &[Divergence]) -> String {
    if divs.is_empty() {
        return "archives match within tolerance\n".into();
    }
    let mut out = format!("{} divergence(s):\n", divs.len());
    for d in divs {
        out.push_str(&format!(
            "  {:6} {:12} x={:<8} {} -> {} ({})\n",
            d.figure,
            d.series,
            d.x,
            d.baseline.map_or("-".into(), |v| format!("{v:.4}")),
            d.candidate.map_or("-".into(), |v| format!("{v:.4}")),
            d.rel_change
                .map_or("presence changed".into(), |r| format!("{:+.1}%", r * 100.0)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Measurement;

    fn fig(id: &str, vals: &[(f64, Option<f64>)]) -> FigureData {
        FigureData {
            id: id.into(),
            title: id.into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "S".into(),
                points: vals
                    .iter()
                    .map(|&(x, value)| Measurement { x, value })
                    .collect(),
            }],
            text: String::new(),
        }
    }

    #[test]
    fn json_roundtrip() {
        let a = Archive::capture("test", vec![fig("fig2", &[(1.0, Some(77.0))])]);
        let b = Archive::from_json(&a.to_json()).unwrap();
        assert_eq!(a, b);
        assert!(b.figure("fig2").is_some());
        assert!(b.figure("nope").is_none());
    }

    #[test]
    fn identical_archives_have_no_diff() {
        let a = Archive::capture("x", vec![fig("f", &[(1.0, Some(2.0)), (2.0, None)])]);
        assert!(diff(&a, &a, 0.01).is_empty());
        assert!(render_diff(&[]).contains("match"));
    }

    #[test]
    fn value_drift_beyond_tolerance_is_reported() {
        let a = Archive::capture("a", vec![fig("f", &[(1.0, Some(100.0))])]);
        let b = Archive::capture("b", vec![fig("f", &[(1.0, Some(104.0))])]);
        assert!(diff(&a, &b, 0.05).is_empty());
        let d = diff(&a, &b, 0.03);
        assert_eq!(d.len(), 1);
        assert!((d[0].rel_change.unwrap() - 0.04).abs() < 1e-12);
        assert!(render_diff(&d).contains("+4.0%"));
    }

    #[test]
    fn presence_changes_are_reported() {
        let a = Archive::capture("a", vec![fig("f", &[(1.0, Some(1.0))])]);
        let b = Archive::capture("b", vec![fig("f", &[(1.0, None)])]);
        let d = diff(&a, &b, 0.5);
        assert_eq!(d.len(), 1);
        assert!(d[0].rel_change.is_none());
    }

    #[test]
    fn missing_figures_and_series_are_reported() {
        let a = Archive::capture("a", vec![fig("f", &[(1.0, Some(1.0))])]);
        let b = Archive::capture("b", vec![]);
        let d = diff(&a, &b, 0.5);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].series, "<figure missing>");
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut a = Archive::capture("a", vec![]);
        a.version = 99;
        assert!(Archive::from_json(&a.to_json()).is_err());
    }
}

//! `hybridmem` — the paper's characterization framework.
//!
//! This crate ties the simulated KNL node and the workload suite into
//! the experiment pipeline of the paper: configuration sweeps over
//! memory setup, problem size and thread count; a registry that
//! regenerates every table and figure; reporters; shape validators
//! checking that the reproduction preserves the paper's findings; and
//! the placement-guidelines advisor the paper's conclusions amount to.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod advisor;
pub mod archive;
pub mod experiment;
pub mod extensions;
pub mod figures;
pub mod json;
pub mod migration;
pub mod paper;
pub mod profile;
pub mod report;
pub mod sensitivity;
pub mod service;
pub mod sweep;
pub mod validate;

pub use advisor::{
    advise, advise_replayed, AppProfile, Recommendation, ReplayedAdvice, ReplayedCandidate,
};
pub use archive::{diff, Archive, Divergence};
pub use experiment::{
    AppSpec, Measurement, Series, SizeSweep, ThreadSweep, TraceReplay, TraceSweep,
};
pub use extensions::{decompose, DecompositionPlan};
pub use figures::{all_figures, FigureData};
pub use migration::{
    ext_migration, render_migration_sweep, run_migration_sweep, MigrationSweep,
    MigrationSweepConfig,
};
pub use paper::{compare_with_model, paper_reference};
pub use profile::{
    check_chrome_trace, check_metrics, check_timeseries, metrics_to_json, render_report,
    ChromeTraceSummary, MetricsSummary, TimeSeriesSummary,
};
pub use report::{render_figure, render_trace_replays, series_csv};
pub use sensitivity::{all_scans, scan_split_boundary_replayed, SensitivityScan};
pub use service::{
    advice_to_json, answer, canonicalize, check_advice, fold_threads, AdviceSummary, AdvisorQuery,
    AdvisorService, BatchStats, QueryKey, ResultCache,
};
pub use sweep::{classified_for, replay_into, replay_point, sweep_reuse_enabled, TraceSpec};
pub use validate::{validate_all, ShapeCheck};

//! Shape validators: executable versions of the paper's findings.
//!
//! Each check evaluates a reproduced figure and asserts the *shape*
//! the paper reports — who wins, by roughly what factor, where the
//! crossovers fall. `validate_all` runs every check and is used by the
//! integration tests and the `repro validate` command; EXPERIMENTS.md
//! records its output.

use crate::experiment::Series;
use crate::figures;

/// Outcome of one shape check.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeCheck {
    /// Which figure the check belongs to.
    pub figure: String,
    /// What the paper claims.
    pub claim: String,
    /// Whether the reproduction preserves it.
    pub pass: bool,
    /// Measured detail backing the verdict.
    pub detail: String,
}

fn check(figure: &str, claim: &str, pass: bool, detail: String) -> ShapeCheck {
    ShapeCheck {
        figure: figure.to_string(),
        claim: claim.to_string(),
        pass,
        detail,
    }
}

fn series<'a>(all: &'a [Series], label: &str) -> &'a Series {
    all.iter()
        .find(|s| s.label == label)
        .unwrap_or_else(|| panic!("missing series {label}"))
}

/// Fig. 2 checks.
pub fn validate_fig2() -> Vec<ShapeCheck> {
    let f = figures::fig2();
    let dram = series(&f.series, "DRAM");
    let hbm = series(&f.series, "HBM");
    let cache = series(&f.series, "Cache Mode");
    let mut out = Vec::new();

    let d = dram.value_at(8.0).unwrap();
    out.push(check(
        "fig2",
        "DRAM sustains ~77 GB/s",
        (d - 77.0).abs() < 5.0,
        format!("measured {d:.1} GB/s"),
    ));
    let h = hbm.value_at(8.0).unwrap();
    out.push(check(
        "fig2",
        "HBM sustains ~330 GB/s (≈4x DRAM) at 1 thread/core",
        (h - 330.0).abs() < 20.0 && h / d > 4.0,
        format!("measured {h:.1} GB/s, ratio {:.2}", h / d),
    ));
    let c8 = cache.value_at(8.0).unwrap();
    out.push(check(
        "fig2",
        "cache mode peaks ~260 GB/s near half the HBM capacity",
        (c8 - 260.0).abs() < 25.0,
        format!("measured {c8:.1} GB/s at 8 GB"),
    ));
    let c114 = cache.value_at(11.4).unwrap();
    out.push(check(
        "fig2",
        "cache mode drops to ~125 GB/s at 11.4 GB",
        (c114 - 125.0).abs() < 30.0,
        format!("measured {c114:.1} GB/s"),
    ));
    let c18 = cache.value_at(18.0).unwrap();
    out.push(check(
        "fig2",
        "cache mode beats DRAM between 16 and 24 GB",
        c18 > dram.value_at(18.0).unwrap(),
        format!(
            "cache {c18:.1} vs DRAM {:.1} at 18 GB",
            dram.value_at(18.0).unwrap()
        ),
    ));
    let c28 = cache.value_at(28.0).unwrap();
    out.push(check(
        "fig2",
        "cache mode falls below DRAM beyond ~24 GB",
        c28 < dram.value_at(28.0).unwrap(),
        format!(
            "cache {c28:.1} vs DRAM {:.1} at 28 GB",
            dram.value_at(28.0).unwrap()
        ),
    ));
    out.push(check(
        "fig2",
        "HBM measurements stop when data exceeds 16 GB",
        hbm.value_at(18.0).is_none() && hbm.value_at(14.0).is_some(),
        "no HBM point past 16 GB".into(),
    ));
    out
}

/// Fig. 3 checks.
pub fn validate_fig3() -> Vec<ShapeCheck> {
    let f = figures::fig3();
    let dram = series(&f.series, "DRAM");
    let hbm = series(&f.series, "HBM");
    let gap = series(&f.series, "Performance Gap (%)");
    let mut out = Vec::new();
    let small = dram.value_at(0.25).unwrap();
    out.push(check(
        "fig3",
        "blocks within the 1-MB L2 cost ~10 ns",
        (small - 10.0).abs() < 3.0,
        format!("measured {small:.1} ns at 256 KiB"),
    ));
    let mid = dram.value_at(16.0).unwrap();
    out.push(check(
        "fig3",
        "the 1–64 MB tier sits near 200 ns",
        (150.0..260.0).contains(&mid),
        format!("measured {mid:.1} ns at 16 MiB"),
    ));
    let big = dram.value_at(1024.0).unwrap();
    out.push(check(
        "fig3",
        "latency keeps climbing beyond 128 MB",
        big > dram.value_at(128.0).unwrap() + 20.0,
        format!(
            "1 GiB {big:.1} ns vs 128 MiB {:.1} ns",
            dram.value_at(128.0).unwrap()
        ),
    ));
    let gaps: Vec<f64> = gap
        .points
        .iter()
        .filter(|p| p.x >= 2.0)
        .filter_map(|p| p.value)
        .collect();
    out.push(check(
        "fig3",
        "DRAM is 15–20% faster than HBM beyond the L2",
        gaps.iter().all(|&g| (10.0..22.0).contains(&g)),
        format!("gaps {:.1?}", gaps),
    ));
    let peak = gap.value_at(2.0).unwrap();
    let tail = gap.value_at(1024.0).unwrap();
    out.push(check(
        "fig3",
        "the gap peaks (~20%) just past the L2 and shrinks toward 15%",
        peak > 17.0 && tail < peak,
        format!("peak {peak:.1}% at 2 MiB, {tail:.1}% at 1 GiB"),
    ));
    let _ = hbm;
    out
}

/// Fig. 4 checks (all five applications).
pub fn validate_fig4() -> Vec<ShapeCheck> {
    let mut out = Vec::new();

    let a = figures::fig4a();
    let dgemm_ratio = series(&a.series, "HBM").value_at(6.0).unwrap()
        / series(&a.series, "DRAM").value_at(6.0).unwrap();
    out.push(check(
        "fig4a",
        "DGEMM gains ~2x from HBM",
        (1.6..2.4).contains(&dgemm_ratio),
        format!("HBM/DRAM = {dgemm_ratio:.2} at 6 GB"),
    ));

    let b = figures::fig4b();
    let minife_ratio = series(&b.series, "HBM").value_at(7.2).unwrap()
        / series(&b.series, "DRAM").value_at(7.2).unwrap();
    out.push(check(
        "fig4b",
        "MiniFE gains ~3x from HBM",
        (2.6..3.8).contains(&minife_ratio),
        format!("HBM/DRAM = {minife_ratio:.2} at 7.2 GB"),
    ));
    let cache_gain = series(&b.series, "Cache Mode").value_at(28.8).unwrap()
        / series(&b.series, "DRAM").value_at(28.8).unwrap();
    out.push(check(
        "fig4b",
        "MiniFE cache-mode gain decays to ~1.05x at ~2x HBM capacity",
        (0.95..1.3).contains(&cache_gain),
        format!("cache/DRAM = {cache_gain:.2} at 28.8 GB"),
    ));

    for (fig, data, large) in [
        ("fig4c", figures::fig4c(), 16.0),
        ("fig4d", figures::fig4d(), 8.8),
        ("fig4e", figures::fig4e(), 11.3),
    ] {
        let dram = series(&data.series, "DRAM");
        let hbm = series(&data.series, "HBM");
        // Largest size that still fits HBM.
        let fit = hbm
            .points
            .iter()
            .filter(|p| p.value.is_some())
            .map(|p| p.x)
            .fold(0.0f64, f64::max);
        let d = dram.value_at(fit).unwrap();
        let h = hbm.value_at(fit).unwrap();
        out.push(check(
            fig,
            "random-access apps do NOT gain from HBM (DRAM best)",
            d >= h,
            format!("DRAM {d:.3e} vs HBM {h:.3e} at {fit} GB"),
        ));
        let _ = large;
    }

    let d500 = figures::fig4d();
    let ratio = series(&d500.series, "DRAM").value_at(35.0).unwrap()
        / series(&d500.series, "Cache Mode").value_at(35.0).unwrap();
    out.push(check(
        "fig4d",
        "Graph500 on DRAM is ~1.3x cache mode at the largest graph",
        (1.15..1.5).contains(&ratio),
        format!("DRAM/cache = {ratio:.2} at 35 GB"),
    ));
    out
}

/// Fig. 5 checks.
pub fn validate_fig5() -> Vec<ShapeCheck> {
    let f = figures::fig5();
    let h1 = series(&f.series, "HBM (ht = 1)").value_at(6.0).unwrap();
    let h2 = series(&f.series, "HBM (ht = 2)").value_at(6.0).unwrap();
    let d1 = series(&f.series, "DRAM (ht = 1)").value_at(6.0).unwrap();
    let d4 = series(&f.series, "DRAM (ht = 4)").value_at(6.0).unwrap();
    vec![
        check(
            "fig5",
            "two HW threads/core reach ~1.27x the 1-thread HBM bandwidth",
            (h2 / h1 - 1.27).abs() < 0.06,
            format!("ht2/ht1 = {:.3}", h2 / h1),
        ),
        check(
            "fig5",
            "HBM reaches ~420 GB/s with multiple threads",
            (h2 - 420.0).abs() < 15.0,
            format!("measured {h2:.1} GB/s"),
        ),
        check(
            "fig5",
            "DRAM bandwidth is insensitive to threads (lines overlap)",
            (d4 / d1 - 1.0).abs() < 0.03,
            format!("ht4/ht1 = {:.3}", d4 / d1),
        ),
    ]
}

/// Fig. 6 checks.
pub fn validate_fig6() -> Vec<ShapeCheck> {
    let mut out = Vec::new();
    let a = figures::fig6a();
    let hbm = series(&a.series, "HBM");
    let gain = hbm.value_at(192.0).unwrap() / hbm.value_at(64.0).unwrap();
    out.push(check(
        "fig6a",
        "DGEMM gains ~1.7x from 64 to 192 threads on HBM",
        (1.5..1.9).contains(&gain),
        format!("gain {gain:.2}"),
    ));
    out.push(check(
        "fig6a",
        "DGEMM cannot complete with 256 threads",
        hbm.value_at(256.0).is_none(),
        "no 256-thread point".into(),
    ));

    let b = figures::fig6b();
    let hbm_b = series(&b.series, "HBM");
    let gain_b = hbm_b.value_at(192.0).unwrap() / hbm_b.value_at(64.0).unwrap();
    out.push(check(
        "fig6b",
        "MiniFE gains ~1.5-1.7x from 64 to 192 threads on HBM",
        (1.3..1.9).contains(&gain_b),
        format!("gain {gain_b:.2}"),
    ));

    let c = figures::fig6c();
    for label in ["DRAM", "HBM", "Cache Mode"] {
        let s = series(&c.series, label);
        let best = [64.0, 128.0, 192.0, 256.0]
            .into_iter()
            .max_by(|&x, &y| {
                s.value_at(x)
                    .unwrap()
                    .partial_cmp(&s.value_at(y).unwrap())
                    .unwrap()
            })
            .unwrap();
        out.push(check(
            "fig6c",
            "Graph500 peaks at 128 threads in every configuration",
            best == 128.0,
            format!("{label} best at {best} threads"),
        ));
    }
    let dram_c = series(&c.series, "DRAM");
    out.push(check(
        "fig6c",
        "Graph500: DRAM remains the best configuration",
        dram_c.value_at(128.0).unwrap() >= series(&c.series, "HBM").value_at(128.0).unwrap()
            && dram_c.value_at(128.0).unwrap()
                >= series(&c.series, "Cache Mode").value_at(128.0).unwrap(),
        "DRAM ≥ HBM, cache at 128 threads".into(),
    ));

    let d = figures::fig6d();
    let dram_d = series(&d.series, "DRAM");
    let hbm_d = series(&d.series, "HBM");
    let cache_d = series(&d.series, "Cache Mode");
    let d_gain = dram_d.value_at(256.0).unwrap() / dram_d.value_at(64.0).unwrap();
    let h_gain = hbm_d.value_at(256.0).unwrap() / hbm_d.value_at(64.0).unwrap();
    out.push(check(
        "fig6d",
        "XSBench: ~2.5x with 256 threads on HBM/cache, ~1.5x on DRAM",
        (2.0..3.2).contains(&h_gain) && (1.1..1.9).contains(&d_gain),
        format!("HBM gain {h_gain:.2}, DRAM gain {d_gain:.2}"),
    ));
    out.push(check(
        "fig6d",
        "XSBench: hyper-threading flips the best configuration to HBM",
        hbm_d.value_at(256.0).unwrap() > dram_d.value_at(256.0).unwrap()
            && cache_d.value_at(256.0).unwrap() > dram_d.value_at(256.0).unwrap()
            && dram_d.value_at(64.0).unwrap() > hbm_d.value_at(64.0).unwrap(),
        "DRAM best at 64, HBM/cache best at 256".into(),
    ));
    out
}

/// Run every shape check.
pub fn validate_all() -> Vec<ShapeCheck> {
    let mut out = Vec::new();
    out.extend(validate_fig2());
    out.extend(validate_fig3());
    out.extend(validate_fig4());
    out.extend(validate_fig5());
    out.extend(validate_fig6());
    out
}

/// Render checks as a pass/fail report.
pub fn render_checks(checks: &[ShapeCheck]) -> String {
    let mut out = String::new();
    let passed = checks.iter().filter(|c| c.pass).count();
    out.push_str(&format!(
        "{passed}/{} paper findings preserved\n",
        checks.len()
    ));
    for c in checks {
        out.push_str(&format!(
            "[{}] {:6} {} — {}\n",
            if c.pass { "PASS" } else { "FAIL" },
            c.figure,
            c.claim,
            c.detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The per-figure validators are exercised end-to-end by the
    // workspace integration tests (tests/shape_validation.rs); here we
    // test the bookkeeping only, on the cheapest figure.
    #[test]
    fn fig5_checks_pass_and_render() {
        let checks = validate_fig5();
        assert_eq!(checks.len(), 3);
        assert!(checks.iter().all(|c| c.pass), "{}", render_checks(&checks));
        let rendered = render_checks(&checks);
        assert!(rendered.contains("3/3"));
        assert!(rendered.contains("PASS"));
    }

    #[test]
    fn render_marks_failures() {
        let checks = vec![ShapeCheck {
            figure: "figX".into(),
            claim: "the moon is cheese".into(),
            pass: false,
            detail: "it is rock".into(),
        }];
        let r = render_checks(&checks);
        assert!(r.contains("0/1"));
        assert!(r.contains("FAIL"));
        assert!(r.contains("it is rock"));
    }
}

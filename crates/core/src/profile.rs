//! Profile exporters and validators: the flat-JSON metrics dump for a
//! [`MetricsRegistry`](simfabric::MetricsRegistry), plus structural
//! checkers for both exporter outputs (the metrics JSON here and the
//! Chrome `trace_event` JSONL produced by
//! [`simfabric::telemetry::chrome_trace_jsonl`]).
//!
//! The exporters live in two places deliberately: the Chrome exporter
//! sits in `simfabric` next to the span log (it needs no JSON value
//! type — field order is fixed by hand), while the metrics dump lives
//! here next to [`crate::json`], the in-tree JSON value type every
//! archived artifact uses. The checkers both run in CI: `repro
//! profile-check` validates that a freshly produced profile parses,
//! that span timestamps are monotonically non-decreasing, and that the
//! expected phases and device series are present.

use crate::json::{self, Json};
use simfabric::telemetry::{MetricValue, MetricsRegistry};

/// Schema tag of the metrics dump.
pub const METRICS_SCHEMA: &str = "telemetry_metrics/v1";

/// Render a registry as a flat JSON document: one object per metric,
/// keyed by metric name, each self-describing via a `"type"` field.
/// Deterministic — the registry iterates in name order and the JSON
/// object keeps key order.
pub fn metrics_to_json(reg: &MetricsRegistry) -> Json {
    let mut metrics = std::collections::BTreeMap::new();
    for (name, value) in reg.iter() {
        let entry = match value {
            MetricValue::Counter(n) => Json::obj([
                ("type", Json::Str("counter".into())),
                ("value", Json::Num(*n as f64)),
            ]),
            MetricValue::Gauge(v) => Json::obj([
                ("type", Json::Str("gauge".into())),
                ("value", Json::Num(if v.is_finite() { *v } else { 0.0 })),
            ]),
            MetricValue::Histogram(h) => Json::obj([
                ("type", Json::Str("histogram".into())),
                ("count", Json::Num(h.count() as f64)),
                ("mean", Json::Num(h.mean())),
                ("min", Json::Num(h.min().unwrap_or(0) as f64)),
                ("p50", Json::Num(h.quantile_bound(0.5) as f64)),
                ("p99", Json::Num(h.quantile_bound(0.99) as f64)),
                ("max", Json::Num(h.max().unwrap_or(0) as f64)),
            ]),
        };
        metrics.insert(name.to_string(), entry);
    }
    Json::obj([
        ("schema", Json::Str(METRICS_SCHEMA.into())),
        ("metrics", Json::Obj(metrics)),
    ])
}

/// Summary of a validated metrics dump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Counter metrics present.
    pub counters: usize,
    /// Gauge metrics present.
    pub gauges: usize,
    /// Histogram metrics present.
    pub histograms: usize,
}

impl MetricsSummary {
    /// Total metrics of any type.
    pub fn total(&self) -> usize {
        self.counters + self.gauges + self.histograms
    }
}

/// Validate a metrics dump against [`METRICS_SCHEMA`]: the schema tag,
/// and per metric a known `"type"` with that type's required numeric
/// fields. Errors name the offending metric.
pub fn check_metrics(doc: &Json) -> Result<MetricsSummary, String> {
    let schema = doc.str_field("schema")?;
    if schema != METRICS_SCHEMA {
        return Err(format!("schema {schema:?}, expected {METRICS_SCHEMA:?}"));
    }
    let metrics = match doc.get("metrics") {
        Some(Json::Obj(m)) => m,
        _ => return Err("missing or non-object field `metrics`".into()),
    };
    let mut summary = MetricsSummary::default();
    for (name, entry) in metrics {
        let kind = entry
            .str_field("type")
            .map_err(|e| format!("metric {name:?}: {e}"))?;
        let require = |keys: &[&str]| -> Result<(), String> {
            for key in keys {
                entry
                    .num_field(key)
                    .map_err(|e| format!("metric {name:?}: {e}"))?;
            }
            Ok(())
        };
        match kind.as_str() {
            "counter" => {
                require(&["value"])?;
                summary.counters += 1;
            }
            "gauge" => {
                require(&["value"])?;
                summary.gauges += 1;
            }
            "histogram" => {
                require(&["count", "mean", "min", "p50", "p99", "max"])?;
                summary.histograms += 1;
            }
            other => return Err(format!("metric {name:?}: unknown type {other:?}")),
        }
    }
    Ok(summary)
}

/// Summary of a validated Chrome `trace_event` JSONL profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeTraceSummary {
    /// Total events (lines).
    pub events: usize,
    /// Distinct span (`"ph": "X"`) names, sorted.
    pub span_names: Vec<String>,
    /// Counter (`"ph": "C"`) series.
    pub counter_series: usize,
}

/// Validate a Chrome-trace JSONL document: every line parses as one
/// JSON object with the fields its phase requires, and timestamps are
/// monotonically non-decreasing (the exporter sorts, so a violation
/// means a corrupted or concatenated file). Errors carry the 1-based
/// line number.
pub fn check_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let mut summary = ChromeTraceSummary::default();
    let mut spans = std::collections::BTreeSet::new();
    let mut last_ts = f64::NEG_INFINITY;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let ev = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let name = ev
            .str_field("name")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        let ph = ev
            .str_field("ph")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        let ts = ev
            .num_field("ts")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        ev.num_field("pid")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        if ev.get("args").map(|a| matches!(a, Json::Obj(_))) != Some(true) {
            return Err(format!("line {lineno}: missing or non-object `args`"));
        }
        if ts < last_ts {
            return Err(format!(
                "line {lineno}: ts {ts} decreases (previous {last_ts})"
            ));
        }
        last_ts = ts;
        match ph.as_str() {
            "X" => {
                let dur = ev
                    .num_field("dur")
                    .map_err(|e| format!("line {lineno}: {e}"))?;
                if dur < 0.0 {
                    return Err(format!("line {lineno}: negative dur {dur}"));
                }
                ev.num_field("tid")
                    .map_err(|e| format!("line {lineno}: {e}"))?;
                spans.insert(name);
            }
            "C" => summary.counter_series += 1,
            other => return Err(format!("line {lineno}: unsupported phase {other:?}")),
        }
        summary.events += 1;
    }
    summary.span_names = spans.into_iter().collect();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfabric::telemetry::{chrome_trace_jsonl, SpanLog, SpanRecord};

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter("dev.hits", 10);
        reg.gauge("dev.high_water", 3.5);
        reg.record("dev.lat_ps", 100);
        reg.record("dev.lat_ps", 900);
        reg
    }

    #[test]
    fn metrics_roundtrip_through_checker() {
        let doc = metrics_to_json(&sample_registry());
        let summary = check_metrics(&doc).expect("valid dump");
        assert_eq!(
            summary,
            MetricsSummary {
                counters: 1,
                gauges: 1,
                histograms: 1,
            }
        );
        assert_eq!(summary.total(), 3);
        // The pretty-printed text reparses to the same value.
        let reparsed = json::parse(&doc.to_pretty()).expect("reparses");
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn checker_rejects_bad_schema_and_types() {
        let mut doc = metrics_to_json(&sample_registry());
        if let Json::Obj(m) = &mut doc {
            m.insert("schema".into(), Json::Str("bogus/v9".into()));
        }
        assert!(check_metrics(&doc).unwrap_err().contains("bogus"));
        let bad_type = Json::obj([
            ("schema", Json::Str(METRICS_SCHEMA.into())),
            (
                "metrics",
                Json::obj([("x", Json::obj([("type", Json::Str("widget".into()))]))]),
            ),
        ]);
        assert!(check_metrics(&bad_type).unwrap_err().contains("widget"));
    }

    #[test]
    fn chrome_checker_accepts_exporter_output() {
        let mut log = SpanLog::new();
        log.push(SpanRecord {
            name: "classify".into(),
            cat: "replay",
            ts_us: 10.0,
            dur_us: 4.0,
            tid: 0,
            args: vec![("accesses", 64.0)],
        });
        log.push(SpanRecord {
            name: "merge".into(),
            cat: "replay",
            ts_us: 14.0,
            dur_us: 2.0,
            tid: 0,
            args: vec![],
        });
        let text = chrome_trace_jsonl(&log, &sample_registry());
        let summary = check_chrome_trace(&text).expect("valid trace");
        assert_eq!(summary.events, 5);
        assert_eq!(summary.span_names, vec!["classify", "merge"]);
        assert_eq!(summary.counter_series, 3);
    }

    #[test]
    fn chrome_checker_rejects_regressing_timestamps() {
        let good = "{\"name\":\"a\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":5,\"dur\":1,\
                    \"pid\":1,\"tid\":0,\"args\":{}}";
        let bad = "{\"name\":\"b\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":2,\"dur\":1,\
                   \"pid\":1,\"tid\":0,\"args\":{}}";
        let text = format!("{good}\n{bad}\n");
        let err = check_chrome_trace(&text).unwrap_err();
        assert!(err.contains("line 2") && err.contains("decreases"), "{err}");
        assert!(check_chrome_trace("not json\n").is_err());
        assert_eq!(check_chrome_trace("").unwrap().events, 0);
    }
}

//! Profile exporters and validators: the flat-JSON metrics dump for a
//! [`MetricsRegistry`](simfabric::MetricsRegistry), plus structural
//! checkers for both exporter outputs (the metrics JSON here and the
//! Chrome `trace_event` JSONL produced by
//! [`simfabric::telemetry::chrome_trace_jsonl`]).
//!
//! The exporters live in two places deliberately: the Chrome exporter
//! sits in `simfabric` next to the span log (it needs no JSON value
//! type — field order is fixed by hand), while the metrics dump lives
//! here next to [`crate::json`], the in-tree JSON value type every
//! archived artifact uses. The checkers both run in CI: `repro
//! profile-check` validates that a freshly produced profile parses,
//! that span timestamps are monotonically non-decreasing, and that the
//! expected phases and device series are present.

use crate::json::{self, Json};
use simfabric::telemetry::{MetricValue, MetricsRegistry};

/// Schema tag of the metrics dump.
pub const METRICS_SCHEMA: &str = "telemetry_metrics/v1";

/// Render a registry as a flat JSON document: one object per metric,
/// keyed by metric name, each self-describing via a `"type"` field.
/// Deterministic — the registry iterates in name order and the JSON
/// object keeps key order.
pub fn metrics_to_json(reg: &MetricsRegistry) -> Json {
    let mut metrics = std::collections::BTreeMap::new();
    for (name, value) in reg.iter() {
        let entry = match value {
            MetricValue::Counter(n) => Json::obj([
                ("type", Json::Str("counter".into())),
                ("value", Json::Num(*n as f64)),
            ]),
            MetricValue::Gauge(v) => Json::obj([
                ("type", Json::Str("gauge".into())),
                ("value", Json::Num(if v.is_finite() { *v } else { 0.0 })),
            ]),
            MetricValue::Histogram(h) => Json::obj([
                ("type", Json::Str("histogram".into())),
                ("count", Json::Num(h.count() as f64)),
                ("mean", Json::Num(h.mean())),
                ("min", Json::Num(h.min().unwrap_or(0) as f64)),
                ("p50", Json::Num(h.quantile_bound(0.5) as f64)),
                ("p99", Json::Num(h.quantile_bound(0.99) as f64)),
                ("max", Json::Num(h.max().unwrap_or(0) as f64)),
            ]),
        };
        metrics.insert(name.to_string(), entry);
    }
    Json::obj([
        ("schema", Json::Str(METRICS_SCHEMA.into())),
        ("metrics", Json::Obj(metrics)),
    ])
}

/// Summary of a validated metrics dump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Counter metrics present.
    pub counters: usize,
    /// Gauge metrics present.
    pub gauges: usize,
    /// Histogram metrics present.
    pub histograms: usize,
}

impl MetricsSummary {
    /// Total metrics of any type.
    pub fn total(&self) -> usize {
        self.counters + self.gauges + self.histograms
    }
}

/// Validate a metrics dump against [`METRICS_SCHEMA`]: the schema tag,
/// and per metric a known `"type"` with that type's required numeric
/// fields. Errors name the offending metric.
pub fn check_metrics(doc: &Json) -> Result<MetricsSummary, String> {
    let schema = doc.str_field("schema")?;
    if schema != METRICS_SCHEMA {
        return Err(format!("schema {schema:?}, expected {METRICS_SCHEMA:?}"));
    }
    let metrics = match doc.get("metrics") {
        Some(Json::Obj(m)) => m,
        _ => return Err("missing or non-object field `metrics`".into()),
    };
    let mut summary = MetricsSummary::default();
    for (name, entry) in metrics {
        let kind = entry
            .str_field("type")
            .map_err(|e| format!("metric {name:?}: {e}"))?;
        let require = |keys: &[&str]| -> Result<(), String> {
            for key in keys {
                entry
                    .num_field(key)
                    .map_err(|e| format!("metric {name:?}: {e}"))?;
            }
            Ok(())
        };
        match kind.as_str() {
            "counter" => {
                require(&["value"])?;
                summary.counters += 1;
            }
            "gauge" => {
                require(&["value"])?;
                summary.gauges += 1;
            }
            "histogram" => {
                require(&["count", "mean", "min", "p50", "p99", "max"])?;
                summary.histograms += 1;
            }
            other => return Err(format!("metric {name:?}: unknown type {other:?}")),
        }
    }
    Ok(summary)
}

/// Summary of a validated Chrome `trace_event` JSONL profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeTraceSummary {
    /// Total events (lines).
    pub events: usize,
    /// Distinct span (`"ph": "X"`) names, sorted.
    pub span_names: Vec<String>,
    /// Counter (`"ph": "C"`) series.
    pub counter_series: usize,
}

/// Validate a Chrome-trace JSONL document: every line parses as one
/// JSON object with the fields its phase requires, and timestamps are
/// monotonically non-decreasing (the exporter sorts, so a violation
/// means a corrupted or concatenated file). Errors carry the 1-based
/// line number.
pub fn check_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let mut summary = ChromeTraceSummary::default();
    let mut spans = std::collections::BTreeSet::new();
    let mut last_ts = f64::NEG_INFINITY;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let ev = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let name = ev
            .str_field("name")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        let ph = ev
            .str_field("ph")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        let ts = ev
            .num_field("ts")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        ev.num_field("pid")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        if ev.get("args").map(|a| matches!(a, Json::Obj(_))) != Some(true) {
            return Err(format!("line {lineno}: missing or non-object `args`"));
        }
        if ts < last_ts {
            return Err(format!(
                "line {lineno}: ts {ts} decreases (previous {last_ts})"
            ));
        }
        last_ts = ts;
        match ph.as_str() {
            "X" => {
                let dur = ev
                    .num_field("dur")
                    .map_err(|e| format!("line {lineno}: {e}"))?;
                if dur < 0.0 {
                    return Err(format!("line {lineno}: negative dur {dur}"));
                }
                ev.num_field("tid")
                    .map_err(|e| format!("line {lineno}: {e}"))?;
                spans.insert(name);
            }
            "C" => summary.counter_series += 1,
            other => return Err(format!("line {lineno}: unsupported phase {other:?}")),
        }
        summary.events += 1;
    }
    summary.span_names = spans.into_iter().collect();
    Ok(summary)
}

/// Summary of a validated `timeseries/v1` JSONL export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeriesSummary {
    /// Registered series names, in header order.
    pub series: Vec<String>,
    /// Closed windows in the document.
    pub windows: usize,
    /// Sampling interval (accesses per window).
    pub interval: u64,
    /// Total accesses ticked.
    pub ticks: u64,
    /// Windows evicted by the ring before export.
    pub dropped: u64,
}

/// Validate a `timeseries/v1` JSONL export
/// ([`simfabric::TimeSeriesRecorder::to_jsonl`]): a header line with
/// the schema tag, a positive interval, and a non-empty series list;
/// then one line per window with contiguous ascending indices,
/// `end > start` spans that chain (`start` = previous `end`), and a
/// values array exactly as wide as the series list. A document whose
/// header promises series but carries no window lines is rejected —
/// an empty window array means the sampler never closed a window and
/// the export is useless downstream. Errors carry the 1-based line
/// number.
pub fn check_timeseries(text: &str) -> Result<TimeSeriesSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty document, expected a header")?;
    let header = json::parse(header).map_err(|e| format!("line 1: {e}"))?;
    let schema = header
        .str_field("schema")
        .map_err(|e| format!("line 1: {e}"))?;
    if schema != simfabric::telemetry::timeseries::TIMESERIES_SCHEMA {
        return Err(format!(
            "line 1: schema {schema:?}, expected {:?}",
            simfabric::telemetry::timeseries::TIMESERIES_SCHEMA
        ));
    }
    let interval = header
        .num_field("interval")
        .map_err(|e| format!("line 1: {e}"))?;
    if !(interval.fract() == 0.0 && interval >= 1.0) {
        return Err(format!(
            "line 1: interval {interval} is not a positive integer"
        ));
    }
    let ticks = header
        .num_field("ticks")
        .map_err(|e| format!("line 1: {e}"))?;
    let dropped = header
        .num_field("dropped")
        .map_err(|e| format!("line 1: {e}"))?;
    let mut summary = TimeSeriesSummary {
        interval: interval as u64,
        ticks: ticks as u64,
        dropped: dropped as u64,
        ..TimeSeriesSummary::default()
    };
    for (i, s) in header
        .arr_field("series")
        .map_err(|e| format!("line 1: {e}"))?
        .iter()
        .enumerate()
    {
        let name = s
            .str_field("name")
            .map_err(|e| format!("line 1: series[{i}]: {e}"))?;
        let kind = s
            .str_field("kind")
            .map_err(|e| format!("line 1: series[{i}]: {e}"))?;
        if name.is_empty() {
            return Err(format!("line 1: series[{i}]: empty name"));
        }
        if kind != "counter" && kind != "gauge" {
            return Err(format!("line 1: series[{i}]: unknown kind {kind:?}"));
        }
        summary.series.push(name);
    }
    if summary.series.is_empty() {
        return Err("line 1: empty series list".into());
    }
    let mut prev: Option<(u64, u64)> = None; // (index, end)
    for (i, line) in lines {
        let lineno = i + 1;
        let w = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let index = w
            .num_field("window")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        let start = w
            .num_field("start")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        let end = w
            .num_field("end")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        let values = w
            .arr_field("values")
            .map_err(|e| format!("line {lineno}: {e}"))?;
        if end <= start {
            return Err(format!(
                "line {lineno}: window span [{start}, {end}] is empty"
            ));
        }
        if values.len() != summary.series.len() {
            return Err(format!(
                "line {lineno}: {} values for {} series",
                values.len(),
                summary.series.len()
            ));
        }
        for (j, v) in values.iter().enumerate() {
            let v = v
                .as_f64()
                .ok_or_else(|| format!("line {lineno}: values[{j}] is not a number"))?;
            if !v.is_finite() {
                return Err(format!("line {lineno}: values[{j}] is not finite"));
            }
        }
        if let Some((pi, pe)) = prev {
            if index as u64 != pi + 1 {
                return Err(format!(
                    "line {lineno}: window index {index} after {pi}, expected {}",
                    pi + 1
                ));
            }
            if start as u64 != pe {
                return Err(format!(
                    "line {lineno}: window starts at {start}, previous ended at {pe}"
                ));
            }
        }
        prev = Some((index as u64, end as u64));
        summary.windows += 1;
    }
    if summary.windows == 0 {
        return Err("no windows: the sampler never closed a window".into());
    }
    Ok(summary)
}

/// Per-phase aggregate used by [`render_report`].
struct PhaseRow {
    name: String,
    count: usize,
    total_us: f64,
    max_us: f64,
}

/// Glyph ramp for the ASCII timelines, darkest = window maximum.
const RAMP: &[u8] = b" .:-=+*#%@";

fn sparkline(values: &[f64]) -> String {
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                ' '
            } else {
                let lvl = ((v / max) * (RAMP.len() - 1) as f64).round() as usize;
                RAMP[lvl.min(RAMP.len() - 1)] as char
            }
        })
        .collect()
}

/// Render a text dashboard from a Chrome-trace profile (`repro
/// profile` output) and, optionally, a `timeseries/v1` export: a
/// per-phase table (count, total, mean, max), the top-k longest
/// individual spans ("stalls"), final counter values, and per-series
/// ASCII timelines — counters differenced into per-window rates,
/// gauges plotted raw, so `migrate.resident_pages` reads as the
/// tier-residency timeline and `dram.*.lines` as a bandwidth shape.
/// Both inputs are validated first; errors carry line numbers.
pub fn render_report(trace_text: &str, timeseries_text: Option<&str>) -> Result<String, String> {
    check_chrome_trace(trace_text).map_err(|e| format!("profile: {e}"))?;
    let mut phases: Vec<PhaseRow> = Vec::new();
    let mut stalls: Vec<(f64, f64, String)> = Vec::new(); // (dur, ts, name)
    let mut counters: Vec<(String, f64)> = Vec::new();
    for line in trace_text.lines() {
        let ev = json::parse(line).expect("validated above");
        let name = ev.str_field("name").expect("validated above");
        match ev.str_field("ph").expect("validated above").as_str() {
            "X" => {
                let dur = ev.num_field("dur").expect("validated above");
                let ts = ev.num_field("ts").expect("validated above");
                match phases.iter_mut().find(|p| p.name == name) {
                    Some(p) => {
                        p.count += 1;
                        p.total_us += dur;
                        p.max_us = p.max_us.max(dur);
                    }
                    None => phases.push(PhaseRow {
                        name: name.clone(),
                        count: 1,
                        total_us: dur,
                        max_us: dur,
                    }),
                }
                stalls.push((dur, ts, name));
            }
            _ => {
                if let Some(v) = ev.get("args").and_then(|a| a.get("value")) {
                    counters.push((name, v.as_f64().unwrap_or(0.0)));
                }
            }
        }
    }
    phases.sort_by(|a, b| b.total_us.total_cmp(&a.total_us).then(a.name.cmp(&b.name)));
    stalls.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.total_cmp(&b.1)));

    let mut out = String::new();
    out.push_str("== phases ==\n");
    out.push_str(&format!(
        "{:<16} {:>7} {:>12} {:>10} {:>10}\n",
        "phase", "count", "total_us", "mean_us", "max_us"
    ));
    for p in &phases {
        out.push_str(&format!(
            "{:<16} {:>7} {:>12.1} {:>10.1} {:>10.1}\n",
            p.name,
            p.count,
            p.total_us,
            p.total_us / p.count as f64,
            p.max_us
        ));
    }
    out.push_str("\n== top stalls ==\n");
    for (rank, (dur, ts, name)) in stalls.iter().take(5).enumerate() {
        out.push_str(&format!(
            "{:>2}. {:<16} {:>10.1} us at t={:.1} us\n",
            rank + 1,
            name,
            dur,
            ts
        ));
    }
    if !counters.is_empty() {
        out.push_str("\n== counters ==\n");
        for (name, value) in &counters {
            out.push_str(&format!("{name:<32} {value}\n"));
        }
    }
    if let Some(text) = timeseries_text {
        let summary = check_timeseries(text).map_err(|e| format!("timeseries: {e}"))?;
        let kinds: Vec<String> = {
            let header = json::parse(text.lines().next().expect("validated")).expect("validated");
            header
                .arr_field("series")
                .expect("validated")
                .iter()
                .map(|s| s.str_field("kind").expect("validated"))
                .collect()
        };
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); summary.series.len()];
        for line in text.lines().skip(1) {
            let w = json::parse(line).expect("validated");
            for (j, v) in w.arr_field("values").expect("validated").iter().enumerate() {
                columns[j].push(v.as_f64().expect("validated"));
            }
        }
        out.push_str(&format!(
            "\n== timeseries ({} accesses/window, {} windows, {} dropped) ==\n",
            summary.interval, summary.windows, summary.dropped
        ));
        for (j, name) in summary.series.iter().enumerate() {
            let plotted: Vec<f64> = if kinds[j] == "counter" {
                // Cumulative counter → per-window rate. The first
                // window's rate is its own total (baseline zero).
                let mut prev = 0.0;
                columns[j]
                    .iter()
                    .map(|&v| {
                        let d = v - prev;
                        prev = v;
                        d
                    })
                    .collect()
            } else {
                columns[j].clone()
            };
            let peak = plotted.iter().cloned().fold(0.0_f64, f64::max);
            out.push_str(&format!(
                "{:<24} |{}| peak {:.0}\n",
                name,
                sparkline(&plotted),
                peak
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfabric::telemetry::{chrome_trace_jsonl, SpanLog, SpanRecord};

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter("dev.hits", 10);
        reg.gauge("dev.high_water", 3.5);
        reg.record("dev.lat_ps", 100);
        reg.record("dev.lat_ps", 900);
        reg
    }

    #[test]
    fn metrics_roundtrip_through_checker() {
        let doc = metrics_to_json(&sample_registry());
        let summary = check_metrics(&doc).expect("valid dump");
        assert_eq!(
            summary,
            MetricsSummary {
                counters: 1,
                gauges: 1,
                histograms: 1,
            }
        );
        assert_eq!(summary.total(), 3);
        // The pretty-printed text reparses to the same value.
        let reparsed = json::parse(&doc.to_pretty()).expect("reparses");
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn checker_rejects_bad_schema_and_types() {
        let mut doc = metrics_to_json(&sample_registry());
        if let Json::Obj(m) = &mut doc {
            m.insert("schema".into(), Json::Str("bogus/v9".into()));
        }
        assert!(check_metrics(&doc).unwrap_err().contains("bogus"));
        let bad_type = Json::obj([
            ("schema", Json::Str(METRICS_SCHEMA.into())),
            (
                "metrics",
                Json::obj([("x", Json::obj([("type", Json::Str("widget".into()))]))]),
            ),
        ]);
        assert!(check_metrics(&bad_type).unwrap_err().contains("widget"));
    }

    #[test]
    fn chrome_checker_accepts_exporter_output() {
        let mut log = SpanLog::new();
        log.push(SpanRecord {
            name: "classify".into(),
            cat: "replay",
            ts_us: 10.0,
            dur_us: 4.0,
            tid: 0,
            args: vec![("accesses", 64.0)],
        });
        log.push(SpanRecord {
            name: "merge".into(),
            cat: "replay",
            ts_us: 14.0,
            dur_us: 2.0,
            tid: 0,
            args: vec![],
        });
        let text = chrome_trace_jsonl(&log, &sample_registry());
        let summary = check_chrome_trace(&text).expect("valid trace");
        assert_eq!(summary.events, 5);
        assert_eq!(summary.span_names, vec!["classify", "merge"]);
        assert_eq!(summary.counter_series, 3);
    }

    #[test]
    fn chrome_checker_rejects_regressing_timestamps() {
        let good = "{\"name\":\"a\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":5,\"dur\":1,\
                    \"pid\":1,\"tid\":0,\"args\":{}}";
        let bad = "{\"name\":\"b\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":2,\"dur\":1,\
                   \"pid\":1,\"tid\":0,\"args\":{}}";
        let text = format!("{good}\n{bad}\n");
        let err = check_chrome_trace(&text).unwrap_err();
        assert!(err.contains("line 2") && err.contains("decreases"), "{err}");
        assert!(check_chrome_trace("not json\n").is_err());
        assert_eq!(check_chrome_trace("").unwrap().events, 0);
    }

    fn sample_timeseries() -> simfabric::TimeSeriesRecorder {
        let mut rec = simfabric::TimeSeriesRecorder::new(4, 8);
        let lines = rec.register_counter("dev.lines");
        let busy = rec.register_gauge("dev.busy");
        for i in 0..10u64 {
            rec.add(lines, 3.0);
            rec.set(busy, i as f64);
            if rec.tick() {
                rec.close_window();
            }
        }
        rec.finish();
        rec
    }

    #[test]
    fn timeseries_checker_accepts_exporter_output() {
        let rec = sample_timeseries();
        let summary = check_timeseries(&rec.to_jsonl()).expect("valid export");
        assert_eq!(summary.series, vec!["dev.lines", "dev.busy"]);
        assert_eq!(summary.windows, 3); // two full windows + the tail
        assert_eq!(summary.interval, 4);
        assert_eq!(summary.ticks, 10);
        assert_eq!(summary.dropped, 0);
    }

    #[test]
    fn timeseries_checker_rejects_malformed_documents() {
        let good = sample_timeseries().to_jsonl();
        // No windows at all.
        let header_only = good.lines().next().unwrap().to_string();
        let err = check_timeseries(&header_only).unwrap_err();
        assert!(err.contains("no windows"), "{err}");
        // Empty series list.
        let empty_series =
            "{\"schema\":\"timeseries/v1\",\"interval\":4,\"ticks\":0,\"dropped\":0,\"series\":[]}";
        let err = check_timeseries(empty_series).unwrap_err();
        assert!(err.contains("empty series"), "{err}");
        // Values narrower than the series list.
        let mut lines: Vec<&str> = good.lines().collect();
        let narrowed = lines[1].replace("[12,3]", "[12]");
        lines[1] = &narrowed;
        let err = check_timeseries(&lines.join("\n")).unwrap_err();
        assert!(err.contains("1 values for 2 series"), "{err}");
        // A gap in the window chain.
        let full = sample_timeseries().to_jsonl();
        let mut lines: Vec<&str> = full.lines().collect();
        lines.remove(2);
        let err = check_timeseries(&lines.join("\n")).unwrap_err();
        assert!(
            err.contains("expected 1") || err.contains("window"),
            "{err}"
        );
        // Wrong schema.
        let bad_schema = full.replacen("timeseries/v1", "bogus/v9", 1);
        assert!(check_timeseries(&bad_schema).unwrap_err().contains("bogus"));
    }

    #[test]
    fn report_renders_phases_stalls_and_timelines() {
        let mut log = SpanLog::new();
        for (i, (name, dur)) in [("classify", 40.0), ("merge", 25.0), ("merge", 5.0)]
            .iter()
            .enumerate()
        {
            log.push(SpanRecord {
                name: (*name).into(),
                cat: "replay",
                ts_us: 10.0 * i as f64,
                dur_us: *dur,
                tid: 0,
                args: vec![],
            });
        }
        let trace = chrome_trace_jsonl(&log, &sample_registry());
        let ts = sample_timeseries().to_jsonl();
        let report = render_report(&trace, Some(&ts)).expect("renders");
        assert!(report.contains("== phases =="), "{report}");
        assert!(report.contains("classify"), "{report}");
        assert!(report.contains("== top stalls =="), "{report}");
        assert!(
            report.contains("== timeseries (4 accesses/window"),
            "{report}"
        );
        assert!(report.contains("dev.busy"), "{report}");
        // The gauge timeline ends at its peak (monotone ramp 0..9).
        assert!(report.contains("peak 9"), "{report}");
        // A malformed timeseries fails the whole render with context.
        let err = render_report(&trace, Some("not json")).unwrap_err();
        assert!(err.contains("timeseries:"), "{err}");
    }
}

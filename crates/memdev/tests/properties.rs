//! Property tests for the memory device models.

use memdev::bank::{DramGeometry, DramModel};
use memdev::{ddr4_knl, mcdram_knl, BandwidthRegulator, LoadedLatencyCurve};
use proptest::prelude::*;
use simfabric::{Duration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Address mapping is a bijection at line granularity: distinct
    /// lines map to distinct (channel, bank, row, line-within-row)
    /// coordinates, and every coordinate is within bounds.
    #[test]
    fn geometry_mapping_is_injective(lines in proptest::collection::hash_set(0u64..(1 << 24), 2..100)) {
        for geom in [DramGeometry::ddr4_knl(), DramGeometry::mcdram_knl()] {
            let mut seen = std::collections::HashSet::new();
            for &line in &lines {
                let addr = line * geom.line_bytes as u64;
                let (c, b, r) = geom.map(addr);
                prop_assert!(c < geom.channels);
                prop_assert!(b < geom.banks_per_channel);
                // Within a (channel, bank, row) there are
                // row_bytes/line_bytes distinct lines; include the
                // offset to get full coordinates.
                let lines_per_row = (geom.row_bytes / geom.line_bytes) as u64;
                let offset = (line / geom.channels as u64) % lines_per_row;
                prop_assert!(seen.insert((c, b, r, offset)), "collision for line {}", line);
            }
        }
    }

    /// Device completions never precede arrivals, and a bank's
    /// completions are non-decreasing for monotone arrivals.
    #[test]
    fn completions_follow_arrivals(addrs in proptest::collection::vec(0u64..(1 << 26), 1..200)) {
        let mut m = DramModel::ddr4_knl();
        let mut t = SimTime::ZERO;
        for (i, &a) in addrs.iter().enumerate() {
            let at = t + Duration::from_ns(i as f64);
            let done = m.access(a & !63, at);
            prop_assert!(done > at);
            t = t.max(done - Duration::from_ns(1.0));
        }
        prop_assert_eq!(m.stats().total(), addrs.len() as u64);
    }

    /// The bandwidth regulator never exceeds its configured rate: N
    /// lines complete no earlier than N x line/bandwidth after the
    /// first arrival.
    #[test]
    fn regulator_respects_rate(n in 1u64..500, channels in 1u32..8) {
        let bw = 77.0;
        let mut r = BandwidthRegulator::new(channels, bw, 64);
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = r.submit_line(SimTime::ZERO);
        }
        let min_secs = n as f64 * 64.0 / (bw * 1e9) * (channels as f64 - 1.0) / channels as f64;
        prop_assert!(last.as_secs() >= min_secs, "{} lines in {}s", n, last.as_secs());
    }

    /// Loaded latency is monotone in utilization and bounded.
    #[test]
    fn loaded_latency_monotone(k in 0.01f64..0.5, steps in 2usize..40) {
        let curve = LoadedLatencyCurve { queue_factor: k, max_utilization: 0.95 };
        let idle = Duration::from_ns(130.4);
        let mut prev = Duration::ZERO;
        for i in 0..=steps {
            let u = i as f64 / steps as f64;
            let l = curve.latency(idle, u);
            prop_assert!(l >= prev);
            prop_assert!(l >= idle);
            prop_assert!(l.as_ns() < idle.as_ns() * (1.0 + k * 20.0) + 1.0);
            prev = l;
        }
    }

    /// Little's law helper is monotone in concurrency and capped at the
    /// sustained bandwidth.
    #[test]
    fn littles_law_monotone_and_capped(outstanding in 0.0f64..5000.0) {
        for spec in [ddr4_knl(), mcdram_knl()] {
            let bw = spec.littles_law_bw_gbs(outstanding);
            prop_assert!(bw >= 0.0);
            prop_assert!(bw <= spec.sustained_bw_gbs + 1e-9);
            let more = spec.littles_law_bw_gbs(outstanding + 1.0);
            prop_assert!(more >= bw - 1e-9);
        }
    }
}

//! Property tests for the memory device models, driven by seeded
//! random cases from the in-tree PRNG.

use memdev::bank::{DramGeometry, DramModel};
use memdev::{ddr4_knl, mcdram_knl, BandwidthRegulator, LoadedLatencyCurve};
use simfabric::prng::Rng;
use simfabric::{Duration, SimTime};
use std::collections::HashSet;

/// Address mapping is a bijection at line granularity: distinct
/// lines map to distinct (channel, bank, row, line-within-row)
/// coordinates, and every coordinate is within bounds.
#[test]
fn geometry_mapping_is_injective() {
    let mut rng = Rng::seed_from_u64(0xd1a9_0001);
    for case in 0..64 {
        let target = rng.gen_range(2usize..100);
        let mut lines = HashSet::new();
        while lines.len() < target {
            lines.insert(rng.gen_range(0u64..(1 << 24)));
        }
        for geom in [DramGeometry::ddr4_knl(), DramGeometry::mcdram_knl()] {
            let mut seen = HashSet::new();
            for &line in &lines {
                let addr = line * geom.line_bytes as u64;
                let (c, b, r) = geom.map(addr);
                assert!(c < geom.channels, "case {case}");
                assert!(b < geom.banks_per_channel, "case {case}");
                // Within a (channel, bank, row) there are
                // row_bytes/line_bytes distinct lines; include the
                // offset to get full coordinates.
                let lines_per_row = (geom.row_bytes / geom.line_bytes) as u64;
                let offset = (line / geom.channels as u64) % lines_per_row;
                assert!(
                    seen.insert((c, b, r, offset)),
                    "case {case}: collision for line {line}"
                );
            }
        }
    }
}

/// Device completions never precede arrivals, and a bank's
/// completions are non-decreasing for monotone arrivals.
#[test]
fn completions_follow_arrivals() {
    let mut rng = Rng::seed_from_u64(0xd1a9_0002);
    for case in 0..64 {
        let len = rng.gen_range(1usize..200);
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..(1 << 26))).collect();
        let mut m = DramModel::ddr4_knl();
        let mut t = SimTime::ZERO;
        for (i, &a) in addrs.iter().enumerate() {
            let at = t + Duration::from_ns(i as f64);
            let done = m.access(a & !63, at);
            assert!(done > at, "case {case}");
            t = t.max(done - Duration::from_ns(1.0));
        }
        assert_eq!(m.stats().total(), addrs.len() as u64, "case {case}");
    }
}

/// The bandwidth regulator never exceeds its configured rate: N
/// lines complete no earlier than N x line/bandwidth after the
/// first arrival.
#[test]
fn regulator_respects_rate() {
    let mut rng = Rng::seed_from_u64(0xd1a9_0003);
    for case in 0..64 {
        let n = rng.gen_range(1u64..500);
        let channels = rng.gen_range(1u32..8);
        let bw = 77.0;
        let mut r = BandwidthRegulator::new(channels, bw, 64);
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = r.submit_line(SimTime::ZERO);
        }
        let min_secs = n as f64 * 64.0 / (bw * 1e9) * (channels as f64 - 1.0) / channels as f64;
        assert!(
            last.as_secs() >= min_secs,
            "case {case}: {n} lines in {}s",
            last.as_secs()
        );
    }
}

/// Loaded latency is monotone in utilization and bounded.
#[test]
fn loaded_latency_monotone() {
    let mut rng = Rng::seed_from_u64(0xd1a9_0004);
    for case in 0..64 {
        let k = rng.gen_range(0.01f64..0.5);
        let steps = rng.gen_range(2usize..40);
        let curve = LoadedLatencyCurve {
            queue_factor: k,
            max_utilization: 0.95,
        };
        let idle = Duration::from_ns(130.4);
        let mut prev = Duration::ZERO;
        for i in 0..=steps {
            let u = i as f64 / steps as f64;
            let l = curve.latency(idle, u);
            assert!(l >= prev, "case {case}");
            assert!(l >= idle, "case {case}");
            assert!(
                l.as_ns() < idle.as_ns() * (1.0 + k * 20.0) + 1.0,
                "case {case}"
            );
            prev = l;
        }
    }
}

/// Little's law helper is monotone in concurrency and capped at the
/// sustained bandwidth.
#[test]
fn littles_law_monotone_and_capped() {
    let mut rng = Rng::seed_from_u64(0xd1a9_0005);
    for case in 0..64 {
        let outstanding = rng.gen_range(0.0f64..5000.0);
        for spec in [ddr4_knl(), mcdram_knl()] {
            let bw = spec.littles_law_bw_gbs(outstanding);
            assert!(bw >= 0.0, "case {case}");
            assert!(bw <= spec.sustained_bw_gbs + 1e-9, "case {case}");
            let more = spec.littles_law_bw_gbs(outstanding + 1.0);
            assert!(more >= bw - 1e-9, "case {case}");
        }
    }
}

//! Analytic device specification.
//!
//! A [`MemDeviceSpec`] captures everything the Little's-law machine
//! model needs to know about a memory technology. Where a number is
//! taken from the paper or from Intel's published figures, the field
//! documentation says so.

use crate::loaded::LoadedLatencyCurve;
use simfabric::{ByteSize, Duration};

/// Which technology a device models. Determines defaults and how the
/// KNL machine model wires it up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Conventional off-package DDR4.
    Ddr4,
    /// On-package 3D-stacked multi-channel DRAM (the KNL HBM).
    Mcdram,
    /// A generic device for ablation studies.
    Custom,
}

/// Calibrated analytic description of a memory device.
#[derive(Debug, Clone, PartialEq)]
pub struct MemDeviceSpec {
    /// Human-readable name used in reports (e.g. `"DDR4-2133 x6"`).
    pub name: String,
    /// Technology class.
    pub kind: DeviceKind,
    /// Total capacity.
    pub capacity: ByteSize,
    /// Number of independent channels (DDR4: 6; MCDRAM: 8 modules).
    pub channels: u32,
    /// Theoretical peak bandwidth in GB/s across all channels.
    pub peak_bw_gbs: f64,
    /// Sustained streaming bandwidth in GB/s that a well-tuned
    /// STREAM-triad actually achieves (always below peak).
    pub sustained_bw_gbs: f64,
    /// Idle (unloaded) read latency for a dependent pointer chase.
    pub idle_latency: Duration,
    /// Maximum number of in-flight line requests the device can service
    /// concurrently before queueing dominates (channels × banks ×
    /// scheduler depth, collapsed into one number).
    pub max_concurrency: u32,
    /// Cache-line transfer size in bytes (64 on x86).
    pub line_bytes: u32,
    /// How loaded latency grows with utilization.
    pub loaded_curve: LoadedLatencyCurve,
}

impl MemDeviceSpec {
    /// Sustained bandwidth in bytes per picosecond (internal unit of
    /// the simulator). 1 GB/s = 1e9 B/s = 1e-3 B/ps.
    pub fn sustained_bytes_per_ps(&self) -> f64 {
        self.sustained_bw_gbs * 1e-3
    }

    /// Peak bandwidth in bytes per picosecond.
    pub fn peak_bytes_per_ps(&self) -> f64 {
        self.peak_bw_gbs * 1e-3
    }

    /// Time to stream `bytes` at sustained bandwidth, ignoring latency.
    pub fn stream_time(&self, bytes: u64) -> Duration {
        Duration::from_ps((bytes as f64 / self.sustained_bytes_per_ps()).round() as u64)
    }

    /// Latency under a given utilization (0.0–1.0+) of sustained
    /// bandwidth; delegates to the loaded-latency curve.
    pub fn latency_at(&self, utilization: f64) -> Duration {
        self.loaded_curve.latency(self.idle_latency, utilization)
    }

    /// Bandwidth achievable by `outstanding` concurrent requests at the
    /// idle latency, per Little's law: `BW = N × line / L`, capped at
    /// the sustained bandwidth. Returned in GB/s.
    ///
    /// This is the paper's §IV-B argument in code form: random-access
    /// workloads with few outstanding requests are latency-bound and
    /// cannot reach the device's bandwidth, no matter how high it is.
    pub fn littles_law_bw_gbs(&self, outstanding: f64) -> f64 {
        let lat_s = self.idle_latency.as_secs();
        if lat_s <= 0.0 {
            return self.sustained_bw_gbs;
        }
        let bw = outstanding * self.line_bytes as f64 / lat_s / 1e9;
        bw.min(self.sustained_bw_gbs)
    }

    /// Outstanding requests needed to saturate sustained bandwidth at
    /// idle latency (the "latency-bandwidth product" in lines).
    pub fn concurrency_to_saturate(&self) -> f64 {
        self.sustained_bw_gbs * 1e9 * self.idle_latency.as_secs() / self.line_bytes as f64
    }

    /// Validate internal consistency; returns an error message when a
    /// field combination is physically meaningless.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == ByteSize::ZERO {
            return Err(format!("{}: zero capacity", self.name));
        }
        if self.channels == 0 {
            return Err(format!("{}: zero channels", self.name));
        }
        if self.peak_bw_gbs <= 0.0 || self.sustained_bw_gbs <= 0.0 {
            return Err(format!("{}: non-positive bandwidth", self.name));
        }
        if self.sustained_bw_gbs > self.peak_bw_gbs {
            return Err(format!(
                "{}: sustained bandwidth {} exceeds peak {}",
                self.name, self.sustained_bw_gbs, self.peak_bw_gbs
            ));
        }
        if self.idle_latency.is_zero() {
            return Err(format!("{}: zero idle latency", self.name));
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!("{}: line size must be a power of two", self.name));
        }
        if self.max_concurrency == 0 {
            return Err(format!("{}: zero concurrency", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{ddr4_knl, mcdram_knl};

    #[test]
    fn presets_validate() {
        ddr4_knl().validate().unwrap();
        mcdram_knl().validate().unwrap();
    }

    #[test]
    fn littles_law_is_latency_bound_at_low_concurrency() {
        let hbm = mcdram_knl();
        let ddr = ddr4_knl();
        // One dependent chain: DDR's lower latency wins despite HBM's
        // 4x bandwidth — the crux of the paper's random-access result.
        assert!(hbm.littles_law_bw_gbs(1.0) < ddr.littles_law_bw_gbs(1.0) * 1.01);
        // At saturating concurrency HBM wins big.
        assert!(hbm.littles_law_bw_gbs(2000.0) > 3.0 * ddr.littles_law_bw_gbs(2000.0));
    }

    #[test]
    fn concurrency_to_saturate_orders_devices() {
        // HBM needs more in-flight lines than DDR (higher BW *and*
        // higher latency).
        assert!(mcdram_knl().concurrency_to_saturate() > ddr4_knl().concurrency_to_saturate());
        // DDR at 77 GB/s * 130.4 ns / 64 B = ~157 lines.
        let c = ddr4_knl().concurrency_to_saturate();
        assert!((c - 77.0 * 130.4 / 64.0).abs() < 1.0, "got {c}");
    }

    #[test]
    fn stream_time_matches_bandwidth() {
        let ddr = ddr4_knl();
        // 77 GB in one second at 77 GB/s.
        let t = ddr.stream_time(77_000_000_000);
        assert!((t.as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut s = ddr4_knl();
        s.sustained_bw_gbs = s.peak_bw_gbs + 1.0;
        assert!(s.validate().is_err());
        let mut s = ddr4_knl();
        s.line_bytes = 48;
        assert!(s.validate().is_err());
        let mut s = ddr4_knl();
        s.capacity = ByteSize::ZERO;
        assert!(s.validate().is_err());
        let mut s = ddr4_knl();
        s.channels = 0;
        assert!(s.validate().is_err());
        let mut s = ddr4_knl();
        s.max_concurrency = 0;
        assert!(s.validate().is_err());
        let mut s = ddr4_knl();
        s.idle_latency = Duration::ZERO;
        assert!(s.validate().is_err());
    }
}

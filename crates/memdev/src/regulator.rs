//! Bandwidth regulation.
//!
//! A [`BandwidthRegulator`] serializes line transfers through a device
//! at a fixed byte rate: each request occupies the device for
//! `bytes / rate` and the device services requests in arrival order
//! across its channels. It answers "when does this transfer finish?"
//! for the trace simulator, and tracks utilization for the loaded-
//! latency model.

use simfabric::{BandwidthMeter, Duration, SimTime};

/// A multi-channel, rate-limited service model.
///
/// Each channel is a server that can hold one transfer at a time;
/// requests pick the earliest-free channel (i.e. an M/D/c queue with
/// deterministic service time per line).
#[derive(Debug, Clone)]
pub struct BandwidthRegulator {
    /// Per-channel "busy until" times.
    channel_free_at: Vec<SimTime>,
    /// Service time for one cache line on one channel.
    line_service: Duration,
    line_bytes: u32,
    meter: BandwidthMeter,
}

impl BandwidthRegulator {
    /// Create a regulator for a device with `channels` channels and an
    /// aggregate sustained bandwidth of `bw_gbs` GB/s moving lines of
    /// `line_bytes` bytes.
    ///
    /// Per-channel rate = aggregate / channels, so one line's service
    /// time is `line_bytes × channels / bw`.
    pub fn new(channels: u32, bw_gbs: f64, line_bytes: u32) -> Self {
        assert!(channels > 0, "need at least one channel");
        assert!(bw_gbs > 0.0, "bandwidth must be positive");
        let bytes_per_ps = bw_gbs * 1e-3;
        let per_channel = bytes_per_ps / channels as f64;
        let line_service = Duration::from_ps((line_bytes as f64 / per_channel).round() as u64);
        BandwidthRegulator {
            channel_free_at: vec![SimTime::ZERO; channels as usize],
            line_service,
            line_bytes,
            meter: BandwidthMeter::new(),
        }
    }

    /// Service time of a single line on one channel.
    pub fn line_service_time(&self) -> Duration {
        self.line_service
    }

    /// Submit a line transfer arriving at `at`; returns its completion
    /// time. Requests are load-balanced to the earliest-free channel.
    pub fn submit_line(&mut self, at: SimTime) -> SimTime {
        // Find the channel that frees up first.
        let (idx, &free_at) = self
            .channel_free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one channel");
        let start = at.max(free_at);
        let done = start + self.line_service;
        self.channel_free_at[idx] = done;
        self.meter.record(self.line_bytes as u64, done);
        done
    }

    /// Submit a transfer of `bytes` (rounded up to whole lines),
    /// pipelined across channels; returns the completion time of the
    /// last line.
    pub fn submit(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let lines = bytes.div_ceil(self.line_bytes as u64).max(1);
        let mut done = at;
        for _ in 0..lines {
            done = self.submit_line(at);
        }
        done
    }

    /// Earliest time at which any channel is free.
    pub fn next_free(&self) -> SimTime {
        *self.channel_free_at.iter().min().expect("channels")
    }

    /// Fraction of channels busy at time `t`.
    pub fn utilization_at(&self, t: SimTime) -> f64 {
        let busy = self.channel_free_at.iter().filter(|&&f| f > t).count();
        busy as f64 / self.channel_free_at.len() as f64
    }

    /// Observed average bandwidth so far (GB/s).
    pub fn observed_gb_per_sec(&self) -> f64 {
        self.meter.gb_per_sec()
    }

    /// Total bytes transferred.
    pub fn bytes_transferred(&self) -> u64 {
        self.meter.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_channel_serializes() {
        // 64 B/line at 64 GB/s on one channel → 1 ns per line.
        let mut r = BandwidthRegulator::new(1, 64.0, 64);
        assert_eq!(r.line_service_time().as_ns(), 1.0);
        let t0 = SimTime::ZERO;
        let d1 = r.submit_line(t0);
        let d2 = r.submit_line(t0);
        assert_eq!(d1.as_ns(), 1.0);
        assert_eq!(d2.as_ns(), 2.0);
    }

    #[test]
    fn channels_run_in_parallel() {
        let mut r = BandwidthRegulator::new(4, 64.0, 64);
        let t0 = SimTime::ZERO;
        // Four simultaneous lines finish together (4 ns each channel at
        // 16 GB/s per channel).
        let dones: Vec<f64> = (0..4).map(|_| r.submit_line(t0).as_ns()).collect();
        assert!(dones.iter().all(|&d| (d - 4.0).abs() < 1e-9), "{dones:?}");
        // A fifth waits behind one of them.
        assert!((r.submit_line(t0).as_ns() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_rate_is_preserved() {
        // Regardless of channel count, N lines at aggregate BW take
        // N*line/BW once the pipeline is full.
        let mut r = BandwidthRegulator::new(6, 77.0, 64);
        let mut last = SimTime::ZERO;
        let n = 6000u64;
        for _ in 0..n {
            last = r.submit_line(SimTime::ZERO);
        }
        let expect_s = n as f64 * 64.0 / (77.0e9);
        let got_s = last.as_secs();
        assert!(
            (got_s - expect_s).abs() / expect_s < 0.01,
            "expected {expect_s}, got {got_s}"
        );
        // The meter agrees.
        assert!((r.observed_gb_per_sec() - 77.0).abs() / 77.0 < 0.02);
    }

    #[test]
    fn submit_rounds_up_to_lines() {
        let mut r = BandwidthRegulator::new(1, 64.0, 64);
        let done = r.submit(SimTime::ZERO, 65);
        assert_eq!(done.as_ns(), 2.0); // two lines
        assert_eq!(r.bytes_transferred(), 128);
        // Zero-byte transfers still move one line (a probe read).
        let done = r.submit(SimTime::ZERO, 0);
        assert_eq!(done.as_ns(), 3.0);
    }

    #[test]
    fn utilization_tracks_busy_channels() {
        let mut r = BandwidthRegulator::new(2, 128.0, 64);
        let t0 = SimTime::ZERO;
        assert_eq!(r.utilization_at(t0), 0.0);
        r.submit_line(t0);
        assert_eq!(r.utilization_at(t0), 0.5);
        r.submit_line(t0);
        assert_eq!(r.utilization_at(t0), 1.0);
        assert_eq!(r.utilization_at(t0 + r.line_service_time()), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = BandwidthRegulator::new(0, 1.0, 64);
    }
}

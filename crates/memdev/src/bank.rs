//! Channel/bank/row-buffer DRAM timing model.
//!
//! This is the detailed model behind the analytic numbers: each access
//! is mapped to a (channel, bank, row), pays row-hit or row-miss
//! timing, and queues behind earlier requests to the same bank. The
//! unit tests validate that the detailed model's streaming behaviour
//! is consistent with the sustained-bandwidth constants used by the
//! analytic path, and that random access degenerates to latency-bound
//! behaviour.

use simfabric::stats::{Counter, Histogram};
use simfabric::{Duration, SimTime};

/// Core DRAM timing parameters (per bank), in nanoseconds at the
/// module's I/O clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// Row activate → column access (tRCD).
    pub t_rcd: Duration,
    /// Column access strobe latency (tCAS / tCL).
    pub t_cas: Duration,
    /// Precharge time (tRP).
    pub t_rp: Duration,
    /// Data burst time for one cache line on the channel.
    pub t_burst: Duration,
    /// Controller/package path latency per access (queues, PHY, and —
    /// for MCDRAM — the 3D-stack traversal). Pipelined: it adds to
    /// every access's latency but not to bank or bus occupancy. Chosen
    /// so the end-to-end idle chase latency matches the paper's
    /// 130.4 ns (DDR) / 154.0 ns (MCDRAM) after the L1/L2 and mesh
    /// contributions.
    pub t_ctrl: Duration,
}

impl DramTiming {
    /// DDR4-2133-ish timings (14-14-14, 64-byte burst ≈ 3.0 ns at
    /// 21.3 GB/s per two-channel pair → ~4 ns per line per channel).
    pub fn ddr4_2133() -> Self {
        DramTiming {
            t_rcd: Duration::from_ns(14.06),
            t_cas: Duration::from_ns(14.06),
            t_rp: Duration::from_ns(14.06),
            t_burst: Duration::from_ns(3.75),
            t_ctrl: Duration::from_ns(69.0),
        }
    }

    /// MCDRAM-ish timings: similar core timing to DRAM (3D stacking
    /// does not shorten the array access — Chang et al. [25]), much
    /// faster burst because of the wide on-package interface.
    pub fn mcdram() -> Self {
        DramTiming {
            t_rcd: Duration::from_ns(16.0),
            t_cas: Duration::from_ns(16.0),
            t_rp: Duration::from_ns(16.0),
            t_burst: Duration::from_ns(1.2),
            t_ctrl: Duration::from_ns(91.0),
        }
    }

    /// Latency of a row-buffer hit (column access + burst).
    pub fn row_hit(&self) -> Duration {
        self.t_cas + self.t_burst
    }

    /// Latency of a row-buffer miss with an open row to close
    /// (precharge + activate + column + burst).
    pub fn row_miss(&self) -> Duration {
        self.t_rp + self.t_rcd + self.t_cas + self.t_burst
    }

    /// Latency when the bank is idle with no row open
    /// (activate + column + burst).
    pub fn row_closed(&self) -> Duration {
        self.t_rcd + self.t_cas + self.t_burst
    }
}

/// Geometry of the device: how a physical line address is split into
/// channel, bank and row indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramGeometry {
    /// Number of channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Bytes per row (row-buffer size).
    pub row_bytes: u32,
    /// Cache line size.
    pub line_bytes: u32,
}

impl DramGeometry {
    /// KNL DDR4: 6 channels × 16 banks, 8-KB rows.
    pub fn ddr4_knl() -> Self {
        DramGeometry {
            channels: 6,
            banks_per_channel: 16,
            row_bytes: 8192,
            line_bytes: 64,
        }
    }

    /// MCDRAM: 8 modules × 32 banks, 2-KB rows.
    pub fn mcdram_knl() -> Self {
        DramGeometry {
            channels: 8,
            banks_per_channel: 32,
            row_bytes: 2048,
            line_bytes: 64,
        }
    }

    /// Map a byte address to `(channel, bank, row)`.
    ///
    /// Lines are interleaved across channels first (so streams spread
    /// over all channels), then across banks by row index.
    pub fn map(&self, addr: u64) -> (u32, u32, u64) {
        let line = addr / self.line_bytes as u64;
        let channel = (line % self.channels as u64) as u32;
        let chan_line = line / self.channels as u64;
        let lines_per_row = (self.row_bytes / self.line_bytes) as u64;
        let row_global = chan_line / lines_per_row;
        let bank = (row_global % self.banks_per_channel as u64) as u32;
        let row = row_global / self.banks_per_channel as u64;
        (channel, bank, row)
    }
}

/// Per-bank state.
#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    /// When the bank can accept its next command. Row hits pipeline at
    /// burst cadence (tCCD); misses block the bank until data is out.
    ready: SimTime,
}

/// Aggregated access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Row-buffer hits.
    pub row_hits: Counter,
    /// Row-buffer misses (row open to a different row).
    pub row_misses: Counter,
    /// Accesses to an idle bank (no row open).
    pub row_closed: Counter,
    /// Accesses that had to wait for the bank to free up.
    pub bank_conflicts: Counter,
}

impl DramStats {
    /// Total accesses recorded.
    pub fn total(&self) -> u64 {
        self.row_hits.get() + self.row_misses.get() + self.row_closed.get()
    }

    /// Row-buffer hit rate over all accesses.
    pub fn hit_rate(&self) -> f64 {
        self.row_hits.ratio_of(self.total())
    }

    /// Combine two stat sets. Every field is a sum, so the reduction is
    /// commutative and associative: shard or per-device stats merge to
    /// the same totals in any order.
    pub fn merge(self, other: DramStats) -> DramStats {
        DramStats {
            row_hits: self.row_hits.merge(other.row_hits),
            row_misses: self.row_misses.merge(other.row_misses),
            row_closed: self.row_closed.merge(other.row_closed),
            bank_conflicts: self.bank_conflicts.merge(other.bank_conflicts),
        }
    }
}

/// The event-level DRAM model.
///
/// Two resources constrain every access: the **bank** (row-buffer
/// state machine; serializes activates/precharges) and the **channel
/// data bus** (serializes the burst phase of every line on that
/// channel). Banks give random access its latency; the bus gives
/// streaming its bandwidth ceiling.
#[derive(Debug, Clone)]
pub struct DramModel {
    timing: DramTiming,
    geometry: DramGeometry,
    banks: Vec<Bank>,
    /// Per-channel data-bus "busy until" times.
    bus_busy_until: Vec<SimTime>,
    stats: DramStats,
    /// Telemetry: picoseconds each access waited for its bank to free
    /// up (0 for uncontended accesses). A per-access wait sample is
    /// O(1) on the hot path, unlike a literal queue-depth scan over all
    /// banks, and carries the same diagnostic signal: a fat tail here
    /// *is* bank queuing. `None` (the default) costs one branch.
    queue_wait: Option<Box<Histogram>>,
}

impl DramModel {
    /// Build a model from timing and geometry.
    pub fn new(timing: DramTiming, geometry: DramGeometry) -> Self {
        let n = (geometry.channels * geometry.banks_per_channel) as usize;
        DramModel {
            timing,
            geometry,
            banks: vec![Bank::default(); n],
            bus_busy_until: vec![SimTime::ZERO; geometry.channels as usize],
            stats: DramStats::default(),
            queue_wait: None,
        }
    }

    /// Start recording a bank queue-wait histogram: every subsequent
    /// [`access`](Self::access) samples how long (in picoseconds) the
    /// request waited for its target bank. Purely observational.
    pub fn enable_queue_wait_histogram(&mut self) {
        if self.queue_wait.is_none() {
            self.queue_wait = Some(Box::new(Histogram::new()));
        }
    }

    /// The bank queue-wait histogram (ps), if telemetry was enabled.
    pub fn queue_wait_histogram(&self) -> Option<&Histogram> {
        self.queue_wait.as_deref()
    }

    /// The KNL DDR4 subsystem.
    pub fn ddr4_knl() -> Self {
        Self::new(DramTiming::ddr4_2133(), DramGeometry::ddr4_knl())
    }

    /// The KNL MCDRAM subsystem.
    pub fn mcdram_knl() -> Self {
        Self::new(DramTiming::mcdram(), DramGeometry::mcdram_knl())
    }

    /// Geometry in use.
    pub fn geometry(&self) -> DramGeometry {
        self.geometry
    }

    /// Access statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Perform a line access to byte address `addr` arriving at `at`.
    /// Returns the completion time.
    pub fn access(&mut self, addr: u64, at: SimTime) -> SimTime {
        let (channel, bank, row) = self.geometry.map(addr);
        let idx = (channel * self.geometry.banks_per_channel + bank) as usize;
        if let Some(h) = &mut self.queue_wait {
            h.record(self.banks[idx].ready.saturating_since(at).as_ps());
        }
        let b = &mut self.banks[idx];

        if b.ready > at {
            self.stats.bank_conflicts.incr();
        }
        let start = at.max(b.ready);
        // Array-access phase (everything before the data burst), and
        // whether this access pipelines in the bank (row hit: the next
        // CAS can issue one burst later) or blocks it (miss/closed: the
        // row must settle before the next command).
        let (array, pipelines) = match b.open_row {
            Some(open) if open == row => {
                self.stats.row_hits.incr();
                (self.timing.row_hit() - self.timing.t_burst, true)
            }
            Some(_) => {
                self.stats.row_misses.incr();
                (self.timing.row_miss() - self.timing.t_burst, false)
            }
            None => {
                self.stats.row_closed.incr();
                (self.timing.row_closed() - self.timing.t_burst, false)
            }
        };
        b.open_row = Some(row);
        // The burst phase consumes channel data-bus bandwidth. The bus
        // is modelled as a rate watermark (one burst slot per line,
        // floored at the arrival time) rather than a strict FIFO: real
        // controllers reorder across banks, so a slow row cycle in one
        // bank must not stall bursts from the others.
        let wm = &mut self.bus_busy_until[channel as usize];
        *wm = (*wm).max(at) + self.timing.t_burst;
        let bank_done = (start + array + self.timing.t_burst).max(*wm);
        b.ready = if pipelines {
            start + self.timing.t_burst
        } else {
            bank_done
        };
        // The controller/package path is pipelined latency on top.
        bank_done + self.timing.t_ctrl
    }

    /// Stream `lines` consecutive cache lines starting at `base`; all
    /// requests are issued at `at` (a fully pipelined prefetch stream).
    /// Returns the completion time of the last line.
    pub fn stream(&mut self, base: u64, lines: u64, at: SimTime) -> SimTime {
        let mut done = at;
        for i in 0..lines {
            let addr = base + i * self.geometry.line_bytes as u64;
            done = done.max(self.access(addr, at));
        }
        done
    }
}

impl DramModel {
    /// Debug introspection: per-channel bus busy-until times (ns).
    #[doc(hidden)]
    pub fn debug_bus_busy_ns(&self) -> Vec<f64> {
        self.bus_busy_until.iter().map(|t| t.as_ns()).collect()
    }

    /// Debug introspection: latest bank-ready time (ns).
    #[doc(hidden)]
    pub fn debug_max_bank_ready_ns(&self) -> f64 {
        self.banks
            .iter()
            .map(|b| b.ready.as_ns())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_interleaves_channels() {
        let g = DramGeometry::ddr4_knl();
        let (c0, _, _) = g.map(0);
        let (c1, _, _) = g.map(64);
        let (c6, _, _) = g.map(6 * 64);
        assert_ne!(c0, c1);
        assert_eq!(c0, c6); // wraps after `channels` lines
    }

    #[test]
    fn mapping_same_row_for_adjacent_lines_in_channel() {
        let g = DramGeometry::ddr4_knl();
        // Lines 0 and 6 are on channel 0; within one row (8 KB = 128
        // lines/row, 6-way interleave → the first ~768 lines of the
        // address space share channel-0 row 0).
        let (_, b0, r0) = g.map(0);
        let (_, b6, r6) = g.map(6 * 64);
        assert_eq!((b0, r0), (b6, r6));
    }

    #[test]
    fn row_hits_are_faster_than_misses() {
        let t = DramTiming::ddr4_2133();
        assert!(t.row_hit() < t.row_closed());
        assert!(t.row_closed() < t.row_miss());
    }

    #[test]
    fn sequential_stream_has_high_hit_rate() {
        let mut m = DramModel::ddr4_knl();
        m.stream(0, 10_000, SimTime::ZERO);
        let hr = m.stats().hit_rate();
        assert!(hr > 0.95, "hit rate {hr}");
    }

    #[test]
    fn random_access_has_low_hit_rate() {
        let mut m = DramModel::ddr4_knl();
        // Stride of exactly one row per channel group defeats the row
        // buffer: every access opens a new row in the same bank cycle.
        let mut t = SimTime::ZERO;
        let stride = 8192u64 * 6 * 16; // jump a full bank rotation
        for i in 0..5_000u64 {
            t = m.access(i * stride + (i % 7) * 64 * 6 * 16 * 128, t);
        }
        let hr = m.stats().hit_rate();
        assert!(hr < 0.5, "hit rate {hr}");
    }

    #[test]
    fn streaming_bandwidth_approximates_sustained_constant() {
        // The detailed model must land in the same regime as the
        // analytic constant (77 GB/s): within a factor ~1.5 either way.
        let mut m = DramModel::ddr4_knl();
        let lines = 200_000u64;
        let done = m.stream(0, lines, SimTime::ZERO);
        let gbs = lines as f64 * 64.0 / 1e9 / done.as_secs();
        assert!(
            gbs > 60.0 && gbs < 120.0,
            "detailed model streams at {gbs} GB/s"
        );
    }

    #[test]
    fn mcdram_streams_faster_than_ddr() {
        let mut ddr = DramModel::ddr4_knl();
        let mut hbm = DramModel::mcdram_knl();
        let lines = 100_000u64;
        let t_ddr = ddr.stream(0, lines, SimTime::ZERO);
        let t_hbm = hbm.stream(0, lines, SimTime::ZERO);
        let ratio = t_ddr.as_secs() / t_hbm.as_secs();
        assert!(ratio > 3.0, "MCDRAM/DDR stream ratio {ratio}");
    }

    #[test]
    fn dependent_chain_is_latency_not_bandwidth() {
        // Issue each access only after the previous completes (pointer
        // chase). Time per access ≈ row_miss latency, far above the
        // streaming rate.
        let mut m = DramModel::ddr4_knl();
        let mut t = SimTime::ZERO;
        let n = 1000u64;
        let stride = 8192 * 6 * 17; // new row every time
        for i in 0..n {
            t = m.access(i * stride, t);
        }
        let per_access = t.as_ns() / n as f64;
        assert!(per_access > 20.0, "chained access {per_access} ns");
    }

    #[test]
    fn bank_conflicts_counted() {
        let mut m = DramModel::ddr4_knl();
        // Two simultaneous requests to the same bank and different rows.
        let g = m.geometry();
        let row_stride = g.row_bytes as u64 * g.channels as u64 * g.banks_per_channel as u64;
        m.access(0, SimTime::ZERO);
        m.access(row_stride, SimTime::ZERO);
        assert_eq!(m.stats().bank_conflicts.get(), 1);
        assert_eq!(m.stats().row_misses.get(), 1);
    }
}

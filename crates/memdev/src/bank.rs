//! Channel/bank/row-buffer DRAM timing model.
//!
//! This is the detailed model behind the analytic numbers: each access
//! is mapped to a (channel, bank, row), pays row-hit or row-miss
//! timing, and queues behind earlier requests to the same bank. The
//! unit tests validate that the detailed model's streaming behaviour
//! is consistent with the sustained-bandwidth constants used by the
//! analytic path, and that random access degenerates to latency-bound
//! behaviour.

use simfabric::stats::{Counter, Histogram};
use simfabric::{Duration, SimTime};

/// Core DRAM timing parameters (per bank), in nanoseconds at the
/// module's I/O clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// Row activate → column access (tRCD).
    pub t_rcd: Duration,
    /// Column access strobe latency (tCAS / tCL).
    pub t_cas: Duration,
    /// Precharge time (tRP).
    pub t_rp: Duration,
    /// Data burst time for one cache line on the channel.
    pub t_burst: Duration,
    /// Controller/package path latency per access (queues, PHY, and —
    /// for MCDRAM — the 3D-stack traversal). Pipelined: it adds to
    /// every access's latency but not to bank or bus occupancy. Chosen
    /// so the end-to-end idle chase latency matches the paper's
    /// 130.4 ns (DDR) / 154.0 ns (MCDRAM) after the L1/L2 and mesh
    /// contributions.
    pub t_ctrl: Duration,
}

impl DramTiming {
    /// DDR4-2133-ish timings (14-14-14, 64-byte burst ≈ 3.0 ns at
    /// 21.3 GB/s per two-channel pair → ~4 ns per line per channel).
    pub fn ddr4_2133() -> Self {
        DramTiming {
            t_rcd: Duration::from_ns(14.06),
            t_cas: Duration::from_ns(14.06),
            t_rp: Duration::from_ns(14.06),
            t_burst: Duration::from_ns(3.75),
            t_ctrl: Duration::from_ns(69.0),
        }
    }

    /// MCDRAM-ish timings: similar core timing to DRAM (3D stacking
    /// does not shorten the array access — Chang et al. [25]), much
    /// faster burst because of the wide on-package interface.
    pub fn mcdram() -> Self {
        DramTiming {
            t_rcd: Duration::from_ns(16.0),
            t_cas: Duration::from_ns(16.0),
            t_rp: Duration::from_ns(16.0),
            t_burst: Duration::from_ns(1.2),
            t_ctrl: Duration::from_ns(91.0),
        }
    }

    /// Latency of a row-buffer hit (column access + burst).
    pub fn row_hit(&self) -> Duration {
        self.t_cas + self.t_burst
    }

    /// Latency of a row-buffer miss with an open row to close
    /// (precharge + activate + column + burst).
    pub fn row_miss(&self) -> Duration {
        self.t_rp + self.t_rcd + self.t_cas + self.t_burst
    }

    /// Latency when the bank is idle with no row open
    /// (activate + column + burst).
    pub fn row_closed(&self) -> Duration {
        self.t_rcd + self.t_cas + self.t_burst
    }
}

/// Geometry of the device: how a physical line address is split into
/// channel, bank and row indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramGeometry {
    /// Number of channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Bytes per row (row-buffer size).
    pub row_bytes: u32,
    /// Cache line size.
    pub line_bytes: u32,
}

impl DramGeometry {
    /// KNL DDR4: 6 channels × 16 banks, 8-KB rows.
    pub fn ddr4_knl() -> Self {
        DramGeometry {
            channels: 6,
            banks_per_channel: 16,
            row_bytes: 8192,
            line_bytes: 64,
        }
    }

    /// MCDRAM: 8 modules × 32 banks, 2-KB rows.
    pub fn mcdram_knl() -> Self {
        DramGeometry {
            channels: 8,
            banks_per_channel: 32,
            row_bytes: 2048,
            line_bytes: 64,
        }
    }

    /// Map a byte address to `(channel, bank, row)`.
    ///
    /// Lines are interleaved across channels first (so streams spread
    /// over all channels), then across banks by row index.
    pub fn map(&self, addr: u64) -> (u32, u32, u64) {
        let line = addr / self.line_bytes as u64;
        let channel = (line % self.channels as u64) as u32;
        let chan_line = line / self.channels as u64;
        let lines_per_row = (self.row_bytes / self.line_bytes) as u64;
        let row_global = chan_line / lines_per_row;
        let bank = (row_global % self.banks_per_channel as u64) as u32;
        let row = row_global / self.banks_per_channel as u64;
        (channel, bank, row)
    }

    /// [`map`](Self::map) packed into one word: channel in the top
    /// byte, bank in the next, row in the low 48 bits. The division
    /// chain in `map` is the expensive part of an access, so callers
    /// that classify ahead of time (the parallel replay engine) compute
    /// this once per access and route/replay from the packed form.
    pub fn map_packed(&self, addr: u64) -> u64 {
        let (channel, bank, row) = self.map(addr);
        debug_assert!(row < 1 << 48, "row index overflows packed map");
        ((channel as u64) << 56) | ((bank as u64) << 48) | row
    }

    /// Split a packed map word back into `(channel, bank, row)`.
    pub fn unpack(packed: u64) -> (u32, u32, u64) {
        (
            (packed >> 56) as u32,
            ((packed >> 48) & 0xFF) as u32,
            packed & ((1 << 48) - 1),
        )
    }
}

/// Per-bank state.
#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    /// When the bank can accept its next command. Row hits pipeline at
    /// burst cadence (tCCD); misses block the bank until data is out.
    ready: SimTime,
}

/// Aggregated access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Row-buffer hits.
    pub row_hits: Counter,
    /// Row-buffer misses (row open to a different row).
    pub row_misses: Counter,
    /// Accesses to an idle bank (no row open).
    pub row_closed: Counter,
    /// Accesses that had to wait for the bank to free up.
    pub bank_conflicts: Counter,
}

impl DramStats {
    /// Total accesses recorded.
    pub fn total(&self) -> u64 {
        self.row_hits.get() + self.row_misses.get() + self.row_closed.get()
    }

    /// Row-buffer hit rate over all accesses.
    pub fn hit_rate(&self) -> f64 {
        self.row_hits.ratio_of(self.total())
    }

    /// Combine two stat sets. Every field is a sum, so the reduction is
    /// commutative and associative: shard or per-device stats merge to
    /// the same totals in any order.
    pub fn merge(self, other: DramStats) -> DramStats {
        DramStats {
            row_hits: self.row_hits.merge(other.row_hits),
            row_misses: self.row_misses.merge(other.row_misses),
            row_closed: self.row_closed.merge(other.row_closed),
            bank_conflicts: self.bank_conflicts.merge(other.bank_conflicts),
        }
    }
}

/// The event-level DRAM model.
///
/// Two resources constrain every access: the **bank** (row-buffer
/// state machine; serializes activates/precharges) and the **channel
/// data bus** (serializes the burst phase of every line on that
/// channel). Banks give random access its latency; the bus gives
/// streaming its bandwidth ceiling.
#[derive(Debug, Clone)]
pub struct DramModel {
    timing: DramTiming,
    geometry: DramGeometry,
    banks: Vec<Bank>,
    /// Per-channel data-bus "busy until" times.
    bus_busy_until: Vec<SimTime>,
    stats: DramStats,
    /// Telemetry: picoseconds each access waited for its bank to free
    /// up (0 for uncontended accesses). A per-access wait sample is
    /// O(1) on the hot path, unlike a literal queue-depth scan over all
    /// banks, and carries the same diagnostic signal: a fat tail here
    /// *is* bank queuing. `None` (the default) costs one branch.
    queue_wait: Option<Box<Histogram>>,
}

impl DramModel {
    /// Build a model from timing and geometry.
    pub fn new(timing: DramTiming, geometry: DramGeometry) -> Self {
        let n = (geometry.channels * geometry.banks_per_channel) as usize;
        DramModel {
            timing,
            geometry,
            banks: vec![Bank::default(); n],
            bus_busy_until: vec![SimTime::ZERO; geometry.channels as usize],
            stats: DramStats::default(),
            queue_wait: None,
        }
    }

    /// Start recording a bank queue-wait histogram: every subsequent
    /// [`access`](Self::access) samples how long (in picoseconds) the
    /// request waited for its target bank. Purely observational.
    pub fn enable_queue_wait_histogram(&mut self) {
        if self.queue_wait.is_none() {
            self.queue_wait = Some(Box::new(Histogram::new()));
        }
    }

    /// The bank queue-wait histogram (ps), if telemetry was enabled.
    pub fn queue_wait_histogram(&self) -> Option<&Histogram> {
        self.queue_wait.as_deref()
    }

    /// The KNL DDR4 subsystem.
    pub fn ddr4_knl() -> Self {
        Self::new(DramTiming::ddr4_2133(), DramGeometry::ddr4_knl())
    }

    /// The KNL MCDRAM subsystem.
    pub fn mcdram_knl() -> Self {
        Self::new(DramTiming::mcdram(), DramGeometry::mcdram_knl())
    }

    /// Geometry in use.
    pub fn geometry(&self) -> DramGeometry {
        self.geometry
    }

    /// Access statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// A lower bound on the service time of *any* access: an access
    /// arriving at `at` never completes before `at + min_service()`.
    /// In [`service_access`] the burst end is at least
    /// `start + array + t_burst ≥ at + t_cas + t_burst` (a row hit on
    /// an idle bank is the fastest case) and the controller path adds
    /// `t_ctrl` on top. The concurrent replay sequencer leans on this
    /// bound to prove ordering decisions before the exact completion
    /// time is priced.
    pub fn min_service(&self) -> Duration {
        self.timing.row_hit() + self.timing.t_ctrl
    }

    /// Perform a line access to byte address `addr` arriving at `at`.
    /// Returns the completion time.
    pub fn access(&mut self, addr: u64, at: SimTime) -> SimTime {
        let (channel, bank, row) = self.geometry.map(addr);
        self.access_mapped(channel, bank, row, at)
    }

    /// [`access`](Self::access) with the address already mapped to its
    /// `(channel, bank, row)` triple — the hot path for callers that
    /// precompute [`DramGeometry::map_packed`] during classification.
    pub fn access_mapped(&mut self, channel: u32, bank: u32, row: u64, at: SimTime) -> SimTime {
        let idx = (channel * self.geometry.banks_per_channel + bank) as usize;
        service_access(
            &self.timing,
            &mut self.banks[idx],
            &mut self.bus_busy_until[channel as usize],
            &mut self.stats,
            self.queue_wait.as_deref_mut(),
            row,
            at,
        )
    }

    /// Stream `lines` consecutive cache lines starting at `base`; all
    /// requests are issued at `at` (a fully pipelined prefetch stream).
    /// Returns the completion time of the last line.
    pub fn stream(&mut self, base: u64, lines: u64, at: SimTime) -> SimTime {
        let mut done = at;
        for i in 0..lines {
            let addr = base + i * self.geometry.line_bytes as u64;
            done = done.max(self.access(addr, at));
        }
        done
    }
}

/// The per-access timing body shared by [`DramModel`] and
/// [`DramLane`]: one bank's row-buffer state machine plus one
/// channel's bus watermark. Factored out so a lane sliced off the
/// model prices accesses **bit-identically** to the whole model.
fn service_access(
    timing: &DramTiming,
    b: &mut Bank,
    wm: &mut SimTime,
    stats: &mut DramStats,
    queue_wait: Option<&mut Histogram>,
    row: u64,
    at: SimTime,
) -> SimTime {
    if let Some(h) = queue_wait {
        h.record(b.ready.saturating_since(at).as_ps());
    }
    if b.ready > at {
        stats.bank_conflicts.incr();
    }
    let start = at.max(b.ready);
    // Array-access phase (everything before the data burst), and
    // whether this access pipelines in the bank (row hit: the next
    // CAS can issue one burst later) or blocks it (miss/closed: the
    // row must settle before the next command).
    let (array, pipelines) = match b.open_row {
        Some(open) if open == row => {
            stats.row_hits.incr();
            (timing.row_hit() - timing.t_burst, true)
        }
        Some(_) => {
            stats.row_misses.incr();
            (timing.row_miss() - timing.t_burst, false)
        }
        None => {
            stats.row_closed.incr();
            (timing.row_closed() - timing.t_burst, false)
        }
    };
    b.open_row = Some(row);
    // The burst phase consumes channel data-bus bandwidth. The bus
    // is modelled as a rate watermark (one burst slot per line,
    // floored at the arrival time) rather than a strict FIFO: real
    // controllers reorder across banks, so a slow row cycle in one
    // bank must not stall bursts from the others.
    *wm = (*wm).max(at) + timing.t_burst;
    let bank_done = (start + array + timing.t_burst).max(*wm);
    b.ready = if pipelines {
        start + timing.t_burst
    } else {
        bank_done
    };
    // The controller/package path is pipelined latency on top.
    bank_done + timing.t_ctrl
}

/// One channel's worth of DRAM state — the banks behind a channel plus
/// its data-bus watermark — sliced out of a [`DramModel`] so a timing
/// worker can own it exclusively.
///
/// The channel is the natural static-ownership unit: the address map
/// never routes one access to two channels, so per-channel sequences
/// of `access_mapped` calls in the sequential merge order reproduce
/// the whole model's behaviour exactly, independent of how calls to
/// *different* lanes interleave in wall-clock time. Stats and the
/// queue-wait histogram accumulate locally and merge back (both are
/// commutative sums) in [`DramModel::absorb_lanes`].
#[derive(Debug)]
pub struct DramLane {
    timing: DramTiming,
    channel: u32,
    banks: Vec<Bank>,
    bus_busy_until: SimTime,
    stats: DramStats,
    queue_wait: Option<Box<Histogram>>,
}

impl DramLane {
    /// The channel this lane owns.
    pub fn channel(&self) -> u32 {
        self.channel
    }

    /// Price one pre-mapped access on this lane's channel. `bank` and
    /// `row` must come from the owning model's geometry map for this
    /// channel.
    pub fn access_mapped(&mut self, bank: u32, row: u64, at: SimTime) -> SimTime {
        service_access(
            &self.timing,
            &mut self.banks[bank as usize],
            &mut self.bus_busy_until,
            &mut self.stats,
            self.queue_wait.as_deref_mut(),
            row,
            at,
        )
    }
}

impl DramModel {
    /// Move every channel's bank/bus state out into per-channel
    /// [`DramLane`]s, one per channel in channel order. The model is
    /// hollow until [`absorb_lanes`](Self::absorb_lanes) puts the state
    /// back — calling [`access`](Self::access) in between panics.
    /// Lanes start with zeroed stats (merged back on absorb) and carry
    /// their own queue-wait histogram iff the model had one enabled.
    pub fn split_lanes(&mut self) -> Vec<DramLane> {
        let bpc = self.geometry.banks_per_channel as usize;
        let banks = std::mem::take(&mut self.banks);
        let buses = std::mem::take(&mut self.bus_busy_until);
        let telemetry = self.queue_wait.is_some();
        banks
            .chunks(bpc)
            .zip(buses)
            .enumerate()
            .map(|(ch, (chunk, bus))| DramLane {
                timing: self.timing,
                channel: ch as u32,
                banks: chunk.to_vec(),
                bus_busy_until: bus,
                stats: DramStats::default(),
                queue_wait: telemetry.then(|| Box::new(Histogram::new())),
            })
            .collect()
    }

    /// Restore lane state split off by [`split_lanes`](Self::split_lanes)
    /// and fold the lanes' stats/telemetry back in. Lanes may arrive in
    /// any order; every channel must be present exactly once.
    pub fn absorb_lanes(&mut self, mut lanes: Vec<DramLane>) {
        let channels = self.geometry.channels as usize;
        assert_eq!(lanes.len(), channels, "absorb_lanes needs every channel");
        lanes.sort_by_key(|l| l.channel);
        self.banks.clear();
        self.bus_busy_until.clear();
        for (ch, lane) in lanes.into_iter().enumerate() {
            assert_eq!(lane.channel as usize, ch, "duplicate or missing channel");
            self.banks.extend_from_slice(&lane.banks);
            self.bus_busy_until.push(lane.bus_busy_until);
            self.stats = self.stats.merge(lane.stats);
            if let (Some(mine), Some(theirs)) = (&mut self.queue_wait, &lane.queue_wait) {
                mine.merge(theirs);
            }
        }
    }
}

impl DramModel {
    /// Debug introspection: per-channel bus busy-until times (ns).
    #[doc(hidden)]
    pub fn debug_bus_busy_ns(&self) -> Vec<f64> {
        self.bus_busy_until.iter().map(|t| t.as_ns()).collect()
    }

    /// Debug introspection: latest bank-ready time (ns).
    #[doc(hidden)]
    pub fn debug_max_bank_ready_ns(&self) -> f64 {
        self.banks
            .iter()
            .map(|b| b.ready.as_ns())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_interleaves_channels() {
        let g = DramGeometry::ddr4_knl();
        let (c0, _, _) = g.map(0);
        let (c1, _, _) = g.map(64);
        let (c6, _, _) = g.map(6 * 64);
        assert_ne!(c0, c1);
        assert_eq!(c0, c6); // wraps after `channels` lines
    }

    #[test]
    fn mapping_same_row_for_adjacent_lines_in_channel() {
        let g = DramGeometry::ddr4_knl();
        // Lines 0 and 6 are on channel 0; within one row (8 KB = 128
        // lines/row, 6-way interleave → the first ~768 lines of the
        // address space share channel-0 row 0).
        let (_, b0, r0) = g.map(0);
        let (_, b6, r6) = g.map(6 * 64);
        assert_eq!((b0, r0), (b6, r6));
    }

    #[test]
    fn row_hits_are_faster_than_misses() {
        let t = DramTiming::ddr4_2133();
        assert!(t.row_hit() < t.row_closed());
        assert!(t.row_closed() < t.row_miss());
    }

    #[test]
    fn sequential_stream_has_high_hit_rate() {
        let mut m = DramModel::ddr4_knl();
        m.stream(0, 10_000, SimTime::ZERO);
        let hr = m.stats().hit_rate();
        assert!(hr > 0.95, "hit rate {hr}");
    }

    #[test]
    fn random_access_has_low_hit_rate() {
        let mut m = DramModel::ddr4_knl();
        // Stride of exactly one row per channel group defeats the row
        // buffer: every access opens a new row in the same bank cycle.
        let mut t = SimTime::ZERO;
        let stride = 8192u64 * 6 * 16; // jump a full bank rotation
        for i in 0..5_000u64 {
            t = m.access(i * stride + (i % 7) * 64 * 6 * 16 * 128, t);
        }
        let hr = m.stats().hit_rate();
        assert!(hr < 0.5, "hit rate {hr}");
    }

    #[test]
    fn streaming_bandwidth_approximates_sustained_constant() {
        // The detailed model must land in the same regime as the
        // analytic constant (77 GB/s): within a factor ~1.5 either way.
        let mut m = DramModel::ddr4_knl();
        let lines = 200_000u64;
        let done = m.stream(0, lines, SimTime::ZERO);
        let gbs = lines as f64 * 64.0 / 1e9 / done.as_secs();
        assert!(
            gbs > 60.0 && gbs < 120.0,
            "detailed model streams at {gbs} GB/s"
        );
    }

    #[test]
    fn mcdram_streams_faster_than_ddr() {
        let mut ddr = DramModel::ddr4_knl();
        let mut hbm = DramModel::mcdram_knl();
        let lines = 100_000u64;
        let t_ddr = ddr.stream(0, lines, SimTime::ZERO);
        let t_hbm = hbm.stream(0, lines, SimTime::ZERO);
        let ratio = t_ddr.as_secs() / t_hbm.as_secs();
        assert!(ratio > 3.0, "MCDRAM/DDR stream ratio {ratio}");
    }

    #[test]
    fn dependent_chain_is_latency_not_bandwidth() {
        // Issue each access only after the previous completes (pointer
        // chase). Time per access ≈ row_miss latency, far above the
        // streaming rate.
        let mut m = DramModel::ddr4_knl();
        let mut t = SimTime::ZERO;
        let n = 1000u64;
        let stride = 8192 * 6 * 17; // new row every time
        for i in 0..n {
            t = m.access(i * stride, t);
        }
        let per_access = t.as_ns() / n as f64;
        assert!(per_access > 20.0, "chained access {per_access} ns");
    }

    /// A deterministic mixed address/arrival sequence that exercises
    /// row hits, misses, conflicts, and every channel.
    fn probe_sequence(g: DramGeometry) -> Vec<(u64, SimTime)> {
        let row_stride = g.row_bytes as u64 * g.channels as u64 * g.banks_per_channel as u64;
        let mut out = Vec::new();
        let mut at = SimTime::ZERO;
        for i in 0..4_000u64 {
            let addr = match i % 4 {
                0 => i * 64,                           // stream
                1 => (i / 7) * row_stride + i * 64,    // same-bank churn
                2 => i.wrapping_mul(0x9E37_79B9) * 64, // scatter
                _ => (i % g.channels as u64) * 64,     // channel hammer
            };
            out.push((addr, at));
            if i % 3 == 0 {
                at = at + Duration::from_ns(2.5);
            }
        }
        out
    }

    #[test]
    fn packed_map_round_trips() {
        for g in [DramGeometry::ddr4_knl(), DramGeometry::mcdram_knl()] {
            for addr in [0u64, 64, 4096, 1 << 21, 0xDEAD_BEC0, u64::MAX / 2] {
                let expect = g.map(addr);
                assert_eq!(DramGeometry::unpack(g.map_packed(addr)), expect);
            }
        }
    }

    #[test]
    fn access_mapped_equals_access() {
        let mut by_addr = DramModel::ddr4_knl();
        let mut by_map = DramModel::ddr4_knl();
        by_addr.enable_queue_wait_histogram();
        by_map.enable_queue_wait_histogram();
        let g = by_addr.geometry();
        for (addr, at) in probe_sequence(g) {
            let (c, b, r) = DramGeometry::unpack(g.map_packed(addr));
            assert_eq!(by_map.access_mapped(c, b, r, at), by_addr.access(addr, at));
        }
        assert_eq!(by_map.stats(), by_addr.stats());
        assert_eq!(
            by_map.queue_wait_histogram(),
            by_addr.queue_wait_histogram()
        );
    }

    #[test]
    fn lane_sliced_replay_matches_whole_model() {
        // Route every access of a mixed sequence to its channel's lane,
        // in the same global order; completion times, stats, and the
        // queue-wait histogram must match the unsplit model exactly,
        // and the absorbed model must continue identically.
        for mk in [DramModel::ddr4_knl, DramModel::mcdram_knl] {
            let mut whole = mk();
            let mut split = mk();
            whole.enable_queue_wait_histogram();
            split.enable_queue_wait_histogram();
            let g = whole.geometry();
            let seq = probe_sequence(g);
            let mut lanes = split.split_lanes();
            assert_eq!(lanes.len(), g.channels as usize);
            for &(addr, at) in &seq {
                let (c, b, r) = g.map(addr);
                let got = lanes[c as usize].access_mapped(b, r, at);
                assert_eq!(got, whole.access(addr, at), "addr {addr:#x}");
            }
            lanes.reverse(); // absorb accepts any lane order
            split.absorb_lanes(lanes);
            assert_eq!(split.stats(), whole.stats());
            assert_eq!(split.queue_wait_histogram(), whole.queue_wait_histogram());
            // State (open rows, bank ready, bus watermark) restored.
            let late = SimTime::ZERO + Duration::from_ns(5.0);
            for &(addr, _) in seq.iter().take(64) {
                assert_eq!(split.access(addr, late), whole.access(addr, late));
            }
            assert_eq!(split.stats(), whole.stats());
        }
    }

    #[test]
    fn min_service_is_a_true_lower_bound() {
        for mk in [DramModel::ddr4_knl, DramModel::mcdram_knl] {
            let mut m = mk();
            let lb = m.min_service();
            for (addr, at) in probe_sequence(m.geometry()) {
                let done = m.access(addr, at);
                assert!(done >= at + lb, "addr {addr:#x}");
            }
        }
    }

    #[test]
    fn bank_conflicts_counted() {
        let mut m = DramModel::ddr4_knl();
        // Two simultaneous requests to the same bank and different rows.
        let g = m.geometry();
        let row_stride = g.row_bytes as u64 * g.channels as u64 * g.banks_per_channel as u64;
        m.access(0, SimTime::ZERO);
        m.access(row_stride, SimTime::ZERO);
        assert_eq!(m.stats().bank_conflicts.get(), 1);
        assert_eq!(m.stats().row_misses.get(), 1);
    }
}

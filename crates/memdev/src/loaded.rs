//! Loaded-latency model.
//!
//! Memory latency rises with utilization as controller queues fill. We
//! model the loaded latency with the standard M/D/1-flavoured shape
//!
//! ```text
//! L(u) = L_idle × (1 + k × u / (1 − u))        for u < u_max
//! ```
//!
//! clamped at `u_max` (queues never grow unbounded in a closed system —
//! the cores stall instead). The curve parameters were chosen so the
//! model reproduces the measured behaviour cited by the paper
//! (McCalpin's KNL latency study [18] and Chang et al. [25]): latency
//! roughly doubles near saturation.

use simfabric::Duration;

/// Parameters of the loaded-latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadedLatencyCurve {
    /// Queueing sensitivity `k`; larger means latency climbs earlier.
    pub queue_factor: f64,
    /// Utilization at which the curve is clamped (closed-system limit).
    pub max_utilization: f64,
}

impl LoadedLatencyCurve {
    /// A curve calibrated for conventional DDR4: latency stays fairly
    /// flat until ~70 % utilization.
    pub fn ddr_like() -> Self {
        LoadedLatencyCurve {
            queue_factor: 0.12,
            max_utilization: 0.95,
        }
    }

    /// A curve calibrated for MCDRAM: many more banks, so queueing
    /// kicks in later but the idle latency is higher to start with.
    pub fn mcdram_like() -> Self {
        LoadedLatencyCurve {
            queue_factor: 0.08,
            max_utilization: 0.97,
        }
    }

    /// Loaded latency at `utilization` (fraction of sustained
    /// bandwidth, clamped to the curve's valid range).
    pub fn latency(&self, idle: Duration, utilization: f64) -> Duration {
        let u = utilization.clamp(0.0, self.max_utilization);
        let factor = 1.0 + self.queue_factor * u / (1.0 - u);
        idle.scale(factor)
    }
}

impl Default for LoadedLatencyCurve {
    fn default() -> Self {
        Self::ddr_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_at_zero_utilization() {
        let c = LoadedLatencyCurve::ddr_like();
        let idle = Duration::from_ns(130.4);
        assert_eq!(c.latency(idle, 0.0), idle);
    }

    #[test]
    fn monotonically_increasing() {
        let c = LoadedLatencyCurve::mcdram_like();
        let idle = Duration::from_ns(154.0);
        let mut prev = Duration::ZERO;
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            let l = c.latency(idle, u);
            assert!(l >= prev, "latency decreased at u={u}");
            prev = l;
        }
    }

    #[test]
    fn clamps_above_max_utilization() {
        let c = LoadedLatencyCurve::ddr_like();
        let idle = Duration::from_ns(100.0);
        assert_eq!(c.latency(idle, 2.0), c.latency(idle, c.max_utilization));
        // And never infinite.
        assert!(c.latency(idle, 1.0).as_ns() < 10_000.0);
    }

    #[test]
    fn negative_utilization_clamps_to_idle() {
        let c = LoadedLatencyCurve::default();
        let idle = Duration::from_ns(100.0);
        assert_eq!(c.latency(idle, -0.5), idle);
    }
}

//! `memdev` — models of the two memory technologies on a Knights
//! Landing node: off-package **DDR4** (six channels, two controllers)
//! and on-package **MCDRAM** (eight 2-GB modules, 3D-stacked).
//!
//! Two levels of fidelity are provided:
//!
//! * [`spec::MemDeviceSpec`] — a calibrated analytic description
//!   (capacity, peak/sustained bandwidth, idle/loaded latency, maximum
//!   useful concurrency) consumed by the Little's-law machine model in
//!   the `knl` crate. The calibration constants come straight from the
//!   paper's measurements (§IV-A): DDR sustains 77 GB/s on STREAM triad
//!   with a 130.4 ns idle latency; MCDRAM sustains 330 GB/s at one
//!   hardware thread per core (420 GB/s with more) with a 154.0 ns idle
//!   latency.
//! * [`bank::DramModel`] — a channel/bank/row-buffer model with
//!   event-level timing, used by the trace-driven simulator and by the
//!   unit tests that validate the analytic constants against the
//!   detailed model.
//!
//! The [`regulator::BandwidthRegulator`] converts a request stream into
//! completion times under a peak-bandwidth constraint and is shared by
//! both paths.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bank;
pub mod loaded;
pub mod presets;
pub mod regulator;
pub mod spec;

pub use loaded::LoadedLatencyCurve;
pub use presets::{ddr4_knl, mcdram_knl};
pub use regulator::BandwidthRegulator;
pub use spec::{DeviceKind, MemDeviceSpec};

//! Calibrated device presets for the ARCHER KNL testbed (Xeon Phi
//! 7210, §III-A of the paper).
//!
//! Provenance of each constant:
//!
//! | Constant | Value | Source |
//! |---|---|---|
//! | DDR capacity | 96 GB | §III-A testbed description |
//! | DDR channels | 6 (DDR4-2133) | §II / §III-A |
//! | DDR peak BW | 90 GB/s | §II ("DDR can deliver ~90 GB/s") |
//! | DDR sustained BW | 77 GB/s | Fig. 2 STREAM triad plateau |
//! | DDR idle latency | 130.4 ns | §IV-A |
//! | MCDRAM capacity | 16 GB (8 × 2 GB) | §III-A |
//! | MCDRAM peak BW | 400 GB/s | §II ("peak bandwidth of ~400 GB/s") |
//! | MCDRAM sustained BW | 330 GB/s @1 HT (420 max) | Fig. 2 / §IV-A |
//! | MCDRAM idle latency | 154.0 ns | §IV-A |

use crate::loaded::LoadedLatencyCurve;
use crate::spec::{DeviceKind, MemDeviceSpec};
use simfabric::{ByteSize, Duration};

/// Idle DDR4 pointer-chase latency measured by the paper (ns).
pub const DDR_IDLE_LATENCY_NS: f64 = 130.4;
/// Idle MCDRAM pointer-chase latency measured by the paper (ns).
pub const MCDRAM_IDLE_LATENCY_NS: f64 = 154.0;
/// STREAM-triad sustained DDR bandwidth from Fig. 2 (GB/s).
pub const DDR_SUSTAINED_GBS: f64 = 77.0;
/// STREAM-triad sustained MCDRAM bandwidth at 1 HW thread/core (GB/s).
pub const MCDRAM_SUSTAINED_1T_GBS: f64 = 330.0;
/// Maximum MCDRAM bandwidth with ≥2 HW threads/core (GB/s, §IV-A).
pub const MCDRAM_SUSTAINED_MAX_GBS: f64 = 420.0;

/// The 96-GB, six-channel DDR4-2133 system of the ARCHER KNL nodes.
pub fn ddr4_knl() -> MemDeviceSpec {
    MemDeviceSpec {
        name: "DDR4-2133 x6 (96GB)".to_string(),
        kind: DeviceKind::Ddr4,
        capacity: ByteSize::gib(96),
        channels: 6,
        peak_bw_gbs: 90.0,
        sustained_bw_gbs: DDR_SUSTAINED_GBS,
        idle_latency: Duration::from_ns(DDR_IDLE_LATENCY_NS),
        // 6 channels × 16 banks × ~2 scheduler slots.
        max_concurrency: 192,
        line_bytes: 64,
        loaded_curve: LoadedLatencyCurve::ddr_like(),
    }
}

/// The 16-GB, eight-module MCDRAM of the Xeon Phi 7210.
///
/// `sustained_bw_gbs` holds the *maximum* sustainable bandwidth
/// (420 GB/s); the machine model derates it by the achievable
/// concurrency of the core configuration, which reproduces the
/// 330 GB/s plateau at one hardware thread per core.
pub fn mcdram_knl() -> MemDeviceSpec {
    MemDeviceSpec {
        name: "MCDRAM 8x2GB".to_string(),
        kind: DeviceKind::Mcdram,
        capacity: ByteSize::gib(16),
        channels: 8,
        peak_bw_gbs: 450.0,
        sustained_bw_gbs: MCDRAM_SUSTAINED_MAX_GBS,
        idle_latency: Duration::from_ns(MCDRAM_IDLE_LATENCY_NS),
        // 8 modules × 16 pseudo-channels × ~8 deep.
        max_concurrency: 1024,
        line_bytes: 64,
        loaded_curve: LoadedLatencyCurve::mcdram_like(),
    }
}

/// A scaled custom device for ablation studies (capacity and bandwidth
/// multipliers applied to the MCDRAM preset).
pub fn custom_hbm(capacity: ByteSize, bw_scale: f64, latency_scale: f64) -> MemDeviceSpec {
    let base = mcdram_knl();
    MemDeviceSpec {
        name: format!("HBM custom ({capacity}, {bw_scale:.2}x bw, {latency_scale:.2}x lat)"),
        kind: DeviceKind::Custom,
        capacity,
        peak_bw_gbs: base.peak_bw_gbs * bw_scale,
        sustained_bw_gbs: base.sustained_bw_gbs * bw_scale,
        idle_latency: base.idle_latency.scale(latency_scale),
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratio_holds() {
        // §II: "This 4x difference in bandwidth": 330/77 ≈ 4.3 at one
        // thread, peak 400 vs 90 ≈ 4.4.
        let r = MCDRAM_SUSTAINED_1T_GBS / DDR_SUSTAINED_GBS;
        assert!(r > 4.0 && r < 4.6, "bandwidth ratio {r}");
    }

    #[test]
    fn latency_penalty_is_18_percent() {
        // §IV-A: "accessing HBM could be ~18% slower".
        let penalty = MCDRAM_IDLE_LATENCY_NS / DDR_IDLE_LATENCY_NS - 1.0;
        assert!((penalty - 0.18).abs() < 0.01, "penalty {penalty}");
    }

    #[test]
    fn capacities_match_testbed() {
        assert_eq!(ddr4_knl().capacity, ByteSize::gib(96));
        assert_eq!(mcdram_knl().capacity, ByteSize::gib(16));
        assert_eq!(mcdram_knl().channels, 8);
        assert_eq!(ddr4_knl().channels, 6);
    }

    #[test]
    fn custom_hbm_scales() {
        let d = custom_hbm(ByteSize::gib(32), 2.0, 0.5);
        assert_eq!(d.capacity, ByteSize::gib(32));
        assert!((d.sustained_bw_gbs - 840.0).abs() < 1e-9);
        assert!((d.idle_latency.as_ns() - 77.0).abs() < 1e-9);
        d.validate().unwrap();
    }
}

//! `memkind-sim` — a kind-based heap manager over simulated NUMA
//! memory, modeled on the memkind library \[10\] the paper cites for
//! fine-grained data placement in flat mode.
//!
//! The real memkind exposes `hbw_malloc`/`memkind_malloc(kind, …)` so
//! an application can put individual data structures in MCDRAM while
//! the rest stays in DDR. This simulator reproduces that control
//! surface over [`numamem`]'s policy engine:
//!
//! * [`kind::Kind`] — the allocation kinds (default, HBW, preferred,
//!   interleaved) with the real library's fallback semantics;
//! * [`arena::Arena`] — a virtual-address allocator (first-fit free
//!   list with coalescing) so every allocation has a stable address
//!   range that traces and access streams can reference;
//! * [`heap::MemkindHeap`] — the `hbw_malloc`-style front end mapping
//!   virtual pages to NUMA nodes, queryable by the performance model
//!   (`node_of(addr)`);
//! * [`migrate::PageScheduler`] — the periodic hot-page DDR↔MCDRAM
//!   scheduler (hotness sampling, decayed counters, capacity budget,
//!   migration cost model) the trace simulator drives for dynamic
//!   placements — the Cori tuning scenario the paper could not
//!   measure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod heap;
pub mod kind;
pub mod migrate;

pub use arena::Arena;
pub use heap::{Block, HeapError, HeapStats, MemkindHeap};
pub use kind::Kind;
pub use migrate::{
    MigratePolicy, MigrationCost, MigrationSpec, MigrationStats, PageScheduler, PAGE_BYTES,
};

//! Periodic page migration between memory tiers — the Cori scenario.
//!
//! The paper measures *static* placements only; the interesting regime
//! on production hybrid-memory machines (NERSC Cori is the canonical
//! example) is a page scheduler that samples per-page hotness from the
//! access stream and, every `T` accesses, promotes the hottest pages
//! DDR→MCDRAM and demotes cold pages back, under a fixed MCDRAM
//! capacity budget. [`PageScheduler`] is that scheduler, factored so
//! the trace simulator (`knl::tracesim`) can drive it from all three
//! replay engines and stay bit-identical:
//!
//! * **Sampling** — [`PageScheduler::tick`] is called exactly once per
//!   consumed access, in the replay's merge order, with the access's
//!   pre-stall issue time as `now`. Memory-level accesses bump a
//!   per-page hotness counter.
//! * **Rebalancing** — when the global tick count reaches a multiple
//!   of the period, the scheduler sorts pages by decayed hotness
//!   (resident pages win ties — hysteresis), takes the top
//!   `budget_pages`, and migrates the set difference. Counters then
//!   halve (exponential decay), so stale phases age out in a few
//!   windows.
//! * **Cost model** — every migration batch is charged a per-page
//!   transfer time drawn from the slower device's sustained bandwidth
//!   (a page move reads one device and writes the other, so the slow
//!   side bounds it) plus a fixed per-page remap overhead, plus one
//!   TLB-shootdown constant per batch. Accesses touching a page in
//!   transit are floored to the batch's completion time via
//!   [`PageScheduler::transit_floor`].
//!
//! Everything the scheduler does is a pure function of the tick
//! sequence `(addr, memory_level, now)` — hash-map iteration is always
//! sorted before it can influence an outcome — which is what makes the
//! sequential, windowed-parallel, and streaming replays bit-identical
//! under active migration ([`MigrationStats::digest`] pins the exact
//! `(tick, page, direction)` move sequence across engines).

use memdev::MemDeviceSpec;
use simfabric::stats::Histogram;
use simfabric::{Duration, SimTime};
use std::collections::{HashMap, HashSet};

/// Page granularity of the scheduler (KNL small pages).
pub const PAGE_BYTES: u64 = 4096;

/// The page a byte address falls in.
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_BYTES
}

/// Which pages qualify for promotion at a rebalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigratePolicy {
    /// Any page touched by a memory-level access this window
    /// qualifies; the budget picks the hottest.
    HottestFirst,
    /// Only pages whose decayed counter reaches the threshold qualify
    /// (filters one-touch noise before it can thrash the budget).
    MinHotness(u32),
}

impl MigratePolicy {
    /// Minimum decayed counter a page needs to qualify.
    fn threshold(self) -> u32 {
        match self {
            MigratePolicy::HottestFirst => 1,
            MigratePolicy::MinHotness(t) => t.max(1),
        }
    }
}

/// Configuration of a migrating placement, small enough to ride inside
/// `knl::tracesim::TracePlacement` by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationSpec {
    /// Rebalance every this many replayed accesses; 0 disables the
    /// scheduler entirely (the placement degenerates to all-DDR).
    pub period: u64,
    /// MCDRAM capacity budget, in [`PAGE_BYTES`] pages; 0 disables.
    pub budget_pages: u32,
    /// Promotion policy.
    pub policy: MigratePolicy,
}

impl MigrationSpec {
    /// A spec with the given period and budget under
    /// [`MigratePolicy::HottestFirst`].
    pub const fn new(period: u64, budget_pages: u32) -> Self {
        MigrationSpec {
            period,
            budget_pages,
            policy: MigratePolicy::HottestFirst,
        }
    }

    /// Whether this spec can ever migrate a page. A disabled spec is
    /// exactly the static all-DDR placement, so callers skip building
    /// a scheduler for it.
    pub fn enabled(&self) -> bool {
        self.period > 0 && self.budget_pages > 0
    }
}

/// What one migration batch costs, derived from device specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationCost {
    /// Time to move one page: streaming the page through the slower
    /// device plus the per-page remap/bookkeeping overhead.
    pub per_page: Duration,
    /// Fixed cost per batch with at least one move: the TLB shootdown
    /// IPI round and the page-table update fence.
    pub shootdown: Duration,
}

/// Per-page kernel/remap overhead on top of the raw copy (page-table
/// walk, queueing on the migration engine).
const PER_PAGE_OVERHEAD: Duration = Duration::from_ps(100_000); // 100 ns
/// TLB-shootdown cost charged once per non-empty migration batch.
const SHOOTDOWN: Duration = Duration::from_ps(2_000_000); // 2 µs

impl MigrationCost {
    /// Cost model for a DDR↔MCDRAM pair: a page move reads one device
    /// and writes the other, so the slower sustained bandwidth bounds
    /// the copy in either direction.
    pub fn from_devices(a: &MemDeviceSpec, b: &MemDeviceSpec) -> Self {
        let slow = if a.sustained_bw_gbs <= b.sustained_bw_gbs {
            a
        } else {
            b
        };
        MigrationCost {
            per_page: slow.stream_time(PAGE_BYTES) + PER_PAGE_OVERHEAD,
            shootdown: SHOOTDOWN,
        }
    }
}

/// Observability counters for one scheduler's lifetime. Every field is
/// a deterministic function of the tick sequence, so the equivalence
/// suite asserts whole-struct equality across replay engines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Rebalance points reached (period boundaries, moves or not).
    pub rebalances: u64,
    /// Pages promoted DDR→MCDRAM.
    pub promoted_pages: u64,
    /// Pages demoted MCDRAM→DDR.
    pub demoted_pages: u64,
    /// Bytes moved in either direction.
    pub bytes_moved: u64,
    /// Total charged migration time (per-page copies + shootdowns).
    pub migration_time: Duration,
    /// Memory-level accesses observed by the sampler.
    pub sampled_accesses: u64,
    /// Memory-level accesses routed to MCDRAM under the dynamic map.
    pub hbm_routed: u64,
    /// Most pages simultaneously resident in MCDRAM.
    pub peak_resident_pages: u64,
    /// FNV-1a fold of every `(tick, page, direction)` move, in move
    /// order: two engines with equal digests performed identical
    /// remaps at identical trace offsets.
    pub digest: u64,
}

fn fnv1a(mut h: u64, x: u64) -> u64 {
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The periodic hot-page scheduler. See the module docs for the
/// sampling/decay/cost model and the determinism argument.
#[derive(Debug, Clone)]
pub struct PageScheduler {
    spec: MigrationSpec,
    cost: MigrationCost,
    /// Decayed per-page hotness counters (absent = zero).
    hot: HashMap<u64, u32>,
    /// Pages currently resident in MCDRAM (size ≤ budget).
    resident: HashSet<u64>,
    /// Pages still in transit: page → completion floor for accesses.
    transit: HashMap<u64, SimTime>,
    /// Accesses consumed so far.
    ticks: u64,
    /// Memory-level accesses in the current sampling window.
    window_mem: u64,
    /// ... of which routed to MCDRAM.
    window_hbm: u64,
    /// Per-window MCDRAM-routed permille, one sample per closed
    /// window: the "hit-rate delta per window" telemetry series.
    window_hist: Histogram,
    stats: MigrationStats,
}

impl PageScheduler {
    /// Build a scheduler; `None` when the spec is disabled (callers
    /// then route statically, paying nothing per access).
    pub fn new(spec: MigrationSpec, cost: MigrationCost) -> Option<Self> {
        spec.enabled().then(|| PageScheduler {
            spec,
            cost,
            hot: HashMap::new(),
            resident: HashSet::new(),
            transit: HashMap::new(),
            ticks: 0,
            window_mem: 0,
            window_hbm: 0,
            window_hist: Histogram::new(),
            stats: MigrationStats::default(),
        })
    }

    /// The spec this scheduler runs.
    pub fn spec(&self) -> MigrationSpec {
        self.spec
    }

    /// Whether `addr`'s page is currently mapped to MCDRAM. Every page
    /// is in exactly one tier: MCDRAM iff resident, DDR otherwise.
    pub fn is_hbm(&self, addr: u64) -> bool {
        self.resident.contains(&page_of(addr))
    }

    /// Pages currently resident in MCDRAM.
    pub fn resident_pages(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Floor a device arrival time to the in-transit completion of the
    /// access's page, if it is mid-migration.
    pub fn transit_floor(&self, addr: u64, arrive: SimTime) -> SimTime {
        match self.transit.get(&page_of(addr)) {
            Some(&ready) => arrive.max(ready),
            None => arrive,
        }
    }

    /// Consume one access in replay merge order: sample hotness,
    /// rebalance if the period boundary is reached, and account the
    /// routed tier. `now` must be the access's pre-stall issue time
    /// (the consuming core's clock at sequencing time), which every
    /// replay engine computes identically.
    pub fn tick(&mut self, addr: u64, memory_level: bool, now: SimTime) {
        self.ticks += 1;
        if memory_level {
            *self.hot.entry(page_of(addr)).or_insert(0) += 1;
        }
        if self.ticks % self.spec.period == 0 {
            self.rebalance(now);
        }
        if memory_level {
            self.stats.sampled_accesses += 1;
            self.window_mem += 1;
            if self.is_hbm(addr) {
                self.stats.hbm_routed += 1;
                self.window_hbm += 1;
            }
        }
    }

    /// Promote/demote to the hottest-page target set and charge the
    /// batch. Merge order is non-decreasing in issue time, so pruning
    /// transit entries at or before `now` can never change a later
    /// access's floor.
    fn rebalance(&mut self, now: SimTime) {
        self.stats.rebalances += 1;
        if self.window_mem > 0 {
            self.window_hist
                .record(self.window_hbm * 1000 / self.window_mem);
        }
        self.window_mem = 0;
        self.window_hbm = 0;
        self.transit.retain(|_, ready| *ready > now);
        let min = self.spec.policy.threshold();
        let mut cand: Vec<(u32, bool, u64)> = self
            .hot
            .iter()
            .filter(|&(_, &n)| n >= min)
            .map(|(&p, &n)| (n, self.resident.contains(&p), p))
            .collect();
        // Hottest first; resident pages win ties (hysteresis keeps the
        // budget from churning on equal counts); page index last so
        // hash-map iteration order never reaches the outcome.
        cand.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
        cand.truncate(self.spec.budget_pages as usize);
        let target: HashSet<u64> = cand.iter().map(|&(_, _, p)| p).collect();
        let mut promoted: Vec<u64> = target.difference(&self.resident).copied().collect();
        let mut demoted: Vec<u64> = self.resident.difference(&target).copied().collect();
        promoted.sort_unstable();
        demoted.sort_unstable();
        let moves = (promoted.len() + demoted.len()) as u64;
        if moves > 0 {
            let batch = self.cost.shootdown + self.cost.per_page.times(moves);
            let ready = now + batch;
            self.stats.migration_time += batch;
            self.stats.bytes_moved += moves * PAGE_BYTES;
            self.stats.promoted_pages += promoted.len() as u64;
            self.stats.demoted_pages += demoted.len() as u64;
            for &p in &promoted {
                self.note_move(p, 1, ready);
                self.resident.insert(p);
            }
            for &p in &demoted {
                self.note_move(p, 0, ready);
                self.resident.remove(&p);
            }
        }
        self.stats.peak_resident_pages = self.stats.peak_resident_pages.max(target.len() as u64);
        self.hot.retain(|_, n| {
            *n /= 2;
            *n > 0
        });
    }

    fn note_move(&mut self, page: u64, dir: u64, ready: SimTime) {
        let mut d = fnv1a(self.stats.digest, self.ticks);
        d = fnv1a(d, page);
        self.stats.digest = fnv1a(d, dir);
        let floor = self.transit.entry(page).or_insert(SimTime::ZERO);
        *floor = (*floor).max(ready);
    }

    /// The lifetime counters.
    pub fn stats(&self) -> &MigrationStats {
        &self.stats
    }

    /// Per-window MCDRAM-routed permille of memory-level accesses (one
    /// sample per closed sampling window).
    pub fn window_histogram(&self) -> &Histogram {
        &self.window_hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdev::{ddr4_knl, mcdram_knl};

    fn cost() -> MigrationCost {
        MigrationCost::from_devices(&ddr4_knl(), &mcdram_knl())
    }

    fn sched(period: u64, budget: u32) -> PageScheduler {
        PageScheduler::new(MigrationSpec::new(period, budget), cost()).expect("enabled spec")
    }

    #[test]
    fn disabled_specs_build_no_scheduler() {
        assert!(PageScheduler::new(MigrationSpec::new(0, 8), cost()).is_none());
        assert!(PageScheduler::new(MigrationSpec::new(100, 0), cost()).is_none());
        assert!(!MigrationSpec::new(0, 8).enabled());
        assert!(MigrationSpec::new(1, 1).enabled());
    }

    #[test]
    fn cost_model_is_bounded_by_the_slow_device() {
        let c = cost();
        let ddr_copy = ddr4_knl().stream_time(PAGE_BYTES);
        assert_eq!(c.per_page, ddr_copy + PER_PAGE_OVERHEAD);
        assert!(c.shootdown > Duration::ZERO);
        // Argument order must not matter.
        assert_eq!(c, MigrationCost::from_devices(&mcdram_knl(), &ddr4_knl()));
    }

    #[test]
    fn hot_pages_promote_and_budget_binds() {
        let mut s = sched(16, 2);
        // Pages 0..4 touched with decreasing frequency within one
        // period: 0 and 1 are hottest.
        for i in 0..16u64 {
            let page = match i % 8 {
                0..=3 => 0,
                4..=5 => 1,
                6 => 2,
                _ => 3,
            };
            s.tick(page * PAGE_BYTES, true, SimTime::from_ps(i * 1000));
        }
        assert_eq!(s.stats().rebalances, 1);
        assert_eq!(s.resident_pages(), 2);
        assert!(s.is_hbm(0) && s.is_hbm(PAGE_BYTES));
        assert!(!s.is_hbm(2 * PAGE_BYTES) && !s.is_hbm(3 * PAGE_BYTES));
        assert_eq!(s.stats().promoted_pages, 2);
        assert_eq!(s.stats().bytes_moved, 2 * PAGE_BYTES);
        assert!(s.stats().migration_time > Duration::ZERO);
    }

    #[test]
    fn transit_floor_applies_then_expires() {
        let mut s = sched(4, 1);
        for i in 0..4u64 {
            s.tick(0, true, SimTime::from_ps(i));
        }
        assert!(s.is_hbm(0));
        let ready = SimTime::from_ps(3) + s.cost.shootdown + s.cost.per_page;
        assert_eq!(s.transit_floor(0, SimTime::from_ps(10)), ready);
        // Other pages are unaffected.
        assert_eq!(
            s.transit_floor(PAGE_BYTES, SimTime::from_ps(10)),
            SimTime::from_ps(10)
        );
        // An arrival after the transfer is not floored.
        let late = ready + Duration::from_ps(1);
        assert_eq!(s.transit_floor(0, late), late);
        // The next rebalance (at a later now) prunes the entry.
        for i in 0..4u64 {
            s.tick(0, true, late + Duration::from_ps(i));
        }
        assert!(s.transit.is_empty());
    }

    #[test]
    fn phase_change_demotes_stale_pages() {
        let mut s = sched(8, 1);
        let t = |i: u64| SimTime::from_ps(i * 1_000_000_000);
        for i in 0..8u64 {
            s.tick(0, true, t(i));
        }
        assert!(s.is_hbm(0));
        // The hot page moves; decay ages page 0 out within two windows.
        for i in 8..24u64 {
            s.tick(PAGE_BYTES, true, t(i));
        }
        assert!(!s.is_hbm(0) && s.is_hbm(PAGE_BYTES));
        assert!(s.stats().demoted_pages >= 1);
        // Budget 1 was never exceeded.
        assert_eq!(s.stats().peak_resident_pages, 1);
    }

    #[test]
    fn min_hotness_filters_cold_noise() {
        let mut s = PageScheduler::new(
            MigrationSpec {
                period: 8,
                budget_pages: 4,
                policy: MigratePolicy::MinHotness(3),
            },
            cost(),
        )
        .unwrap();
        // Page 0 touched 5 times, pages 1..4 once each.
        for i in 0..8u64 {
            let page = if i < 5 { 0 } else { i - 4 };
            s.tick(page * PAGE_BYTES, true, SimTime::from_ps(i));
        }
        assert!(s.is_hbm(0));
        assert_eq!(s.resident_pages(), 1, "one-touch pages must not qualify");
    }

    #[test]
    fn digest_tracks_move_sequence() {
        let run = |n: u64| {
            let mut s = sched(4, 2);
            // Distinct pages per tick: every window promotes fresh pages and
            // demotes the previous window's, so each rebalance moves pages.
            for i in 0..n {
                s.tick(i * PAGE_BYTES, true, SimTime::from_ps(i));
            }
            s.stats().clone()
        };
        assert_eq!(run(12), run(12), "same ticks, same stats");
        assert_ne!(run(12).digest, run(8).digest);
        assert_eq!(MigrationStats::default().digest, 0);
    }

    #[test]
    fn non_memory_ticks_advance_the_period_but_not_hotness() {
        let mut s = sched(4, 4);
        for i in 0..8u64 {
            s.tick(0, false, SimTime::from_ps(i));
        }
        assert_eq!(s.stats().rebalances, 2);
        assert_eq!(s.stats().sampled_accesses, 0);
        assert_eq!(s.resident_pages(), 0, "nothing sampled, nothing promoted");
    }
}

//! The memkind-style heap front end.
//!
//! [`MemkindHeap`] binds the pieces together: a virtual-address arena
//! for stable addresses, the NUMA policy engine for placement, and a
//! per-kind accounting layer. Its `node_of` query is what the machine
//! model uses to decide which device an address's traffic hits.

use crate::arena::Arena;
use crate::kind::Kind;
use numamem::system::PAGE_BYTES;
use numamem::{Allocation, NodeId, NumaSystem, NumaTopology, PolicyError};
use simfabric::ByteSize;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::sync::Mutex;

/// Errors returned by heap operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// The kind cannot be satisfied on this topology at all
    /// (`hbw_check_available` failure — e.g. HBW in cache mode).
    KindUnavailable(Kind),
    /// The policy engine refused (strict bind out of memory, …).
    Policy(PolicyError),
    /// The virtual address space is exhausted or too fragmented.
    AddressSpace,
    /// `free` of an address that is not a live block start.
    InvalidFree(u64),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::KindUnavailable(k) => write!(f, "{k} is not available on this system"),
            HeapError::Policy(e) => write!(f, "{e}"),
            HeapError::AddressSpace => write!(f, "virtual address space exhausted"),
            HeapError::InvalidFree(a) => write!(f, "invalid free of {a:#x}"),
        }
    }
}

impl std::error::Error for HeapError {}

impl From<PolicyError> for HeapError {
    fn from(e: PolicyError) -> Self {
        HeapError::Policy(e)
    }
}

/// A live heap block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Start virtual address (page-aligned).
    pub addr: u64,
    /// Requested size.
    pub size: ByteSize,
    /// Kind it was allocated with.
    pub kind: Kind,
}

impl Block {
    /// End address (exclusive, page-rounded).
    pub fn end(&self) -> u64 {
        self.addr + self.size.pages(PAGE_BYTES).max(1) * PAGE_BYTES
    }

    /// Whether `addr` falls inside this block.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.end()
    }
}

/// Per-kind allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// Peak live bytes.
    pub peak_bytes: u64,
}

struct Record {
    allocation: Allocation,
    kind: Kind,
}

struct Inner {
    system: NumaSystem,
    arena: Arena,
    blocks: BTreeMap<u64, Record>,
    stats: BTreeMap<Kind, HeapStats>,
}

/// The memkind-style heap. Cheap to clone (shared state, internally
/// locked) so workloads and the machine model can both hold it.
///
/// # Example
///
/// ```
/// use memkind_sim::{Kind, MemkindHeap};
/// use numamem::NumaTopology;
/// use simfabric::ByteSize;
///
/// let heap = MemkindHeap::new(NumaTopology::knl_flat());
/// // hbw_malloc puts the block on the MCDRAM node...
/// let b = heap.hbw_malloc(ByteSize::gib(1)).unwrap();
/// assert_eq!(heap.node_of(b.addr), Some(1));
/// // ...and is strict: 16 GB is all there is.
/// assert!(heap.malloc(Kind::Hbw, ByteSize::gib(16)).is_err());
/// ```
#[derive(Clone)]
pub struct MemkindHeap {
    inner: Arc<Mutex<Inner>>,
}

/// Base of the simulated heap VA range (an arbitrary canonical-form
/// address; distinct from null and from typical text/stack addresses).
pub const HEAP_BASE: u64 = 0x6000_0000_0000;

impl MemkindHeap {
    /// Create a heap over `topology`. The VA arena spans the sum of
    /// all node capacities (you can never place more than that).
    pub fn new(topology: NumaTopology) -> Self {
        let span: u64 = topology.nodes.iter().map(|n| n.size.as_u64()).sum();
        let system = NumaSystem::new(topology);
        MemkindHeap {
            inner: Arc::new(Mutex::new(Inner {
                system,
                arena: Arena::new(HEAP_BASE, span),
                blocks: BTreeMap::new(),
                stats: BTreeMap::new(),
            })),
        }
    }

    /// The topology this heap allocates over.
    pub fn topology(&self) -> NumaTopology {
        self.inner.lock().unwrap().system.topology().clone()
    }

    /// `memkind_malloc(kind, size)`.
    pub fn malloc(&self, kind: Kind, size: ByteSize) -> Result<Block, HeapError> {
        let mut inner = self.inner.lock().unwrap();
        let policy = kind
            .to_policy(inner.system.topology())
            .ok_or(HeapError::KindUnavailable(kind))?;
        let allocation = inner.system.allocate(size, &policy)?;
        let bytes = allocation.pages() * PAGE_BYTES;
        let addr = match inner.arena.alloc(size.as_u64()) {
            Some(a) => a,
            None => {
                inner.system.free(&allocation);
                return Err(HeapError::AddressSpace);
            }
        };
        inner.blocks.insert(addr, Record { allocation, kind });
        let stats = inner.stats.entry(kind).or_default();
        stats.allocs += 1;
        stats.live_bytes += bytes;
        stats.peak_bytes = stats.peak_bytes.max(stats.live_bytes);
        Ok(Block { addr, size, kind })
    }

    /// `hbw_malloc(size)` — strict HBM.
    pub fn hbw_malloc(&self, size: ByteSize) -> Result<Block, HeapError> {
        self.malloc(Kind::Hbw, size)
    }

    /// `hbw_check_available()` for `kind`.
    pub fn check_available(&self, kind: Kind) -> bool {
        kind.available(self.inner.lock().unwrap().system.topology())
    }

    /// Free a block.
    pub fn free(&self, block: &Block) -> Result<(), HeapError> {
        let mut inner = self.inner.lock().unwrap();
        let record = inner
            .blocks
            .remove(&block.addr)
            .ok_or(HeapError::InvalidFree(block.addr))?;
        inner.system.free(&record.allocation);
        inner.arena.free(block.addr);
        let bytes = record.allocation.pages() * PAGE_BYTES;
        let stats = inner.stats.entry(record.kind).or_default();
        stats.frees += 1;
        stats.live_bytes = stats.live_bytes.saturating_sub(bytes);
        Ok(())
    }

    /// Migrate a live block's pages to `target`
    /// (`memkind`-rebalancing / `move_pages(2)`); returns the number of
    /// pages moved. Partial moves happen when the target is tight.
    pub fn migrate(&self, block: &Block, target: NodeId) -> Result<u64, HeapError> {
        let mut inner = self.inner.lock().unwrap();
        let record = inner
            .blocks
            .get_mut(&block.addr)
            .ok_or(HeapError::InvalidFree(block.addr))?;
        // Split borrows: temporarily take the allocation out.
        let mut allocation = record.allocation.clone();
        let moved = inner
            .system
            .migrate(&mut allocation, target)
            .map_err(HeapError::Policy)?;
        inner
            .blocks
            .get_mut(&block.addr)
            .expect("record still present")
            .allocation = allocation;
        Ok(moved)
    }

    /// The NUMA node backing the page containing `addr`, or `None` for
    /// addresses outside any live block.
    pub fn node_of(&self, addr: u64) -> Option<NodeId> {
        let inner = self.inner.lock().unwrap();
        let (&start, record) = inner.blocks.range(..=addr).next_back()?;
        let rec_end = start + record.allocation.pages() * PAGE_BYTES;
        if addr >= rec_end {
            return None;
        }
        record.allocation.node_of_offset(addr - start)
    }

    /// Fraction of a block's pages on `node`.
    pub fn fraction_on(&self, block: &Block, node: NodeId) -> f64 {
        let inner = self.inner.lock().unwrap();
        inner
            .blocks
            .get(&block.addr)
            .map(|r| r.allocation.fraction_on(node))
            .unwrap_or(0.0)
    }

    /// Free bytes remaining on `node`.
    pub fn free_on(&self, node: NodeId) -> ByteSize {
        self.inner.lock().unwrap().system.free_on(node)
    }

    /// Statistics for `kind`.
    pub fn stats(&self, kind: Kind) -> HeapStats {
        self.inner
            .lock()
            .unwrap()
            .stats
            .get(&kind)
            .copied()
            .unwrap_or_default()
    }

    /// Total live bytes across kinds.
    pub fn live_bytes(&self) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .stats
            .values()
            .map(|s| s.live_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> MemkindHeap {
        MemkindHeap::new(NumaTopology::knl_flat())
    }

    #[test]
    fn hbw_malloc_lands_on_hbm_node() {
        let h = heap();
        let b = h.hbw_malloc(ByteSize::gib(1)).unwrap();
        assert_eq!(h.fraction_on(&b, 1), 1.0);
        assert_eq!(h.node_of(b.addr), Some(1));
        assert_eq!(h.node_of(b.addr + b.size.as_u64() - 1), Some(1));
    }

    #[test]
    fn hbw_is_strict_beyond_capacity() {
        let h = heap();
        let _a = h.hbw_malloc(ByteSize::gib(16)).unwrap();
        let err = h.hbw_malloc(ByteSize::kib(4)).unwrap_err();
        assert!(matches!(
            err,
            HeapError::Policy(PolicyError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn hbw_preferred_spills_to_dram() {
        let h = heap();
        let b = h.malloc(Kind::HbwPreferred, ByteSize::gib(20)).unwrap();
        let on_hbm = h.fraction_on(&b, 1);
        assert!((on_hbm - 16.0 / 20.0).abs() < 1e-9, "fraction {on_hbm}");
        // The spilled tail resolves to node 0.
        assert_eq!(h.node_of(b.end() - 1), Some(0));
    }

    #[test]
    fn hbw_unavailable_in_cache_mode() {
        let h = MemkindHeap::new(NumaTopology::knl_cache());
        assert!(!h.check_available(Kind::Hbw));
        assert_eq!(
            h.hbw_malloc(ByteSize::kib(4)).unwrap_err(),
            HeapError::KindUnavailable(Kind::Hbw)
        );
        // Default still works.
        assert!(h.malloc(Kind::Default, ByteSize::mib(1)).is_ok());
    }

    #[test]
    fn free_recycles_device_and_va() {
        let h = heap();
        let b = h.hbw_malloc(ByteSize::gib(16)).unwrap();
        h.free(&b).unwrap();
        assert_eq!(h.free_on(1), ByteSize::gib(16));
        let b2 = h.hbw_malloc(ByteSize::gib(16)).unwrap();
        assert_eq!(b2.addr, b.addr);
        assert_eq!(h.free(&b2), Ok(()));
        assert_eq!(h.free(&b2), Err(HeapError::InvalidFree(b2.addr)));
    }

    #[test]
    fn node_of_rejects_gaps_and_foreign_addresses() {
        let h = heap();
        let b = h.malloc(Kind::Default, ByteSize::kib(4)).unwrap();
        assert_eq!(h.node_of(b.addr - 1), None);
        assert_eq!(h.node_of(b.end()), None);
        assert_eq!(h.node_of(0x10), None);
    }

    #[test]
    fn interleave_kind_spreads_pages() {
        let h = heap();
        let b = h
            .malloc(Kind::Interleave, ByteSize::bytes(16 * PAGE_BYTES))
            .unwrap();
        assert!((h.fraction_on(&b, 0) - 0.5).abs() < 1e-9);
        assert!((h.fraction_on(&b, 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stats_track_lifecycle() {
        let h = heap();
        let b1 = h.hbw_malloc(ByteSize::mib(2)).unwrap();
        let b2 = h.hbw_malloc(ByteSize::mib(3)).unwrap();
        let s = h.stats(Kind::Hbw);
        assert_eq!(s.allocs, 2);
        assert_eq!(s.live_bytes, 5 << 20);
        assert_eq!(s.peak_bytes, 5 << 20);
        h.free(&b1).unwrap();
        let s = h.stats(Kind::Hbw);
        assert_eq!(s.frees, 1);
        assert_eq!(s.live_bytes, 3 << 20);
        assert_eq!(s.peak_bytes, 5 << 20);
        h.free(&b2).unwrap();
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn migrate_moves_block_between_nodes() {
        let h = heap();
        let b = h.malloc(Kind::Default, ByteSize::gib(2)).unwrap();
        assert_eq!(h.fraction_on(&b, 0), 1.0);
        let moved = h.migrate(&b, 1).unwrap();
        assert_eq!(moved, ByteSize::gib(2).as_u64() / PAGE_BYTES);
        assert_eq!(h.fraction_on(&b, 1), 1.0);
        assert_eq!(h.node_of(b.addr), Some(1));
        assert_eq!(h.free_on(1), ByteSize::gib(14));
        // Free returns pages to the node they now live on.
        h.free(&b).unwrap();
        assert_eq!(h.free_on(1), ByteSize::gib(16));
        // Migrating a dead block errors.
        assert!(h.migrate(&b, 0).is_err());
    }

    #[test]
    fn regular_kind_never_touches_hbm() {
        let h = heap();
        let b = h.malloc(Kind::Regular, ByteSize::gib(90)).unwrap();
        assert_eq!(h.fraction_on(&b, 0), 1.0);
        // And is strict: 97 GB cannot fit in 96 GB DDR.
        let h2 = heap();
        assert!(h2.malloc(Kind::Regular, ByteSize::gib(97)).is_err());
    }
}

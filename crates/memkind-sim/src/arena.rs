//! Virtual-address arena: a first-fit free-list allocator with
//! coalescing.
//!
//! The heap hands every allocation a stable virtual range so that
//! workloads can emit address traces against it. Addresses are always
//! page-aligned; the arena never reuses a range while it is live.

use numamem::system::PAGE_BYTES;
use std::collections::BTreeMap;

/// A page-aligned virtual-address allocator over `[base, base+span)`.
#[derive(Debug, Clone)]
pub struct Arena {
    base: u64,
    span: u64,
    /// Free extents: start → length (bytes), non-adjacent, sorted.
    free: BTreeMap<u64, u64>,
    /// Live extents: start → length.
    live: BTreeMap<u64, u64>,
}

impl Arena {
    /// Create an arena covering `span` bytes starting at `base`
    /// (both page-aligned).
    pub fn new(base: u64, span: u64) -> Self {
        assert_eq!(base % PAGE_BYTES, 0, "base must be page-aligned");
        assert_eq!(span % PAGE_BYTES, 0, "span must be page-aligned");
        assert!(span > 0);
        let mut free = BTreeMap::new();
        free.insert(base, span);
        Arena {
            base,
            span,
            free,
            live: BTreeMap::new(),
        }
    }

    /// Arena base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total bytes under management.
    pub fn span(&self) -> u64 {
        self.span
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live.values().sum()
    }

    /// Bytes currently free (possibly fragmented).
    pub fn free_bytes(&self) -> u64 {
        self.free.values().sum()
    }

    /// Largest single free extent.
    pub fn largest_free_extent(&self) -> u64 {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// Allocate `size` bytes (rounded up to whole pages); first fit.
    /// Returns the start address, or `None` if no extent fits.
    pub fn alloc(&mut self, size: u64) -> Option<u64> {
        let size = size.div_ceil(PAGE_BYTES).max(1) * PAGE_BYTES;
        let (&start, &len) = self.free.iter().find(|&(_, &len)| len >= size)?;
        self.free.remove(&start);
        if len > size {
            self.free.insert(start + size, len - size);
        }
        self.live.insert(start, size);
        Some(start)
    }

    /// Free the extent starting at `addr`; coalesces with neighbours.
    ///
    /// # Panics
    /// Panics on a double free or an address that was never allocated —
    /// both are caller bugs the simulator should surface loudly.
    pub fn free(&mut self, addr: u64) {
        let len = self
            .live
            .remove(&addr)
            .unwrap_or_else(|| panic!("free of unallocated address {addr:#x}"));
        let mut start = addr;
        let mut size = len;
        // Coalesce with the predecessor.
        if let Some((&prev_start, &prev_len)) = self.free.range(..addr).next_back() {
            if prev_start + prev_len == addr {
                self.free.remove(&prev_start);
                start = prev_start;
                size += prev_len;
            }
        }
        // Coalesce with the successor.
        if let Some(&next_len) = self.free.get(&(addr + len)) {
            self.free.remove(&(addr + len));
            size += next_len;
        }
        self.free.insert(start, size);
    }

    /// The live extent containing `addr`, if any: `(start, len)`.
    pub fn extent_of(&self, addr: u64) -> Option<(u64, u64)> {
        let (&start, &len) = self.live.range(..=addr).next_back()?;
        (addr < start + len).then_some((start, len))
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Number of free extents (fragmentation indicator).
    pub fn free_extents(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn alloc_is_page_aligned_and_first_fit() {
        let mut a = Arena::new(0x1000_0000, 16 * MB);
        let p = a.alloc(100).unwrap();
        assert_eq!(p, 0x1000_0000);
        assert_eq!(p % PAGE_BYTES, 0);
        let q = a.alloc(PAGE_BYTES + 1).unwrap();
        assert_eq!(q, p + PAGE_BYTES);
        assert_eq!(a.live_bytes(), PAGE_BYTES + 2 * PAGE_BYTES);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = Arena::new(0, 4 * PAGE_BYTES);
        assert!(a.alloc(4 * PAGE_BYTES).is_some());
        assert!(a.alloc(1).is_none());
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut a = Arena::new(0, 16 * PAGE_BYTES);
        let x = a.alloc(4 * PAGE_BYTES).unwrap();
        let y = a.alloc(4 * PAGE_BYTES).unwrap();
        let z = a.alloc(4 * PAGE_BYTES).unwrap();
        a.free(x);
        a.free(z);
        assert_eq!(a.free_extents(), 2); // [x..y) and [z..end)
        a.free(y);
        assert_eq!(a.free_extents(), 1); // fully coalesced
        assert_eq!(a.free_bytes(), 16 * PAGE_BYTES);
        assert_eq!(a.largest_free_extent(), 16 * PAGE_BYTES);
    }

    #[test]
    fn freed_space_is_reused() {
        let mut a = Arena::new(0, 8 * PAGE_BYTES);
        let x = a.alloc(8 * PAGE_BYTES).unwrap();
        a.free(x);
        let y = a.alloc(2 * PAGE_BYTES).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn fragmentation_blocks_large_allocs() {
        let mut a = Arena::new(0, 8 * PAGE_BYTES);
        let blocks: Vec<u64> = (0..4).map(|_| a.alloc(2 * PAGE_BYTES).unwrap()).collect();
        a.free(blocks[0]);
        a.free(blocks[2]);
        // 4 pages free but split 2+2: a 3-page alloc fails.
        assert_eq!(a.free_bytes(), 4 * PAGE_BYTES);
        assert!(a.alloc(3 * PAGE_BYTES).is_none());
        assert!(a.alloc(2 * PAGE_BYTES).is_some());
    }

    #[test]
    fn extent_of_resolves_interior_addresses() {
        let mut a = Arena::new(0x4000, 8 * PAGE_BYTES);
        let x = a.alloc(3 * PAGE_BYTES).unwrap();
        assert_eq!(a.extent_of(x), Some((x, 3 * PAGE_BYTES)));
        assert_eq!(a.extent_of(x + 5000), Some((x, 3 * PAGE_BYTES)));
        assert_eq!(a.extent_of(x + 3 * PAGE_BYTES), None);
        assert_eq!(a.extent_of(0), None);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn double_free_panics() {
        let mut a = Arena::new(0, 4 * PAGE_BYTES);
        let x = a.alloc(PAGE_BYTES).unwrap();
        a.free(x);
        a.free(x);
    }

    #[test]
    fn zero_byte_alloc_takes_one_page() {
        let mut a = Arena::new(0, 4 * PAGE_BYTES);
        let x = a.alloc(0).unwrap();
        assert_eq!(a.live_bytes(), PAGE_BYTES);
        a.free(x);
        assert_eq!(a.live_bytes(), 0);
    }
}

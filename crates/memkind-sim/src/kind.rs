//! Allocation kinds, mirroring the memkind library's public kinds.

use numamem::{MemPolicy, NumaTopology};
use std::fmt;

/// A memory kind, in the sense of `memkind_malloc(kind, size)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Kind {
    /// `MEMKIND_DEFAULT` — the OS default policy (local DRAM node).
    #[default]
    Default,
    /// `MEMKIND_HBW` — high-bandwidth memory, strict: allocation fails
    /// when HBM is exhausted or absent.
    Hbw,
    /// `MEMKIND_HBW_PREFERRED` — HBM first, silent fallback to DRAM.
    HbwPreferred,
    /// `MEMKIND_HBW_INTERLEAVE` — pages interleaved across all HBM
    /// nodes (on multi-HBM-node systems; single-node on KNL quadrant).
    HbwInterleave,
    /// `MEMKIND_INTERLEAVE` — pages interleaved across *all* nodes.
    Interleave,
    /// `MEMKIND_REGULAR` — DRAM nodes only, strict (no HBM spill).
    Regular,
}

impl Kind {
    /// Resolve this kind to a NUMA policy on `topo`.
    ///
    /// Returns `None` when the kind is unsatisfiable on this topology
    /// (e.g. any HBW kind in cache mode, where no HBM node exists) —
    /// the same condition under which `hbw_check_available()` fails.
    pub fn to_policy(self, topo: &NumaTopology) -> Option<MemPolicy> {
        let hbm = topo.hbm_nodes();
        let dram: Vec<u32> = topo
            .nodes
            .iter()
            .filter(|n| n.kind == numamem::NodeKind::Dram)
            .map(|n| n.id)
            .collect();
        match self {
            Kind::Default => Some(MemPolicy::Default),
            Kind::Hbw => {
                if hbm.is_empty() {
                    None
                } else {
                    Some(MemPolicy::Bind(hbm))
                }
            }
            Kind::HbwPreferred => {
                if hbm.is_empty() {
                    None
                } else {
                    Some(MemPolicy::Preferred(hbm[0]))
                }
            }
            Kind::HbwInterleave => {
                if hbm.is_empty() {
                    None
                } else {
                    Some(MemPolicy::Interleave(hbm))
                }
            }
            Kind::Interleave => Some(MemPolicy::Interleave(
                (0..topo.num_nodes() as u32).collect(),
            )),
            Kind::Regular => {
                if dram.is_empty() {
                    None
                } else {
                    Some(MemPolicy::Bind(dram))
                }
            }
        }
    }

    /// Whether HBM is available for this kind on `topo` — the
    /// `hbw_check_available()` entry point.
    pub fn available(self, topo: &NumaTopology) -> bool {
        self.to_policy(topo).is_some()
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Kind::Default => "MEMKIND_DEFAULT",
            Kind::Hbw => "MEMKIND_HBW",
            Kind::HbwPreferred => "MEMKIND_HBW_PREFERRED",
            Kind::HbwInterleave => "MEMKIND_HBW_INTERLEAVE",
            Kind::Interleave => "MEMKIND_INTERLEAVE",
            Kind::Regular => "MEMKIND_REGULAR",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_resolve_on_flat_topology() {
        let t = NumaTopology::knl_flat();
        assert_eq!(Kind::Default.to_policy(&t), Some(MemPolicy::Default));
        assert_eq!(Kind::Hbw.to_policy(&t), Some(MemPolicy::Bind(vec![1])));
        assert_eq!(
            Kind::HbwPreferred.to_policy(&t),
            Some(MemPolicy::Preferred(1))
        );
        assert_eq!(
            Kind::HbwInterleave.to_policy(&t),
            Some(MemPolicy::Interleave(vec![1]))
        );
        assert_eq!(
            Kind::Interleave.to_policy(&t),
            Some(MemPolicy::Interleave(vec![0, 1]))
        );
        assert_eq!(Kind::Regular.to_policy(&t), Some(MemPolicy::Bind(vec![0])));
    }

    #[test]
    fn hbw_unavailable_in_cache_mode() {
        // In cache mode the OS sees one node; hbw_check_available fails.
        let t = NumaTopology::knl_cache();
        assert!(!Kind::Hbw.available(&t));
        assert!(!Kind::HbwPreferred.available(&t));
        assert!(!Kind::HbwInterleave.available(&t));
        assert!(Kind::Default.available(&t));
        assert!(Kind::Regular.available(&t));
    }

    #[test]
    fn display_uses_memkind_names() {
        assert_eq!(Kind::Hbw.to_string(), "MEMKIND_HBW");
        assert_eq!(Kind::HbwPreferred.to_string(), "MEMKIND_HBW_PREFERRED");
    }
}

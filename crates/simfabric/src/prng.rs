//! In-tree pseudo-random number generator: xoshiro256++ seeded via
//! SplitMix64.
//!
//! The testbed must build with zero external dependencies, so this
//! module replaces the `rand` crate. The generator is the reference
//! xoshiro256++ of Blackman & Vigna (public domain), seeded by running
//! SplitMix64 over a single `u64` — the same construction `rand`'s
//! `seed_from_u64` uses, chosen here for the same reason: any two
//! nearby seeds yield fully decorrelated states.
//!
//! Determinism contract: the output stream for a given seed is part of
//! the experiment format. Changing it silently would change every
//! reproduced figure, so `tests::golden_*` pin the first draws of
//! known seeds.

use std::ops::Range;

/// One SplitMix64 step: advances `*state` and returns the next output.
#[inline]
pub fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A fast, deterministic RNG (xoshiro256++).
///
/// Not cryptographically secure — it drives simulated workloads and
/// property tests, nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed by expanding `seed` through SplitMix64 (never yields the
    /// all-zero state, which xoshiro cannot escape).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64_next(&mut sm),
            splitmix64_next(&mut sm),
            splitmix64_next(&mut sm),
            splitmix64_next(&mut sm),
        ];
        Rng { s }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits (high half of a 64-bit draw —
    /// xoshiro's low bits are the weaker ones).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly random value of `T` (see [`Sample`] for the set of
    /// supported types).
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in the half-open `range`. Panics when the range
    /// is empty, matching `rand`'s contract.
    #[inline]
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform `u64` below `bound` (> 0), bias-free via rejection.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Reject draws from the final partial copy of [0, bound).
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % bound;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Types [`Rng::gen`] can draw uniformly.
pub trait Sample {
    /// Draw one uniformly random value.
    fn sample(rng: &mut Rng) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample(rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample(rng: &mut Rng) -> u32 {
        rng.next_u32()
    }
}

impl Sample for usize {
    #[inline]
    fn sample(rng: &mut Rng) -> usize {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    #[inline]
    fn sample(rng: &mut Rng) -> f64 {
        rng.next_f64()
    }
}

impl Sample for f32 {
    #[inline]
    fn sample(rng: &mut Rng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can draw from a half-open range.
pub trait SampleRange: Sized {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_range(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            #[inline]
            fn sample_range(rng: &mut Rng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                lo + rng.next_below((hi - lo) as u64) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            #[inline]
            fn sample_range(rng: &mut Rng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(rng.next_below(span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    #[inline]
    fn sample_range(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        let v = lo + rng.next_f64() * (hi - lo);
        // Guard the open upper bound against rounding.
        if v < hi {
            v
        } else {
            lo
        }
    }
}

impl SampleRange for f32 {
    #[inline]
    fn sample_range(rng: &mut Rng, lo: f32, hi: f32) -> f32 {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_identical_stream() {
        let mut a = Rng::seed_from_u64(2017);
        let mut b = Rng::seed_from_u64(2017);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2800..3200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }

    /// SplitMix64 reference outputs for seed 1234567
    /// (from the public-domain reference implementation).
    #[test]
    fn golden_splitmix64_reference() {
        let mut s = 1234567u64;
        assert_eq!(splitmix64_next(&mut s), 6457827717110365317);
        assert_eq!(splitmix64_next(&mut s), 3203168211198807973);
        assert_eq!(splitmix64_next(&mut s), 9817491932198370423);
    }

    /// Frozen first draws of seed 0 and seed 42. These pin the exact
    /// random streams every experiment consumes; a change here means
    /// every reproduced figure silently re-rolls — do not update these
    /// values without bumping the archive schema version.
    #[test]
    fn golden_first_draws() {
        let first10 = |seed: u64| -> Vec<u64> {
            let mut r = Rng::seed_from_u64(seed);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(
            first10(0),
            [
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330,
                9136120204379184874,
                379361710973160858,
                15813423377499357806,
                15596884590815070553,
                5439680534584881407,
                1369371744833522710,
            ]
        );
        assert_eq!(
            first10(42),
            [
                15021278609987233951,
                5881210131331364753,
                18149643915985481100,
                12933668939759105464,
                14637574242682825331,
                10848501901068131965,
                2312344417745909078,
                11162538943635311430,
                3831705504650218695,
                17217215411128672468,
            ]
        );
    }
}

//! Simulated time.
//!
//! Time is tracked in integer **picoseconds** so that device latencies
//! (fractions of a nanosecond per cache-line beat) accumulate without
//! floating-point drift. At 1 ps resolution a `u64` covers ~213 days of
//! simulated time, far beyond any experiment in this workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point on the simulated clock, in picoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds (lossy; for reporting only).
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in microseconds (lossy; for reporting only).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in seconds (lossy; for reporting only).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated time never
    /// runs backwards, so this indicates a model bug.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier timestamp is in the future"),
        )
    }

    /// Saturating difference; zero if `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Construct from (possibly fractional) nanoseconds, rounding to the
    /// nearest picosecond.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        Duration((ns * 1_000.0).round() as u64)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        Self::from_ns(us * 1_000.0)
    }

    /// Construct from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        Duration((s * 1e12).round() as u64)
    }

    /// Construct from a cycle count at a clock frequency in GHz.
    #[inline]
    pub fn from_cycles(cycles: u64, ghz: f64) -> Self {
        Self::from_ns(cycles as f64 / ghz)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// True if the span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer count (e.g. per-element cost × elements).
    #[inline]
    pub fn times(self, n: u64) -> Duration {
        Duration(self.0.checked_mul(n).expect("Duration overflow"))
    }

    /// Scale by a float factor, rounding to the nearest picosecond.
    #[inline]
    pub fn scale(self, f: f64) -> Duration {
        debug_assert!(f >= 0.0, "negative scale factor");
        Duration((self.0 as f64 * f).round() as u64)
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_add(rhs.0).expect("Duration overflow"))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("Duration underflow"))
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        self.times(rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.as_ns();
        if ns < 1_000.0 {
            write!(f, "{ns:.3} ns")
        } else if ns < 1e6 {
            write!(f, "{:.3} us", ns / 1e3)
        } else if ns < 1e9 {
            write!(f, "{:.3} ms", ns / 1e6)
        } else {
            write!(f, "{:.3} s", ns / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_ns() {
        let d = Duration::from_ns(130.4);
        assert_eq!(d.as_ps(), 130_400);
        assert!((d.as_ns() - 130.4).abs() < 1e-9);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + Duration::from_ns(10.0);
        let t2 = t + Duration::from_ns(5.0);
        assert_eq!(t2.since(t).as_ns(), 5.0);
        assert_eq!((t2 - Duration::from_ns(15.0)), SimTime::ZERO);
    }

    #[test]
    fn duration_scale_rounds() {
        let d = Duration::from_ps(3);
        assert_eq!(d.scale(0.5).as_ps(), 2); // 1.5 rounds to 2
        assert_eq!(d.times(4).as_ps(), 12);
    }

    #[test]
    fn duration_from_cycles() {
        // 13 cycles at 1.3 GHz = 10 ns.
        let d = Duration::from_cycles(13, 1.3);
        assert_eq!(d.as_ps(), 10_000);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_ps(10);
        let b = SimTime::from_ps(20);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a).as_ps(), 10);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_backwards_time() {
        let a = SimTime::from_ps(10);
        let b = SimTime::from_ps(20);
        let _ = a.since(b);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Duration::from_ns(1.5)), "1.500 ns");
        assert_eq!(format!("{}", Duration::from_us(2.0)), "2.000 us");
        assert_eq!(format!("{}", Duration::from_secs(3.0)), "3.000 s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = (1..=4).map(Duration::from_ps).sum();
        assert_eq!(total.as_ps(), 10);
    }
}

//! Deterministic, named random-number streams.
//!
//! Every source of randomness in the testbed draws from a stream
//! derived from `(master_seed, stream_name)` so that adding a new
//! consumer never perturbs the draws seen by existing ones — the key
//! property for reproducible experiments.

use crate::prng::Rng;

/// FNV-1a 64-bit hash of a byte string; tiny, stable, and good enough
/// for deriving stream seeds (not for cryptography).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finalizer — decorrelates the combined seed bits.
fn splitmix64(z: u64) -> u64 {
    let mut state = z;
    crate::prng::splitmix64_next(&mut state)
}

/// A factory for deterministic named RNG streams.
#[derive(Debug, Clone, Copy)]
pub struct RngPool {
    master: u64,
}

impl RngPool {
    /// Create a pool from a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngPool {
            master: master_seed,
        }
    }

    /// The master seed this pool was built from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit seed for a named stream.
    pub fn seed_for(&self, name: &str) -> u64 {
        splitmix64(self.master ^ fnv1a(name.as_bytes()))
    }

    /// Derive the seed for a named, indexed stream (e.g. per-thread).
    pub fn seed_for_indexed(&self, name: &str, index: u64) -> u64 {
        splitmix64(self.seed_for(name) ^ splitmix64(index.wrapping_add(1)))
    }

    /// A fast RNG for the named stream.
    pub fn stream(&self, name: &str) -> Rng {
        Rng::seed_from_u64(self.seed_for(name))
    }

    /// A fast RNG for the named, indexed stream.
    pub fn stream_indexed(&self, name: &str, index: u64) -> Rng {
        Rng::seed_from_u64(self.seed_for_indexed(name, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let pool = RngPool::new(42);
        let mut sa = pool.stream("gups");
        let mut sb = pool.stream("gups");
        let a: Vec<u64> = (0..8).map(|_| sa.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| sb.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let pool = RngPool::new(42);
        let a: u64 = pool.stream("gups").next_u64();
        let b: u64 = pool.stream("graph500").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn named_streams_are_decorrelated() {
        // Pairwise-distinct draws across a batch of named streams, and
        // no bitwise correlation between two sibling streams' outputs.
        let pool = RngPool::new(2017);
        let names = ["gups", "graph500", "xsbench", "tlb", "prefetch", "dgemm"];
        let firsts: Vec<u64> = names.iter().map(|n| pool.stream(n).next_u64()).collect();
        for i in 0..firsts.len() {
            for j in i + 1..firsts.len() {
                assert_ne!(firsts[i], firsts[j], "{} vs {}", names[i], names[j]);
            }
        }
        let mut a = pool.stream("gups");
        let mut b = pool.stream("graph500");
        let mut agree = 0u32;
        for _ in 0..1024 {
            agree += (a.next_u64() ^ b.next_u64()).count_zeros();
        }
        // 1024 draws × 64 bits: expected agreement 50%, tolerance 2%.
        let frac = agree as f64 / (1024.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.02, "bit agreement {frac}");
    }

    #[test]
    fn different_master_seeds_differ() {
        let a: u64 = RngPool::new(1).stream("x").next_u64();
        let b: u64 = RngPool::new(2).stream("x").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_distinct_and_stable() {
        let pool = RngPool::new(7);
        let s0: u64 = pool.stream_indexed("thread", 0).next_u64();
        let s1: u64 = pool.stream_indexed("thread", 1).next_u64();
        let s0b: u64 = pool.stream_indexed("thread", 0).next_u64();
        assert_ne!(s0, s1);
        assert_eq!(s0, s0b);
    }

    #[test]
    fn index_zero_differs_from_plain_stream() {
        // Guards against the common bug where `seed ^ 0 == seed`.
        let pool = RngPool::new(9);
        assert_ne!(pool.seed_for("w"), pool.seed_for_indexed("w", 0));
    }

    #[test]
    fn seeds_spread_across_indices() {
        // Adjacent indices must not produce adjacent seeds.
        let pool = RngPool::new(3);
        let s: Vec<u64> = (0..16).map(|i| pool.seed_for_indexed("t", i)).collect();
        for w in s.windows(2) {
            assert!(w[0].abs_diff(w[1]) > 1 << 20);
        }
    }
}

//! Shared error types for the simulation substrate.

use std::fmt;

/// Errors produced by the simulation fabric and by models built on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A capacity was exceeded (e.g. allocating beyond a device size).
    CapacityExceeded {
        /// What ran out.
        resource: String,
        /// Bytes (or units) requested.
        requested: u64,
        /// Bytes (or units) available.
        available: u64,
    },
    /// A configuration value was invalid or inconsistent.
    InvalidConfig(String),
    /// An address fell outside every mapped region.
    UnmappedAddress(u64),
    /// A named entity (device, node, kind, workload…) was not found.
    NotFound(String),
    /// The operation is not supported in the current mode.
    Unsupported(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CapacityExceeded {
                resource,
                requested,
                available,
            } => write!(
                f,
                "capacity exceeded on {resource}: requested {requested}, available {available}"
            ),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::UnmappedAddress(addr) => write!(f, "unmapped address {addr:#x}"),
            SimError::NotFound(what) => write!(f, "not found: {what}"),
            SimError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias used across the workspace.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::CapacityExceeded {
            resource: "MCDRAM".into(),
            requested: 32,
            available: 16,
        };
        let s = e.to_string();
        assert!(s.contains("MCDRAM"));
        assert!(s.contains("32"));
        assert!(s.contains("16"));
        assert_eq!(
            SimError::UnmappedAddress(0xdead).to_string(),
            "unmapped address 0xdead"
        );
    }
}

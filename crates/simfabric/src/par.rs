//! In-tree data parallelism over `std::thread::scope`.
//!
//! Replaces the `rayon` dependency for the handful of shapes the
//! testbed actually uses: element-wise updates over slices, chunked
//! owner-computes loops, parallel reductions, and ordered map /
//! flat-map. Work is split into one contiguous range per worker, so
//! results are deterministic regardless of scheduling.
//!
//! Thread counts come from [`num_threads`]; a caller that needs a
//! specific parallelism level (the native measurement harness) wraps
//! its region in [`with_threads`], which scopes an override to the
//! calling thread.

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Condvar, Mutex};
use std::thread;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Worker count for parallel regions started from this thread: the
/// innermost [`with_threads`] override, or the machine's available
/// parallelism.
pub fn num_threads() -> usize {
    THREAD_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The innermost [`with_threads`] override active on this thread, if
/// any. Lets callers with their own fallback chain (an environment
/// knob, a config file) distinguish "explicitly overridden" from "use
/// the machine default".
pub fn thread_override() -> Option<usize> {
    THREAD_OVERRIDE.with(|o| o.get())
}

/// Run `f` with parallel regions on this thread capped at `threads`
/// workers (the stand-in for installing a sized rayon pool).
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let threads = threads.max(1);
    THREAD_OVERRIDE.with(|o| {
        let prev = o.replace(Some(threads));
        let out = f();
        o.set(prev);
        out
    })
}

/// Split `0..len` into at most `workers` contiguous ranges covering it.
fn split_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.clamp(1, len.max(1));
    let chunk = len.div_ceil(workers);
    (0..len)
        .step_by(chunk.max(1))
        .map(|start| start..(start + chunk).min(len))
        .collect()
}

/// Run `f` over contiguous sub-ranges of `0..len` on scoped threads;
/// per-range results come back in range order.
fn run_ranges<R: Send>(len: usize, f: impl Fn(Range<usize>) -> R + Sync) -> Vec<R> {
    let ranges = split_ranges(len, num_threads());
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let f = &f;
                s.spawn(move || f(r))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// `data[i] = f(i, data[i])` in parallel (the `par_iter_mut` shape).
pub fn par_update<T: Send>(data: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    let len = data.len();
    let workers = num_threads().clamp(1, len.max(1));
    let chunk = len.div_ceil(workers).max(1);
    if workers <= 1 || len <= 1 {
        for (i, x) in data.iter_mut().enumerate() {
            f(i, x);
        }
        return;
    }
    thread::scope(|s| {
        for (w, ch) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = w * chunk;
                for (i, x) in ch.iter_mut().enumerate() {
                    f(base + i, x);
                }
            });
        }
    });
}

/// Run `f(chunk_index, chunk)` over `chunk_len`-sized pieces of `data`
/// in parallel (the `par_chunks_mut` shape). Chunks are handed to a
/// bounded worker set through a shared queue, so a long slice never
/// spawns more than [`num_threads`] threads.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "par_chunks_mut: zero chunk length");
    let mut chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let workers = num_threads().clamp(1, chunks.len().max(1));
    if workers <= 1 {
        for (i, ch) in chunks {
            f(i, ch);
        }
        return;
    }
    let queue = Mutex::new(chunks.drain(..).collect::<Vec<_>>());
    thread::scope(|s| {
        for _ in 0..workers {
            let (queue, f) = (&queue, &f);
            s.spawn(move || loop {
                let item = queue.lock().unwrap().pop();
                match item {
                    Some((i, ch)) => f(i, ch),
                    None => break,
                }
            });
        }
    });
}

/// Occupancy and stall telemetry for one [`pipelined`] run, collected
/// for free under the channel mutex (one integer bump per blocking
/// episode / enqueue — never per element).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeStats {
    /// Times the producer blocked on a full queue (consumer-bound
    /// pipeline: production outpaces consumption).
    pub producer_stalls: u64,
    /// Times the consumer blocked on an empty queue (producer-bound
    /// pipeline: consumption outpaces production).
    pub consumer_stalls: u64,
    /// High-water mark of queued chunks (≤ the configured depth).
    pub queue_high_water: usize,
}

/// Shared state of the bounded [`pipelined`] channel.
struct PipeState<T> {
    queue: VecDeque<T>,
    producer_done: bool,
    consumer_gone: bool,
    stats: PipeStats,
}

struct Pipe<T> {
    state: Mutex<PipeState<T>>,
    /// Signalled when the queue gains an item or the producer finishes.
    filled: Condvar,
    /// Signalled when the queue loses an item or the consumer leaves.
    drained: Condvar,
    depth: usize,
}

/// Consumer handle passed to the `consume` closure of [`pipelined`]:
/// call [`recv`](ChunkReceiver::recv) until it returns `None`.
///
/// Dropping the receiver early (consumer returns or panics before the
/// stream ends) releases a producer blocked on a full queue, so the
/// pipeline can never deadlock on early exit.
pub struct ChunkReceiver<'a, T> {
    pipe: &'a Pipe<T>,
}

impl<T> ChunkReceiver<'_, T> {
    /// Next item in production order, or `None` once the producer is
    /// done and the queue is drained. Blocks while the queue is empty
    /// and the producer is still running.
    pub fn recv(&mut self) -> Option<T> {
        let mut st = self.pipe.state.lock().unwrap();
        let mut blocked = false;
        loop {
            if let Some(item) = st.queue.pop_front() {
                self.pipe.drained.notify_one();
                return Some(item);
            }
            if st.producer_done {
                return None;
            }
            if !blocked {
                // One stall per blocking episode, not per wakeup.
                blocked = true;
                st.stats.consumer_stalls += 1;
            }
            st = self.pipe.filled.wait(st).unwrap();
        }
    }
}

impl<T> Drop for ChunkReceiver<'_, T> {
    fn drop(&mut self) {
        let mut st = self.pipe.state.lock().unwrap();
        st.consumer_gone = true;
        st.queue.clear();
        self.pipe.drained.notify_one();
    }
}

/// Overlap production and consumption of a chunk stream on two threads
/// through a bounded queue of `depth` slots (the double-buffering
/// shape at `depth == 2`).
///
/// `produce` runs on a scoped worker thread and is polled until it
/// returns `None`; each `Some(chunk)` is enqueued, blocking while the
/// queue is full. `consume` runs on the calling thread (it may borrow
/// the caller's state mutably) and pulls chunks in production order
/// via [`ChunkReceiver::recv`].
///
/// With `depth == 0` or on a stream the consumer abandons early, the
/// pipeline still terminates: depth is clamped to 1, and dropping the
/// receiver unblocks and cancels the producer.
pub fn pipelined<T: Send, R>(
    depth: usize,
    produce: impl FnMut() -> Option<T> + Send,
    consume: impl FnOnce(&mut ChunkReceiver<'_, T>) -> R,
) -> R {
    pipelined_stats(depth, produce, consume).0
}

/// [`pipelined`], additionally returning the channel's [`PipeStats`]
/// (producer/consumer stall counts and the queue high-water mark) so
/// callers can tell which side of the pipeline bounds throughput.
pub fn pipelined_stats<T: Send, R>(
    depth: usize,
    mut produce: impl FnMut() -> Option<T> + Send,
    consume: impl FnOnce(&mut ChunkReceiver<'_, T>) -> R,
) -> (R, PipeStats) {
    let pipe = Pipe {
        state: Mutex::new(PipeState {
            queue: VecDeque::new(),
            producer_done: false,
            consumer_gone: false,
            stats: PipeStats::default(),
        }),
        filled: Condvar::new(),
        drained: Condvar::new(),
        depth: depth.max(1),
    };
    let out = thread::scope(|s| {
        let pipe = &pipe;
        s.spawn(move || {
            loop {
                let item = match produce() {
                    Some(item) => item,
                    None => break,
                };
                let mut st = pipe.state.lock().unwrap();
                if st.queue.len() >= pipe.depth && !st.consumer_gone {
                    st.stats.producer_stalls += 1;
                }
                while st.queue.len() >= pipe.depth && !st.consumer_gone {
                    st = pipe.drained.wait(st).unwrap();
                }
                if st.consumer_gone {
                    return;
                }
                st.queue.push_back(item);
                st.stats.queue_high_water = st.stats.queue_high_water.max(st.queue.len());
                pipe.filled.notify_one();
            }
            let mut st = pipe.state.lock().unwrap();
            st.producer_done = true;
            pipe.filled.notify_one();
        });
        let mut rx = ChunkReceiver { pipe };
        consume(&mut rx)
    });
    let stats = pipe.state.into_inner().unwrap().stats;
    (out, stats)
}

/// State shared between a [`Gang`] coordinator and its workers.
struct GangState<J> {
    /// Bumped once per dispatched job; workers track the last epoch
    /// they executed so a finished worker blocks instead of re-running.
    epoch: u64,
    job: Option<J>,
    /// Workers still executing the current epoch's job.
    remaining: usize,
    shutdown: bool,
}

/// An epoch-barrier work team: a fixed set of long-lived workers that
/// all execute the *same* job per dispatch, with the coordinator
/// blocked until every worker finishes.
///
/// This is the synchronization core of the concurrent timing replay:
/// the sequencer batches a window of pre-routed device operations,
/// publishes it as one job, and the barrier in [`dispatch`] guarantees
/// every worker's writes are visible when it returns (the handoff goes
/// through one mutex, so no per-op synchronization is needed beyond
/// the ops' own atomics). Workers are spawned by the caller (typically
/// inside `std::thread::scope`, so they may borrow local state) and
/// loop on [`worker_wait`] / [`complete`] until [`shutdown`].
///
/// [`dispatch`]: Gang::dispatch
/// [`worker_wait`]: Gang::worker_wait
/// [`complete`]: Gang::complete
/// [`shutdown`]: Gang::shutdown
pub struct Gang<J> {
    state: Mutex<GangState<J>>,
    /// Signalled on dispatch and shutdown.
    work: Condvar,
    /// Signalled when the last worker of an epoch completes.
    done: Condvar,
    workers: usize,
}

impl<J: Clone> Gang<J> {
    /// A gang for `workers` workers (at least one).
    pub fn new(workers: usize) -> Self {
        Gang {
            state: Mutex::new(GangState {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            workers: workers.max(1),
        }
    }

    /// Number of workers this gang coordinates.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Publish `job` to every worker and block until all of them have
    /// called [`complete`](Self::complete). Must not be called from a
    /// worker, and not concurrently with itself.
    pub fn dispatch(&self, job: J) {
        let mut st = self.state.lock().unwrap();
        debug_assert_eq!(st.remaining, 0, "dispatch while an epoch is running");
        st.epoch += 1;
        st.job = Some(job);
        st.remaining = self.workers;
        self.work.notify_all();
        while st.remaining > 0 {
            st = self.done.wait(st).unwrap();
        }
        st.job = None;
    }

    /// Worker side: block until an epoch newer than `*seen` is
    /// dispatched (returning its job and advancing `*seen`) or the gang
    /// shuts down (returning `None`). Start with `*seen == 0`.
    pub fn worker_wait(&self, seen: &mut u64) -> Option<J> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.epoch > *seen {
                *seen = st.epoch;
                return st.job.clone();
            }
            if st.shutdown {
                return None;
            }
            st = self.work.wait(st).unwrap();
        }
    }

    /// Worker side: report the current epoch's job finished. The last
    /// worker to complete releases the coordinator.
    pub fn complete(&self) {
        let mut st = self.state.lock().unwrap();
        st.remaining -= 1;
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Wake every worker and make subsequent [`worker_wait`] calls
    /// return `None`. Pending epochs are unaffected (shutdown is only
    /// observed between jobs).
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.work.notify_all();
    }
}

/// Ordered parallel map over `items` through a bounded worker pool
/// pulling from a shared index queue. Unlike [`par_map`], which hands
/// each worker one contiguous range, workers here claim items one at
/// a time — the right shape when per-item cost varies wildly (a query
/// engine's cache misses, say) and a contiguous split would leave
/// most workers idle behind the slowest range. Results come back in
/// item order regardless of which worker computed what.
///
/// `workers` is clamped to `[1, items.len()]`; a single worker (or a
/// single item) runs inline on the calling thread. Worker threads are
/// fresh, so thread-local state ([`with_threads`] overrides included)
/// does not propagate into `f`.
pub fn par_queued<T: Sync, U: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(usize, &T) -> U + Sync,
) -> Vec<U> {
    par_queued_tagged(items, workers, f)
        .into_iter()
        .map(|(_, u)| u)
        .collect()
}

/// [`par_queued`], but each result is tagged with the index of the
/// pool worker that computed it (`0..workers`): `(worker, result)` in
/// item order. The tag gives callers per-worker provenance — a
/// metrics dump can namespace each worker's contribution (e.g. a
/// `worker{i}.` prefix) without any shared mutable state inside `f`.
/// The inline single-worker path tags everything with worker 0.
pub fn par_queued_tagged<T: Sync, U: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(usize, &T) -> U + Sync,
) -> Vec<(usize, U)> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| (0, f(i, t)))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut labelled: Vec<(usize, (usize, U))> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let (next, f) = (&next, &f);
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, (me, f(i, &items[i]))));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    labelled.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(labelled.len(), items.len());
    labelled.into_iter().map(|(_, u)| u).collect()
}

/// Parallel sum of `f(i)` for `i in 0..len`.
pub fn par_sum(len: usize, f: impl Fn(usize) -> f64 + Sync) -> f64 {
    run_ranges(len, |r| r.map(&f).sum::<f64>())
        .into_iter()
        .sum()
}

/// Parallel ordered map over a slice.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let nested = run_ranges(items.len(), |r| items[r].iter().map(&f).collect::<Vec<U>>());
    nested.into_iter().flatten().collect()
}

/// Parallel ordered map over an index range.
pub fn par_map_range<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    run_ranges(n, |r| r.map(&f).collect::<Vec<U>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Parallel flat-map over a slice: `f` pushes any number of outputs
/// per item; outputs keep item order within and across workers.
pub fn par_flat_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T, &mut Vec<U>) + Sync) -> Vec<U> {
    let nested = run_ranges(items.len(), |r| {
        let mut out = Vec::new();
        for item in &items[r] {
            f(item, &mut out);
        }
        out
    });
    nested.into_iter().flatten().collect()
}

/// Parallel flat-map over an index range.
pub fn par_flat_map_range<U: Send>(n: usize, f: impl Fn(usize, &mut Vec<U>) + Sync) -> Vec<U> {
    let nested = run_ranges(n, |r| {
        let mut out = Vec::new();
        for i in r {
            f(i, &mut out);
        }
        out
    });
    nested.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 64, 1000] {
            for workers in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(len, workers);
                assert!(ranges.len() <= workers.max(1));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.end > r.start);
                    next = r.end;
                }
                assert_eq!(next, len.max(0));
                if len == 0 {
                    assert!(ranges.is_empty());
                }
            }
        }
    }

    #[test]
    fn par_update_matches_serial() {
        let mut a: Vec<u64> = (0..1000).collect();
        par_update(&mut a, |i, x| *x += i as u64);
        assert!(a.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut a = vec![0u32; 103];
        par_chunks_mut(&mut a, 10, |ci, ch| {
            for x in ch.iter_mut() {
                *x += ci as u32 + 1;
            }
        });
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(x, (i / 10) as u32 + 1, "element {i}");
        }
    }

    #[test]
    fn par_sum_matches_serial() {
        let s = par_sum(10_000, |i| i as f64);
        assert_eq!(s, (9999.0 * 10_000.0) / 2.0);
    }

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<usize> = (0..500).collect();
        assert_eq!(
            par_map(&v, |&x| x * 2),
            (0..500).map(|x| x * 2).collect::<Vec<_>>()
        );
        assert_eq!(par_map_range(500, |i| i + 1), (1..=500).collect::<Vec<_>>());
    }

    #[test]
    fn par_flat_map_preserves_order() {
        let v: Vec<usize> = (0..100).collect();
        let out = par_flat_map(&v, |&x, out| {
            if x % 2 == 0 {
                out.push(x);
                out.push(x);
            }
        });
        let expect: Vec<usize> = (0..100)
            .filter(|x| x % 2 == 0)
            .flat_map(|x| [x, x])
            .collect();
        assert_eq!(out, expect);
        assert_eq!(
            par_flat_map_range(10, |i, out| out.push(i * i)),
            (0..10).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = num_threads();
        with_threads(3, || {
            assert_eq!(num_threads(), 3);
            with_threads(1, || assert_eq!(num_threads(), 1));
            assert_eq!(num_threads(), 3);
        });
        assert_eq!(num_threads(), outer);
    }

    #[test]
    fn pipelined_preserves_production_order() {
        for depth in [0usize, 1, 2, 8] {
            let mut next = 0u32;
            let got = pipelined(
                depth,
                move || {
                    if next < 100 {
                        next += 1;
                        Some(next - 1)
                    } else {
                        None
                    }
                },
                |rx| {
                    let mut out = Vec::new();
                    while let Some(x) = rx.recv() {
                        out.push(x);
                    }
                    out
                },
            );
            assert_eq!(got, (0..100).collect::<Vec<_>>(), "depth {depth}");
        }
    }

    #[test]
    fn pipelined_stats_track_occupancy_and_stalls() {
        // A slow consumer behind a fast producer: the queue fills, so
        // the producer stalls and the high-water mark hits the depth.
        let mut next = 0u32;
        let ((), stats) = pipelined_stats(
            2,
            move || {
                next += 1;
                (next <= 50).then_some(next)
            },
            |rx| {
                while let Some(_x) = rx.recv() {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            },
        );
        assert!(stats.queue_high_water >= 1 && stats.queue_high_water <= 2);
        assert!(stats.producer_stalls > 0, "{stats:?}");
        // An empty stream records nothing but a consumer stall or two.
        let ((), stats) = pipelined_stats(2, || None::<u32>, |rx| while rx.recv().is_some() {});
        assert_eq!(stats.queue_high_water, 0);
        assert_eq!(stats.producer_stalls, 0);
    }

    #[test]
    fn pipelined_empty_stream() {
        let n = pipelined(
            2,
            || None::<u32>,
            |rx| {
                let mut n = 0;
                while rx.recv().is_some() {
                    n += 1;
                }
                n
            },
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn pipelined_consumer_can_exit_early() {
        // The producer has far more chunks than the queue holds; the
        // consumer takes three and leaves. Must not deadlock.
        let mut next = 0u64;
        let got = pipelined(
            2,
            move || {
                next += 1;
                (next <= 1_000).then_some(next)
            },
            |rx| {
                let mut out = Vec::new();
                for _ in 0..3 {
                    out.extend(rx.recv());
                }
                out
            },
        );
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn gang_runs_every_worker_every_epoch() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let workers = 4;
        let gang = Gang::<Arc<Vec<u64>>>::new(workers);
        assert_eq!(gang.workers(), workers);
        let sums: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        thread::scope(|s| {
            for w in 0..workers {
                let (gang, sums) = (&gang, &sums);
                s.spawn(move || {
                    let mut seen = 0u64;
                    while let Some(job) = gang.worker_wait(&mut seen) {
                        sums[w].fetch_add(job[w], Ordering::Relaxed);
                        gang.complete();
                    }
                });
            }
            for epoch in 1..=10u64 {
                let job: Vec<u64> = (0..workers as u64).map(|w| epoch * 100 + w).collect();
                gang.dispatch(Arc::new(job));
                // The barrier makes every epoch's writes visible here.
                let expect: u64 = (1..=epoch).map(|e| e * 100).sum();
                assert_eq!(sums[0].load(Ordering::Relaxed), expect);
            }
            gang.shutdown();
        });
        for (w, sum) in sums.iter().enumerate() {
            let expect: u64 = (1..=10u64).map(|e| e * 100 + w as u64).sum();
            assert_eq!(sum.load(Ordering::Relaxed), expect, "worker {w}");
        }
    }

    #[test]
    fn gang_shutdown_without_dispatch() {
        let gang = Gang::<()>::new(2);
        thread::scope(|s| {
            for _ in 0..2 {
                let gang = &gang;
                s.spawn(move || {
                    let mut seen = 0u64;
                    assert!(gang.worker_wait(&mut seen).is_none());
                });
            }
            gang.shutdown();
        });
    }

    #[test]
    fn par_queued_preserves_order_and_covers_every_item() {
        let items: Vec<usize> = (0..257).collect();
        for workers in [1usize, 2, 3, 8] {
            let got = par_queued(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(
                got,
                (0..257).map(|x| x * x).collect::<Vec<_>>(),
                "workers {workers}"
            );
        }
        assert!(par_queued(&[] as &[u8], 4, |_, _| 0u8).is_empty());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut empty: Vec<u8> = Vec::new();
        par_update(&mut empty, |_, _| unreachable!());
        assert_eq!(par_sum(0, |_| 1.0), 0.0);
        assert!(par_map_range(0, |i| i).is_empty());
    }
}

//! Byte-size units and a small helper type for pretty-printing and
//! parsing data sizes, used throughout experiment configuration.

use std::fmt;
use std::str::FromStr;

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1 << 10;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;

/// A size in bytes with human-friendly constructors, formatting and
/// parsing (`"16GiB"`, `"1.5 MB"`, `"4096"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// From raw bytes.
    #[inline]
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// From kibibytes.
    #[inline]
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * KIB)
    }

    /// From mebibytes.
    #[inline]
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * MIB)
    }

    /// From gibibytes.
    #[inline]
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * GIB)
    }

    /// From fractional gibibytes (rounded to the nearest byte).
    #[inline]
    pub fn gib_f(n: f64) -> Self {
        debug_assert!(n >= 0.0);
        ByteSize((n * GIB as f64).round() as u64)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Size in (fractional) GiB.
    #[inline]
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / GIB as f64
    }

    /// Size in (fractional) MiB.
    #[inline]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// Number of cache lines of `line` bytes needed to hold this size
    /// (rounded up).
    #[inline]
    pub fn lines(self, line: u64) -> u64 {
        self.0.div_ceil(line)
    }

    /// Number of pages of `page` bytes needed to hold this size
    /// (rounded up).
    #[inline]
    pub fn pages(self, page: u64) -> u64 {
        self.0.div_ceil(page)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, other: ByteSize) -> Option<ByteSize> {
        self.0.checked_add(other.0).map(ByteSize)
    }
}

impl std::ops::Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_add(rhs.0).expect("ByteSize overflow"))
    }
}

impl std::ops::Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_sub(rhs.0).expect("ByteSize underflow"))
    }
}

impl std::ops::Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.checked_mul(rhs).expect("ByteSize overflow"))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GIB && b.is_multiple_of(GIB) {
            return write!(f, "{}GiB", b / GIB);
        }
        if b >= GIB {
            write!(f, "{:.2}GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2}MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2}KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// Error returned by [`ByteSize::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseByteSizeError(String);

impl fmt::Display for ParseByteSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid byte size: {:?}", self.0)
    }
}

impl std::error::Error for ParseByteSizeError {}

impl FromStr for ByteSize {
    type Err = ParseByteSizeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let split = t
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .unwrap_or(t.len());
        let (num, unit) = t.split_at(split);
        let value: f64 = num.parse().map_err(|_| ParseByteSizeError(s.to_string()))?;
        let unit = unit.trim().to_ascii_lowercase();
        let mult = match unit.as_str() {
            "" | "b" => 1.0,
            "k" | "kb" | "kib" => KIB as f64,
            "m" | "mb" | "mib" => MIB as f64,
            "g" | "gb" | "gib" => GIB as f64,
            "t" | "tb" | "tib" => (1u64 << 40) as f64,
            _ => return Err(ParseByteSizeError(s.to_string())),
        };
        Ok(ByteSize((value * mult).round() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(ByteSize::kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::mib(2).as_u64(), 2 * MIB);
        assert_eq!(ByteSize::gib(16).as_gib(), 16.0);
        assert_eq!(ByteSize::gib_f(0.5).as_u64(), GIB / 2);
    }

    #[test]
    fn line_and_page_counts_round_up() {
        assert_eq!(ByteSize::bytes(65).lines(64), 2);
        assert_eq!(ByteSize::bytes(64).lines(64), 1);
        assert_eq!(ByteSize::bytes(4097).pages(4096), 2);
        assert_eq!(ByteSize::ZERO.lines(64), 0);
    }

    #[test]
    fn parse_accepts_common_forms() {
        assert_eq!("16GiB".parse::<ByteSize>().unwrap(), ByteSize::gib(16));
        assert_eq!("1.5 MB".parse::<ByteSize>().unwrap().as_u64(), 3 * MIB / 2);
        assert_eq!("4096".parse::<ByteSize>().unwrap().as_u64(), 4096);
        assert_eq!("2k".parse::<ByteSize>().unwrap().as_u64(), 2048);
        assert!("12 parsecs".parse::<ByteSize>().is_err());
        assert!("GiB".parse::<ByteSize>().is_err());
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::gib(16).to_string(), "16GiB");
        assert_eq!(ByteSize::mib(3).to_string(), "3.00MiB");
        assert_eq!(ByteSize::bytes(100).to_string(), "100B");
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::mib(1) + ByteSize::mib(1);
        assert_eq!(a, ByteSize::mib(2));
        assert_eq!(a - ByteSize::mib(1), ByteSize::mib(1));
        assert_eq!(ByteSize::kib(1) * 4, ByteSize::kib(4));
        assert_eq!(
            ByteSize::kib(1).saturating_sub(ByteSize::mib(1)),
            ByteSize::ZERO
        );
    }
}

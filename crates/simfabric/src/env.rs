//! Warn-once environment-variable parsing.
//!
//! The replay engines grew a handful of `TRACESIM_*` tuning knobs, and
//! each grew its own ad-hoc parser with subtly different behaviour: a
//! garbage `TRACESIM_THREADS` warned once to stderr, while a garbage
//! `TRACESIM_LOOKAHEAD_CHUNKS` was silently dropped. A silently
//! ignored knob is worse than a noisy one — the operator believes the
//! setting took effect — so this module centralizes the contract:
//!
//! * unset ⇒ `None` (the caller's default applies, no noise);
//! * set and parsable ⇒ `Some(value)` (range policy stays with the
//!   caller — e.g. `TRACESIM_THREADS=0` legitimately parses and is
//!   clamped downstream);
//! * set but unparsable ⇒ `None` **plus one warning per variable per
//!   process** naming the variable, the rejected value, and the
//!   expected grammar.
//!
//! The warn-once set is keyed by variable name, so distinct knobs each
//! get their own (single) warning.

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

/// Variables that have already warned this process.
fn warned() -> &'static Mutex<BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Emit `msg` to stderr the first time `key` warns in this process.
/// Returns `true` when the message was actually printed, so callers
/// (and tests) can observe the once-ness.
pub fn warn_once(key: &str, msg: &str) -> bool {
    let mut set = warned().lock().expect("env warn set poisoned");
    let fresh = set.insert(key.to_string());
    if fresh {
        eprintln!("{msg}");
    }
    fresh
}

/// Read `var` and parse it with `parse`. Unset returns `None`;
/// a set-but-unparsable value warns once (quoting the value and the
/// `expected` grammar) and also returns `None`, so the caller's
/// default applies either way.
pub fn parsed<T>(var: &str, expected: &str, parse: impl Fn(&str) -> Option<T>) -> Option<T> {
    let raw = std::env::var(var).ok()?;
    match parse(&raw) {
        Some(v) => Some(v),
        None => {
            warn_once(
                var,
                &format!("{var}: ignoring unparsable value {raw:?} (expected {expected})"),
            );
            None
        }
    }
}

/// Grammar shared by the counted knobs (`TRACESIM_THREADS`,
/// `TRACESIM_LOOKAHEAD_CHUNKS`, `TRACESIM_PAR_WINDOW`): a non-negative
/// integer with surrounding whitespace ignored. Zero parses — what
/// zero *means* (clamp to one, disable the cap, …) is the caller's
/// policy, not the parser's.
pub fn parse_usize(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok()
}

/// A non-negative-integer environment variable, warn-once on garbage.
pub fn usize_var(var: &str) -> Option<usize> {
    parsed(var, "a non-negative integer", parse_usize)
}

/// Grammar for boolean switches: `1`/`true`/`on`/`yes` and
/// `0`/`false`/`off`/`no`, case-insensitive, whitespace-trimmed.
pub fn parse_bool(raw: &str) -> Option<bool> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

/// A boolean environment variable, warn-once on garbage.
pub fn bool_var(var: &str) -> Option<bool> {
    parsed(var, "one of 1/true/on/yes or 0/false/off/no", parse_bool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usize_grammar_accepts_trimmed_integers_including_zero() {
        assert_eq!(parse_usize("8"), Some(8));
        assert_eq!(parse_usize("  0\n"), Some(0));
        assert_eq!(parse_usize(""), None);
        assert_eq!(parse_usize("eight"), None);
        assert_eq!(parse_usize("-1"), None);
        assert_eq!(parse_usize("3.5"), None);
    }

    #[test]
    fn bool_grammar_covers_common_spellings() {
        for raw in ["1", "true", "ON", " yes "] {
            assert_eq!(parse_bool(raw), Some(true), "{raw:?}");
        }
        for raw in ["0", "false", "Off", "no"] {
            assert_eq!(parse_bool(raw), Some(false), "{raw:?}");
        }
        for raw in ["", "2", "enabled", "tru"] {
            assert_eq!(parse_bool(raw), None, "{raw:?}");
        }
    }

    #[test]
    fn warn_once_fires_once_per_key() {
        assert!(warn_once("test.env.key_a", "first"));
        assert!(!warn_once("test.env.key_a", "second"));
        assert!(warn_once("test.env.key_b", "different key still warns"));
    }

    #[test]
    fn parsed_reads_set_variables_and_warns_on_garbage() {
        // Env mutation is process-global; use names no other test touches.
        std::env::set_var("SIMFABRIC_ENV_TEST_GOOD", "17");
        assert_eq!(usize_var("SIMFABRIC_ENV_TEST_GOOD"), Some(17));
        std::env::remove_var("SIMFABRIC_ENV_TEST_GOOD");
        assert_eq!(usize_var("SIMFABRIC_ENV_TEST_GOOD"), None);

        std::env::set_var("SIMFABRIC_ENV_TEST_BAD", "lots");
        assert_eq!(usize_var("SIMFABRIC_ENV_TEST_BAD"), None);
        // The warning consumed the once-slot for this variable.
        assert!(!warn_once("SIMFABRIC_ENV_TEST_BAD", "again"));
        std::env::remove_var("SIMFABRIC_ENV_TEST_BAD");
    }
}

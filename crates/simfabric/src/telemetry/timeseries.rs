//! Time-resolved telemetry: sampled counter/gauge series over
//! *simulated* time.
//!
//! [`super::MetricsRegistry`] aggregates — one number per metric for a
//! whole run. A [`TimeSeriesRecorder`] resolves the same signals in
//! time: the owner registers named series up front, updates them as
//! events happen, and ticks the recorder once per unit of simulated
//! progress (for the trace replay, once per access consumed in the
//! earliest-`(clock, core)` merge order). Every `interval` ticks the
//! recorder snapshots all current values into a *window*. Because the
//! tick count is simulated progress — not wall clock, not thread
//! scheduling — the window boundaries and the sampled values are
//! deterministic and independent of worker count, exactly like the
//! replay reports themselves.
//!
//! Windows live in a bounded ring: the newest [`capacity`] windows are
//! retained and older ones are counted in `dropped`, so a recorder on
//! an arbitrarily long run uses constant memory. Samples of counter
//! series are *cumulative* (the running total at the window boundary);
//! consumers difference adjacent windows for rates. Gauge samples are
//! instantaneous.
//!
//! Per-shard recorders merge commutatively with the same rules as
//! [`MetricsRegistry::merge`]: counter samples sum, gauge samples take
//! the maximum, windows align by index. The merged result is
//! independent of merge order, so sharded producers can combine in any
//! order and still reproduce the single-recorder output byte for byte.
//!
//! Two exporters, both byte-deterministic: [`to_jsonl`] writes the
//! `timeseries/v1` line-JSON document (a header line followed by one
//! line per window), and [`chrome_counter_trace`] renders every sample
//! as a Chrome `trace_event` counter event (`"ph":"C"`) with the
//! window-end tick as its timestamp, so a trace viewer plots the
//! series over simulated time.
//!
//! [`capacity`]: TimeSeriesRecorder::capacity
//! [`MetricsRegistry::merge`]: super::MetricsRegistry::merge
//! [`to_jsonl`]: TimeSeriesRecorder::to_jsonl
//! [`chrome_counter_trace`]: TimeSeriesRecorder::chrome_counter_trace

use std::collections::VecDeque;

use super::{write_json_num, write_json_str};

/// Schema tag on the header line of the JSONL export.
pub const TIMESERIES_SCHEMA: &str = "timeseries/v1";

/// How a registered series samples and merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotone running total; samples are cumulative and shard
    /// merges sum them.
    Counter,
    /// Instantaneous level; shard merges take the maximum.
    Gauge,
}

impl SeriesKind {
    /// The tag used in the JSONL header.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }
}

/// Handle returned by registration; indexes the recorder's series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// One closed sampling window: the tick span it covers and the value
/// of every registered series at its close, in registration order.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesWindow {
    /// Window sequence number from the start of the run (stable even
    /// after older windows fall out of the ring).
    pub index: u64,
    /// First tick covered (exclusive — the window spans
    /// `(start_tick, end_tick]`).
    pub start_tick: u64,
    /// Last tick covered (the tick that closed the window).
    pub end_tick: u64,
    /// Sampled values, one per registered series.
    pub values: Vec<f64>,
}

/// Sampled time-series over simulated ticks; see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesRecorder {
    interval: u64,
    capacity: usize,
    names: Vec<&'static str>,
    kinds: Vec<SeriesKind>,
    cur: Vec<f64>,
    ticks: u64,
    last_close: u64,
    next_index: u64,
    dropped: u64,
    windows: VecDeque<TimeSeriesWindow>,
}

impl TimeSeriesRecorder {
    /// A recorder sampling every `interval` ticks (clamped to at least
    /// one) into a ring of at most `capacity` windows (at least one).
    pub fn new(interval: u64, capacity: usize) -> Self {
        TimeSeriesRecorder {
            interval: interval.max(1),
            capacity: capacity.max(1),
            names: Vec::new(),
            kinds: Vec::new(),
            cur: Vec::new(),
            ticks: 0,
            last_close: 0,
            next_index: 0,
            dropped: 0,
            windows: VecDeque::new(),
        }
    }

    /// The sampling interval in ticks.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The ring capacity in windows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ticks seen so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Windows evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Register a cumulative counter series; must happen before the
    /// first tick so every window carries every series.
    pub fn register_counter(&mut self, name: &'static str) -> SeriesId {
        self.register(name, SeriesKind::Counter)
    }

    /// Register an instantaneous gauge series.
    pub fn register_gauge(&mut self, name: &'static str) -> SeriesId {
        self.register(name, SeriesKind::Gauge)
    }

    fn register(&mut self, name: &'static str, kind: SeriesKind) -> SeriesId {
        assert_eq!(
            self.ticks, 0,
            "series must be registered before the first tick"
        );
        assert!(
            !self.names.contains(&name),
            "series {name:?} registered twice"
        );
        self.names.push(name);
        self.kinds.push(kind);
        self.cur.push(0.0);
        SeriesId(self.names.len() - 1)
    }

    /// Registered series names, in registration order.
    pub fn series_names(&self) -> &[&'static str] {
        &self.names
    }

    /// Add `delta` to a counter series' running total.
    #[inline]
    pub fn add(&mut self, id: SeriesId, delta: f64) {
        debug_assert_eq!(self.kinds[id.0], SeriesKind::Counter, "add on a gauge");
        self.cur[id.0] += delta;
    }

    /// Overwrite a series' current value — gauges always, counters
    /// when the owner tracks the running total itself (pull-style
    /// sampling at window close).
    #[inline]
    pub fn set(&mut self, id: SeriesId, value: f64) {
        self.cur[id.0] = value;
    }

    /// Count one unit of simulated progress. Returns `true` when the
    /// tick lands on a window boundary: the owner then refreshes any
    /// pull-style series and calls [`close_window`](Self::close_window).
    /// Splitting the boundary from the snapshot lets owners whose
    /// sampled state needs preparation (e.g. the concurrent timing
    /// engine resolving deferred completions) do so between the two.
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.ticks += 1;
        self.ticks.is_multiple_of(self.interval)
    }

    /// Snapshot every series' current value into a window covering the
    /// ticks since the previous close. No-op if no tick has happened
    /// since then (so a `finish` after an exact boundary is safe).
    pub fn close_window(&mut self) {
        if self.ticks == self.last_close {
            return;
        }
        let w = TimeSeriesWindow {
            index: self.next_index,
            start_tick: self.last_close,
            end_tick: self.ticks,
            values: self.cur.clone(),
        };
        self.next_index += 1;
        self.last_close = self.ticks;
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
            self.dropped += 1;
        }
        self.windows.push_back(w);
    }

    /// Close the trailing partial window, if any ticks are pending.
    pub fn finish(&mut self) {
        self.close_window();
    }

    /// Retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &TimeSeriesWindow> {
        self.windows.iter()
    }

    /// Merge another shard's recorder into this one, commutatively:
    /// counter samples sum, gauge samples take the maximum, windows
    /// align by index (a window present on one side only is kept
    /// as-is). Panics if the recorders disagree on interval or series
    /// layout — shards of one producer are clones by construction.
    pub fn merge(&mut self, other: &TimeSeriesRecorder) {
        assert_eq!(self.interval, other.interval, "interval mismatch in merge");
        assert_eq!(self.names, other.names, "series mismatch in merge");
        assert_eq!(self.kinds, other.kinds, "series kind mismatch in merge");
        for (i, kind) in self.kinds.iter().enumerate() {
            match kind {
                SeriesKind::Counter => self.cur[i] += other.cur[i],
                SeriesKind::Gauge => self.cur[i] = self.cur[i].max(other.cur[i]),
            }
        }
        self.ticks = self.ticks.max(other.ticks);
        self.last_close = self.last_close.max(other.last_close);
        self.dropped += other.dropped;
        for ow in &other.windows {
            match self.windows.iter_mut().find(|w| w.index == ow.index) {
                Some(w) => {
                    assert_eq!(
                        (w.start_tick, w.end_tick),
                        (ow.start_tick, ow.end_tick),
                        "window {} spans diverged in merge",
                        w.index
                    );
                    for (i, kind) in self.kinds.iter().enumerate() {
                        match kind {
                            SeriesKind::Counter => w.values[i] += ow.values[i],
                            SeriesKind::Gauge => w.values[i] = w.values[i].max(ow.values[i]),
                        }
                    }
                }
                None => {
                    let at = self.windows.partition_point(|w| w.index < ow.index);
                    self.windows.insert(at, ow.clone());
                }
            }
        }
        self.next_index = self
            .next_index
            .max(self.windows.back().map_or(0, |w| w.index + 1));
        while self.windows.len() > self.capacity {
            self.windows.pop_front();
            self.dropped += 1;
        }
    }

    /// Render the `timeseries/v1` document: a header line naming the
    /// schema, interval, series, and ring state, then one line per
    /// retained window. Byte-deterministic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":");
        write_json_str(&mut out, TIMESERIES_SCHEMA);
        out.push_str(",\"interval\":");
        write_json_num(&mut out, self.interval as f64);
        out.push_str(",\"ticks\":");
        write_json_num(&mut out, self.ticks as f64);
        out.push_str(",\"dropped\":");
        write_json_num(&mut out, self.dropped as f64);
        out.push_str(",\"series\":[");
        for (i, (name, kind)) in self.names.iter().zip(&self.kinds).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_str(&mut out, name);
            out.push_str(",\"kind\":");
            write_json_str(&mut out, kind.name());
            out.push('}');
        }
        out.push_str("]}\n");
        for w in &self.windows {
            out.push_str("{\"window\":");
            write_json_num(&mut out, w.index as f64);
            out.push_str(",\"start\":");
            write_json_num(&mut out, w.start_tick as f64);
            out.push_str(",\"end\":");
            write_json_num(&mut out, w.end_tick as f64);
            out.push_str(",\"values\":[");
            for (i, v) in w.values.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_num(&mut out, *v);
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Render every sample as a Chrome `trace_event` counter event
    /// (`"ph":"C"`, category `timeseries`), timestamped with the
    /// window-end tick so viewers plot the series over simulated
    /// time. Byte-deterministic; timestamps are monotone because
    /// windows are.
    pub fn chrome_counter_trace(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            for (i, name) in self.names.iter().enumerate() {
                out.push_str("{\"name\":");
                write_json_str(&mut out, name);
                out.push_str(",\"cat\":\"timeseries\",\"ph\":\"C\",\"ts\":");
                write_json_num(&mut out, w.end_tick as f64);
                out.push_str(",\"pid\":1,\"args\":{\"value\":");
                write_json_num(
                    &mut out,
                    if w.values[i].is_finite() {
                        w.values[i]
                    } else {
                        0.0
                    },
                );
                out.push_str("}}\n");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_series() -> (TimeSeriesRecorder, SeriesId, SeriesId) {
        let mut r = TimeSeriesRecorder::new(4, 8);
        let c = r.register_counter("lines");
        let g = r.register_gauge("inflight");
        (r, c, g)
    }

    #[test]
    fn windows_close_on_interval_boundaries() {
        let (mut r, c, g) = two_series();
        for i in 0..10u64 {
            r.add(c, 2.0);
            r.set(g, i as f64);
            if r.tick() {
                r.close_window();
            }
        }
        r.finish();
        let ws: Vec<_> = r.windows().cloned().collect();
        assert_eq!(ws.len(), 3);
        assert_eq!((ws[0].start_tick, ws[0].end_tick), (0, 4));
        assert_eq!((ws[1].start_tick, ws[1].end_tick), (4, 8));
        assert_eq!((ws[2].start_tick, ws[2].end_tick), (8, 10));
        // Counters are cumulative; gauges instantaneous.
        assert_eq!(ws[0].values, vec![8.0, 3.0]);
        assert_eq!(ws[1].values, vec![16.0, 7.0]);
        assert_eq!(ws[2].values, vec![20.0, 9.0]);
    }

    #[test]
    fn finish_after_exact_boundary_adds_nothing() {
        let (mut r, c, _) = two_series();
        for _ in 0..8 {
            r.add(c, 1.0);
            if r.tick() {
                r.close_window();
            }
        }
        r.finish();
        assert_eq!(r.windows().count(), 2);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut r = TimeSeriesRecorder::new(1, 3);
        let c = r.register_counter("n");
        for _ in 0..5 {
            r.add(c, 1.0);
            if r.tick() {
                r.close_window();
            }
        }
        assert_eq!(r.dropped(), 2);
        let idx: Vec<u64> = r.windows().map(|w| w.index).collect();
        assert_eq!(idx, vec![2, 3, 4]);
    }

    #[test]
    fn merge_mirrors_registry_rules_and_commutes() {
        let mk = |counter_base: f64, gauge: f64, windows: u64| {
            let (mut r, c, g) = two_series();
            for i in 0..windows * 4 {
                r.add(c, counter_base);
                r.set(g, gauge + i as f64);
                if r.tick() {
                    r.close_window();
                }
            }
            r
        };
        // Shard B saw fewer ticks: its missing trailing windows pass
        // through the merge untouched.
        let a = mk(1.0, 10.0, 3);
        let b = mk(5.0, 0.0, 2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let ws: Vec<_> = ab.windows().cloned().collect();
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].values, vec![4.0 + 20.0, 13.0]);
        assert_eq!(ws[1].values, vec![8.0 + 40.0, 17.0]);
        assert_eq!(ws[2].values, vec![12.0, 21.0]);
    }

    #[test]
    #[should_panic(expected = "series mismatch")]
    fn merge_rejects_mismatched_series() {
        let mut a = TimeSeriesRecorder::new(4, 8);
        a.register_counter("x");
        let mut b = TimeSeriesRecorder::new(4, 8);
        b.register_counter("y");
        a.merge(&b);
    }

    #[test]
    fn jsonl_header_and_windows() {
        let (mut r, c, g) = two_series();
        for _ in 0..5 {
            r.add(c, 3.0);
            r.set(g, 2.5);
            if r.tick() {
                r.close_window();
            }
        }
        r.finish();
        let text = r.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"schema\":\"timeseries/v1\""));
        assert!(lines[0].contains("\"interval\":4"));
        assert!(lines[0].contains("{\"name\":\"lines\",\"kind\":\"counter\"}"));
        assert_eq!(
            lines[1],
            "{\"window\":0,\"start\":0,\"end\":4,\"values\":[12,2.5]}"
        );
        assert_eq!(
            lines[2],
            "{\"window\":1,\"start\":4,\"end\":5,\"values\":[15,2.5]}"
        );
    }

    #[test]
    fn chrome_counter_events_are_monotone() {
        let (mut r, c, _) = two_series();
        for _ in 0..8 {
            r.add(c, 1.0);
            if r.tick() {
                r.close_window();
            }
        }
        let text = r.chrome_counter_trace();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // 2 windows x 2 series
        assert!(lines[0].contains("\"ph\":\"C\""));
        assert!(lines[0].contains("\"ts\":4"));
        assert!(lines[2].contains("\"ts\":8"));
    }
}

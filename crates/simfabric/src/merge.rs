//! Fixed-size tournament tree for deterministic k-way timing merges.
//!
//! The trace replay engines repeatedly ask "which core has the
//! earliest clock?", advance that core, and update its key. A binary
//! heap answers this with a pop/push pair per access — two O(log k)
//! sift passes plus branchy slot shuffling. The classic alternative
//! from external sorting is the *loser tree*: a fixed array of match
//! results over the k sources where replacing the winner's key costs a
//! single leaf-to-root replay and selection is O(1).
//!
//! [`LoserTree`] implements that structure with one representational
//! twist: internal nodes cache each match's **winner** rather than its
//! loser. Winner-caching answers arbitrary single-slot updates (not
//! just champion replacement) with the same one-path replay, which the
//! streaming replay path needs when an empty source receives new work
//! mid-merge. Complexity is identical to the textbook loser tree —
//! O(log k) per update, zero allocation after construction.
//!
//! Ordering contract: the winner is the slot with the smallest
//! `(key, slot index)` pair, so ties break toward the lower slot —
//! exactly the order `BinaryHeap<Reverse<(K, usize)>>` pops, which
//! keeps heap-based and tree-based merges bit-identical.

/// A fixed-size k-way selection tree over `n` slots keyed by `K`.
///
/// Slots are *closed* (excluded from selection) until [`set`] assigns
/// them a key; [`close`] excludes them again. [`winner`] returns the
/// open slot with the minimal `(key, slot)` pair in O(1).
///
/// [`set`]: LoserTree::set
/// [`close`]: LoserTree::close
/// [`winner`]: LoserTree::winner
#[derive(Debug, Clone)]
pub struct LoserTree<K> {
    /// Leaf count: `n.next_power_of_two()`, at least 1.
    m: usize,
    /// Match results; `node[1]` is the root (overall winner),
    /// `node[m + i]` the leaf for slot `i`. Values are slot indices;
    /// indices `>= n` are virtual always-losing slots padding to a
    /// power of two.
    node: Vec<usize>,
    /// Per-slot keys; `None` means closed (never selected).
    keys: Vec<Option<K>>,
    /// Open-slot count.
    open: usize,
}

impl<K: Ord> LoserTree<K> {
    /// Build a tree over `n` slots, all initially closed.
    pub fn new(n: usize) -> Self {
        let m = n.next_power_of_two().max(1);
        let mut node = vec![0usize; 2 * m];
        for (i, leaf) in node[m..].iter_mut().enumerate() {
            *leaf = i;
        }
        // All keys are None, so any initial match result is valid; the
        // lower index wins by the tie-break rule.
        for j in (1..m).rev() {
            node[j] = node[2 * j].min(node[2 * j + 1]);
        }
        LoserTree {
            m,
            node,
            keys: (0..n).map(|_| None).collect(),
            open: 0,
        }
    }

    /// Number of slots (open or closed).
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Number of open slots.
    pub fn len(&self) -> usize {
        self.open
    }

    /// Whether every slot is closed.
    pub fn is_empty(&self) -> bool {
        self.open == 0
    }

    /// The key currently assigned to `slot` (`None` when closed).
    pub fn key(&self, slot: usize) -> Option<&K> {
        self.keys[slot].as_ref()
    }

    /// Open `slot` with `key`, or update its key if already open, and
    /// replay its matches to the root. O(log n).
    pub fn set(&mut self, slot: usize, key: K) {
        if self.keys[slot].is_none() {
            self.open += 1;
        }
        self.keys[slot] = Some(key);
        self.replay(slot);
    }

    /// Close `slot` (it no longer participates in selection). O(log n).
    pub fn close(&mut self, slot: usize) {
        if self.keys[slot].take().is_some() {
            self.open -= 1;
        }
        self.replay(slot);
    }

    /// The open slot with the smallest `(key, slot)` pair, or `None`
    /// when every slot is closed. O(1).
    pub fn winner(&self) -> Option<usize> {
        let w = self.node[1];
        self.keys.get(w).and_then(|k| k.as_ref()).map(|_| w)
    }

    /// Recompute the match results on the path from `slot`'s leaf to
    /// the root. Each internal node's children are already correct
    /// (one was just updated, the other is off-path and unchanged).
    fn replay(&mut self, slot: usize) {
        let mut j = (self.m + slot) >> 1;
        while j >= 1 {
            let (a, b) = (self.node[2 * j], self.node[2 * j + 1]);
            self.node[j] = if self.beats(a, b) { a } else { b };
            j >>= 1;
        }
    }

    /// Whether slot `a` wins the match against slot `b`: smaller
    /// `(key, index)` wins, closed/virtual slots always lose (between
    /// two closed slots the lower index wins, arbitrarily but
    /// deterministically).
    fn beats(&self, a: usize, b: usize) -> bool {
        let ka = self.keys.get(a).and_then(|k| k.as_ref());
        let kb = self.keys.get(b).and_then(|k| k.as_ref());
        match (ka, kb) {
            (Some(ka), Some(kb)) => (ka, a) < (kb, b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference selection: minimal `(key, slot)` over open slots.
    fn naive_winner(keys: &[Option<u64>]) -> Option<usize> {
        keys.iter()
            .enumerate()
            .filter_map(|(i, k)| k.map(|k| (k, i)))
            .min()
            .map(|(_, i)| i)
    }

    #[test]
    fn single_slot_tree() {
        let mut t: LoserTree<u64> = LoserTree::new(1);
        assert_eq!(t.winner(), None);
        t.set(0, 42);
        assert_eq!(t.winner(), Some(0));
        assert_eq!(t.key(0), Some(&42));
        t.close(0);
        assert_eq!(t.winner(), None);
        assert!(t.is_empty());
    }

    #[test]
    fn empty_and_all_closed_trees_have_no_winner() {
        let t: LoserTree<u64> = LoserTree::new(0);
        assert_eq!(t.winner(), None);
        let mut t: LoserTree<u64> = LoserTree::new(5);
        assert_eq!(t.winner(), None);
        t.set(3, 7);
        t.close(3);
        assert_eq!(t.winner(), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn equal_keys_tie_break_toward_lower_slot() {
        // The heap the tree replaces popped `Reverse<(key, index)>`, so
        // equal keys must select the lowest index, in every arrival
        // order.
        for order in [[0usize, 1, 2], [2, 1, 0], [1, 2, 0]] {
            let mut t: LoserTree<u64> = LoserTree::new(3);
            for &s in &order {
                t.set(s, 100);
            }
            assert_eq!(t.winner(), Some(0), "order {order:?}");
            t.close(0);
            assert_eq!(t.winner(), Some(1));
            t.close(1);
            assert_eq!(t.winner(), Some(2));
        }
    }

    #[test]
    fn non_power_of_two_slot_counts() {
        for n in [1usize, 2, 3, 5, 6, 7, 9, 64, 65] {
            let mut t: LoserTree<u64> = LoserTree::new(n);
            for i in 0..n {
                t.set(i, (i as u64 * 37) % 11);
            }
            let keys: Vec<Option<u64>> = (0..n).map(|i| Some((i as u64 * 37) % 11)).collect();
            assert_eq!(t.winner(), naive_winner(&keys), "n={n}");
        }
    }

    #[test]
    fn matches_binary_heap_merge_order() {
        // Drain a synthetic multiway merge both ways; sequences must be
        // identical, including ties and interleaved reopen.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut streams: Vec<Vec<u64>> = vec![
            vec![1, 4, 4, 9],
            vec![1, 2, 9],
            vec![],
            vec![3, 3, 3],
            vec![0, 11],
        ];
        for s in &mut streams {
            s.reverse(); // pop from the back
        }

        let mut heap_order = Vec::new();
        {
            let mut streams = streams.clone();
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> = streams
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_empty())
                .map(|(i, s)| Reverse((*s.last().unwrap(), i)))
                .collect();
            while let Some(Reverse((k, i))) = heap.pop() {
                heap_order.push((k, i));
                streams[i].pop();
                if let Some(&next) = streams[i].last() {
                    heap.push(Reverse((next, i)));
                }
            }
        }

        let mut tree_order = Vec::new();
        {
            let mut t: LoserTree<u64> = LoserTree::new(streams.len());
            for (i, s) in streams.iter().enumerate() {
                if let Some(&k) = s.last() {
                    t.set(i, k);
                }
            }
            while let Some(i) = t.winner() {
                let k = streams[i].pop().unwrap();
                tree_order.push((k, i));
                match streams[i].last() {
                    Some(&next) => t.set(i, next),
                    None => t.close(i),
                }
            }
        }
        assert_eq!(tree_order, heap_order);
    }

    #[test]
    fn reopening_a_closed_slot_mid_merge() {
        // The streaming replay closes a drained core and reopens it when
        // a later chunk delivers more work; selection must stay exact.
        let mut t: LoserTree<u64> = LoserTree::new(4);
        t.set(0, 10);
        t.set(1, 20);
        assert_eq!(t.winner(), Some(0));
        t.close(0);
        assert_eq!(t.winner(), Some(1));
        t.set(0, 15); // reopened with a key between the others
        assert_eq!(t.winner(), Some(0));
        t.set(2, 5);
        assert_eq!(t.winner(), Some(2));
        t.close(2);
        t.close(0);
        t.close(1);
        assert_eq!(t.winner(), None);
    }

    #[test]
    fn empty_shards_at_construction_never_win() {
        // A tiny trace at many workers leaves some cores with zero
        // accesses: those slots are never `set`, and the merge must
        // behave as if they did not exist — in every tree size,
        // including the n=1 tree whose replay loop body never runs.
        for n in [1usize, 2, 3, 8, 9] {
            let mut t: LoserTree<u64> = LoserTree::new(n);
            assert_eq!(t.winner(), None, "n={n} with all shards empty");
            // Open only the last slot (worst case for the tie-break
            // padding: every virtual sibling must lose to it).
            t.set(n - 1, 7);
            assert_eq!(t.winner(), Some(n - 1), "n={n}");
            assert_eq!(t.len(), 1);
            t.close(n - 1);
            assert_eq!(t.winner(), None);
        }
    }

    #[test]
    fn zero_and_one_element_shards_merge_correctly() {
        // Shard lengths 0 and 1 mixed with longer ones: the drained
        // sequence must equal the globally sorted-by-(key, slot) order.
        let shards: Vec<Vec<u64>> = vec![vec![], vec![5], vec![], vec![1, 9], vec![5], vec![]];
        let mut cursors = vec![0usize; shards.len()];
        let mut t: LoserTree<u64> = LoserTree::new(shards.len());
        for (i, s) in shards.iter().enumerate() {
            if let Some(&k) = s.first() {
                t.set(i, k);
            }
        }
        assert_eq!(t.len(), 3, "only non-empty shards are open");
        let mut drained = Vec::new();
        while let Some(i) = t.winner() {
            drained.push((shards[i][cursors[i]], i));
            cursors[i] += 1;
            match shards[i].get(cursors[i]) {
                Some(&k) => t.set(i, k),
                None => t.close(i),
            }
        }
        assert_eq!(drained, vec![(1, 3), (5, 1), (5, 4), (9, 3)]);
        let mut expect = drained.clone();
        expect.sort();
        assert_eq!(drained, expect);
    }

    #[test]
    fn randomized_against_naive_selection() {
        // Seeded stress: random set/close operations, winner always
        // equals the naive minimum.
        let mut rng = crate::prng::Rng::seed_from_u64(0xCAFE);
        for n in [1usize, 3, 8, 17] {
            let mut t: LoserTree<u64> = LoserTree::new(n);
            let mut keys: Vec<Option<u64>> = vec![None; n];
            for _ in 0..2_000 {
                let slot = rng.gen_range(0..n as u64) as usize;
                if rng.gen_bool(0.3) {
                    t.close(slot);
                    keys[slot] = None;
                } else {
                    let k = rng.gen_range(0..50);
                    t.set(slot, k);
                    keys[slot] = Some(k);
                }
                assert_eq!(t.winner(), naive_winner(&keys));
                assert_eq!(t.len(), keys.iter().flatten().count());
            }
        }
    }
}

//! Measurement primitives: counters, log-scale histograms, bandwidth
//! meters and online mean/variance accumulators.
//!
//! These are the building blocks from which the cache simulator, device
//! models and the experiment harness assemble their reports.

use crate::time::{Duration, SimTime};

/// A simple monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// Combine two counters (commutative and associative, so shard
    /// counters can be reduced in any order).
    pub fn merge(self, other: Counter) -> Counter {
        Counter(self.0 + other.0)
    }

    /// This counter as a fraction of `total` (0.0 if `total` is zero).
    pub fn ratio_of(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

/// A power-of-two bucketed histogram for positive integer samples
/// (latencies in picoseconds, sizes in bytes, queue depths…).
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))`; bucket 0 also holds 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    ///
    /// `#[inline]`: called per memory access on telemetry-enabled
    /// replay hot paths in downstream crates; without the hint the
    /// cross-crate call alone threatens the <=2 % overhead budget.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile (`q` in `[0,1]`) from bucket boundaries.
    /// Returns the *upper* bound of the bucket containing the quantile,
    /// i.e. an over-estimate by at most 2×. A NaN `q` is treated as 0
    /// (the minimum) rather than poisoning the clamp.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                });
            }
        }
        Some(self.max)
    }

    /// [`quantile`](Self::quantile) with a defined value on an empty
    /// histogram (0), for exporters that must emit a number for every
    /// metric rather than thread `Option`s through a report.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        self.quantile(q).unwrap_or(0)
    }

    /// Non-empty `(bucket_low_bound, count)` pairs, for reporting.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// Accumulates bytes moved over simulated time and reports bandwidth.
#[derive(Debug, Clone, Copy, Default)]
pub struct BandwidthMeter {
    bytes: u64,
    start: Option<SimTime>,
    end: SimTime,
}

impl BandwidthMeter {
    /// New meter with no traffic.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` transferred during the window ending at `now`.
    /// The first call opens the observation window.
    pub fn record(&mut self, bytes: u64, now: SimTime) {
        if self.start.is_none() {
            self.start = Some(now);
        }
        self.bytes += bytes;
        self.end = self.end.max(now);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Observation window (end − start of traffic).
    pub fn window(&self) -> Duration {
        match self.start {
            Some(start) => self.end.saturating_since(start),
            None => Duration::ZERO,
        }
    }

    /// Average bandwidth in GB/s (decimal GB, as memory vendors and the
    /// paper report it).
    ///
    /// Always finite: a meter with no traffic, a single sample, or a
    /// zero-width observation window reports 0.0 — exported metrics
    /// must never carry NaN/∞ from a division by an empty window (a
    /// non-finite `secs` can only arise from a corrupted window and is
    /// caught by the same guard).
    pub fn gb_per_sec(&self) -> f64 {
        let secs = self.window().as_secs();
        if !secs.is_finite() || secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e9 / secs
        }
    }
}

/// Online mean / variance via Welford's algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// New accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance with Bessel's correction (0.0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Relative standard deviation (stddev / mean); 0.0 when mean is 0.
    pub fn rel_stddev(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m.abs()
        }
    }
}

/// Harmonic mean of a set of positive rates, as used by Graph500 for
/// aggregating TEPS over BFS roots. Returns 0.0 on an empty slice and
/// ignores non-positive entries the way the reference code drops
/// invalid runs.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    let mut n = 0u64;
    let mut recip_sum = 0.0;
    for &x in xs {
        if x > 0.0 {
            n += 1;
            recip_sum += 1.0 / x;
        }
    }
    if n == 0 {
        0.0
    } else {
        n as f64 / recip_sum
    }
}

/// Geometric mean of positive values; 0.0 on empty input.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    let mut n = 0u64;
    let mut log_sum = 0.0;
    for &x in xs {
        if x > 0.0 {
            n += 1;
            log_sum += x.ln();
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.ratio_of(10), 0.5);
        assert_eq!(c.ratio_of(0), 0.0);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        let buckets = h.nonzero_buckets();
        // 0 and 1 in bucket 0; 2 and 3 in bucket [2,4); 1024 in [1024,2048).
        assert_eq!(buckets, vec![(0, 2), (2, 2), (1024, 1)]);
        assert!((h.mean() - (0.0 + 1.0 + 2.0 + 3.0 + 1024.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantile_bounds() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        // Median is 30 → bucket [16,32) → upper bound 31.
        assert_eq!(h.quantile(0.5), Some(31));
        // p100 lands in 1000's bucket [512,1024) → 1023.
        assert_eq!(h.quantile(1.0), Some(1023));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn histogram_quantile_edge_cases_are_defined() {
        // Empty histogram: Option form is None, bound form is 0 — an
        // exported metric never sees a missing value.
        let empty = Histogram::new();
        assert_eq!(empty.quantile_bound(0.5), 0);
        assert_eq!(empty.quantile_bound(f64::NAN), 0);
        let mut h = Histogram::new();
        h.record(100);
        // Out-of-range and NaN quantiles clamp to the bucket bounds
        // instead of producing a surprise.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
        assert_eq!(h.quantile_bound(0.5), 127);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(4);
        b.record(8);
        b.record(16);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(4));
        assert_eq!(a.max(), Some(16));
    }

    #[test]
    fn bandwidth_meter_reports_gb_per_sec() {
        let mut m = BandwidthMeter::new();
        m.record(0, SimTime::ZERO);
        // 1e9 bytes over 1 second = 1 GB/s.
        let mut t = SimTime::ZERO;
        t += Duration::from_secs(1.0);
        m.record(1_000_000_000, t);
        assert!((m.gb_per_sec() - 1.0).abs() < 1e-9);
        assert_eq!(m.bytes(), 1_000_000_000);
    }

    #[test]
    fn bandwidth_meter_empty_window_is_zero() {
        let mut m = BandwidthMeter::new();
        m.record(100, SimTime::ZERO);
        assert_eq!(m.gb_per_sec(), 0.0);
    }

    #[test]
    fn bandwidth_meter_degenerate_windows_stay_finite() {
        // No traffic at all.
        assert_eq!(BandwidthMeter::new().gb_per_sec(), 0.0);
        // Bytes recorded entirely at one instant (zero-width window):
        // defined 0.0, not bytes/0 = inf.
        let mut m = BandwidthMeter::new();
        let t = SimTime::ZERO + Duration::from_ns(5.0);
        m.record(1 << 30, t);
        m.record(1 << 30, t);
        assert_eq!(m.gb_per_sec(), 0.0);
        assert!(m.gb_per_sec().is_finite());
        assert_eq!(m.window(), Duration::ZERO);
    }

    #[test]
    fn online_stats_mean_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn harmonic_mean_matches_graph500_convention() {
        // Harmonic mean of 1, 2, 4 = 3 / (1 + 0.5 + 0.25) = 12/7.
        assert!((harmonic_mean(&[1.0, 2.0, 4.0]) - 12.0 / 7.0).abs() < 1e-12);
        // Zero/negative entries are skipped.
        assert!((harmonic_mean(&[2.0, 0.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}

//! `simfabric` — the discrete-event simulation substrate used by every
//! other crate in the KNL hybrid-memory testbed.
//!
//! The crate deliberately contains no knowledge of memory systems: it
//! provides the generic machinery a hardware model needs —
//!
//! * a simulated clock with picosecond resolution ([`SimTime`],
//!   [`Duration`]),
//! * a deterministic event queue ([`EventQueue`], [`Simulator`]),
//! * reproducible, named random-number streams ([`RngPool`]),
//! * measurement primitives (counters, log-scale histograms, bandwidth
//!   meters, online mean/variance) in [`stats`],
//! * an opt-in telemetry layer (named-metric registry, phase spans,
//!   sampled time-series over simulated ticks, Chrome `trace_event`
//!   export) in [`telemetry`],
//! * warn-once parsing for tuning-knob environment variables in
//!   [`env`],
//! * a sharded, byte-bounded concurrent LRU ([`ShardedLru`]) in
//!   [`cache`],
//! * shared error types ([`SimError`]).
//!
//! # Determinism
//!
//! Everything in this crate is deterministic: the event queue breaks
//! timestamp ties by insertion sequence number, and all randomness is
//! derived from named streams split off a single master seed. Two runs
//! with the same seed replay the same event order bit-for-bit, which the
//! property tests in each downstream crate rely on.
//!
//! # Example
//!
//! ```
//! use simfabric::{Simulator, Duration};
//!
//! let mut sim = Simulator::new();
//! let mut fired = Vec::new();
//! sim.schedule_in(Duration::from_ns(10.0), 1u32);
//! sim.schedule_in(Duration::from_ns(5.0), 2u32);
//! while let Some((t, ev)) = sim.pop() {
//!     fired.push((t.as_ns(), ev));
//! }
//! assert_eq!(fired, vec![(5.0, 2), (10.0, 1)]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod env;
pub mod error;
pub mod event;
pub mod merge;
pub mod par;
pub mod prng;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod units;

pub use cache::{ShardedCacheStats, ShardedLru};
pub use error::SimError;
pub use event::{EventQueue, Simulator};
pub use merge::LoserTree;
pub use prng::Rng;
pub use rng::RngPool;
pub use stats::{BandwidthMeter, Counter, Histogram, OnlineStats};
pub use telemetry::timeseries::{SeriesId, SeriesKind, TimeSeriesRecorder, TimeSeriesWindow};
pub use telemetry::{MetricValue, MetricsRegistry, SpanLog, SpanRecord};
pub use time::{Duration, SimTime};
pub use units::{ByteSize, GIB, KIB, MIB};

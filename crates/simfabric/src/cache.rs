//! A generic sharded, byte-bounded LRU cache for concurrent readers.
//!
//! The classify cache in `knl` proved the shape — whole-key lookup,
//! LRU-by-payload-bytes, explicit counters — but it lives behind one
//! `Mutex`, which is fine for a sweep loop and wrong for a query
//! engine where many workers probe the cache on every request. This
//! module generalizes it: entries are spread over N independently
//! locked shards by key hash, so concurrent lookups to different
//! shards never contend, and each shard runs the same
//! bounded-bytes LRU discipline locally.
//!
//! The cache stores `Arc<V>` values; a hit clones the `Arc`, so
//! entries are shared, never copied. Sizing is caller-declared
//! (`insert` takes the entry's byte weight) because `V` is opaque
//! here. A zero total budget disables retention entirely — every
//! lookup misses — which overhead gates use to price the plumbing
//! alone.

use std::collections::VecDeque;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Aggregated behaviour counters of a [`ShardedLru`], summed over
/// shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedCacheStats {
    /// Lookups served from a shard.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries retained by `insert`.
    pub inserts: u64,
    /// Entries dropped to make room (per-shard LRU order).
    pub evictions: u64,
    /// Entries too large for their shard's budget to ever retain.
    pub rejected: u64,
}

/// One shard: a locally locked LRU of `(key, value, bytes)` entries.
#[derive(Debug)]
struct Shard<K, V> {
    /// Front = least recently used; back = most recently used.
    lru: VecDeque<(K, Arc<V>, usize)>,
    bytes: usize,
    stats: ShardedCacheStats,
}

impl<K: Eq, V> Shard<K, V> {
    fn lookup(&mut self, key: &K) -> Option<Arc<V>> {
        match self.lru.iter().position(|(k, _, _)| k == key) {
            Some(pos) => {
                let entry = self.lru.remove(pos).expect("position came from iter");
                let value = Arc::clone(&entry.1);
                self.lru.push_back(entry);
                self.stats.hits += 1;
                Some(value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: K, value: Arc<V>, entry_bytes: usize, cap_bytes: usize) {
        if cap_bytes == 0 {
            return;
        }
        if entry_bytes > cap_bytes {
            self.stats.rejected += 1;
            return;
        }
        // Replace a stale entry under the same key rather than
        // double-counting its bytes.
        if let Some(pos) = self.lru.iter().position(|(k, _, _)| k == &key) {
            let (_, _, old_bytes) = self.lru.remove(pos).expect("position came from iter");
            self.bytes -= old_bytes;
        }
        while self.bytes + entry_bytes > cap_bytes {
            let (_, _, evicted) = self.lru.pop_front().expect("over budget implies entries");
            self.bytes -= evicted;
            self.stats.evictions += 1;
        }
        self.bytes += entry_bytes;
        self.stats.inserts += 1;
        self.lru.push_back((key, value, entry_bytes));
    }
}

/// A sharded, byte-bounded concurrent LRU: `&self` lookup and insert,
/// with one mutex per shard so probes to different shards proceed in
/// parallel. The total byte budget is split evenly across shards
/// (each shard evicts locally), so the worst-case retained total
/// never exceeds the budget.
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    shard_cap_bytes: usize,
}

impl<K: Hash + Eq, V> ShardedLru<K, V> {
    /// A cache of `shards` shards (at least one) sharing a
    /// `cap_bytes` total budget (0 disables retention).
    pub fn new(shards: usize, cap_bytes: usize) -> Self {
        let shards = shards.max(1);
        ShardedLru {
            shard_cap_bytes: cap_bytes / shards,
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        lru: VecDeque::new(),
                        bytes: 0,
                        stats: ShardedCacheStats::default(),
                    })
                })
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// The entry under `key`, moved to its shard's MRU position.
    /// Counts a hit or a miss on the shard.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .lookup(key)
    }

    /// Retain `value` under `key`, declared `entry_bytes` large,
    /// evicting the shard's LRU entries until it fits. An entry
    /// exceeding the whole shard budget is rejected (counted), as is
    /// every insert when the cache is disabled.
    pub fn insert(&self, key: K, value: Arc<V>, entry_bytes: usize) {
        self.shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, entry_bytes, self.shard_cap_bytes);
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard byte budget (total budget / shard count).
    pub fn shard_cap_bytes(&self) -> usize {
        self.shard_cap_bytes
    }

    /// Retained entries, summed over shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").lru.len())
            .sum()
    }

    /// Whether nothing is retained anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retained payload bytes, summed over shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }

    /// Behaviour counters, summed over shards.
    pub fn stats(&self) -> ShardedCacheStats {
        let mut total = ShardedCacheStats::default();
        for s in &self.shards {
            let st = s.lock().expect("cache shard poisoned").stats;
            total.hits += st.hits;
            total.misses += st.misses;
            total.inserts += st.inserts;
            total.evictions += st.evictions;
            total.rejected += st.rejected;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn hit_miss_and_lru_eviction_per_shard() {
        // One shard so the LRU order is directly observable.
        let cache: ShardedLru<u32, String> = ShardedLru::new(1, 100);
        assert!(cache.get(&1).is_none());
        cache.insert(1, Arc::new("a".into()), 40);
        cache.insert(2, Arc::new("b".into()), 40);
        assert_eq!(cache.bytes(), 80);
        // Touch 1 so 2 becomes LRU, then overflow: 2 must go.
        assert_eq!(cache.get(&1).as_deref().map(String::as_str), Some("a"));
        cache.insert(3, Arc::new("c".into()), 40);
        assert!(cache.get(&1).is_some(), "1 was MRU and must survive");
        assert!(cache.get(&2).is_none(), "2 was LRU and must be evicted");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.inserts, 3);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let cache: ShardedLru<u32, u64> = ShardedLru::new(1, 100);
        cache.insert(7, Arc::new(1), 60);
        cache.insert(7, Arc::new(2), 60);
        assert_eq!(cache.bytes(), 60);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&7).as_deref(), Some(&2));
    }

    #[test]
    fn zero_budget_disables_retention_and_oversize_rejects() {
        let off: ShardedLru<u32, u64> = ShardedLru::new(4, 0);
        off.insert(1, Arc::new(9), 8);
        assert!(off.get(&1).is_none());
        assert!(off.is_empty());

        let tiny: ShardedLru<u32, u64> = ShardedLru::new(2, 16); // 8 per shard
        tiny.insert(1, Arc::new(9), 64);
        assert!(tiny.get(&1).is_none());
        assert_eq!(tiny.stats().rejected, 1);
    }

    #[test]
    fn budget_splits_across_shards() {
        let cache: ShardedLru<u32, u64> = ShardedLru::new(4, 400);
        assert_eq!(cache.shards(), 4);
        assert_eq!(cache.shard_cap_bytes(), 100);
    }

    #[test]
    fn concurrent_probes_share_entries() {
        let cache: ShardedLru<u32, u64> = ShardedLru::new(8, 1 << 16);
        for k in 0..32u32 {
            cache.insert(k, Arc::new(k as u64 * 3), 64);
        }
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for k in 0..32u32 {
                        assert_eq!(cache.get(&k).as_deref(), Some(&(k as u64 * 3)));
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 4 * 32);
    }
}

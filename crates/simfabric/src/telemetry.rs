//! Telemetry: a metrics registry, phase spans, and a Chrome
//! `trace_event` exporter for the replay pipeline.
//!
//! The layer is built around two observability primitives:
//!
//! * [`MetricsRegistry`] — a flat namespace of named metrics
//!   (counters, high-water gauges, and log-scale [`Histogram`]s) that
//!   instrumented components export their state into. Registries
//!   merge ([`MetricsRegistry::merge`]) with the same commutative,
//!   associative discipline as the simulator's shard totals: counters
//!   sum, gauges keep the maximum (they are high-water marks), and
//!   histograms bucket-merge. Merging per-shard registries therefore
//!   reduces to the same totals in any order, which the
//!   sequential-equivalence suite asserts.
//! * [`SpanLog`] — scoped wall-time spans for pipeline phases (chunk
//!   generation, classification, timing merge, finish). Spans carry a
//!   thread lane (`tid`), a category, and numeric arguments (e.g. the
//!   simulated time covered), and are recorded against a single epoch
//!   so producer- and consumer-side spans share a timeline.
//!
//! Nothing in this module touches simulated state: recording a span or
//! bumping a metric can never change replay results, and every
//! instrumented hot path gates its recording behind an `Option` so the
//! disabled configuration costs one predictable branch.
//!
//! # Export
//!
//! [`chrome_trace_jsonl`] renders a span log plus a registry as
//! newline-delimited Chrome `trace_event` JSON: one complete event
//! object per line, sorted by timestamp — loadable in
//! `about:tracing`/Perfetto (whose JSON importer accepts concatenated
//! event objects) and trivially greppable. Spans become `"ph": "X"`
//! complete events; counters and gauges become `"ph": "C"` counter
//! series; histograms are summarized into a multi-value counter track.
//! The flat-JSON metrics exporter lives in `hybridmem::profile`, next
//! to the in-tree JSON value type.

use crate::stats::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

pub mod timeseries;

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically accumulated count (merge: sum).
    Counter(u64),
    /// A high-water mark (merge: max).
    Gauge(f64),
    /// A distribution of integer samples (merge: bucket-wise sum).
    Histogram(Histogram),
}

/// A flat, deterministic namespace of named metrics.
///
/// Names are dot-separated paths (`dram.ddr.row_hits`,
/// `pipeline.buffered_accesses`); the `BTreeMap` keeps iteration and
/// export order stable. Re-registering a name folds the new value in
/// with the metric's merge rule rather than overwriting, so a
/// component can be exported incrementally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Add `n` to the counter `name` (registering it at zero first).
    pub fn counter(&mut self, name: &str, n: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += n,
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// Raise the high-water gauge `name` to at least `v`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(MetricValue::Gauge(f64::NEG_INFINITY))
        {
            MetricValue::Gauge(g) => *g = g.max(v),
            other => panic!("metric {name:?} is not a gauge: {other:?}"),
        }
    }

    /// Merge `h` into the histogram `name`.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Histogram::new()))
        {
            MetricValue::Histogram(mine) => mine.merge(h),
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    /// Record one sample into the histogram `name`.
    pub fn record(&mut self, name: &str, sample: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Histogram::new()))
        {
            MetricValue::Histogram(mine) => mine.record(sample),
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Iterate metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fold `other` into this registry: counters sum, gauges keep the
    /// maximum, histograms bucket-merge. Commutative and associative,
    /// so per-shard registries reduce identically in any order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.metrics {
            match value {
                MetricValue::Counter(n) => self.counter(name, *n),
                MetricValue::Gauge(v) => self.gauge(name, *v),
                MetricValue::Histogram(h) => self.histogram(name, h),
            }
        }
    }

    /// Fold `other` in with every metric name prefixed by `prefix`
    /// (namespacing per-device or per-sweep-point registries into one
    /// dump).
    pub fn merge_prefixed(&mut self, prefix: &str, other: &MetricsRegistry) {
        for (name, value) in &other.metrics {
            let full = format!("{prefix}{name}");
            match value {
                MetricValue::Counter(n) => self.counter(&full, *n),
                MetricValue::Gauge(v) => self.gauge(&full, *v),
                MetricValue::Histogram(h) => self.histogram(&full, h),
            }
        }
    }
}

/// One recorded span: a named wall-time interval on a thread lane,
/// with numeric arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Phase name (`"classify"`, `"merge"`, …).
    pub name: String,
    /// Category, used as the Chrome `cat` field.
    pub cat: &'static str,
    /// Start, microseconds since the log's epoch.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Thread lane (0 = consumer/replay thread, 1 = producer).
    pub tid: u32,
    /// Numeric arguments (sim-time covered, accesses processed, …).
    pub args: Vec<(&'static str, f64)>,
}

/// An append-only log of [`SpanRecord`]s against a single wall-clock
/// epoch.
///
/// The log never allocates on the hot path beyond the record vector
/// push; begin/end cost two `Instant::now()` calls. Records may be
/// appended out of timestamp order (a producer thread's spans arrive
/// with its chunks); the exporter sorts.
#[derive(Debug)]
pub struct SpanLog {
    epoch: Instant,
    records: Vec<SpanRecord>,
}

impl Default for SpanLog {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanLog {
    /// New log; the epoch (trace time zero) is now.
    pub fn new() -> Self {
        SpanLog {
            epoch: Instant::now(),
            records: Vec::new(),
        }
    }

    /// The log's epoch, for producer-side span construction.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Microseconds from the epoch to `t` (0 for pre-epoch instants).
    pub fn micros_since_epoch(&self, t: Instant) -> f64 {
        t.saturating_duration_since(self.epoch).as_secs_f64() * 1e6
    }

    /// Record a span that started at `started` (an `Instant::now()`
    /// taken when the phase began) and ends now.
    pub fn end(
        &mut self,
        started: Instant,
        name: impl Into<String>,
        cat: &'static str,
        tid: u32,
        args: impl IntoIterator<Item = (&'static str, f64)>,
    ) {
        self.span_between(started, Instant::now(), name, cat, tid, args);
    }

    /// Record a span over an explicit `[started, ended]` interval
    /// (producer-side spans whose instants traveled with the chunk).
    pub fn span_between(
        &mut self,
        started: Instant,
        ended: Instant,
        name: impl Into<String>,
        cat: &'static str,
        tid: u32,
        args: impl IntoIterator<Item = (&'static str, f64)>,
    ) {
        let ts_us = self.micros_since_epoch(started);
        let dur_us = (self.micros_since_epoch(ended) - ts_us).max(0.0);
        self.records.push(SpanRecord {
            name: name.into(),
            cat,
            ts_us,
            dur_us,
            tid,
            args: args.into_iter().collect(),
        });
    }

    /// Append a pre-built record (tests, golden files, producers that
    /// computed their own timestamps).
    pub fn push(&mut self, record: SpanRecord) {
        self.records.push(record);
    }

    /// All records, in append order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }
}

/// Render a span log plus a metrics registry as newline-delimited
/// Chrome `trace_event` JSON (see the module docs for the dialect).
///
/// Field order within each event object is fixed, lines are sorted by
/// timestamp (stable, so equal timestamps keep append order), and
/// metric counter events are emitted at the timeline's end — the
/// output is byte-deterministic given the same records and metrics.
pub fn chrome_trace_jsonl(spans: &SpanLog, metrics: &MetricsRegistry) -> String {
    let mut records: Vec<&SpanRecord> = spans.records().iter().collect();
    records.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    let end_ts = records
        .iter()
        .map(|r| r.ts_us + r.dur_us)
        .fold(0.0f64, f64::max);
    let mut out = String::new();
    for r in &records {
        out.push_str("{\"name\":");
        write_json_str(&mut out, &r.name);
        out.push_str(",\"cat\":");
        write_json_str(&mut out, r.cat);
        out.push_str(",\"ph\":\"X\",\"ts\":");
        write_json_num(&mut out, r.ts_us);
        out.push_str(",\"dur\":");
        write_json_num(&mut out, r.dur_us);
        let _ = write!(out, ",\"pid\":1,\"tid\":{}", r.tid);
        out.push_str(",\"args\":{");
        for (i, (k, v)) in r.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&mut out, k);
            out.push(':');
            write_json_num(&mut out, *v);
        }
        out.push_str("}}\n");
    }
    for (name, value) in metrics.iter() {
        out.push_str("{\"name\":");
        write_json_str(&mut out, name);
        out.push_str(",\"cat\":\"metrics\",\"ph\":\"C\",\"ts\":");
        write_json_num(&mut out, end_ts);
        out.push_str(",\"pid\":1,\"args\":{");
        match value {
            MetricValue::Counter(n) => {
                out.push_str("\"value\":");
                write_json_num(&mut out, *n as f64);
            }
            MetricValue::Gauge(v) => {
                out.push_str("\"value\":");
                write_json_num(&mut out, if v.is_finite() { *v } else { 0.0 });
            }
            MetricValue::Histogram(h) => {
                out.push_str("\"count\":");
                write_json_num(&mut out, h.count() as f64);
                out.push_str(",\"mean\":");
                write_json_num(&mut out, h.mean());
                out.push_str(",\"p50\":");
                write_json_num(&mut out, h.quantile_bound(0.5) as f64);
                out.push_str(",\"max\":");
                write_json_num(&mut out, h.max().unwrap_or(0) as f64);
            }
        }
        out.push_str("}}\n");
    }
    out
}

/// Minimal JSON string writer (metric and span names are plain
/// identifiers, but escape fully anyway).
pub(crate) fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON number writer: integral values print as integers, everything
/// else as the shortest f64 round-trip; non-finite values (which JSON
/// cannot carry) print as 0.
pub(crate) fn write_json_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push('0');
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, ts: f64, dur: f64, tid: u32) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            cat: "replay",
            ts_us: ts,
            dur_us: dur,
            tid,
            args: vec![("accesses", 3.0)],
        }
    }

    #[test]
    fn registry_merge_rules() {
        let mut a = MetricsRegistry::new();
        a.counter("c", 2);
        a.gauge("g", 5.0);
        a.record("h", 8);
        let mut b = MetricsRegistry::new();
        b.counter("c", 3);
        b.gauge("g", 4.0);
        b.record("h", 16);
        b.counter("only_b", 1);
        a.merge(&b);
        assert_eq!(a.get("c"), Some(&MetricValue::Counter(5)));
        assert_eq!(a.get("g"), Some(&MetricValue::Gauge(5.0)));
        assert_eq!(a.get("only_b"), Some(&MetricValue::Counter(1)));
        match a.get("h") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.max(), Some(16));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn registry_merge_is_order_independent() {
        let mut parts = Vec::new();
        for i in 0..4u64 {
            let mut r = MetricsRegistry::new();
            r.counter("n", i + 1);
            r.gauge("hw", i as f64);
            r.record("lat", 1 << i);
            parts.push(r);
        }
        let forward = parts.iter().fold(MetricsRegistry::new(), |mut a, p| {
            a.merge(p);
            a
        });
        let reverse = parts.iter().rev().fold(MetricsRegistry::new(), |mut a, p| {
            a.merge(p);
            a
        });
        assert_eq!(forward, reverse);
    }

    #[test]
    fn merge_prefixed_namespaces() {
        let mut inner = MetricsRegistry::new();
        inner.counter("hits", 7);
        let mut outer = MetricsRegistry::new();
        outer.merge_prefixed("ddr.", &inner);
        assert_eq!(outer.get("ddr.hits"), Some(&MetricValue::Counter(7)));
        assert!(outer.get("hits").is_none());
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut r = MetricsRegistry::new();
        r.gauge("x", 1.0);
        r.counter("x", 1);
    }

    #[test]
    fn span_log_records_ordered_spans() {
        let mut log = SpanLog::new();
        let t0 = Instant::now();
        log.end(t0, "classify", "replay", 0, [("accesses", 100.0)]);
        assert_eq!(log.records().len(), 1);
        let r = &log.records()[0];
        assert_eq!(r.name, "classify");
        assert!(r.ts_us >= 0.0 && r.dur_us >= 0.0);
    }

    #[test]
    fn chrome_export_sorts_and_is_line_delimited() {
        let mut log = SpanLog::new();
        log.push(span("late", 50.0, 10.0, 0));
        log.push(span("early", 10.0, 5.0, 1));
        let mut reg = MetricsRegistry::new();
        reg.counter("dev.hits", 42);
        let text = chrome_trace_jsonl(&log, &reg);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"early\""));
        assert!(lines[1].contains("\"late\""));
        assert!(lines[2].contains("\"dev.hits\""));
        // Counter events land at the timeline end (60 us).
        assert!(lines[2].contains("\"ts\":60"), "{}", lines[2]);
        // Every line is one object with fixed field order.
        for line in lines {
            assert!(line.starts_with("{\"name\":"));
            assert!(line.ends_with("}}"));
        }
    }

    #[test]
    fn chrome_export_handles_empty_log() {
        let text = chrome_trace_jsonl(&SpanLog::new(), &MetricsRegistry::new());
        assert!(text.is_empty());
    }

    #[test]
    fn json_number_formatting() {
        let mut s = String::new();
        write_json_num(&mut s, 3.0);
        s.push(' ');
        write_json_num(&mut s, 3.25);
        s.push(' ');
        write_json_num(&mut s, f64::NAN);
        assert_eq!(s, "3 3.25 0");
    }
}

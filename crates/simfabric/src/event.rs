//! Deterministic discrete-event queue and a thin simulator wrapper.
//!
//! Events are ordered by timestamp; ties are broken by insertion
//! sequence number so that simulation replay is bit-for-bit
//! reproducible regardless of heap internals.

use crate::time::{Duration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry. Ordered so that the *earliest* (time, seq) pair
/// is popped first from a max-heap.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want min-(time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A minimal simulator: an [`EventQueue`] plus the current clock.
///
/// Models that need full event-driven execution use this directly;
/// models that compute time analytically only borrow [`SimTime`] /
/// [`Duration`].
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Create a simulator with the clock at zero.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event at an absolute time.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock: scheduling into the
    /// past indicates a causality bug in the calling model.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event in the past: {at} < now {}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedule an event `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        let at = self.now + delay;
        self.queue.push(at, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue went backwards");
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Run events through `handler` until the queue is empty or
    /// `max_events` have been processed. The handler may schedule more
    /// events through the provided simulator reference.
    ///
    /// Returns the number of events processed by this call.
    pub fn run<F>(&mut self, max_events: u64, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        let mut n = 0;
        while n < max_events {
            match self.pop() {
                Some((t, e)) => {
                    handler(self, t, e);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Advance the clock directly (used by analytic models that account
    /// for time without individual events).
    pub fn advance(&mut self, by: Duration) {
        self.now += by;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(30), "c");
        q.push(SimTime::from_ps(10), "a");
        q.push(SimTime::from_ps(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ps(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn simulator_advances_clock() {
        let mut sim = Simulator::new();
        sim.schedule_in(Duration::from_ns(7.0), ());
        sim.schedule_in(Duration::from_ns(3.0), ());
        assert_eq!(sim.pending(), 2);
        sim.pop().unwrap();
        assert_eq!(sim.now().as_ns(), 3.0);
        sim.pop().unwrap();
        assert_eq!(sim.now().as_ns(), 7.0);
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    fn run_executes_cascading_events() {
        let mut sim = Simulator::new();
        sim.schedule_in(Duration::from_ns(1.0), 3u32);
        let mut total = 0u32;
        sim.run(1000, |sim, _t, depth| {
            total += 1;
            if depth > 0 {
                sim.schedule_in(Duration::from_ns(1.0), depth - 1);
            }
        });
        assert_eq!(total, 4); // 3, 2, 1, 0
        assert_eq!(sim.now().as_ns(), 4.0);
    }

    #[test]
    fn run_respects_event_budget() {
        let mut sim = Simulator::new();
        for _ in 0..10 {
            sim.schedule_in(Duration::from_ns(1.0), ());
        }
        let n = sim.run(4, |_, _, _| {});
        assert_eq!(n, 4);
        assert_eq!(sim.pending(), 6);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_in(Duration::from_ns(5.0), ());
        sim.pop();
        sim.schedule_at(SimTime::from_ps(1), ());
    }

    #[test]
    fn advance_moves_clock_without_events() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.advance(Duration::from_us(1.0));
        assert_eq!(sim.now().as_us(), 1.0);
    }
}

//! Seeded property tests for `simfabric::par`: every primitive must
//! return the same result no matter the thread-count override —
//! including overrides far beyond the item count, and empty inputs.
//! (Float inputs are integer-valued so sums are exact; the contract is
//! determinism of the *partitioning*, checked bit-for-bit here.)

use simfabric::par;
use simfabric::prng::Rng;

const THREAD_COUNTS: [usize; 6] = [1, 2, 3, 5, 8, 200];
const SEEDS: [u64; 4] = [1, 0xBAD5EED, 42, 0xFEED_F00D];

fn random_lens(rng: &mut Rng) -> Vec<usize> {
    let mut lens = vec![0, 1, 2, 7];
    for _ in 0..4 {
        lens.push(rng.gen_range(8..600) as usize);
    }
    lens
}

#[test]
fn par_sum_independent_of_thread_count() {
    for seed in SEEDS {
        let mut rng = Rng::seed_from_u64(seed);
        for len in random_lens(&mut rng) {
            let data: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1 << 20)).collect();
            let serial: f64 = data.iter().map(|&x| x as f64).sum();
            for threads in THREAD_COUNTS {
                let got = par::with_threads(threads, || par::par_sum(len, |i| data[i] as f64));
                assert_eq!(
                    got.to_bits(),
                    serial.to_bits(),
                    "par_sum(len={len}) at {threads} threads, seed {seed:#x}"
                );
            }
        }
    }
}

#[test]
fn par_map_independent_of_thread_count() {
    for seed in SEEDS {
        let mut rng = Rng::seed_from_u64(seed);
        for len in random_lens(&mut rng) {
            let data: Vec<u64> = (0..len).map(|_| rng.gen_range(0..u64::MAX)).collect();
            let serial: Vec<u64> = data.iter().map(|&x| x.rotate_left(7) ^ 0xA5).collect();
            for threads in THREAD_COUNTS {
                let got = par::with_threads(threads, || {
                    par::par_map(&data, |&x| x.rotate_left(7) ^ 0xA5)
                });
                assert_eq!(
                    got, serial,
                    "par_map(len={len}) at {threads} threads, seed {seed:#x}"
                );
            }
        }
    }
}

#[test]
fn par_chunks_mut_independent_of_thread_count() {
    for seed in SEEDS {
        let mut rng = Rng::seed_from_u64(seed);
        for len in random_lens(&mut rng) {
            let base: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1 << 30)).collect();
            let chunk_len = rng.gen_range(1..20) as usize;
            let apply = |data: &mut [u64]| {
                par::par_chunks_mut(data, chunk_len, |ci, ch| {
                    for (i, x) in ch.iter_mut().enumerate() {
                        *x = x.wrapping_mul(ci as u64 + 1).wrapping_add(i as u64);
                    }
                })
            };
            let mut serial = base.clone();
            par::with_threads(1, || apply(&mut serial));
            for threads in THREAD_COUNTS {
                let mut got = base.clone();
                par::with_threads(threads, || apply(&mut got));
                assert_eq!(
                    got, serial,
                    "par_chunks_mut(len={len}, chunk={chunk_len}) at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn empty_inputs_are_identical_across_thread_counts() {
    for threads in THREAD_COUNTS {
        par::with_threads(threads, || {
            assert_eq!(par::par_sum(0, |_| unreachable!()), 0.0);
            let empty: Vec<u32> = Vec::new();
            assert!(par::par_map(&empty, |_| 1u8).is_empty());
            let mut none: Vec<u8> = Vec::new();
            par::par_chunks_mut(&mut none, 3, |_, _| unreachable!());
        });
    }
}

#[test]
fn more_threads_than_items_is_exact() {
    // 200-thread override over tiny inputs: every element visited once.
    let mut data: Vec<u32> = (0..5).collect();
    par::with_threads(200, || {
        par::par_update(&mut data, |i, x| *x += 10 * i as u32);
        assert_eq!(par::par_sum(3, |i| i as f64), 3.0);
        assert_eq!(par::par_map_range(2, |i| i * i), vec![0, 1]);
    });
    assert_eq!(data, vec![0, 11, 22, 33, 44]);
}

#[test]
fn thread_override_is_visible_and_scoped() {
    assert_eq!(par::thread_override(), None);
    par::with_threads(3, || {
        assert_eq!(par::thread_override(), Some(3));
        par::with_threads(9, || assert_eq!(par::thread_override(), Some(9)));
        assert_eq!(par::thread_override(), Some(3));
    });
    assert_eq!(par::thread_override(), None);
}

//! Property tests for the simulation substrate.

use proptest::prelude::*;
use simfabric::{ByteSize, Duration, EventQueue, Histogram, OnlineStats, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The event queue pops in exactly the order of a stable sort by
    /// timestamp (FIFO on ties).
    #[test]
    fn event_queue_matches_stable_sort(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ps(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        expected.sort_by_key(|&(t, _)| t); // stable: ties keep insertion order
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_ps(), i)).collect();
        prop_assert_eq!(got, expected);
    }

    /// ByteSize display → parse round-trips within formatting precision.
    #[test]
    fn bytesize_display_parse_roundtrip(bytes in 0u64..(1u64 << 45)) {
        let b = ByteSize::bytes(bytes);
        let parsed: ByteSize = b.to_string().parse().unwrap();
        // Display may round to 2 decimals of the chosen unit: allow
        // 1% relative error (exact below 1 KiB).
        if bytes < 1024 {
            prop_assert_eq!(parsed, b);
        } else {
            let rel = (parsed.as_u64() as f64 - bytes as f64).abs() / bytes as f64;
            prop_assert!(rel < 0.01, "{} -> {} -> {}", bytes, b, parsed.as_u64());
        }
    }

    /// Histogram invariants: count, mean, min/max, and the quantile
    /// upper bound is ≥ the true quantile and ≤ 2x (power-of-two
    /// buckets).
    #[test]
    fn histogram_quantile_bounds(mut samples in proptest::collection::vec(1u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), samples.first().copied());
        prop_assert_eq!(h.max(), samples.last().copied());
        let true_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((h.mean() - true_mean).abs() < 1e-6);
        for q in [0.25, 0.5, 0.9, 1.0] {
            let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
            let truth = samples[idx];
            let est = h.quantile(q).unwrap();
            prop_assert!(est >= truth, "q{q}: est {est} < true {truth}");
            prop_assert!(est < truth.saturating_mul(2).max(2), "q{q}: est {est} vs true {truth}");
        }
    }

    /// OnlineStats matches the two-pass mean/variance.
    #[test]
    fn online_stats_match_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-6 * var.abs().max(1.0));
    }

    /// Duration arithmetic is consistent: sum of parts equals scaled
    /// whole.
    #[test]
    fn duration_arithmetic_consistency(ps in 1u64..1_000_000_000, parts in 1u64..64) {
        let d = Duration::from_ps(ps * parts);
        prop_assert_eq!(d / parts, Duration::from_ps(ps));
        prop_assert_eq!(Duration::from_ps(ps).times(parts), d);
        prop_assert_eq!(d.scale(1.0), d);
    }
}

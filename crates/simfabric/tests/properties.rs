//! Property tests for the simulation substrate, driven by seeded
//! randomized cases from the in-tree PRNG (deterministic across runs).

use simfabric::prng::Rng;
use simfabric::{ByteSize, Duration, EventQueue, Histogram, OnlineStats, SimTime};

/// The event queue pops in exactly the order of a stable sort by
/// timestamp (FIFO on ties).
#[test]
fn event_queue_matches_stable_sort() {
    let mut rng = Rng::seed_from_u64(0x51f0_0001);
    for case in 0..128 {
        let len = rng.gen_range(1usize..200);
        let times: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ps(t), i);
        }
        let mut expected: Vec<(u64, usize)> = times
            .iter()
            .copied()
            .enumerate()
            .map(|(i, t)| (t, i))
            .collect();
        expected.sort_by_key(|&(t, _)| t); // stable: ties keep insertion order
        let got: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(t, i)| (t.as_ps(), i))
            .collect();
        assert_eq!(got, expected, "case {case}");
    }
}

/// ByteSize display → parse round-trips within formatting precision.
#[test]
fn bytesize_display_parse_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x51f0_0002);
    for case in 0..256 {
        let bytes = rng.gen_range(0u64..(1u64 << 45));
        let b = ByteSize::bytes(bytes);
        let parsed: ByteSize = b.to_string().parse().unwrap();
        // Display may round to 2 decimals of the chosen unit: allow
        // 1% relative error (exact below 1 KiB).
        if bytes < 1024 {
            assert_eq!(parsed, b, "case {case}");
        } else {
            let rel = (parsed.as_u64() as f64 - bytes as f64).abs() / bytes as f64;
            assert!(
                rel < 0.01,
                "case {case}: {} -> {} -> {}",
                bytes,
                b,
                parsed.as_u64()
            );
        }
    }
    // Edge values the random sweep may miss.
    for bytes in [0u64, 1, 1023, 1024, 1025, (1u64 << 45) - 1] {
        let b = ByteSize::bytes(bytes);
        let parsed: ByteSize = b.to_string().parse().unwrap();
        let rel = (parsed.as_u64() as f64 - bytes as f64).abs() / (bytes.max(1)) as f64;
        assert!(rel < 0.01, "edge {bytes}");
    }
}

/// Histogram invariants: count, mean, min/max, and the quantile
/// upper bound is ≥ the true quantile and ≤ 2x (power-of-two
/// buckets).
#[test]
fn histogram_quantile_bounds() {
    let mut rng = Rng::seed_from_u64(0x51f0_0003);
    for case in 0..128 {
        let len = rng.gen_range(1usize..300);
        let mut samples: Vec<u64> = (0..len).map(|_| rng.gen_range(1u64..1_000_000)).collect();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        assert_eq!(h.count(), samples.len() as u64, "case {case}");
        assert_eq!(h.min(), samples.first().copied());
        assert_eq!(h.max(), samples.last().copied());
        let true_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((h.mean() - true_mean).abs() < 1e-6);
        for q in [0.25, 0.5, 0.9, 1.0] {
            let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
            let truth = samples[idx];
            let est = h.quantile(q).unwrap();
            assert!(est >= truth, "case {case} q{q}: est {est} < true {truth}");
            assert!(
                est < truth.saturating_mul(2).max(2),
                "case {case} q{q}: est {est} vs true {truth}"
            );
        }
    }
}

/// OnlineStats matches the two-pass mean/variance.
#[test]
fn online_stats_match_two_pass() {
    let mut rng = Rng::seed_from_u64(0x51f0_0004);
    for case in 0..128 {
        let len = rng.gen_range(2usize..200);
        let xs: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e6f64..1e6)).collect();
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        assert!(
            (s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0),
            "case {case}"
        );
        assert!(
            (s.variance() - var).abs() < 1e-6 * var.abs().max(1.0),
            "case {case}"
        );
    }
}

/// Duration arithmetic is consistent: sum of parts equals scaled
/// whole.
#[test]
fn duration_arithmetic_consistency() {
    let mut rng = Rng::seed_from_u64(0x51f0_0005);
    for case in 0..256 {
        let ps = rng.gen_range(1u64..1_000_000_000);
        let parts = rng.gen_range(1u64..64);
        let d = Duration::from_ps(ps * parts);
        assert_eq!(d / parts, Duration::from_ps(ps), "case {case}");
        assert_eq!(Duration::from_ps(ps).times(parts), d, "case {case}");
        assert_eq!(d.scale(1.0), d, "case {case}");
    }
}
